//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in a hermetic environment with no crates.io access,
//! so this vendored crate re-implements exactly the API surface the
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, `seq::SliceRandom::shuffle`) on top of a splitmix64
//! generator. It is deterministic given a seed, statistically adequate for
//! subsampling/shuffling/synthetic-data generation, and **not**
//! cryptographically secure.

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The uniform-sampling interface, mirroring the subset of `rand::Rng`
/// this workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from the "standard" distribution of `T`
    /// (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Types samplable uniformly from a `Range`.
pub trait UniformSample: Sized {
    /// Draws one value from `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl UniformSample for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + u * (range.end - range.start)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return range.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

uniform_int!(usize, u64, u32, u16, u8);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic 64-bit generator (splitmix64). API-compatible
    /// stand-in for `rand::rngs::StdRng` — same name, different stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(3_usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0_f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
