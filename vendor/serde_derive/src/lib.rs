//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The companion `serde` shim blanket-implements its marker traits for all
//! types, so the derives have nothing to generate — they only exist so that
//! `#[derive(Serialize, Deserialize)]` attributes in the workspace compile.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
