//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only as *derive annotations* on plain-old-data
//! config types (no serialisation format crate is a dependency). This shim
//! provides blanket-implemented marker traits with the real names plus no-op
//! derive macros, so `#[derive(Serialize, Deserialize)]` and
//! `T: Serialize + for<'de> Deserialize<'de>` bounds compile unchanged.
//! Swap in the real serde (same package name) once network access exists.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Probe {
        _x: f64,
    }

    #[test]
    fn bounds_are_satisfied() {
        fn assert_roundtrippable<T: crate::Serialize + for<'de> crate::Deserialize<'de>>() {}
        assert_roundtrippable::<Probe>();
        assert_roundtrippable::<Vec<String>>();
    }
}
