//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` behind the
//! parking_lot API shape (`lock()` returns the guard directly, recovering
//! from poisoning instead of returning a `Result`).

use std::fmt;

/// A mutex with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5_i32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0_u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
