//! Offline stand-in for the `bytes` crate: `Vec<u8>`-backed buffers with the
//! subset of `Buf`/`BufMut` the model-persistence format uses (little-endian
//! integer/float accessors, `advance`, `remaining`).

use std::ops::Deref;

/// Read-side cursor over a byte source, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// Copies out the next `dst.len()` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a single byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side buffer interface, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Immutable byte container, mirroring `bytes::Bytes` (without the
/// zero-copy slicing — this workspace only reads it as a slice).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies a slice into a new container.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f64_le(-1.5);
        let bytes = buf.freeze();
        let mut r: &[u8] = &bytes;
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_and_slices() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r, &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32_le();
    }
}
