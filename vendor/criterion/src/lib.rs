//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! as a simple wall-clock harness: each benchmark runs a short warm-up then
//! `sample_size` timed samples, and the per-iteration median/min are printed
//! in a diffable one-line-per-benchmark format. No statistics engine, no
//! HTML reports; swap in the real criterion once network access exists.

//! Smoke mode: when the bench binary is invoked with `--test` (the flag the
//! real criterion uses for "run every benchmark once, no statistics" — e.g.
//! `cargo bench -- --test` in CI), every benchmark runs a single timed
//! sample so the job verifies the benches still compile and execute without
//! paying full measurement cost.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `true` when the bench binary was invoked with `--test` (or `--quick`):
/// run each benchmark once, as a compile-and-run smoke check.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id consisting of the parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing helper handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` for one warm-up pass plus `sample_size` timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self) -> (Duration, Duration) {
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted
            .get(sorted.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let min = sorted.first().copied().unwrap_or(Duration::ZERO);
        (median, min)
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-6 {
        format!("{:8.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:8.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:8.2} ms", s * 1e3)
    } else {
        format!("{s:8.3} s ")
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: if smoke_mode() { 1 } else { self.sample_size },
        };
        f(&mut bencher);
        let (median, min) = bencher.report();
        println!(
            "bench {:<48} median {}   min {}",
            format!("{}/{}", self.name, label),
            fmt_duration(median),
            fmt_duration(min)
        );
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Registers and immediately runs a parameterised benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("default", f);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0_u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(ran >= 3);
    }
}
