//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace's property
//! tests use: the `proptest!` macro (with `#![proptest_config(...)]`),
//! `Strategy` for numeric ranges and `prop_map`, `collection::vec`, and the
//! `prop_assert*` macros. Cases are drawn from a deterministic splitmix64
//! stream (seeded per test by a fixed constant), so failures are
//! reproducible; there is no shrinking — a failing case panics with the
//! plain assertion message. Swap in the real proptest (same package name)
//! once network access exists.

/// Deterministic RNG and configuration for test runs.
pub mod test_runner {
    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Sets the case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic generator feeding the strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed, documented seed.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x00C0_FFEE_5EED_CAFE,
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i32, i64);

    /// Strategy yielding a constant value (mirrors `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for fixed-length vectors.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)`: a vector of `len` draws from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (plain `assert!` here — no
/// shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supported shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn prop(x in 0.0_f64..1.0, v in collection::vec(0_u32..9, 4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in -2.0_f64..3.0, n in 1_usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(v in collection::vec(0.0_f64..1.0, 5).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 5);
        }
    }
}
