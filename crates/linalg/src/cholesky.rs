//! Cholesky factorisation and triangular solves, generic over the element
//! precision [`Scalar`].
//!
//! The FALKON baseline preconditions its conjugate-gradient iteration with
//! two Cholesky factors (`T` and `A` in Rudi et al. 2017), and the exact
//! interpolation solver (`K α = y`) uses a jittered Cholesky as its direct
//! method. Plain right-looking `O(n³/3)` factorisation — the matrices here
//! are subsample-sized. Inner-product pivots accumulate in
//! [`Scalar::Accum`], so the f32 instantiation keeps positive-definiteness
//! decisions at f64 fidelity.

use crate::scalar::Scalar;
use crate::{LinalgError, Matrix};

/// A lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor<S: Scalar = f64> {
    l: Matrix<S>,
}

impl<S: Scalar> CholeskyFactor<S> {
    /// Factorises the symmetric positive-definite matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] with the failing pivot if
    /// a non-positive pivot is encountered, and
    /// [`LinalgError::InvalidArgument`] if `a` is not square.
    pub fn new(a: &Matrix<S>) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument {
                message: format!("cholesky requires a square matrix, got {:?}", a.shape()),
            });
        }
        let n = a.rows();
        let mut l: Matrix<S> = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)].accum();
                for k in 0..j {
                    sum -= l[(i, k)].accum() * l[(j, k)].accum();
                }
                if i == j {
                    if sum <= S::Accum::ZERO || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = S::from_accum(sum.sqrt());
                } else {
                    l[(i, j)] = S::from_accum(sum / l[(j, j)].accum());
                }
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Factorises `a + jitter * I`, growing `jitter` by 10x up to
    /// `max_tries` times. Returns the factor and the jitter actually used.
    ///
    /// Kernel matrices are positive *semi*-definite up to round-off; this is
    /// the standard fix.
    ///
    /// # Errors
    ///
    /// Returns the last [`LinalgError`] if every jitter level fails.
    pub fn new_with_jitter(
        a: &Matrix<S>,
        initial_jitter: f64,
        max_tries: usize,
    ) -> Result<(Self, f64), LinalgError> {
        let mut jitter = initial_jitter;
        let mut last_err = None;
        for _ in 0..max_tries.max(1) {
            let mut aj = a.clone();
            for i in 0..a.rows() {
                aj[(i, i)] += S::from_f64(jitter);
            }
            match CholeskyFactor::new(&aj) {
                Ok(f) => return Ok((f, jitter)),
                Err(e) => {
                    last_err = Some(e);
                    jitter = if jitter == 0.0 { 1e-12 } else { jitter * 10.0 };
                }
            }
        }
        Err(last_err.unwrap_or(LinalgError::InvalidArgument {
            message: "max_tries was 0".to_string(),
        }))
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix<S> {
        &self.l
    }

    /// Solves `L x = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor size.
    pub fn solve_lower(&self, b: &[S]) -> Vec<S> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        let mut x = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let mut sum = x[i].accum();
            for k in 0..i {
                sum -= row[k].accum() * x[k].accum();
            }
            x[i] = S::from_accum(sum / row[i].accum());
        }
        x
    }

    /// Solves `L^T x = b` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor size.
    pub fn solve_upper(&self, b: &[S]) -> Vec<S> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut sum = x[i].accum();
            for (k, &xk) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.l[(k, i)].accum() * xk.accum();
            }
            x[i] = S::from_accum(sum / self.l[(i, i)].accum());
        }
        x
    }

    /// Solves `A x = b` via the two triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor size.
    pub fn solve(&self, b: &[S]) -> Vec<S> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows()` does not match the factor size.
    pub fn solve_matrix(&self, b: &Matrix<S>) -> Matrix<S> {
        let mut x = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j));
            x.set_col(j, &col);
        }
        x
    }

    /// `log det(A) = 2 Σ log L_ii` (accumulated in `f64`).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l[(i, i)].to_f64().ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Direct SPD solve `A x = b` (factorise + solve in one call).
///
/// # Errors
///
/// Propagates [`CholeskyFactor::new`] failures.
pub fn solve_spd<S: Scalar>(a: &Matrix<S>, b: &[S]) -> Result<Vec<S>, LinalgError> {
    Ok(CholeskyFactor::new(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        // A = B B^T + n I is comfortably SPD.
        let mut state = seed | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = Matrix::zeros(n, n);
        blas::gemm_nt(1.0, &b, &b, 0.0, &mut a);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_matrix(12, 5);
        let f = CholeskyFactor::new(&a).unwrap();
        let l = f.factor();
        let mut llt = Matrix::zeros(12, 12);
        blas::gemm_nt(1.0, l, l, 0.0, &mut llt);
        for i in 0..12 {
            for j in 0..12 {
                assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd_matrix(15, 9);
        let b: Vec<f64> = (0..15).map(|i| (i as f64).cos()).collect();
        let x = solve_spd(&a, &b).unwrap();
        let mut ax = vec![0.0; 15];
        blas::gemv(1.0, &a, &x, 0.0, &mut ax);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn f32_factor_close_to_f64() {
        let a = spd_matrix(10, 3);
        let a32: Matrix<f32> = a.cast();
        let b: Vec<f32> = (0..10).map(|i| (i as f32).sin()).collect();
        let x32 = solve_spd(&a32, &b).unwrap();
        let b64: Vec<f64> = b.iter().map(|&v| v as f64).collect();
        let x64 = solve_spd(&a, &b64).unwrap();
        for (u, v) in x32.iter().zip(&x64) {
            assert!((*u as f64 - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match CholeskyFactor::new(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn jitter_rescues_psd() {
        // Rank-deficient PSD matrix.
        let x = [1.0, 1.0, 1.0];
        let mut a = Matrix::zeros(3, 3);
        blas::ger(1.0, &x, &x, &mut a);
        assert!(CholeskyFactor::new(&a).is_err());
        let (f, jitter) = CholeskyFactor::new_with_jitter(&a, 1e-10, 8).unwrap();
        assert!(jitter >= 1e-10);
        assert_eq!(f.factor().rows(), 3);
    }

    #[test]
    fn solve_matrix_multi_rhs() {
        let a = spd_matrix(6, 3);
        let f = CholeskyFactor::new(&a).unwrap();
        let b = Matrix::from_fn(6, 2, |i, j| (i + j) as f64);
        let x = f.solve_matrix(&b);
        let ax = blas::matmul(&a, &x);
        for i in 0..6 {
            for j in 0..2 {
                assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let f = CholeskyFactor::new(&Matrix::<f64>::identity(5)).unwrap();
        assert!(f.log_det().abs() < 1e-14);
    }
}
