//! Lane-batched vectorized transcendentals for the radial-profile hot path.
//!
//! Kernel assembly fuses the radial profile `g(d²)` into the GEMM
//! write-back, which leaves the transcendental tail — one `exp` per output
//! entry — as the dominant cost once the memory pass is gone: the packed
//! GEMM runs a full vector register wide while libm's `exp` runs one lane
//! at a time behind a call. This module closes that gap with the same
//! trick the GEMM microkernels use: branch-free scalar kernels over
//! fixed-width chunks that LLVM autovectorizes on stable Rust (no
//! intrinsics), under the `-C target-cpu=native` build the workspace
//! already requires for the FMA microkernels.
//!
//! # Algorithm
//!
//! [`VMath::exp_lane`] is the classic Cody–Waite reduction plus a short
//! polynomial, arranged so every step is a select/FMA the vectorizer can
//! lower per lane:
//!
//! 1. **Clamp** `x` to the precision's exactly-representable range
//!    (`[-104, 89]` for f32, `[-745.2, 709.9]` for f64). Inputs at or past
//!    the bounds already round to `0` / `+inf`, and the clamp makes the
//!    later `2^k` scaling exact: `-inf -> 0` and `+inf -> +inf` fall out
//!    without branches.
//! 2. **Round** `k = rn(x·log₂e)` with the magic-number shift
//!    (`1.5·2^23` / `1.5·2^52`) — round-to-nearest-even without `round()`.
//! 3. **Reduce** `r = x − k·ln2` in two FMA steps against a hi/lo split of
//!    `ln 2`, leaving `|r| ≤ ln2/2` with the split's extra bits of
//!    accuracy.
//! 4. **Approximate** `e^r`: the Cephes single-precision minimax
//!    polynomial (degree 5 in the quadratic term) for f32; the Cephes
//!    double-precision 2/3 Padé form for f64.
//! 5. **Scale** by `2^k` in two exact power-of-two factors
//!    `2^⌊k/2⌋ · 2^⌈k/2⌉` built from raw exponent bits, so both factors
//!    stay normal and the only extra rounding is the final one — which is
//!    also what makes gradual underflow into subnormals (and the exact
//!    underflow to `0` past them) come out right.
//! 6. **Restore NaN**: the clamp in step 1 swallows NaN (Rust's `min`/
//!    `max` return the non-NaN operand), so a final per-lane select puts
//!    the input NaN back through.
//!
//! # Error bound
//!
//! Measured against a correctly-rounded reference (libm evaluated two
//! precisions up), the relative error is **≤ 4 ULP for f32 and ≤ 8 ULP
//! for f64** over the full finite range — in practice ≤ 2–3 ULP; the
//! bound is enforced, edge cases and lane-remainder tails included, by
//! the `vmath_ulp` property suite, which the CI precision matrix runs per
//! precision leg. `sqrt` needs no polynomial: hardware vector `sqrt` is
//! correctly rounded (0.5 ULP), so [`VMath::vsqrt`] is a plain loop.
//!
//! # The `EP2_PRECISE_MATH` escape hatch
//!
//! Setting `EP2_PRECISE_MATH=1` routes [`VMath::exp1`] and [`VMath::vexp`]
//! to libm for A/B debugging of the polynomial path. The switch is read
//! once per process and applies to fused and two-pass assembly alike, so
//! the bit-for-bit `fused_parity` contract holds in either mode.

use crate::scalar::Scalar;
use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state cache of the `EP2_PRECISE_MATH` probe: 0 = unread,
/// 1 = fast (polynomial), 2 = precise (libm).
static MODE: AtomicU8 = AtomicU8::new(0);

/// Whether profile transcendentals run through libm (`EP2_PRECISE_MATH=1`)
/// instead of the vectorized polynomial path. Read from the environment
/// once per process; [`set_precise_math`] overrides it.
#[inline]
pub fn precise_math() -> bool {
    match MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let precise = std::env::var("EP2_PRECISE_MATH")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            MODE.store(if precise { 2 } else { 1 }, Ordering::Relaxed);
            precise
        }
    }
}

/// Overrides the `EP2_PRECISE_MATH` probe for the rest of the process —
/// the A/B hook `hot_paths` uses to time the scalar-libm leg against the
/// vectorized leg in one run. Process-global: don't toggle it from
/// concurrently-running tests.
pub fn set_precise_math(precise: bool) {
    MODE.store(if precise { 2 } else { 1 }, Ordering::Relaxed);
}

/// Chunk width (in elements) the profile paths use for their stack-local
/// staging buffers: long rows are processed `BLOCK` entries at a time, so
/// d² reassembly, the profile polynomial, and the storage narrowing each
/// run as a clean fixed-trip-count loop over one cache-resident chunk.
pub const BLOCK: usize = 64;

// ---------------------------------------------------------------------------
// f32: clamp + magic round + Cody–Waite + Cephes minimax polynomial.
// ---------------------------------------------------------------------------

/// Below every f32 `exp` result (even subnormal): exp(-104) < 2^-150.
const LO_F32: f32 = -104.0;
/// Above the f32 overflow threshold ln(MAX) ≈ 88.723.
const HI_F32: f32 = 89.0;
/// `1.5 · 2^23`: adding and subtracting shifts the integer part into the
/// significand's last place, rounding to nearest even on the way.
const SHIFT_F32: f32 = 12_582_912.0;
/// `ln 2` split hi/lo (Cephes): the hi part has 9 significand bits, so
/// `k·LN2_HI` is exact for every reachable `k`.
#[allow(clippy::excessive_precision)] // canonical Cephes digits, kept verbatim
const LN2_HI_F32: f32 = 0.693_359_375;
const LN2_LO_F32: f32 = -2.121_944_4e-4;
/// Cephes `expf` minimax coefficients for `e^r` on `[-ln2/2, ln2/2]`,
/// applied as `1 + r + r²·poly(r)` (peak theoretical error 4.2e-9).
#[allow(clippy::excessive_precision)] // canonical Cephes digits, kept verbatim
const P_F32: [f32; 6] = [
    1.987_569_2e-4,
    1.398_199_9e-3,
    8.333_452e-3,
    4.166_579_6e-2,
    1.666_666_55e-1,
    5.000_000_1e-1,
];

/// One f32 lane of the vectorized `exp`: exactly the arithmetic `vexp`
/// performs per element, so scalar and batched callers agree bit for bit.
// max/min (not `clamp`) keeps NaN inputs finite through the bit
// manipulation below; the final select restores the NaN payload.
#[allow(clippy::manual_clamp)]
#[inline(always)]
fn exp_lane_f32(x: f32) -> f32 {
    let xc = x.max(LO_F32).min(HI_F32);
    let kf = (xc * std::f32::consts::LOG2_E + SHIFT_F32) - SHIFT_F32;
    let k = kf as i32;
    let r = kf.mul_add(-LN2_HI_F32, xc);
    let r = kf.mul_add(-LN2_LO_F32, r);
    let mut p = P_F32[0];
    p = p.mul_add(r, P_F32[1]);
    p = p.mul_add(r, P_F32[2]);
    p = p.mul_add(r, P_F32[3]);
    p = p.mul_add(r, P_F32[4]);
    p = p.mul_add(r, P_F32[5]);
    let m = p.mul_add(r * r, r) + 1.0;
    // 2^k as two exact power-of-two factors: both exponents stay in the
    // normal range, so only the last multiply rounds (into subnormals or
    // to 0/inf when the true result lands there).
    let kh = k >> 1;
    let s1 = f32::from_bits(((kh + 127) as u32) << 23);
    let s2 = f32::from_bits((((k - kh) + 127) as u32) << 23);
    let v = (m * s1) * s2;
    if x.is_nan() {
        x
    } else {
        v
    }
}

// ---------------------------------------------------------------------------
// f64: clamp + magic round + Cody–Waite + Cephes 2/3 Padé form.
// ---------------------------------------------------------------------------

/// Below every f64 `exp` result: exp(-745.2) < 2^-1075.
const LO_F64: f64 = -745.2;
/// Above the f64 overflow threshold ln(MAX) ≈ 709.783.
const HI_F64: f64 = 709.9;
/// `1.5 · 2^52`.
const SHIFT_F64: f64 = 6_755_399_441_055_744.0;
/// `ln 2` hi/lo split (Cephes): hi has enough trailing zeros that
/// `k·LN2_HI` is exact for every reachable `k`.
const LN2_HI_F64: f64 = 6.931_457_519_531_25e-1;
const LN2_LO_F64: f64 = 1.428_606_820_309_417_2e-6;
/// Cephes `exp` Padé numerator/denominator in `r²` (relative error
/// ~2e-17 on the reduced interval): `e^r = 1 + 2·px/(qx − px)` with
/// `px = r·P(r²)`, `qx = Q(r²)`.
#[allow(clippy::excessive_precision)] // canonical Cephes digits, kept verbatim
const P_F64: [f64; 3] = [
    1.261_771_930_748_105_9e-4,
    3.029_944_077_074_419_6e-2,
    9.999_999_999_999_999_9e-1,
];
const Q_F64: [f64; 4] = [
    3.001_985_051_386_644_6e-6,
    2.524_483_403_496_841e-3,
    2.272_655_482_081_550_3e-1,
    2.0,
];

/// One f64 lane of the vectorized `exp` — see [`exp_lane_f32`].
// max/min (not `clamp`) keeps NaN inputs finite through the bit
// manipulation below; the final select restores the NaN payload.
#[allow(clippy::manual_clamp)]
#[inline(always)]
fn exp_lane_f64(x: f64) -> f64 {
    let xc = x.max(LO_F64).min(HI_F64);
    let kf = (xc * std::f64::consts::LOG2_E + SHIFT_F64) - SHIFT_F64;
    let k = kf as i64;
    let r = kf.mul_add(-LN2_HI_F64, xc);
    let r = kf.mul_add(-LN2_LO_F64, r);
    let rr = r * r;
    let px = r * P_F64[0].mul_add(rr, P_F64[1]).mul_add(rr, P_F64[2]);
    let qx = Q_F64[0]
        .mul_add(rr, Q_F64[1])
        .mul_add(rr, Q_F64[2])
        .mul_add(rr, Q_F64[3]);
    let m = 2.0f64.mul_add(px / (qx - px), 1.0);
    let kh = k >> 1;
    let s1 = f64::from_bits(((kh + 1023) as u64) << 52);
    let s2 = f64::from_bits((((k - kh) + 1023) as u64) << 52);
    let v = (m * s1) * s2;
    if x.is_nan() {
        x
    } else {
        v
    }
}

/// Lane-batched transcendentals at a GEMM compute precision (`f32`/`f64`
/// — [`Scalar::Compute`] is bounded by this trait, so every generic
/// profile path gets the vectorized kernels without extra bounds at call
/// sites; bf16 profiles run at their f32 compute width).
pub trait VMath: Scalar {
    /// Lane width the batched kernels are tuned for (one 512-bit vector:
    /// 16 f32 / 8 f64 — the same widths as the GEMM microkernel `NR`).
    const LANES: usize;

    /// The polynomial `exp` for one lane — always the vectorized-path
    /// arithmetic, never libm, regardless of `EP2_PRECISE_MATH` (the ULP
    /// suite tests this directly against a correctly-rounded reference).
    fn exp_lane(self) -> Self;

    /// In-place batched `e^x` over a slice, honouring the
    /// [`precise_math`] switch. The bulk runs in [`VMath::LANES`]-wide
    /// chunks; the remainder tail runs the identical per-lane arithmetic,
    /// so results are bitwise independent of how callers segment a row.
    fn vexp(xs: &mut [Self]);

    /// Scalar `e^x` honouring the [`precise_math`] switch — what the
    /// batched path computes for a 1-element slice, bit for bit.
    #[inline]
    fn exp1(self) -> Self {
        if precise_math() {
            self.exp()
        } else {
            self.exp_lane()
        }
    }

    /// In-place batched `√x`. Hardware vector `sqrt` is correctly rounded
    /// (identical to libm lane by lane), so there is no polynomial path or
    /// mode switch — a bare loop autovectorizes.
    #[inline]
    fn vsqrt(xs: &mut [Self]) {
        for v in xs {
            *v = v.sqrt();
        }
    }
}

impl VMath for f32 {
    const LANES: usize = 16;

    #[inline(always)]
    fn exp_lane(self) -> Self {
        exp_lane_f32(self)
    }

    fn vexp(xs: &mut [Self]) {
        if precise_math() {
            for v in xs {
                *v = v.exp();
            }
            return;
        }
        let mut chunks = xs.chunks_exact_mut(16);
        for c in &mut chunks {
            let lanes: &mut [f32; 16] = c.try_into().unwrap();
            for v in lanes {
                *v = exp_lane_f32(*v);
            }
        }
        for v in chunks.into_remainder() {
            *v = exp_lane_f32(*v);
        }
    }
}

impl VMath for f64 {
    const LANES: usize = 8;

    #[inline(always)]
    fn exp_lane(self) -> Self {
        exp_lane_f64(self)
    }

    fn vexp(xs: &mut [Self]) {
        if precise_math() {
            for v in xs {
                *v = v.exp();
            }
            return;
        }
        let mut chunks = xs.chunks_exact_mut(8);
        for c in &mut chunks {
            let lanes: &mut [f64; 8] = c.try_into().unwrap();
            for v in lanes {
                *v = exp_lane_f64(*v);
            }
        }
        for v in chunks.into_remainder() {
            *v = exp_lane_f64(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_edges() {
        assert_eq!(exp_lane_f32(f32::NEG_INFINITY), 0.0);
        assert_eq!(exp_lane_f32(f32::INFINITY), f32::INFINITY);
        assert_eq!(exp_lane_f32(-1000.0), 0.0);
        assert_eq!(exp_lane_f32(1000.0), f32::INFINITY);
        assert_eq!(exp_lane_f32(0.0), 1.0);
        assert!(exp_lane_f32(f32::NAN).is_nan());
    }

    #[test]
    fn f64_edges() {
        assert_eq!(exp_lane_f64(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_lane_f64(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp_lane_f64(-1e6), 0.0);
        assert_eq!(exp_lane_f64(1e6), f64::INFINITY);
        assert_eq!(exp_lane_f64(0.0), 1.0);
        assert!(exp_lane_f64(f64::NAN).is_nan());
    }

    #[test]
    fn batch_matches_scalar_lane_with_tails() {
        // Any segmentation — including non-multiple-of-LANE tails — must
        // reproduce the per-lane arithmetic bit for bit.
        for len in [1usize, 7, 8, 9, 15, 16, 17, 33] {
            let xs: Vec<f64> = (0..len).map(|i| -0.37 * i as f64).collect();
            let mut batched = xs.clone();
            f64::vexp(&mut batched);
            for (b, x) in batched.iter().zip(&xs) {
                assert_eq!(b.to_bits(), exp_lane_f64(*x).to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn close_to_libm() {
        for i in -600..600 {
            let x = i as f64 * 0.25;
            let poly = exp_lane_f64(x);
            let libm = x.exp();
            let rel = ((poly - libm) / libm).abs();
            assert!(rel < 1e-15, "x = {x}: {poly} vs {libm}");
        }
    }
}
