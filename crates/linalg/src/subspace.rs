//! Randomized subspace iteration for top-`q` eigenpairs of a symmetric PSD
//! operator, generic over the element precision [`Scalar`].
//!
//! This is the large-`s` alternative to the dense solver in [`crate::eigen`]:
//! it only touches the operator through matrix–vector products
//! ([`crate::SymOp`]), so it scales to kernel operators that are expensive
//! to materialise. The algorithm is classic block power iteration with
//! Rayleigh–Ritz extraction (Halko–Martinsson–Tropp), with oversampling for
//! reliability.
//!
//! The block iterates live in `S` (the operator applications dominate the
//! cost and are where f32 speed matters); the small Rayleigh–Ritz
//! eigenproblem is solved in `f64`, and eigen*values* are returned in `f64`
//! (they feed the analytic step size).

use crate::eigen::sym_eig_f64;
use crate::qr::orthonormalize_columns;
use crate::scalar::Scalar;
use crate::{blas, LinalgError, Matrix, SymOp};

/// Configuration for [`top_q_eig`].
#[derive(Debug, Clone)]
pub struct SubspaceConfig {
    /// Extra columns carried beyond `q` for accuracy (default 8).
    pub oversample: usize,
    /// Number of power iterations (default 6; kernel matrices with fast
    /// spectral decay converge in 2–3).
    pub power_iters: usize,
    /// Seed for the random test matrix.
    pub seed: u64,
}

impl Default for SubspaceConfig {
    fn default() -> Self {
        SubspaceConfig {
            oversample: 8,
            power_iters: 6,
            seed: 0x5eed_5eed,
        }
    }
}

/// Computes the top `q` eigenpairs of a symmetric PSD operator.
///
/// Returns `(values, vectors)` with eigenvalues descending (in `f64`) and
/// `vectors` an `n x q` matrix in the operator's precision whose column `i`
/// is the eigenvector for `values[i]`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `q == 0` or `q > op.dim()`,
/// and propagates failures of the small dense eigensolve.
pub fn top_q_eig<S: Scalar, O: SymOp<S> + ?Sized>(
    op: &O,
    q: usize,
    config: &SubspaceConfig,
) -> Result<(Vec<f64>, Matrix<S>), LinalgError> {
    let n = op.dim();
    if q == 0 || q > n {
        return Err(LinalgError::InvalidArgument {
            message: format!("top_q_eig: q = {q} must be in 1..={n}"),
        });
    }
    let b = (q + config.oversample).min(n);

    // Gaussian test matrix via Box–Muller on a splitmix64 stream (keeps this
    // crate independent of `rand`).
    let mut state = config.seed;
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut next_gauss = move || {
        let u1 = ((next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let u2 = (next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let mut y: Matrix<S> = Matrix::from_fn(n, b, |_, _| S::from_f64(next_gauss()));

    // Orthonormalisation tolerance: the historical 1e-12 at double
    // precision (unchanged f64 behaviour), scaled to eps·1e4 for
    // wider-epsilon scalars — at f32 that is ~1.2e-3, absorbing the
    // O(sqrt(n)·eps) residual noise double Gram–Schmidt leaves in
    // numerically dependent power iterates.
    let ortho_tol = if S::EPSILON.to_f64() <= f64::EPSILON {
        1e-12
    } else {
        S::EPSILON.to_f64() * 1e4
    };

    // Power iterations with re-orthonormalisation each step (prevents the
    // block from collapsing onto the dominant eigenvector).
    let mut tmp_col = vec![S::ZERO; n];
    for _ in 0..=config.power_iters {
        orthonormalize_columns(&mut y, ortho_tol);
        let mut y_next = Matrix::zeros(n, b);
        for j in 0..b {
            let col = y.col(j);
            op.apply(&col, &mut tmp_col);
            y_next.set_col(j, &tmp_col);
        }
        y = y_next;
    }
    let rank = orthonormalize_columns(&mut y, ortho_tol);
    let rank = rank.max(1).min(b);

    // Rayleigh–Ritz: B = Q^T A Q on the retained basis.
    let mut aq = Matrix::zeros(n, rank);
    for j in 0..rank {
        let col = y.col(j);
        op.apply(&col, &mut tmp_col);
        aq.set_col(j, &tmp_col);
    }
    let q_basis = y.submatrix(0, 0, n, rank);
    let mut small = Matrix::zeros(rank, rank);
    blas::gemm_tn(S::ONE, &q_basis, &aq, S::ZERO, &mut small);
    small.symmetrize();
    let dec = sym_eig_f64(&small)?;

    let q_eff = q.min(rank);
    let (vals, small_vecs) = dec.top_q(q_eff);
    let vectors = blas::matmul(&q_basis, &small_vecs.cast::<S>());
    Ok((vals, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spectrum_matrix(n: usize, eigs: &[f64]) -> Matrix {
        // Build A = V diag(eigs,0,...) V^T with a deterministic orthonormal V
        // from orthonormalising a pseudo-random matrix.
        let mut v = Matrix::from_fn(n, n, |i, j| {
            let x = (i * 31 + j * 17 + 7) % 97;
            x as f64 / 97.0 - 0.5
        });
        orthonormalize_columns(&mut v, 1e-12);
        let mut d = vec![0.0; n];
        d[..eigs.len()].copy_from_slice(eigs);
        let lam = Matrix::from_diag(&d);
        let vl = blas::matmul(&v, &lam);
        let mut a = Matrix::zeros(n, n);
        blas::gemm_nt(1.0, &vl, &v, 0.0, &mut a);
        a.symmetrize();
        a
    }

    #[test]
    fn recovers_top_eigenvalues() {
        let a = spectrum_matrix(60, &[10.0, 5.0, 2.0, 1.0, 0.5]);
        let (vals, vecs) = top_q_eig(&a, 3, &SubspaceConfig::default()).unwrap();
        assert!((vals[0] - 10.0).abs() < 1e-6, "{vals:?}");
        assert!((vals[1] - 5.0).abs() < 1e-6);
        assert!((vals[2] - 2.0).abs() < 1e-6);
        assert_eq!(vecs.shape(), (60, 3));
    }

    #[test]
    fn f32_operator_recovers_top_eigenvalues() {
        let a = spectrum_matrix(40, &[8.0, 3.0, 1.0]);
        let a32: Matrix<f32> = a.cast();
        let (vals, vecs) = top_q_eig(&a32, 2, &SubspaceConfig::default()).unwrap();
        // f32 assembly limits accuracy to ~1e-5 relative; values still come
        // back through the f64 Rayleigh–Ritz solve.
        assert!((vals[0] - 8.0).abs() < 1e-3, "{vals:?}");
        assert!((vals[1] - 3.0).abs() < 1e-3);
        assert_eq!(vecs.shape(), (40, 2));
    }

    #[test]
    fn eigenvectors_satisfy_residual() {
        let a = spectrum_matrix(40, &[8.0, 3.0, 1.0]);
        let (vals, vecs) = top_q_eig(&a, 2, &SubspaceConfig::default()).unwrap();
        for (j, &val) in vals.iter().enumerate().take(2) {
            let v = vecs.col(j);
            let mut av = vec![0.0; 40];
            a.apply(&v, &mut av);
            let mut resid = av.clone();
            crate::ops::axpy(-val, &v, &mut resid);
            assert!(crate::ops::norm2(&resid) < 1e-6, "residual for pair {j}");
        }
    }

    #[test]
    fn handles_q_equal_dim() {
        let a = Matrix::from_diag(&[3.0, 2.0, 1.0]);
        let (vals, _) = top_q_eig(&a, 3, &SubspaceConfig::default()).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-8);
        assert!((vals[2] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rejects_bad_q() {
        let a: Matrix = Matrix::identity(4);
        assert!(top_q_eig(&a, 0, &SubspaceConfig::default()).is_err());
        assert!(top_q_eig(&a, 5, &SubspaceConfig::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = spectrum_matrix(30, &[4.0, 2.0]);
        let cfg = SubspaceConfig::default();
        let (v1, _) = top_q_eig(&a, 2, &cfg).unwrap();
        let (v2, _) = top_q_eig(&a, 2, &cfg).unwrap();
        assert_eq!(v1, v2);
    }
}
