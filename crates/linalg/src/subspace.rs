//! Randomized subspace iteration for top-`q` eigenpairs of a symmetric PSD
//! operator.
//!
//! This is the large-`s` alternative to the dense solver in [`crate::eigen`]:
//! it only touches the operator through matrix–vector products
//! ([`crate::SymOp`]), so it scales to kernel operators that are expensive
//! to materialise. The algorithm is classic block power iteration with
//! Rayleigh–Ritz extraction (Halko–Martinsson–Tropp), with oversampling for
//! reliability.

use crate::eigen::sym_eig;
use crate::qr::orthonormalize_columns;
use crate::{blas, LinalgError, Matrix, SymOp};

/// Configuration for [`top_q_eig`].
#[derive(Debug, Clone)]
pub struct SubspaceConfig {
    /// Extra columns carried beyond `q` for accuracy (default 8).
    pub oversample: usize,
    /// Number of power iterations (default 6; kernel matrices with fast
    /// spectral decay converge in 2–3).
    pub power_iters: usize,
    /// Seed for the random test matrix.
    pub seed: u64,
}

impl Default for SubspaceConfig {
    fn default() -> Self {
        SubspaceConfig {
            oversample: 8,
            power_iters: 6,
            seed: 0x5eed_5eed,
        }
    }
}

/// Computes the top `q` eigenpairs of a symmetric PSD operator.
///
/// Returns `(values, vectors)` with eigenvalues descending and `vectors` an
/// `n x q` matrix whose column `i` is the eigenvector for `values[i]`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `q == 0` or `q > op.dim()`,
/// and propagates failures of the small dense eigensolve.
pub fn top_q_eig(
    op: &dyn SymOp,
    q: usize,
    config: &SubspaceConfig,
) -> Result<(Vec<f64>, Matrix), LinalgError> {
    let n = op.dim();
    if q == 0 || q > n {
        return Err(LinalgError::InvalidArgument {
            message: format!("top_q_eig: q = {q} must be in 1..={n}"),
        });
    }
    let b = (q + config.oversample).min(n);

    // Gaussian test matrix via Box–Muller on a splitmix64 stream (keeps this
    // crate independent of `rand`).
    let mut state = config.seed;
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut next_gauss = move || {
        let u1 = ((next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let u2 = (next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let mut y = Matrix::from_fn(n, b, |_, _| next_gauss());

    // Power iterations with re-orthonormalisation each step (prevents the
    // block from collapsing onto the dominant eigenvector).
    let mut tmp_col = vec![0.0_f64; n];
    for _ in 0..=config.power_iters {
        orthonormalize_columns(&mut y, 1e-12);
        let mut y_next = Matrix::zeros(n, b);
        for j in 0..b {
            let col = y.col(j);
            op.apply(&col, &mut tmp_col);
            y_next.set_col(j, &tmp_col);
        }
        y = y_next;
    }
    let rank = orthonormalize_columns(&mut y, 1e-12);
    let rank = rank.max(1).min(b);

    // Rayleigh–Ritz: B = Q^T A Q on the retained basis.
    let mut aq = Matrix::zeros(n, rank);
    for j in 0..rank {
        let col = y.col(j);
        op.apply(&col, &mut tmp_col);
        aq.set_col(j, &tmp_col);
    }
    let q_basis = y.submatrix(0, 0, n, rank);
    let mut small = Matrix::zeros(rank, rank);
    blas::gemm_tn(1.0, &q_basis, &aq, 0.0, &mut small);
    small.symmetrize();
    let dec = sym_eig(&small)?;

    let q_eff = q.min(rank);
    let (vals, small_vecs) = dec.top_q(q_eff);
    let vectors = blas::matmul(&q_basis, &small_vecs);
    Ok((vals, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spectrum_matrix(n: usize, eigs: &[f64]) -> Matrix {
        // Build A = V diag(eigs,0,...) V^T with a deterministic orthonormal V
        // from orthonormalising a pseudo-random matrix.
        let mut v = Matrix::from_fn(n, n, |i, j| {
            let x = (i * 31 + j * 17 + 7) % 97;
            x as f64 / 97.0 - 0.5
        });
        orthonormalize_columns(&mut v, 1e-12);
        let mut d = vec![0.0; n];
        d[..eigs.len()].copy_from_slice(eigs);
        let lam = Matrix::from_diag(&d);
        let vl = blas::matmul(&v, &lam);
        let mut a = Matrix::zeros(n, n);
        blas::gemm_nt(1.0, &vl, &v, 0.0, &mut a);
        a.symmetrize();
        a
    }

    #[test]
    fn recovers_top_eigenvalues() {
        let a = spectrum_matrix(60, &[10.0, 5.0, 2.0, 1.0, 0.5]);
        let (vals, vecs) = top_q_eig(&a, 3, &SubspaceConfig::default()).unwrap();
        assert!((vals[0] - 10.0).abs() < 1e-6, "{vals:?}");
        assert!((vals[1] - 5.0).abs() < 1e-6);
        assert!((vals[2] - 2.0).abs() < 1e-6);
        assert_eq!(vecs.shape(), (60, 3));
    }

    #[test]
    fn eigenvectors_satisfy_residual() {
        let a = spectrum_matrix(40, &[8.0, 3.0, 1.0]);
        let (vals, vecs) = top_q_eig(&a, 2, &SubspaceConfig::default()).unwrap();
        for (j, &val) in vals.iter().enumerate().take(2) {
            let v = vecs.col(j);
            let mut av = vec![0.0; 40];
            a.apply(&v, &mut av);
            let mut resid = av.clone();
            crate::ops::axpy(-val, &v, &mut resid);
            assert!(crate::ops::norm2(&resid) < 1e-6, "residual for pair {j}");
        }
    }

    #[test]
    fn handles_q_equal_dim() {
        let a = Matrix::from_diag(&[3.0, 2.0, 1.0]);
        let (vals, _) = top_q_eig(&a, 3, &SubspaceConfig::default()).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-8);
        assert!((vals[2] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rejects_bad_q() {
        let a = Matrix::identity(4);
        assert!(top_q_eig(&a, 0, &SubspaceConfig::default()).is_err());
        assert!(top_q_eig(&a, 5, &SubspaceConfig::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = spectrum_matrix(30, &[4.0, 2.0]);
        let cfg = SubspaceConfig::default();
        let (v1, _) = top_q_eig(&a, 2, &cfg).unwrap();
        let (v2, _) = top_q_eig(&a, 2, &cfg).unwrap();
        assert_eq!(v1, v2);
    }
}
