//! Scoped-thread helpers used by the blocked BLAS routines and kernel-matrix
//! assembly.
//!
//! We deliberately avoid a global thread pool: the workloads here are large,
//! coarse-grained batches (GEMM row panels, kernel matrix row blocks), so
//! spawning scoped threads per call is cheap relative to the work and keeps
//! the crate dependency-light.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use, honouring the `EP2_NUM_THREADS`
/// environment variable (useful to pin benchmarks), otherwise the number of
/// available CPUs.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("EP2_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// Per-thread packing arena for the blocked GEMM (`crate::gemm`): one
    /// `(Vec<A-panel>, Vec<B-panel>)` pair per element type, grown on demand
    /// and reused across calls so steady-state GEMMs allocate nothing. On
    /// the worker threads spawned by [`for_each_chunk_mut`] the buffers are
    /// reused across every block of one call (threads are scoped per call);
    /// on the caller's thread — the single-threaded path — they persist for
    /// the life of the thread.
    static PACK_ARENA: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Borrows this thread's two reusable packing buffers, sized to at least
/// `a_len` / `b_len` elements, and runs `f` on them. The buffer contents are
/// unspecified on entry (packing overwrites every element it reads back).
///
/// # Panics
///
/// Panics if called re-entrantly from inside `f` on the same thread (the
/// arena is a single `RefCell` per thread).
pub fn with_pack_buffers<T, R, F>(a_len: usize, b_len: usize, f: F) -> R
where
    T: Copy + Default + 'static,
    F: FnOnce(&mut [T], &mut [T]) -> R,
{
    PACK_ARENA.with(|cell| {
        let mut map = cell.borrow_mut();
        let entry = map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new((Vec::<T>::new(), Vec::<T>::new())));
        let (a, b) = entry
            .downcast_mut::<(Vec<T>, Vec<T>)>()
            .expect("arena entry type keyed by TypeId");
        if a.len() < a_len {
            a.resize(a_len, T::default());
        }
        if b.len() < b_len {
            b.resize(b_len, T::default());
        }
        f(&mut a[..a_len], &mut b[..b_len])
    })
}

/// Splits `data` into contiguous chunks of at most `chunk_len` elements and
/// processes them on `num_threads()` scoped threads.
///
/// The closure receives `(start_index, chunk)` where `start_index` is the
/// offset of the chunk within `data`.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let threads = num_threads();
    if threads == 1 || data.len() <= chunk_len {
        for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(c * chunk_len, chunk);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let total_chunks = data.len().div_ceil(chunk_len);
    // Collect raw chunk descriptors up front so each worker can claim chunks
    // through the atomic counter (work stealing by index).
    let chunks: Vec<(usize, &mut [T])> = {
        let mut v = Vec::with_capacity(total_chunks);
        let mut rest = data;
        let mut off = 0;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            v.push((off, head));
            off += take;
            rest = tail;
        }
        v
    };
    // Wrap each chunk in a Mutex-free cell: each index is claimed exactly once.
    type ChunkCell<'a, T> = std::sync::Mutex<Option<(usize, &'a mut [T])>>;
    let cells: Vec<ChunkCell<'_, T>> = chunks
        .into_iter()
        .map(|c| std::sync::Mutex::new(Some(c)))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(total_chunks) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= cells.len() {
                    break;
                }
                let taken = cells[idx].lock().unwrap().take();
                if let Some((off, chunk)) = taken {
                    f(off, chunk);
                }
            });
        }
    });
}

/// Runs `f(i)` for every `i in 0..n` across `num_threads()` scoped threads,
/// claiming indices through an atomic counter.
pub fn for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Maps `f` over `0..n` in parallel and collects the results in order.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send + Default + Clone,
    F: Fn(usize) -> R + Sync,
{
    let mut out = vec![R::default(); n];
    {
        let slots: Vec<std::sync::Mutex<&mut R>> =
            out.iter_mut().map(std::sync::Mutex::new).collect();
        for_each_index(n, |i| {
            let mut slot = slots[i].lock().unwrap();
            **slot = f(i);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything() {
        let mut v = vec![0_usize; 1003];
        for_each_chunk_mut(&mut v, 64, |off, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = off + i;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn chunks_single_thread_path() {
        std::env::set_var("EP2_NUM_THREADS", "1");
        let mut v = vec![0_u8; 10];
        for_each_chunk_mut(&mut v, 3, |_, c| {
            for x in c {
                *x = 1;
            }
        });
        std::env::remove_var("EP2_NUM_THREADS");
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn for_each_index_counts() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        for_each_index(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn par_map_ordered() {
        let v = par_map(17, |i| i * i);
        assert_eq!(v[4], 16);
        assert_eq!(v.len(), 17);
    }

    #[test]
    fn num_threads_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn pack_buffers_sized_and_reused() {
        let ptr0 = with_pack_buffers::<f32, _, _>(100, 200, |a, b| {
            assert_eq!(a.len(), 100);
            assert_eq!(b.len(), 200);
            a[0] = 1.0;
            a.as_ptr() as usize
        });
        // A smaller request on the same thread reuses the same allocation.
        let ptr1 = with_pack_buffers::<f32, _, _>(50, 10, |a, b| {
            assert_eq!(a.len(), 50);
            assert_eq!(b.len(), 10);
            a.as_ptr() as usize
        });
        assert_eq!(ptr0, ptr1);
        // A different element type gets its own pair.
        with_pack_buffers::<f64, _, _>(8, 8, |a, b| {
            assert_eq!(a.len(), 8);
            assert_eq!(b.len(), 8);
        });
    }
}
