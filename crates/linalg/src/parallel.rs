//! Data-parallel helpers for the blocked BLAS routines and kernel-matrix
//! assembly, backed by the [`ep2_runtime`] persistent worker pool.
//!
//! Every entry point sizes itself from the runtime's thread-budget handle
//! ([`ep2_runtime::current_threads`]): a call made under
//! `ep2_runtime::with_budget(k, ..)` — e.g. inside a stream-producer stage
//! task — fans out across at most `k` threads, so nested parallelism stays
//! within the budget its caller was assigned instead of oversubscribing
//! the machine.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Number of worker threads the current context may use: the runtime's
/// active budget handle, resolved from `EP2_THREADS` (or the deprecated
/// `EP2_NUM_THREADS` alias) or the available CPUs when no handle is set.
pub fn num_threads() -> usize {
    ep2_runtime::current_threads()
}

thread_local! {
    /// Per-thread packing arena for the blocked GEMM (`crate::gemm`): one
    /// `(Vec<A-panel>, Vec<B-panel>)` pair per element type, grown on demand
    /// and reused across calls so steady-state GEMMs allocate nothing. The
    /// pool's workers are persistent, so the arenas now survive across GEMM
    /// calls on every thread, not just the caller's.
    static PACK_ARENA: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());

    /// Separate arena for the *shared* packed-B slab of the cooperative
    /// GEMM: the slab is borrowed for the whole block loop while the
    /// per-chunk tasks borrow [`PACK_ARENA`] for their A panels, so the two
    /// must not share a `RefCell`.
    static SLAB_ARENA: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

fn with_arena<T, R, F>(
    cell: &RefCell<HashMap<TypeId, Box<dyn Any>>>,
    a_len: usize,
    b_len: usize,
    f: F,
) -> R
where
    T: Copy + Default + 'static,
    F: FnOnce(&mut [T], &mut [T]) -> R,
{
    let mut map = cell.borrow_mut();
    let entry = map
        .entry(TypeId::of::<T>())
        .or_insert_with(|| Box::new((Vec::<T>::new(), Vec::<T>::new())));
    let (a, b) = entry
        .downcast_mut::<(Vec<T>, Vec<T>)>()
        .expect("arena entry type keyed by TypeId");
    if a.len() < a_len {
        a.resize(a_len, T::default());
    }
    if b.len() < b_len {
        b.resize(b_len, T::default());
    }
    f(&mut a[..a_len], &mut b[..b_len])
}

/// Borrows this thread's two reusable packing buffers, sized to at least
/// `a_len` / `b_len` elements, and runs `f` on them. The buffer contents are
/// unspecified on entry (packing overwrites every element it reads back).
///
/// # Panics
///
/// Panics if called re-entrantly from inside `f` on the same thread (the
/// arena is a single `RefCell` per thread).
pub fn with_pack_buffers<T, R, F>(a_len: usize, b_len: usize, f: F) -> R
where
    T: Copy + Default + 'static,
    F: FnOnce(&mut [T], &mut [T]) -> R,
{
    PACK_ARENA.with(|cell| with_arena(cell, a_len, b_len, f))
}

/// Borrows this thread's reusable shared-slab buffer (the cooperative
/// GEMM's packed-B block), sized to at least `len` elements. Distinct from
/// [`with_pack_buffers`] so a worker packing its A panel inside the slab's
/// borrow never re-enters the same `RefCell`.
///
/// # Panics
///
/// Panics if called re-entrantly from inside `f` on the same thread.
pub fn with_shared_slab<T, R, F>(len: usize, f: F) -> R
where
    T: Copy + Default + 'static,
    F: FnOnce(&mut [T]) -> R,
{
    SLAB_ARENA.with(|cell| with_arena(cell, len, 0, |slab, _| f(slab)))
}

/// `*mut T` that may be shared across the pool's workers; soundness comes
/// from the chunk math handing every worker a disjoint slice. (Accessed
/// through a method so closures capture the wrapper, not the raw field.)
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `data` into contiguous chunks of at most `chunk_len` elements and
/// processes them on the worker pool, up to [`num_threads`] participants
/// (the caller included).
///
/// The closure receives `(start_index, chunk)` where `start_index` is the
/// offset of the chunk within `data`.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = data.len();
    let threads = num_threads();
    if threads == 1 || len <= chunk_len {
        for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(c * chunk_len, chunk);
        }
        return;
    }
    let total_chunks = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    ep2_runtime::parallel_for(total_chunks, threads, |ci| {
        let start = ci * chunk_len;
        let take = chunk_len.min(len - start);
        // SAFETY: chunk `ci` covers exactly `[start, start + take)`; chunks
        // are disjoint and within `data`, and `parallel_for` joins before
        // `data`'s borrow ends.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), take) };
        f(start, chunk);
    });
}

/// Runs `f(i)` for every `i in 0..n` across up to [`num_threads`] pool
/// participants, claiming indices through the job's atomic cursor.
pub fn for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    ep2_runtime::parallel_for(n, num_threads(), f);
}

/// Maps `f` over `0..n` in parallel and collects the results in order.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send + Default + Clone,
    F: Fn(usize) -> R + Sync,
{
    let mut out = vec![R::default(); n];
    {
        let slots: Vec<std::sync::Mutex<&mut R>> =
            out.iter_mut().map(std::sync::Mutex::new).collect();
        for_each_index(n, |i| {
            let mut slot = slots[i].lock().unwrap();
            **slot = f(i);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn chunks_cover_everything() {
        let mut v = vec![0_usize; 1003];
        for_each_chunk_mut(&mut v, 64, |off, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = off + i;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn chunks_single_thread_path() {
        ep2_runtime::with_budget(1, || {
            let mut v = vec![0_u8; 10];
            for_each_chunk_mut(&mut v, 3, |_, c| {
                for x in c {
                    *x = 1;
                }
            });
            assert!(v.iter().all(|&x| x == 1));
        });
    }

    #[test]
    fn chunks_under_explicit_budget() {
        ep2_runtime::with_budget(3, || {
            let mut v = vec![0_u32; 501];
            for_each_chunk_mut(&mut v, 16, |off, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = (off + i) as u32;
                }
            });
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(x, i as u32);
            }
        });
    }

    #[test]
    fn for_each_index_counts() {
        let sum = AtomicU64::new(0);
        for_each_index(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn par_map_ordered() {
        let v = par_map(17, |i| i * i);
        assert_eq!(v[4], 16);
        assert_eq!(v.len(), 17);
    }

    #[test]
    fn num_threads_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn num_threads_follows_budget_handle() {
        ep2_runtime::with_budget(2, || assert_eq!(num_threads(), 2));
    }

    #[test]
    fn pack_buffers_sized_and_reused() {
        let ptr0 = with_pack_buffers::<f32, _, _>(100, 200, |a, b| {
            assert_eq!(a.len(), 100);
            assert_eq!(b.len(), 200);
            a[0] = 1.0;
            a.as_ptr() as usize
        });
        // A smaller request on the same thread reuses the same allocation.
        let ptr1 = with_pack_buffers::<f32, _, _>(50, 10, |a, b| {
            assert_eq!(a.len(), 50);
            assert_eq!(b.len(), 10);
            a.as_ptr() as usize
        });
        assert_eq!(ptr0, ptr1);
        // A different element type gets its own pair.
        with_pack_buffers::<f64, _, _>(8, 8, |a, b| {
            assert_eq!(a.len(), 8);
            assert_eq!(b.len(), 8);
        });
    }

    #[test]
    fn shared_slab_is_independent_of_pack_arena() {
        // The slab may be held while a pack-buffer borrow happens on the
        // same thread — this nesting is exactly the cooperative GEMM's
        // caller-runs-a-chunk case.
        with_shared_slab::<f64, _, _>(64, |slab| {
            assert_eq!(slab.len(), 64);
            with_pack_buffers::<f64, _, _>(16, 0, |a, _| {
                assert_eq!(a.len(), 16);
            });
        });
    }
}
