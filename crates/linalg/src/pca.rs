//! Principal component analysis.
//!
//! The paper reduces 1536-dimensional ImageNet convolutional features to
//! their top 500 PCA components ("Dimensionality reduction by PCA",
//! Section 5.5) with a sub-0.2% accuracy cost. This module implements the
//! fit/transform pair over the covariance eigendecomposition.

use crate::eigen::sym_eig;
use crate::{blas, LinalgError, Matrix};

/// A fitted PCA model: mean vector plus the top-`k` principal directions.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `d x k`, columns are principal directions (descending variance).
    components: Matrix,
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a PCA with `k` components to the rows of `data` (`n x d`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `k == 0`, `k > d`, or
    /// `data` has no rows, and propagates eigensolver failures.
    pub fn fit(data: &Matrix, k: usize) -> Result<Self, LinalgError> {
        let (n, d) = data.shape();
        if n == 0 {
            return Err(LinalgError::InvalidArgument {
                message: "pca: data has no rows".to_string(),
            });
        }
        if k == 0 || k > d {
            return Err(LinalgError::InvalidArgument {
                message: format!("pca: k = {k} must be in 1..={d}"),
            });
        }
        // Column means.
        let mut mean = vec![0.0_f64; d];
        for i in 0..n {
            crate::ops::axpy(1.0, data.row(i), &mut mean);
        }
        crate::ops::scal(1.0 / n as f64, &mut mean);

        // Centered covariance C = X_c^T X_c / n (d x d).
        let mut centered = data.clone();
        for i in 0..n {
            let row = centered.row_mut(i);
            for (v, m) in row.iter_mut().zip(&mean) {
                *v -= m;
            }
        }
        let mut cov = Matrix::zeros(d, d);
        blas::gemm_tn(1.0 / n as f64, &centered, &centered, 0.0, &mut cov);
        cov.symmetrize();

        let dec = sym_eig(&cov)?;
        let (vals, vecs) = dec.top_q(k);
        Ok(Pca {
            mean,
            components: vecs,
            explained_variance: vals,
        })
    }

    /// Number of components `k`.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Input dimensionality `d`.
    pub fn input_dim(&self) -> usize {
        self.components.rows()
    }

    /// Per-component explained variance (descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by the retained components, given
    /// the total variance of the training data.
    pub fn explained_ratio(&self, total_variance: f64) -> f64 {
        if total_variance <= 0.0 {
            return 1.0;
        }
        self.explained_variance.iter().sum::<f64>() / total_variance
    }

    /// Projects rows of `data` (`n x d`) onto the principal directions,
    /// returning an `n x k` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.cols() != self.input_dim()`.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.cols(),
            self.input_dim(),
            "pca transform: dimension mismatch"
        );
        let mut centered = data.clone();
        for i in 0..data.rows() {
            let row = centered.row_mut(i);
            for (v, m) in row.iter_mut().zip(&self.mean) {
                *v -= m;
            }
        }
        blas::matmul(&centered, &self.components)
    }

    /// Maps projected points back to the original space (approximate inverse
    /// of [`Pca::transform`]).
    ///
    /// # Panics
    ///
    /// Panics if `proj.cols() != self.n_components()`.
    pub fn inverse_transform(&self, proj: &Matrix) -> Matrix {
        assert_eq!(proj.cols(), self.n_components());
        let mut out = Matrix::zeros(proj.rows(), self.input_dim());
        blas::gemm_nt(1.0, proj, &self.components, 0.0, &mut out);
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (v, m) in row.iter_mut().zip(&self.mean) {
                *v += m;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data concentrated along the direction (1, 1)/sqrt(2) in 2-D.
    fn line_data(n: usize) -> Matrix {
        Matrix::from_fn(n, 2, |i, j| {
            let t = i as f64 / n as f64 * 10.0 - 5.0;
            let noise = ((i * 7919 + j * 104729) % 1000) as f64 / 1000.0 - 0.5;
            t + 0.01 * noise
        })
    }

    #[test]
    fn finds_dominant_direction() {
        let data = line_data(200);
        let pca = Pca::fit(&data, 1).unwrap();
        let dir = pca.components.col(0);
        // Direction is (1,1)/sqrt(2) up to sign.
        let expect = std::f64::consts::FRAC_1_SQRT_2;
        assert!((dir[0].abs() - expect).abs() < 1e-2, "{dir:?}");
        assert!((dir[0] - dir[1]).abs() < 1e-2);
    }

    #[test]
    fn explained_variance_descending() {
        let data = line_data(100);
        let pca = Pca::fit(&data, 2).unwrap();
        let ev = pca.explained_variance();
        assert!(ev[0] >= ev[1]);
        assert!(ev[0] > 1.0); // dominant direction has large variance
        assert!(ev[1] < 1e-3); // noise direction is tiny
    }

    #[test]
    fn transform_dimensions_and_centering() {
        let data = line_data(50);
        let pca = Pca::fit(&data, 1).unwrap();
        let proj = pca.transform(&data);
        assert_eq!(proj.shape(), (50, 1));
        // Projections of centered data have ~zero mean.
        let mean: f64 = proj.col(0).iter().sum::<f64>() / 50.0;
        assert!(mean.abs() < 1e-10);
    }

    #[test]
    fn round_trip_on_low_rank_data() {
        let data = line_data(80);
        let pca = Pca::fit(&data, 1).unwrap();
        let rec = pca.inverse_transform(&pca.transform(&data));
        // Data is essentially rank-1, so reconstruction is near-exact.
        for i in 0..80 {
            for j in 0..2 {
                assert!((rec[(i, j)] - data[(i, j)]).abs() < 0.02);
            }
        }
    }

    #[test]
    fn rejects_bad_k() {
        let data = line_data(10);
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 3).is_err());
        assert!(Pca::fit(&Matrix::zeros(0, 2), 1).is_err());
    }
}
