//! # ep2-linalg — dense linear algebra substrate for the EigenPro 2.0 reproduction
//!
//! This crate provides everything the kernel-machine stack needs from linear
//! algebra, implemented from scratch with no external BLAS/LAPACK:
//!
//! - [`Matrix`]: a dense, row-major, `f64` matrix with cache-friendly access.
//! - [`blas`]: level-1/2/3 routines — `dot`, `axpy`, [`blas::gemv`], and a
//!   blocked, multi-threaded [`blas::gemm`].
//! - [`eigen`]: a dense symmetric eigensolver (Householder tridiagonalisation
//!   followed by implicit-shift QL), the workhorse for Nyström subsample
//!   eigensystems.
//! - [`lanczos`] and [`subspace`]: iterative top-`q` eigensolvers for large
//!   symmetric operators (Lanczos with full reorthogonalisation, and
//!   randomized subspace iteration).
//! - [`cholesky`]: Cholesky factorisation and triangular solves (used by the
//!   FALKON baseline and the exact interpolation solver).
//! - [`pca`]: principal component analysis (the paper reduces ImageNet
//!   features to their top PCA components).
//!
//! # Example
//!
//! ```
//! use ep2_linalg::{Matrix, blas};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let mut c = Matrix::zeros(2, 2);
//! blas::gemm(1.0, &a, &b, 0.0, &mut c);
//! assert_eq!(c, a);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod matrix;

pub mod blas;
pub mod cholesky;
pub mod eigen;
pub mod lanczos;
pub mod ops;
pub mod parallel;
pub mod pca;
pub mod qr;
pub mod subspace;

pub use error::LinalgError;
pub use matrix::Matrix;

/// A symmetric linear operator `y = A x` on `R^n`.
///
/// Iterative eigensolvers ([`lanczos`], [`subspace`]) only touch the operator
/// through matrix–vector products, so large kernel matrices never need to be
/// materialised.
pub trait SymOp {
    /// Dimension `n` of the operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != self.dim()` or
    /// `y.len() != self.dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl SymOp for Matrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows(), self.cols(), "SymOp requires a square matrix");
        self.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        blas::gemv(1.0, self, x, 0.0, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symop() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let x = [1.0, 1.0];
        let mut y = [0.0, 0.0];
        a.apply(&x, &mut y);
        assert_eq!(y, [3.0, 3.0]);
    }
}
