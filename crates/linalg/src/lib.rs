//! # ep2-linalg — dense linear algebra substrate for the EigenPro 2.0 reproduction
//!
//! This crate provides everything the kernel-machine stack needs from linear
//! algebra, implemented from scratch with no external BLAS/LAPACK, and
//! **generic over the element precision** via the [`Scalar`] trait
//! (`f32`/`f64`):
//!
//! - [`Scalar`]: the precision abstraction. Hot paths compute natively in
//!   the chosen precision; error-sensitive reductions and eigensolves carry
//!   a higher-precision accumulator ([`Scalar::Accum`]).
//! - [`Matrix`]: a dense, row-major matrix (`Matrix<S>`, default `f64`) with
//!   cache-friendly access.
//! - [`blas`]: level-1/2/3 routines — `dot`, `axpy`, a register-blocked
//!   [`blas::gemv`], and the packed cache-tiled [`blas::gemm`] family.
//! - [`gemm`]: the BLIS-style blocked GEMM engine behind [`blas`] — packed
//!   `MC/KC/NC` panels driving the per-precision `MR x NR` register
//!   microkernels ([`Scalar::microkernel`]: 6x16 at `f32`, 8x8 at `f64`).
//! - [`eigen`]: a dense symmetric eigensolver (Householder tridiagonalisation
//!   followed by implicit-shift QL), the workhorse for Nyström subsample
//!   eigensystems — always solved in `f64` internally.
//! - [`lanczos`] and [`subspace`]: iterative top-`q` eigensolvers for large
//!   symmetric operators (Lanczos with full reorthogonalisation, and
//!   randomized subspace iteration).
//! - [`cholesky`]: Cholesky factorisation and triangular solves (used by the
//!   FALKON baseline and the exact interpolation solver).
//! - [`pca`]: principal component analysis (the paper reduces ImageNet
//!   features to their top PCA components).
//!
//! # Example
//!
//! ```
//! use ep2_linalg::{Matrix, blas};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let mut c = Matrix::zeros(2, 2);
//! blas::gemm(1.0, &a, &b, 0.0, &mut c);
//! assert_eq!(c, a);
//!
//! // The same routines, single precision:
//! let a32: Matrix<f32> = a.cast();
//! let c32 = blas::matmul(&a32, &Matrix::<f32>::identity(2));
//! assert_eq!(c32, a32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod matrix;
mod scalar;

pub mod blas;
pub mod cholesky;
pub mod eigen;
pub mod gemm;
pub mod lanczos;
pub mod ops;
pub mod parallel;
pub mod pca;
pub mod qr;
pub mod subspace;
pub mod vmath;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use scalar::{cast_slice, Bf16, Scalar};

/// A symmetric linear operator `y = A x` on `R^n` over scalars `S`
/// (default `f64`, so existing `dyn SymOp` bounds keep their meaning).
///
/// Iterative eigensolvers ([`lanczos`], [`subspace`]) only touch the operator
/// through matrix–vector products, so large kernel matrices never need to be
/// materialised.
pub trait SymOp<S: Scalar = f64> {
    /// Dimension `n` of the operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != self.dim()` or
    /// `y.len() != self.dim()`.
    fn apply(&self, x: &[S], y: &mut [S]);
}

impl<S: Scalar> SymOp<S> for Matrix<S> {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows(), self.cols(), "SymOp requires a square matrix");
        self.rows()
    }

    fn apply(&self, x: &[S], y: &mut [S]) {
        blas::gemv(S::ONE, self, x, S::ZERO, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symop() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let x = [1.0, 1.0];
        let mut y = [0.0, 0.0];
        a.apply(&x, &mut y);
        assert_eq!(y, [3.0, 3.0]);
    }

    #[test]
    fn f32_matrix_is_symop() {
        let a: Matrix<f32> = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).cast();
        let x = [1.0_f32, 1.0];
        let mut y = [0.0_f32, 0.0];
        a.apply(&x, &mut y);
        assert_eq!(y, [3.0_f32, 3.0]);
    }
}
