use std::error::Error;
use std::fmt;

/// Errors produced by `ep2-linalg` routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shapes.
        expected: String,
        /// Human-readable description of the shapes that were supplied.
        found: String,
    },
    /// A matrix that must be positive definite was not (e.g. Cholesky hit a
    /// non-positive pivot).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// An argument was outside its valid range.
    InvalidArgument {
        /// Description of the violated requirement.
        message: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge within {iterations} iterations"
                )
            }
            LinalgError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = LinalgError::NotPositiveDefinite { pivot: 3 };
        let s = e.to_string();
        assert!(s.contains("pivot 3"));
        assert!(s.starts_with("matrix"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
