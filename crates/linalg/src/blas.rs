//! Level-2/3 dense routines: register-blocked `gemv`, packed cache-tiled
//! `gemm`, and the transpose-product variants the rest of the stack needs —
//! generic over the element precision [`Scalar`].
//!
//! All matrices are row-major [`Matrix`] values. Every matrix product
//! (`gemm`, [`gemm_tn`], [`gemm_nt`]) runs through the BLIS-style packed
//! engine in [`crate::gemm`]: operands are packed once into L1/L2-sized
//! zero-padded panels (`MC/KC/NC` blocking) and consumed by an `MR x NR`
//! register microkernel (6x16 lanes at `f32`, 8x8 at `f64` — see
//! [`Scalar::microkernel`]), with the rows of `C` striped over scoped
//! threads. That register tile is what makes the device simulator's cost
//! model (`flops = 2 m k n`) an honest description of this code: measured on
//! the dev container (see `BENCH_gemm.json`) the packed f32 kernel sustains
//! ~77 Gflop/s at 4096² — 7.4x the seed axpy GEMM it replaced and ~2.3x the
//! packed f64 rate — which is where the paper's single-precision speedup
//! comes from on CPU.
//!
//! The seed `i-k-j` axpy implementation is kept as [`gemm_axpy`] — it is the
//! baseline the benches compare against and a second reference for the
//! property tests.

use crate::gemm::{gemm_auto, gemm_auto_epilogue, Epilogue, View};
use crate::ops;
use crate::parallel;
use crate::scalar::Scalar;
use crate::Matrix;

/// `y <- alpha * A x + beta * y`, register-blocked over 4-row panels of `A`
/// (the row-panel analogue of the GEMM microkernel: four dot products share
/// each streamed chunk of `x`, quadrupling its register reuse and keeping
/// four independent vector accumulator chains in flight). `A` itself is
/// streamed exactly once, so — unlike GEMM — packing it would only add
/// traffic; the panel kernel reads the row-major storage directly.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn gemv<S: Scalar>(alpha: S, a: &Matrix<S>, x: &[S], beta: S, y: &mut [S]) {
    assert_eq!(x.len(), a.cols(), "gemv: x length mismatch");
    assert_eq!(y.len(), a.rows(), "gemv: y length mismatch");
    let k = a.cols();
    let mut panels = y.chunks_exact_mut(4);
    let mut i0 = 0;
    for y4 in panels.by_ref() {
        let r = |i: usize| a.row(i0 + i);
        let (r0, r1, r2, r3) = (r(0), r(1), r(2), r(3));
        // Four dots at once, each with a 4-lane accumulator.
        let mut acc = [[S::ZERO; 4]; 4];
        let chunks = k / 4;
        for c in 0..chunks {
            let p = c * 4;
            let xc = &x[p..p + 4];
            for (row, accr) in [r0, r1, r2, r3].iter().zip(acc.iter_mut()) {
                let rc = &row[p..p + 4];
                for l in 0..4 {
                    accr[l] += rc[l] * xc[l];
                }
            }
        }
        for (yi, (row, accr)) in y4
            .iter_mut()
            .zip([r0, r1, r2, r3].iter().zip(acc.iter_mut()))
        {
            let mut tail = S::ZERO;
            for p in chunks * 4..k {
                tail += row[p] * x[p];
            }
            let dot = (accr[0] + accr[1]) + (accr[2] + accr[3]) + tail;
            *yi = alpha * dot + beta * *yi;
        }
        i0 += 4;
    }
    for (i, yi) in panels.into_remainder().iter_mut().enumerate() {
        let row_dot = ops::dot(a.row(i0 + i), x);
        *yi = alpha * row_dot + beta * *yi;
    }
}

/// `y <- alpha * A^T x + beta * y`, column-panel blocked: rows of `A` are
/// consumed four at a time so each pass over `y` applies four fused axpys
/// (4x less `y` load/store traffic than row-at-a-time). The `beta` scaling
/// is never a separate sweep: it is skipped outright when `beta == 1` and
/// otherwise fused into the first update pass over `y`.
///
/// # Panics
///
/// Panics if `x.len() != a.rows()` or `y.len() != a.cols()`.
pub fn gemv_t<S: Scalar>(alpha: S, a: &Matrix<S>, x: &[S], beta: S, y: &mut [S]) {
    assert_eq!(x.len(), a.rows(), "gemv_t: x length mismatch");
    assert_eq!(y.len(), a.cols(), "gemv_t: y length mismatch");
    let m = a.rows();
    let mut i0 = 0;
    let w0 = if m > 0 { alpha * x[0] } else { S::ZERO };
    if beta != S::ONE {
        if w0 == S::ZERO {
            crate::gemm::scale_stripe(y, beta);
            i0 = m.min(1); // row 0 (if any) contributes nothing
        } else {
            // Fuse the scale into the first axpy: one pass computes
            // y <- beta*y + w0*row0 (a plain overwrite when beta == 0).
            let row0 = a.row(0);
            if beta == S::ZERO {
                for (yv, &av) in y.iter_mut().zip(row0) {
                    *yv = w0 * av;
                }
            } else {
                for (yv, &av) in y.iter_mut().zip(row0) {
                    *yv = beta * *yv + w0 * av;
                }
            }
            i0 = 1;
        }
    }
    if alpha == S::ZERO {
        return;
    }
    // Four fused row-updates per pass over y.
    while i0 + 4 <= m {
        let w: [S; 4] = [
            alpha * x[i0],
            alpha * x[i0 + 1],
            alpha * x[i0 + 2],
            alpha * x[i0 + 3],
        ];
        if w.contains(&S::ZERO) {
            // Preserve the exact skip-zero-weight semantics of the scalar
            // path (0 * non-finite would otherwise inject NaNs).
            for (di, &wi) in w.iter().enumerate() {
                if wi != S::ZERO {
                    ops::axpy(wi, a.row(i0 + di), y);
                }
            }
        } else {
            let (r0, r1, r2, r3) = (a.row(i0), a.row(i0 + 1), a.row(i0 + 2), a.row(i0 + 3));
            for (j, yv) in y.iter_mut().enumerate() {
                *yv += w[0] * r0[j] + w[1] * r1[j] + w[2] * r2[j] + w[3] * r3[j];
            }
        }
        i0 += 4;
    }
    for (i, &xi) in x.iter().enumerate().skip(i0) {
        let w = alpha * xi;
        if w != S::ZERO {
            ops::axpy(w, a.row(i), y);
        }
    }
}

/// `C <- alpha * A B + beta * C` through the packed register-blocked engine
/// ([`crate::gemm`]), multi-threaded over MR-aligned row stripes of `C`.
///
/// # Panics
///
/// Panics if the shapes are incompatible
/// (`a.cols() != b.rows()`, `c.shape() != (a.rows(), b.cols())`).
pub fn gemm<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "gemm: C row mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm: C col mismatch");
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    gemm_auto(
        alpha,
        View::row_major(a.as_slice(), m, k),
        View::row_major(b.as_slice(), k, n),
        beta,
        c.as_mut_slice(),
    );
}

/// The seed `i-k-j` axpy GEMM (`C <- alpha * A B + beta * C`), kept as the
/// measured baseline for the packed engine and as a second reference
/// implementation for the property tests. Parallel over row panels of `C`;
/// no packing, no register blocking — each row of `C` re-streams all of `B`.
///
/// # Panics
///
/// Same shape requirements as [`gemm`].
pub fn gemm_axpy<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "gemm: C row mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm: C col mismatch");
    let (k, n) = (a.cols(), b.cols());
    if a.rows() == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if beta != S::ONE {
            for v in c.as_mut_slice() {
                *v *= beta;
            }
        }
        return;
    }
    // Panel of rows per task: big enough to amortise spawn cost, small enough
    // to balance load.
    let panel = (a.rows().div_ceil(parallel::num_threads() * 4)).clamp(8, 256);
    let chunk_len = panel * n;
    let b_data = b.as_slice();
    parallel::for_each_chunk_mut(c.as_mut_slice(), chunk_len, |off, c_chunk| {
        let row0 = off / n;
        let rows_here = c_chunk.len() / n;
        for (local_i, c_row) in c_chunk.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            if beta == S::ZERO {
                c_row.fill(S::ZERO);
            } else if beta != S::ONE {
                for v in c_row.iter_mut() {
                    *v *= beta;
                }
            }
            let a_row = a.row(i);
            // i-k-j: stream row p of B, accumulate into row i of C.
            for (p, &aip) in a_row.iter().enumerate() {
                let w = alpha * aip;
                if w != S::ZERO {
                    let b_row = &b_data[p * n..(p + 1) * n];
                    ops::axpy(w, b_row, c_row);
                }
            }
        }
        debug_assert_eq!(rows_here * n, c_chunk.len());
    });
}

/// Convenience product `A B` allocating the result.
pub fn matmul<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(S::ONE, a, b, S::ZERO, &mut c);
    c
}

/// `C <- alpha * A^T B + beta * C` without materialising `A^T`: the packed
/// engine reads `A` through a transposed (stride-swapped) view, so the
/// transpose costs nothing beyond the packing pass every operand already
/// pays.
///
/// # Panics
///
/// Panics if the shapes are incompatible
/// (`a.rows() != b.rows()`, `c.shape() != (a.cols(), b.cols())`).
pub fn gemm_tn<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    assert_eq!(a.rows(), b.rows(), "gemm_tn: inner dimension mismatch");
    assert_eq!(c.rows(), a.cols(), "gemm_tn: C row mismatch");
    assert_eq!(c.cols(), b.cols(), "gemm_tn: C col mismatch");
    gemm_auto(
        alpha,
        View::transposed(a.as_slice(), a.rows(), a.cols()),
        View::row_major(b.as_slice(), b.rows(), b.cols()),
        beta,
        c.as_mut_slice(),
    );
}

/// `C <- alpha * A B^T + beta * C` without materialising `B^T` (stride-swap
/// at packing time, like [`gemm_tn`] — this is the `-2 A B^T` cross-term of
/// every kernel-matrix assembly).
///
/// # Panics
///
/// Panics if the shapes are incompatible
/// (`a.cols() != b.cols()`, `c.shape() != (a.rows(), b.rows())`).
pub fn gemm_nt<S: Scalar>(alpha: S, a: &Matrix<S>, b: &Matrix<S>, beta: S, c: &mut Matrix<S>) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt: inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "gemm_nt: C row mismatch");
    assert_eq!(c.cols(), b.rows(), "gemm_nt: C col mismatch");
    gemm_auto(
        alpha,
        View::row_major(a.as_slice(), a.rows(), a.cols()),
        View::transposed(b.as_slice(), b.rows(), b.cols()),
        beta,
        c.as_mut_slice(),
    );
}

/// [`gemm_nt`] with a fused write-back epilogue
/// ([`Epilogue`]): each fully-accumulated entry is
/// handed to `epi` at [`Scalar::Compute`] width — while its register tile
/// is still cache-hot — instead of being stored directly. This is the entry
/// point kernel assembly uses to apply the radial profile inside the
/// `-2 A B^T` cross-term product's write-back, collapsing assembly from two
/// memory sweeps per tile to one; see [`crate::gemm::Epilogue`] for the
/// exactness contract (fused ≡ plain-GEMM-then-map, bit for bit).
///
/// # Panics
///
/// Panics if the shapes are incompatible
/// (`a.cols() != b.cols()`, `c.shape() != (a.rows(), b.rows())`).
pub fn gemm_nt_epilogue<S: Scalar, E: Epilogue<S>>(
    alpha: S,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: S,
    c: &mut Matrix<S>,
    epi: &E,
) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt: inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "gemm_nt: C row mismatch");
    assert_eq!(c.cols(), b.rows(), "gemm_nt: C col mismatch");
    gemm_auto_epilogue(
        alpha,
        View::row_major(a.as_slice(), a.rows(), a.cols()),
        View::transposed(b.as_slice(), b.rows(), b.cols()),
        beta,
        c.as_mut_slice(),
        epi,
    );
}

/// Outer-product update `A <- A + alpha * x y^T` (BLAS `ger`).
///
/// # Panics
///
/// Panics if `x.len() != a.rows()` or `y.len() != a.cols()`.
pub fn ger<S: Scalar>(alpha: S, x: &[S], y: &[S], a: &mut Matrix<S>) {
    assert_eq!(x.len(), a.rows(), "ger: x length mismatch");
    assert_eq!(y.len(), a.cols(), "ger: y length mismatch");
    for (i, &xi) in x.iter().enumerate() {
        let w = alpha * xi;
        if w != S::ZERO {
            ops::axpy(w, y, a.row_mut(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn test_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        // Simple deterministic LCG fill; no rand dependency needed here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(r, c, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn gemv_identity() {
        let a: Matrix = Matrix::identity(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = [0.0; 5];
        gemv(1.0, &a, &x, 0.0, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn gemv_alpha_beta() {
        let a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let mut y = [10.0];
        gemv(2.0, &a, &[1.0, 2.0], 3.0, &mut y);
        assert_eq!(y, [36.0]); // 2*3 + 3*10
    }

    #[test]
    fn gemv_t_matches_transpose() {
        let a = test_matrix(7, 4, 3);
        let x: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let mut y1 = vec![0.0; 4];
        gemv_t(1.0, &a, &x, 0.0, &mut y1);
        let at = a.transpose();
        let mut y2 = vec![0.0; 4];
        gemv(1.0, &at, &x, 0.0, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_matches_naive() {
        let a = test_matrix(33, 17, 1);
        let b = test_matrix(17, 29, 2);
        let c = matmul(&a, &b);
        let c_ref = naive_matmul(&a, &b);
        for i in 0..c.rows() {
            for j in 0..c.cols() {
                assert!((c[(i, j)] - c_ref[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_large_parallel_matches_naive() {
        let a = test_matrix(301, 64, 5);
        let b = test_matrix(64, 77, 6);
        let c = matmul(&a, &b);
        let c_ref = naive_matmul(&a, &b);
        let diff = (0..c.rows())
            .flat_map(|i| (0..c.cols()).map(move |j| (i, j)))
            .map(|(i, j)| (c[(i, j)] - c_ref[(i, j)]).abs())
            .fold(0.0_f64, f64::max);
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn gemm_f32_close_to_f64() {
        let a = test_matrix(24, 31, 8);
        let b = test_matrix(31, 19, 9);
        let c64 = matmul(&a, &b);
        let c32 = matmul(&a.cast::<f32>(), &b.cast::<f32>());
        for i in 0..24 {
            for j in 0..19 {
                // 31-term f32 accumulation of O(1) entries: error well below
                // k·eps_f32 ≈ 4e-6 relative.
                assert!((c32[(i, j)] as f64 - c64[(i, j)]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_beta_accumulates() {
        let a: Matrix = Matrix::identity(3);
        let b: Matrix = Matrix::identity(3);
        let mut c = Matrix::filled(3, 3, 1.0);
        gemm(2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c[(0, 0)], 2.5);
        assert_eq!(c[(0, 1)], 0.5);
    }

    #[test]
    fn gemm_zero_inner_dim_scales_c() {
        let a: Matrix = Matrix::zeros(2, 0);
        let b: Matrix = Matrix::zeros(0, 2);
        let mut c = Matrix::filled(2, 2, 4.0);
        gemm(1.0, &a, &b, 0.25, &mut c);
        assert_eq!(c[(1, 1)], 1.0);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = test_matrix(19, 6, 7);
        let b = test_matrix(19, 8, 8);
        let mut c = Matrix::zeros(6, 8);
        gemm_tn(1.0, &a, &b, 0.0, &mut c);
        let c_ref = naive_matmul(&a.transpose(), &b);
        for i in 0..6 {
            for j in 0..8 {
                assert!((c[(i, j)] - c_ref[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let a = test_matrix(9, 6, 9);
        let b = test_matrix(11, 6, 10);
        let mut c = Matrix::zeros(9, 11);
        gemm_nt(1.0, &a, &b, 0.0, &mut c);
        let c_ref = naive_matmul(&a, &b.transpose());
        for i in 0..9 {
            for j in 0..11 {
                assert!((c[(i, j)] - c_ref[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn ger_rank_one() {
        let mut a: Matrix = Matrix::zeros(2, 3);
        ger(2.0, &[1.0, 2.0], &[1.0, 0.0, 1.0], &mut a);
        assert_eq!(a.row(0), &[2.0, 0.0, 2.0]);
        assert_eq!(a.row(1), &[4.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn gemm_shape_mismatch_panics() {
        let a: Matrix = Matrix::zeros(2, 3);
        let b: Matrix = Matrix::zeros(2, 3);
        let mut c = Matrix::zeros(2, 3);
        gemm(1.0, &a, &b, 0.0, &mut c);
    }
}
