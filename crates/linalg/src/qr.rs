//! Thin orthonormalisation used by the iterative eigensolvers, generic over
//! the element precision [`Scalar`].
//!
//! [`orthonormalize_columns`] runs modified Gram–Schmidt with one
//! reorthogonalisation pass ("twice is enough", Giraud et al.), which keeps
//! the basis orthonormal to machine precision even for ill-conditioned input
//! blocks — important because randomized subspace iteration feeds it
//! near-collinear power iterates. Projection coefficients accumulate in
//! [`Scalar::Accum`] so the f32 instantiation stays orthonormal to ~f32 eps
//! rather than drifting with the block size.

use crate::ops;
use crate::scalar::Scalar;
use crate::Matrix;

/// Orthonormalises the columns of `a` in place and returns the numerical
/// rank found (columns beyond it are filled with zeros).
///
/// Columns whose remaining norm falls below `tol * max_initial_norm` are
/// treated as linearly dependent and zeroed.
pub fn orthonormalize_columns<S: Scalar>(a: &mut Matrix<S>, tol: f64) -> usize {
    let (n, k) = a.shape();
    if n == 0 || k == 0 {
        return 0;
    }
    let mut cols: Vec<Vec<S>> = (0..k).map(|j| a.col(j)).collect();
    let max_norm = cols.iter().map(|c| ops::norm2(c)).fold(S::ZERO, S::max);
    let threshold = S::from_f64(tol) * max_norm.max(S::from_f64(f64::MIN_POSITIVE));
    let mut rank = 0;
    for j in 0..k {
        // Two passes of projection against the established basis.
        for _pass in 0..2 {
            for b in 0..rank {
                let (head, tail) = cols.split_at_mut(j);
                let proj = ops::dot_accum(&head[b], &tail[0]);
                ops::axpy(-proj, &head[b], &mut tail[0]);
            }
        }
        let norm = ops::norm2(&cols[j]);
        if norm > threshold {
            ops::scal(S::ONE / norm, &mut cols[j]);
            cols.swap(rank, j);
            rank += 1;
        } else {
            cols[j].iter_mut().for_each(|v| *v = S::ZERO);
        }
    }
    for (j, col) in cols.iter().enumerate() {
        a.set_col(j, col);
    }
    rank
}

/// Measures the departure from orthonormality `max |Q^T Q - I|` of the first
/// `rank` columns — a test/debug helper.
pub fn orthonormality_defect<S: Scalar>(q: &Matrix<S>, rank: usize) -> f64 {
    let mut worst = 0.0_f64;
    for i in 0..rank {
        let ci = q.col(i);
        for j in i..rank {
            let cj = q.col(j);
            let d = ops::dot_accum(&ci, &cj).to_f64();
            let expect = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((d - expect).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthonormalizes_full_rank() {
        let mut a = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 1.0],
        ]);
        let rank = orthonormalize_columns(&mut a, 1e-12);
        assert_eq!(rank, 3);
        assert!(orthonormality_defect(&a, 3) < 1e-12);
    }

    #[test]
    fn detects_rank_deficiency() {
        // Third column = first + second.
        let mut a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0], &[0.0, 0.0, 0.0]]);
        let rank = orthonormalize_columns(&mut a, 1e-10);
        assert_eq!(rank, 2);
        // Dependent column is zeroed.
        assert!(ops::norm2(&a.col(2)) < 1e-12);
    }

    #[test]
    fn near_collinear_columns_stay_orthonormal() {
        // Columns differing by 1e-10 perturbations: reorthogonalisation pass
        // must keep the result orthonormal.
        let n = 50;
        let mut a = Matrix::from_fn(n, 3, |i, _| ((i * 7 + 3) % 11) as f64 - 5.0);
        for i in 0..n {
            a[(i, 1)] += 1e-10 * (i as f64);
            a[(i, 2)] -= 1e-10 * ((i * i) as f64 % 13.0);
        }
        let rank = orthonormalize_columns(&mut a, 1e-14);
        assert!(orthonormality_defect(&a, rank) < 1e-10);
    }

    #[test]
    fn f32_basis_orthonormal_to_f32_eps() {
        let n = 60;
        let mut a: Matrix<f32> = Matrix::from_fn(n, 4, |i, j| {
            (((i * 13 + j * 7 + 1) % 29) as f32) / 29.0 - 0.5
        });
        let rank = orthonormalize_columns(&mut a, 1e-6);
        assert_eq!(rank, 4);
        assert!(orthonormality_defect(&a, rank) < 1e-5);
    }

    #[test]
    fn empty_input() {
        let mut a: Matrix = Matrix::zeros(0, 0);
        assert_eq!(orthonormalize_columns(&mut a, 1e-12), 0);
    }
}
