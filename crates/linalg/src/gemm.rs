//! BLIS-style blocked GEMM engine: packed panels + register microkernels.
//!
//! This is the compute core behind every [`crate::blas`] matrix product.
//! The structure follows the classic Goto/BLIS decomposition:
//!
//! ```text
//! for jc in 0..n step NC            // B column block       (packed Bp ~ L2/L3)
//!   for pc in 0..k step KC          // shared-dimension slab
//!     pack B[pc.., jc..]  -> Bp     // KC x NC, NR-wide k-major panels
//!     for ic in 0..m step MC        // A row block          (packed Ap ~ L2)
//!       pack A[ic.., pc..] -> Ap    // MC x KC, MR-tall k-major panels
//!       for jr, ir over the block   // MR x NR register tiles
//!         S::microkernel(KC, ...)   // C tile += alpha * Ap-panel · Bp-panel
//! ```
//!
//! - **Packing** copies each operand block once into contiguous, zero-padded
//!   panels laid out exactly in the order the microkernel streams them, so
//!   the innermost loop does unit-stride loads regardless of the operand's
//!   original layout — which is also how the `A^T B` / `A B^T` variants cost
//!   the same as the plain product: transposition is just a stride swap at
//!   packing time (see [`View`]). Panels are written in the microkernel's
//!   compute precision ([`crate::Scalar::Compute`]): a no-op copy for the
//!   native floats, and the **pack-time widening** of `bf16` storage — each
//!   16-bit element converts to f32 exactly once per cache-block reuse, so
//!   the inner FMA loop runs at full f32 speed and only the `C`
//!   write-back rounds to bf16. That write-back happens once per `KC`
//!   slab of the shared dimension (the `pc` loop accumulates *through*
//!   `C`), so a bf16 product carries `ceil(k/KC)` storage roundings per
//!   entry — exactly one for `k ≤ KC = 256`, and an `O(u·sqrt(k/KC))`
//!   rounding walk beyond that. Column-tiling (`predict_tiled`, the
//!   streamed tile ring) caps `k` at the tile width; at `k/KC` approaching
//!   `2^8` slab contributions start falling below one ulp of the running
//!   partial and bf16 accumulation stalls (see `tests/precision.rs` for
//!   the enforced per-slab bound).
//! - **Register blocking**: the `MR x NR` accumulator tile
//!   ([`crate::Scalar::microkernel`]; 6x16 for `f32`, 8x8 for `f64` — one
//!   512-bit FMA accumulator per f32 row, 6-8 independent FMA chains to
//!   cover the FMA latency) stays in vector registers for all `KC` updates,
//!   giving `2·MR·NR/(MR+NR)` flops per element loaded instead of the ~1 of
//!   an axpy sweep.
//! - **Edge tiles** (`m`, `n` not multiples of `MR`/`NR`) run the same full
//!   microkernel against zero-padded panels into a stack scratch tile, and
//!   only the valid `mr x nr` corner is accumulated back — no scalar
//!   fallback loops to keep correct.
//! - **Threading** runs on the [`ep2_runtime`] worker pool under the
//!   caller's thread-budget handle ([`crate::parallel::num_threads`]). For
//!   every `(jc, pc)` cache block the packed-B slab is filled **once,
//!   cooperatively** (one NR panel per pool chunk) and then shared
//!   read-only by all workers sweeping their MC row blocks of `C` — the
//!   fork-join between the two phases is the panel barrier. This cuts the
//!   packing traffic `threads x` relative to the previous per-thread
//!   packing scheme (kept as [`gemm_packed_perthread`], the measured
//!   baseline in `BENCH_pool.json`); A panels still pack into per-thread
//!   arenas ([`crate::parallel::with_pack_buffers`]).
//!
//! Measured on the dev container (1 core, AVX-512, `target-cpu=native`;
//! see `BENCH_gemm.json`): f32 sustains 77-87 Gflop/s (7.4-8.7x the seed
//! axpy GEMM) and f64 34-37 Gflop/s (7.8-11.7x seed), which is what makes
//! the device simulator's `flops = 2mkn` pricing an honest description of
//! this code. The f32/f64 packed ratio is 2.25-2.4x: with both precisions
//! compute-bound at the same vector width the ceiling is the 2x lane gap
//! plus cache effects — the seed's higher-looking ratio at 4096² came from
//! f64 cache-thrashing, not from f32 being fast.

use crate::parallel;
use crate::scalar::Scalar;
use crate::vmath;

/// Rows per packed A block (`MC`): the `MC x KC` packed A slab is the
/// L2-resident operand (48·256 elements = 48 KiB at f32). A common multiple
/// of both microkernel heights (`MR` = 6 for f32, 8 for f64) so interior
/// blocks never produce edge tiles.
pub const MC: usize = 48;
/// Shared-dimension slab depth (`KC`): one `MR x KC` A panel and one
/// `KC x NR` B panel (8 KiB each at f32) sit in L1 while a tile runs.
pub const KC: usize = 256;
/// Columns per packed B block (`NC`): bounds the packed B slab
/// (`KC x NC` = 512 KiB at f32, L2/L3-resident).
pub const NC: usize = 512;

/// Upper bound on `S::MR` for stack-allocated scratch tiles.
const MAX_MR: usize = 8;
/// Upper bound on `S::MR * S::NR` for stack-allocated scratch tiles.
const MAX_TILE: usize = 128;

/// A fused `C` write-back hook: maps each fully-accumulated GEMM entry —
/// at [`Scalar::Compute`] width, while the entry's cache block is still
/// hot — to the value actually stored, replacing the plain
/// `C[i,j] = from_compute(acc)` narrowing.
///
/// `apply` receives the **global** `(row, col)` of the entry and the
/// fully-accumulated value `acc = alpha·(A·B)[row,col] + beta·C[row,col]`
/// (every `KC` slab already folded in; see the engine contract below), and
/// returns the storage value. This is what lets kernel assembly fuse the
/// `d² = ‖x‖² + ‖z‖² − 2x·z` reassembly and the radial profile into the
/// write-back — the separate element-wise pass over `C`, which streamed
/// every tile through cache a second time, disappears. The hook is
/// deliberately generic (any `Fn(usize, usize, Compute) -> S` closure
/// implements it): a serve-path bias/scale epilogue is the same shape.
///
/// # Engine contract (exactness)
///
/// The epilogue-taking entry points ([`gemm_auto_epilogue`],
/// [`gemm_packed_epilogue`]) guarantee:
///
/// - `apply` runs **exactly once** per `C` entry, only after the entry's
///   accumulation is complete — in the blocked engines, on the final `pc`
///   slab of the entry's column block, swept over each `MC x NC` cache
///   block right after its tiles land (the block is still cache-resident;
///   this is where the old two-pass scheme's second full-matrix memory
///   sweep went). Earlier slabs accumulate through `C` in storage
///   precision exactly as the plain engines do, so the per-entry rounding
///   chain (one storage rounding per slab for `bf16`) is **bit-for-bit
///   identical** to running the plain GEMM first.
/// - The value handed to `apply` satisfies `from_compute(acc) == stored`,
///   where `stored` is exactly the plain GEMM's result for that entry:
///   the small engine hands the pre-narrowing accumulator, and the blocked
///   engines hand the plain write-back's stored value widened back to
///   compute width (`from_compute . compute` is the identity, so both
///   narrow to the same bits) — pinned by the
///   `store_epilogue_matches_plain_gemm` tests.
/// - Threading never changes what `apply` sees, only which worker calls it.
///
/// Implementations must be `Sync`: the packed engines invoke the epilogue
/// from worker threads.
pub trait Epilogue<S: Scalar>: Sync {
    /// Maps the fully-accumulated entry at global `(row, col)` to the value
    /// to store.
    fn apply(&self, row: usize, col: usize, acc: S::Compute) -> S;

    /// Row-batched form of [`Epilogue::apply`]: maps the contiguous run of
    /// fully-accumulated entries `(row, col0 + j)` for `j < acc.len()`,
    /// writing the storage values into `out`.
    ///
    /// The engines hand whole register-tile rows (and row segments on the
    /// degenerate sweeps) through this hook, so an epilogue can batch
    /// lane-level work — kernel assembly's vectorized radial profile
    /// overrides it to run d² reassembly and the profile polynomial a
    /// vector register at a time. The default is the per-entry loop, which
    /// keeps plain [`Epilogue::apply`] implementations (closures,
    /// [`StoreEpilogue`], third-party hooks) exactly as before. An
    /// override must store bitwise the same values the default would —
    /// that is what keeps the engine contract's exactness guarantees
    /// independent of how the engines segment rows.
    ///
    /// # Panics
    ///
    /// Implementations may assume and debug-assert
    /// `acc.len() == out.len()`.
    #[inline]
    fn apply_row(&self, row: usize, col0: usize, acc: &[S::Compute], out: &mut [S]) {
        debug_assert_eq!(acc.len(), out.len());
        for (j, (&a, o)) in acc.iter().zip(out.iter_mut()).enumerate() {
            *o = self.apply(row, col0 + j, a);
        }
    }
}

impl<S: Scalar, F> Epilogue<S> for F
where
    F: Fn(usize, usize, S::Compute) -> S + Sync,
{
    #[inline(always)]
    fn apply(&self, row: usize, col: usize, acc: S::Compute) -> S {
        self(row, col, acc)
    }
}

/// The identity epilogue: stores the accumulated value unchanged
/// (`from_compute(acc)`), making the fused entry points degenerate to the
/// plain GEMM bit for bit — the reference point the parity tests pin, and
/// the phantom type the plain engines instantiate the shared loops with.
#[derive(Debug, Clone, Copy)]
pub struct StoreEpilogue;

impl<S: Scalar> Epilogue<S> for StoreEpilogue {
    #[inline(always)]
    fn apply(&self, _row: usize, _col: usize, acc: S::Compute) -> S {
        S::from_compute(acc)
    }
}

/// A read-only strided view of a dense operand: entry `(i, j)` lives at
/// `data[i * rs + j * cs]`. A row-major matrix is `(rs, cs) = (cols, 1)`;
/// its transpose is the same buffer with `(rs, cs) = (1, cols)` — which is
/// how `gemm_tn`/`gemm_nt` reuse this engine without materialising
/// transposes.
#[derive(Debug, Clone, Copy)]
pub struct View<'a, S> {
    data: &'a [S],
    rs: usize,
    cs: usize,
    /// Logical row count.
    pub rows: usize,
    /// Logical column count.
    pub cols: usize,
}

impl<'a, S: Scalar> View<'a, S> {
    /// Row-major view of a full `rows x cols` buffer.
    pub fn row_major(data: &'a [S], rows: usize, cols: usize) -> Self {
        debug_assert!(data.len() >= rows * cols);
        View {
            data,
            rs: cols,
            cs: 1,
            rows,
            cols,
        }
    }

    /// Transposed view of a row-major `rows x cols` buffer: logically
    /// `cols x rows`.
    pub fn transposed(data: &'a [S], rows: usize, cols: usize) -> Self {
        debug_assert!(data.len() >= rows * cols);
        View {
            data,
            rs: 1,
            cs: cols,
            rows: cols,
            cols: rows,
        }
    }

    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> S {
        self.data[i * self.rs + j * self.cs]
    }
}

/// Packs the `mc x kc` block of `a` starting at `(i0, p0)` into MR-tall,
/// k-major panels: `ap[panel][p*MR + i] = A[i0 + panel*MR + i, p0 + p]`,
/// zero-padding rows past `mc` so edge tiles run the full microkernel.
///
/// Panels are written in [`Scalar::Compute`] precision — for the native
/// floats the conversion is the identity and the loops compile to plain
/// copies; for `bf16` every element widens to f32 exactly **here**, once
/// per cache-block reuse, so the microkernel's FMA loop never touches a
/// 16-bit value.
fn pack_a<S: Scalar>(
    a: &View<'_, S>,
    i0: usize,
    p0: usize,
    mc: usize,
    kc: usize,
    ap: &mut [S::Compute],
) {
    let mr = S::MR;
    for (pi, panel) in ap[..mc.div_ceil(mr) * mr * kc]
        .chunks_exact_mut(mr * kc)
        .enumerate()
    {
        let rows_here = mr.min(mc - pi * mr);
        let row_base = i0 + pi * mr;
        if a.cs == 1 && rows_here == mr {
            // Row-major source, full panel: copy row-by-row at unit stride.
            for i in 0..mr {
                let src = &a.data[(row_base + i) * a.rs + p0..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * mr + i] = v.compute();
                }
            }
        } else {
            for (p, dst) in panel.chunks_exact_mut(mr).enumerate() {
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = if i < rows_here {
                        a.at(row_base + i, p0 + p).compute()
                    } else {
                        S::Compute::ZERO
                    };
                }
            }
        }
    }
}

/// Packs the `kc x nc` block of `b` starting at `(p0, j0)` into NR-wide,
/// k-major panels: `bp[panel][p*NR + j] = B[p0 + p, j0 + panel*NR + j]`,
/// zero-padding columns past `nc`. Widens to [`Scalar::Compute`] like
/// [`pack_a`].
fn pack_b<S: Scalar>(
    b: &View<'_, S>,
    p0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
    bp: &mut [S::Compute],
) {
    let nr = S::NR;
    for (pj, panel) in bp[..nc.div_ceil(nr) * nr * kc]
        .chunks_exact_mut(nr * kc)
        .enumerate()
    {
        pack_b_panel(b, p0, j0 + pj * nr, kc, nr.min(nc - pj * nr), panel);
    }
}

/// Packs one NR-wide, k-major B panel (`cols_here` valid columns starting
/// at `col_base`, zero-padded to NR), widening to [`Scalar::Compute`]. The
/// unit of work of the cooperative shared-slab fill: disjoint panels can be
/// packed by different workers.
fn pack_b_panel<S: Scalar>(
    b: &View<'_, S>,
    p0: usize,
    col_base: usize,
    kc: usize,
    cols_here: usize,
    panel: &mut [S::Compute],
) {
    let nr = S::NR;
    if b.cs == 1 && cols_here == nr {
        for (p, dst) in panel[..nr * kc].chunks_exact_mut(nr).enumerate() {
            let src = &b.data[(p0 + p) * b.rs + col_base..][..nr];
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = v.compute();
            }
        }
    } else {
        for (p, dst) in panel[..nr * kc].chunks_exact_mut(nr).enumerate() {
            for (j, d) in dst.iter_mut().enumerate() {
                *d = if j < cols_here {
                    b.at(p0 + p, col_base + j).compute()
                } else {
                    S::Compute::ZERO
                };
            }
        }
    }
}

/// Applies the `beta` pass to a dense buffer (a `C` stripe here, the `y`
/// vector in `blas::gemv_t`): zero, scale in place, or leave untouched.
pub(crate) fn scale_stripe<S: Scalar>(c: &mut [S], beta: S) {
    if beta == S::ZERO {
        c.fill(S::ZERO);
    } else if beta != S::ONE {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
}

/// Runs one `MR x NR` register tile against the (already beta-scaled) `C`
/// tile starting at `c[0]`: the plain storage write-back, accumulating
/// through `C`. Epilogues are not applied here — the blocked engines sweep
/// them over each completed `MC x NC` cache block instead (see
/// [`epilogue_block`]), where the batched [`Epilogue::apply_row`] seam gets
/// full [`vmath::BLOCK`] row segments rather than NR-wide tile rows.
#[allow(clippy::too_many_arguments)] // mirrors the engine's loop variables 1:1
#[inline(always)]
fn compute_tile<S: Scalar>(
    kc: usize,
    alpha: S,
    a_panel: &[S::Compute],
    b_panel: &[S::Compute],
    c: &mut [S],
    ldc: usize,
    mr_here: usize,
    nr_here: usize,
) {
    let (mr, nr) = (S::MR, S::NR);
    if mr_here == mr && nr_here == nr {
        S::microkernel(kc, alpha, a_panel, b_panel, c, ldc);
    } else {
        // Edge tile: run the full (zero-padded) kernel into a scratch
        // tile, accumulate the valid corner.
        debug_assert!(mr <= MAX_MR && mr * nr <= MAX_TILE);
        let mut tile = [S::ZERO; MAX_TILE];
        S::microkernel(kc, alpha, a_panel, b_panel, &mut tile, nr);
        for i in 0..mr_here {
            let src = &tile[i * nr..i * nr + nr_here];
            let dst = &mut c[i * ldc..][..nr_here];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }
}

/// Applies an epilogue over the freshly-completed cache block
/// `rows x cols` at `(row0, col0)` of the stripe `c` (local row 0 ==
/// global row `row0`), in [`vmath::BLOCK`]-wide row segments widened back
/// to compute width. Runs on the worker that owns the stripe, immediately
/// after the block's final-slab tiles land — the block is still
/// cache-resident, so this costs the sweep's arithmetic, not a second
/// trip through memory. `from_compute . compute` being the identity makes
/// the widened value satisfy the [`Epilogue`] contract exactly.
fn epilogue_block<S: Scalar, E: Epilogue<S>>(
    c: &mut [S],
    ldc: usize,
    row0: usize,
    rows: usize,
    col0: usize,
    cols: usize,
    epi: &E,
) {
    let mut buf = [S::Compute::ZERO; vmath::BLOCK];
    for i in 0..rows {
        let row = &mut c[i * ldc + col0..][..cols];
        for (s, seg) in row.chunks_mut(vmath::BLOCK).enumerate() {
            let widened = &mut buf[..seg.len()];
            for (w, v) in widened.iter_mut().zip(seg.iter()) {
                *w = v.compute();
            }
            epi.apply_row(row0 + i, col0 + s * vmath::BLOCK, widened, seg);
        }
    }
}

/// The per-stripe block loop: accumulates `alpha * A[rows r0..r0+rows] · B`
/// into the (already beta-scaled) stripe `c` of shape `rows x ldc`. When an
/// epilogue is given, it fires on the final `pc` slab of each column block
/// (see [`Epilogue`] for the exactness contract).
#[allow(clippy::too_many_arguments)] // mirrors the engine's loop variables 1:1
fn gemm_stripe<S: Scalar, E: Epilogue<S>>(
    alpha: S,
    a: &View<'_, S>,
    b: &View<'_, S>,
    c: &mut [S],
    r0: usize,
    rows: usize,
    ldc: usize,
    epi: Option<&E>,
) {
    let (mr, nr) = (S::MR, S::NR);
    let k = a.cols;
    let n = b.cols;
    let ap_len = MC.div_ceil(mr) * mr * KC;
    let bp_len = NC.div_ceil(nr) * nr * KC;
    parallel::with_pack_buffers::<S::Compute, _, _>(ap_len, bp_len, |ap, bp| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let fuse = if pc + KC >= k { epi } else { None };
                pack_b(b, pc, jc, kc, nc, bp);
                for ic in (0..rows).step_by(MC) {
                    let mc = MC.min(rows - ic);
                    pack_a(a, r0 + ic, pc, mc, kc, ap);
                    for jr in (0..nc).step_by(nr) {
                        let nr_here = nr.min(nc - jr);
                        let b_panel = &bp[(jr / nr) * nr * kc..][..nr * kc];
                        for ir in (0..mc).step_by(mr) {
                            let mr_here = mr.min(mc - ir);
                            let a_panel = &ap[(ir / mr) * mr * kc..][..mr * kc];
                            let c_off = (ic + ir) * ldc + jc + jr;
                            compute_tile(
                                kc,
                                alpha,
                                a_panel,
                                b_panel,
                                &mut c[c_off..],
                                ldc,
                                mr_here,
                                nr_here,
                            );
                        }
                    }
                    if let Some(epi) = fuse {
                        epilogue_block(&mut c[ic * ldc..], ldc, r0 + ic, mc, jc, nc, epi);
                    }
                }
            }
        }
    });
}

/// Operation-count threshold (`m·k·n`) below which packing costs more than
/// it saves: [`gemm_auto`] runs such products with a direct loop over the
/// views instead. Covers the per-iteration `O(s·m·q)` correction products of
/// the training hot loop at test scale.
pub const SMALL_PRODUCT: usize = 1 << 17;

/// Dispatch used by the `blas` wrappers: the packed engine for real work,
/// a direct dot-form loop for products too small to amortise packing.
pub fn gemm_auto<S: Scalar>(alpha: S, a: View<'_, S>, b: View<'_, S>, beta: S, c: &mut [S]) {
    if a.rows * a.cols * b.cols <= SMALL_PRODUCT {
        gemm_small(alpha, a, b, beta, c);
    } else {
        gemm_packed(alpha, a, b, beta, c);
    }
}

/// Fused-epilogue variant of [`gemm_auto`]: same [`SMALL_PRODUCT`] dispatch
/// (depending only on the shape, so fused and plain runs of one shape
/// always hit the same engine), with `epi` applied to every
/// fully-accumulated entry per the [`Epilogue`] contract.
pub fn gemm_auto_epilogue<S: Scalar, E: Epilogue<S>>(
    alpha: S,
    a: View<'_, S>,
    b: View<'_, S>,
    beta: S,
    c: &mut [S],
    epi: &E,
) {
    if a.rows * a.cols * b.cols <= SMALL_PRODUCT {
        gemm_small_epilogue(alpha, a, b, beta, c, epi);
    } else {
        gemm_packed_epilogue(alpha, a, b, beta, c, epi);
    }
}

/// Direct per-entry products for sub-[`SMALL_PRODUCT`] shapes.
fn gemm_small<S: Scalar>(alpha: S, a: View<'_, S>, b: View<'_, S>, beta: S, c: &mut [S]) {
    // The identity epilogue stores `from_compute(acc)` — exactly the plain
    // small-path write-back, so one loop serves both entry points.
    gemm_small_epilogue(alpha, a, b, beta, c, &StoreEpilogue);
}

/// [`gemm_small`] with the write-back routed through an epilogue.
fn gemm_small_epilogue<S: Scalar, E: Epilogue<S>>(
    alpha: S,
    a: View<'_, S>,
    b: View<'_, S>,
    beta: S,
    c: &mut [S],
    epi: &E,
) {
    assert_eq!(a.cols, b.rows, "gemm: inner dimension mismatch");
    let (m, n) = (a.rows, b.cols);
    let k = a.cols;
    assert_eq!(c.len(), m * n, "gemm: C buffer shape mismatch");
    // Dot products run in the compute precision (identity for the native
    // floats; f32 for bf16 storage), mirroring the packed engine's
    // pack-time widening so both paths share one rounding model.
    let (alpha_c, beta_c) = (alpha.compute(), beta.compute());
    // Entries are staged at compute width a BLOCK-sized row segment at a
    // time and handed to the epilogue through the batched `apply_row`
    // seam, so a lane-batching epilogue gets full segments here too.
    let mut seg_acc = [S::Compute::ZERO; vmath::BLOCK];
    for (i, c_row) in c.chunks_exact_mut(n.max(1)).enumerate().take(m) {
        for (s, seg) in c_row.chunks_mut(vmath::BLOCK).enumerate() {
            let j0 = s * vmath::BLOCK;
            let accs = &mut seg_acc[..seg.len()];
            for (jj, (av, cv)) in accs.iter_mut().zip(seg.iter()).enumerate() {
                let mut acc = S::Compute::ZERO;
                for p in 0..k {
                    acc += a.at(i, p).compute() * b.at(p, j0 + jj).compute();
                }
                *av = if beta == S::ZERO {
                    alpha_c * acc
                } else {
                    alpha_c * acc + beta_c * cv.compute()
                };
            }
            epi.apply_row(i, j0, accs, seg);
        }
    }
}

/// `C <- alpha * A B + beta * C` over strided views, with `C` a row-major
/// `m x n` buffer of leading dimension `ldc == n`.
///
/// This is the single engine behind `gemm`, `gemm_tn` and `gemm_nt`: the
/// transpose variants differ only in the strides of the packed views.
///
/// Under a thread budget of 1 the whole block loop runs inline on the
/// caller; with more threads it dispatches to the cooperative shared-slab
/// engine (`gemm_shared_impl` internally), which packs each B block
/// **once** into a slab all workers read instead of once per thread. Both
/// paths — and the per-thread baseline [`gemm_packed_perthread`] — produce
/// bit-for-bit identical results: the per-entry accumulation order (KC
/// slabs in ascending `pc`, one register-tile accumulation each) never
/// changes, only which thread computes it.
///
/// # Panics
///
/// Panics if `a.cols != b.rows`, `a.rows * b.cols != c.len() / ldc * ldc`
/// shape-wise, or `ldc != b.cols`.
pub fn gemm_packed<S: Scalar>(alpha: S, a: View<'_, S>, b: View<'_, S>, beta: S, c: &mut [S]) {
    let threads = parallel::num_threads();
    if threads <= 1 {
        gemm_packed_perthread(alpha, a, b, beta, c);
    } else {
        gemm_shared_impl::<S, StoreEpilogue>(alpha, a, b, beta, c, threads, None);
    }
}

/// Fused-epilogue variant of [`gemm_packed`]: identical engine dispatch
/// (per-thread under a budget of 1, cooperative shared-slab otherwise),
/// with the epilogue firing on each entry's final `KC` slab.
pub fn gemm_packed_epilogue<S: Scalar, E: Epilogue<S>>(
    alpha: S,
    a: View<'_, S>,
    b: View<'_, S>,
    beta: S,
    c: &mut [S],
    epi: &E,
) {
    let threads = parallel::num_threads();
    if threads <= 1 {
        gemm_perthread_impl(alpha, a, b, beta, c, Some(epi));
    } else {
        gemm_shared_impl(alpha, a, b, beta, c, threads, Some(epi));
    }
}

/// Degenerate-product epilogue pass (`k == 0` or `alpha == 0`, where
/// [`packed_preamble`] already reduced `C` to its beta-scaled prior): the
/// fused contract still owes the epilogue exactly one visit per entry, with
/// the stored value widened back to compute width (`from_compute` of which
/// is the identity on it, so [`StoreEpilogue`] leaves `C` untouched).
fn epilogue_sweep<S: Scalar, E: Epilogue<S>>(c: &mut [S], n: usize, epi: &E) {
    if c.is_empty() || n == 0 {
        return;
    }
    parallel::for_each_chunk_mut(c, n, |off, row| {
        epilogue_block(row, n, off / n, 1, 0, n, epi);
    });
}

/// Checks shapes and handles the degenerate cases shared by both packed
/// engines; returns `None` when the caller is already done.
fn packed_preamble<S: Scalar>(
    a: &View<'_, S>,
    b: &View<'_, S>,
    alpha: S,
    beta: S,
    c: &mut [S],
) -> Option<(usize, usize, usize)> {
    assert_eq!(a.cols, b.rows, "gemm_packed: inner dimension mismatch");
    let (m, n) = (a.rows, b.cols);
    assert_eq!(c.len(), m * n, "gemm_packed: C buffer shape mismatch");
    if m == 0 || n == 0 {
        return None;
    }
    if a.cols == 0 || alpha == S::ZERO {
        scale_stripe(c, beta);
        return None;
    }
    Some((m, a.cols, n))
}

/// The pre-pool engine, kept as the measured baseline: MR-aligned row
/// stripes of `C` over the workers, **each stripe packing its own copy of
/// every B block** (`threads x` redundant packing traffic). `BENCH_pool.json`
/// and the shared-slab property tests compare against this path.
pub fn gemm_packed_perthread<S: Scalar>(
    alpha: S,
    a: View<'_, S>,
    b: View<'_, S>,
    beta: S,
    c: &mut [S],
) {
    gemm_perthread_impl::<S, StoreEpilogue>(alpha, a, b, beta, c, None);
}

/// The per-thread engine body, shared by the plain and fused entry points
/// (`epi == None` is the plain write-back on every slab).
fn gemm_perthread_impl<S: Scalar, E: Epilogue<S>>(
    alpha: S,
    a: View<'_, S>,
    b: View<'_, S>,
    beta: S,
    c: &mut [S],
    epi: Option<&E>,
) {
    let Some((m, _, n)) = packed_preamble(&a, &b, alpha, beta, c) else {
        if let Some(epi) = epi {
            epilogue_sweep(c, b.cols, epi);
        }
        return;
    };
    // The beta pass runs inside each stripe so C is touched exactly once
    // before accumulation.
    let threads = parallel::num_threads();
    let stripe_rows = m
        .div_ceil(threads)
        .next_multiple_of(S::MR)
        .clamp(S::MR, m.next_multiple_of(S::MR));
    parallel::for_each_chunk_mut(c, stripe_rows * n, |off, stripe| {
        let r0 = off / n;
        let rows = stripe.len() / n;
        scale_stripe(stripe, beta);
        gemm_stripe(alpha, &a, &b, stripe, r0, rows, n, epi);
    });
}

/// The cooperative shared-slab engine: for every `(jc, pc)` cache block,
/// the B panels are packed **once** into a slab shared by all workers
/// (phase 1, one NR panel per pool chunk), and only then do the workers
/// sweep their MC row blocks of `C` against it (phase 2, per-thread A
/// packing as before). The fork-join between the two phases is the panel
/// barrier: no worker reads a panel before the pool has finished writing
/// the slab, and no worker overwrites it for the next `pc` before every
/// reader of the current one has joined.
///
/// Shared by the plain and fused entry points (`epi == None` is the plain
/// write-back on every slab; `Some` fires it on each entry's final `pc`
/// slab, from whichever worker owns that row stripe).
fn gemm_shared_impl<S: Scalar, E: Epilogue<S>>(
    alpha: S,
    a: View<'_, S>,
    b: View<'_, S>,
    beta: S,
    c: &mut [S],
    threads: usize,
    epi: Option<&E>,
) {
    let Some((m, k, n)) = packed_preamble(&a, &b, alpha, beta, c) else {
        if let Some(epi) = epi {
            epilogue_sweep(c, b.cols, epi);
        }
        return;
    };
    let nr = S::NR;
    // One beta pass over C up front (the per-stripe pass of the baseline,
    // hoisted: every (jc, pc) block below is a pure accumulation).
    let beta_chunk = m.div_ceil(threads).max(1) * n;
    parallel::for_each_chunk_mut(c, beta_chunk, |_, stripe| scale_stripe(stripe, beta));
    let bp_len = NC.div_ceil(nr) * nr * KC;
    parallel::with_shared_slab::<S::Compute, _, _>(bp_len, |bp| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let fuse = if pc + KC >= k { epi } else { None };
                // Phase 1: cooperative pack. Each pool chunk fills one
                // NR-wide panel; panels are disjoint slab slices.
                let panels = nc.div_ceil(nr);
                parallel::for_each_chunk_mut(&mut bp[..panels * nr * kc], nr * kc, |off, panel| {
                    let pj = off / (nr * kc);
                    pack_b_panel(&b, pc, jc + pj * nr, kc, nr.min(nc - pj * nr), panel);
                });
                // Phase 2: MC row blocks of C against the shared slab. MC is
                // a multiple of both microkernel heights, so every chunk
                // boundary is MR-aligned for every precision.
                let bp_ro: &[S::Compute] = bp;
                parallel::for_each_chunk_mut(c, MC * n, |off, stripe| {
                    let r0 = off / n;
                    let rows = stripe.len() / n;
                    gemm_block_rows(alpha, &a, stripe, r0, rows, n, pc, kc, jc, nc, bp_ro, fuse);
                });
            }
        }
    });
}

/// Phase-2 unit of the shared-slab engine: accumulates the `(jc, pc)` cache
/// block's contribution into the `rows x ldc` C stripe starting at global
/// row `r0`, packing the stripe's A block into this thread's arena and
/// reading the B panels from the shared slab.
#[allow(clippy::too_many_arguments)] // mirrors the engine's loop variables 1:1
fn gemm_block_rows<S: Scalar, E: Epilogue<S>>(
    alpha: S,
    a: &View<'_, S>,
    c: &mut [S],
    r0: usize,
    rows: usize,
    ldc: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bp: &[S::Compute],
    fuse: Option<&E>,
) {
    let (mr, nr) = (S::MR, S::NR);
    let ap_len = MC.div_ceil(mr) * mr * KC;
    parallel::with_pack_buffers::<S::Compute, _, _>(ap_len, 0, |ap, _| {
        for ic in (0..rows).step_by(MC) {
            let mc = MC.min(rows - ic);
            pack_a(a, r0 + ic, pc, mc, kc, ap);
            for jr in (0..nc).step_by(nr) {
                let nr_here = nr.min(nc - jr);
                let b_panel = &bp[(jr / nr) * nr * kc..][..nr * kc];
                for ir in (0..mc).step_by(mr) {
                    let mr_here = mr.min(mc - ir);
                    let a_panel = &ap[(ir / mr) * mr * kc..][..mr * kc];
                    let c_off = (ic + ir) * ldc + jc + jr;
                    compute_tile(
                        kc,
                        alpha,
                        a_panel,
                        b_panel,
                        &mut c[c_off..],
                        ldc,
                        mr_here,
                        nr_here,
                    );
                }
            }
            if let Some(epi) = fuse {
                epilogue_block(&mut c[ic * ldc..], ldc, r0 + ic, mc, jc, nc, epi);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill<S: Scalar>(len: usize, seed: u64) -> Vec<S> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                S::from_f64(((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
            })
            .collect()
    }

    fn naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn packed_matches_naive_odd_shapes() {
        // Crosses MC/KC/NC and the MR/NR tails in one shot.
        let (m, k, n) = (MC + 3, KC + 5, NC + 7);
        let a: Vec<f64> = fill(m * k, 1);
        let b: Vec<f64> = fill(k * n, 2);
        let mut c = vec![0.5; m * n];
        gemm_packed(
            2.0,
            View::row_major(&a, m, k),
            View::row_major(&b, k, n),
            -1.0,
            &mut c,
        );
        let reference = naive(m, k, n, &a, &b);
        for (i, (&got, &raw)) in c.iter().zip(&reference).enumerate() {
            let expect = 2.0 * raw - 0.5;
            assert!((got - expect).abs() < 1e-9, "entry {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn transposed_views_swap_strides() {
        let (m, k, n) = (13, 9, 11);
        // A stored as k x m row-major, viewed transposed -> logical m x k.
        let a_t: Vec<f32> = fill(k * m, 3);
        let b: Vec<f32> = fill(k * n, 4);
        let mut c = vec![0.0_f32; m * n];
        gemm_packed(
            1.0,
            View::transposed(&a_t, k, m),
            View::row_major(&b, k, n),
            0.0,
            &mut c,
        );
        let a_log: Vec<f64> = (0..m * k)
            .map(|idx| a_t[(idx % k) * m + idx / k] as f64)
            .collect();
        let b64: Vec<f64> = b.iter().map(|&v| v as f64).collect();
        let reference = naive(m, k, n, &a_log, &b64);
        for (&got, &expect) in c.iter().zip(&reference) {
            assert!((got as f64 - expect).abs() < 1e-4);
        }
    }

    /// `StoreEpilogue` through the fused entry points must degenerate to
    /// the plain GEMM **bit for bit** — the write-back rounding chains
    /// (interior, edge-scratch, small-path) are replicated exactly, for
    /// every precision, on shapes crossing every block boundary.
    fn store_epilogue_matches_plain<S: Scalar>(m: usize, k: usize, n: usize) {
        let a: Vec<S> = fill(m * k, 11);
        let b: Vec<S> = fill(k * n, 12);
        let mut plain = vec![S::from_f64(0.25); m * n];
        let mut fused = plain.clone();
        gemm_auto(
            S::from_f64(-2.0),
            View::row_major(&a, m, k),
            View::row_major(&b, k, n),
            S::ONE,
            &mut plain,
        );
        gemm_auto_epilogue(
            S::from_f64(-2.0),
            View::row_major(&a, m, k),
            View::row_major(&b, k, n),
            S::ONE,
            &mut fused,
            &StoreEpilogue,
        );
        for (i, (&p, &f)) in plain.iter().zip(&fused).enumerate() {
            assert_eq!(
                p.to_f64().to_bits(),
                f.to_f64().to_bits(),
                "entry {i} ({m}x{k}x{n}, {})",
                S::NAME
            );
        }
    }

    #[test]
    fn store_epilogue_matches_plain_gemm() {
        for &(m, k, n) in &[
            (5, 7, 9),                // small path, edge tiles
            (MC + 3, KC + 5, NC + 7), // packed, every block boundary
            (2 * MC, 2 * KC, NC),     // packed, exact multiples
        ] {
            store_epilogue_matches_plain::<f32>(m, k, n);
            store_epilogue_matches_plain::<f64>(m, k, n);
            store_epilogue_matches_plain::<crate::Bf16>(m, k, n);
        }
    }

    #[test]
    fn closure_epilogue_sees_global_coords_once_each() {
        // A bias epilogue (the serve-path shape): out[i,j] = acc + i + 2j.
        // Visit counting would need interior mutability; instead check the
        // coordinate-dependent result everywhere, which fails if any entry
        // is skipped, double-applied, or handed wrong coordinates.
        let (m, k, n) = (MC + 1, KC + 2, NC + 3);
        let a: Vec<f64> = fill(m * k, 21);
        let b: Vec<f64> = fill(k * n, 22);
        let mut plain = vec![0.0; m * n];
        gemm_packed(
            1.0,
            View::row_major(&a, m, k),
            View::row_major(&b, k, n),
            0.0,
            &mut plain,
        );
        let mut fused = vec![0.0; m * n];
        let bias = |i: usize, j: usize, acc: f64| acc + i as f64 + 2.0 * j as f64;
        gemm_packed_epilogue(
            1.0,
            View::row_major(&a, m, k),
            View::row_major(&b, k, n),
            0.0,
            &mut fused,
            &bias,
        );
        for i in 0..m {
            for j in 0..n {
                let expect = plain[i * n + j] + i as f64 + 2.0 * j as f64;
                assert_eq!(fused[i * n + j], expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn degenerate_products_still_run_epilogue() {
        // alpha == 0 short-circuits the block loops; the epilogue must
        // still see every entry (beta-scaled prior C at compute width).
        let a: Vec<f64> = fill(4, 31);
        let b: Vec<f64> = fill(6, 32);
        let mut c = vec![2.0; 6];
        let negate = |_i: usize, _j: usize, acc: f64| -acc;
        // Big-shape dispatch is unreachable with alpha == 0 product sizes
        // here, so call the packed entry directly.
        gemm_packed_epilogue(
            0.0,
            View::row_major(&a, 2, 2),
            View::row_major(&b, 2, 3),
            0.5,
            &mut c,
            &negate,
        );
        assert!(c.iter().all(|&v| v == -1.0), "{c:?}");
    }

    #[test]
    fn zero_inner_dim_is_beta_pass() {
        let a: Vec<f64> = vec![];
        let b: Vec<f64> = vec![];
        let mut c = vec![4.0; 6];
        gemm_packed(
            1.0,
            View::row_major(&a, 2, 0),
            View::row_major(&b, 0, 3),
            0.25,
            &mut c,
        );
        assert!(c.iter().all(|&v| v == 1.0));
    }
}
