//! Dense symmetric eigensolver.
//!
//! [`sym_eig`] computes the full eigendecomposition of a real symmetric
//! matrix via Householder tridiagonalisation followed by the implicit-shift
//! QL iteration (the classic EISPACK `tred2`/`tql2` pair). This is the
//! workhorse behind the Nyström preconditioner: EigenPro 2.0 only ever
//! eigendecomposes the `s x s` *subsample* kernel matrix, so a dense
//! `O(s^3)` solver is exactly what the paper's Algorithm 1 calls for.
//!
//! The iteration itself always runs in `f64` — that is the [`Scalar::Accum`]
//! contract: eigensolves are *setup-time* (once per training run, `O(s³)` on
//! an `s x s` matrix), so unlike the per-iteration GEMM hot paths they cost
//! nothing to keep in double precision, while the spectrum they produce
//! feeds the analytic step size where f32 rounding would be structural
//! error. Generic callers get their input upcast, solved, and the
//! eigenvectors rounded back to `S`; [`sym_eig_f64`] exposes the
//! full-precision spectrum for precision-sensitive consumers (the
//! preconditioner keeps eigen*values* in f64 even when training in f32).
//!
//! Eigenvalues are returned in **descending** order (the kernel-methods
//! convention `λ₁ ≥ λ₂ ≥ …`).

use crate::scalar::{cast_slice, Scalar};
use crate::{LinalgError, Matrix};

/// Maximum QL iterations per eigenvalue before reporting failure.
const MAX_QL_ITERS: usize = 64;

/// A full symmetric eigendecomposition `A = V diag(λ) V^T`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition<S: Scalar = f64> {
    /// Eigenvalues in descending order.
    pub values: Vec<S>,
    /// Orthonormal eigenvectors; column `i` corresponds to `values[i]`.
    pub vectors: Matrix<S>,
}

impl<S: Scalar> EigenDecomposition<S> {
    /// The top `q` eigenpairs as `(values, n x q vectors)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` exceeds the decomposition size.
    pub fn top_q(&self, q: usize) -> (Vec<S>, Matrix<S>) {
        assert!(
            q <= self.values.len(),
            "q = {q} exceeds {}",
            self.values.len()
        );
        let n = self.vectors.rows();
        let vals = self.values[..q].to_vec();
        let mut vecs = Matrix::zeros(n, q);
        for j in 0..q {
            for i in 0..n {
                vecs[(i, j)] = self.vectors[(i, j)];
            }
        }
        (vals, vecs)
    }

    /// Converts the decomposition to another precision.
    pub fn cast<T: Scalar>(&self) -> EigenDecomposition<T> {
        EigenDecomposition {
            values: cast_slice(&self.values),
            vectors: self.vectors.cast(),
        }
    }
}

/// Computes the full eigendecomposition of the symmetric matrix `a`,
/// returning values/vectors in the input precision. The solve itself runs
/// in `f64` (see the module docs).
///
/// Only the lower triangle is referenced conceptually; the input is
/// symmetrised defensively (`(A + A^T)/2`) to wash out round-off asymmetry
/// from kernel-matrix assembly.
///
/// # Errors
///
/// Returns [`LinalgError::NoConvergence`] if the QL iteration fails (does not
/// happen for finite symmetric input in practice) and
/// [`LinalgError::InvalidArgument`] if `a` is not square.
pub fn sym_eig<S: Scalar>(a: &Matrix<S>) -> Result<EigenDecomposition<S>, LinalgError> {
    Ok(sym_eig_f64(a)?.cast())
}

/// [`sym_eig`] returning the decomposition in full (`f64`) precision
/// regardless of the input precision — the entry point the EigenPro
/// preconditioner uses so that spectra stay double-precision under f32 and
/// mixed-precision training.
///
/// # Errors
///
/// Same conditions as [`sym_eig`].
pub fn sym_eig_f64<S: Scalar>(a: &Matrix<S>) -> Result<EigenDecomposition<f64>, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::InvalidArgument {
            message: format!("sym_eig requires a square matrix, got {:?}", a.shape()),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(EigenDecomposition {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut v: Matrix<f64> = a.cast();
    v.symmetrize();
    let mut d = vec![0.0_f64; n];
    let mut e = vec![0.0_f64; n];
    tred2(&mut v, &mut d, &mut e);
    tql2(&mut v, &mut d, &mut e)?;
    // tql2 leaves eigenvalues ascending (after its internal sort); flip to
    // descending.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in idx.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_j)] = v[(i, old_j)];
        }
    }
    Ok(EigenDecomposition { values, vectors })
}

/// Householder reduction of `v` (symmetric) to tridiagonal form.
///
/// On exit `d` holds the diagonal, `e` the subdiagonal (in `e[1..]`), and `v`
/// the accumulated orthogonal transformation. This is the EISPACK `tred2`
/// routine (via the public-domain JAMA translation), 0-indexed.
fn tred2(v: &mut Matrix<f64>, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for j in 0..n {
        d[j] = v[(n - 1, j)];
    }
    for i in (1..n).rev() {
        // Scale to avoid under/overflow.
        let mut scale = 0.0_f64;
        let mut h = 0.0_f64;
        for item in d.iter().take(i) {
            scale += item.abs();
        }
        if scale == 0.0 {
            e[i] = d[i - 1];
            for j in 0..i {
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
                v[(j, i)] = 0.0;
            }
        } else {
            // Generate Householder vector.
            for item in d.iter_mut().take(i) {
                *item /= scale;
                h += *item * *item;
            }
            let f = d[i - 1];
            let mut g = h.sqrt();
            if f > 0.0 {
                g = -g;
            }
            e[i] = scale * g;
            h -= f * g;
            d[i - 1] = f - g;
            for item in e.iter_mut().take(i) {
                *item = 0.0;
            }
            // Apply similarity transformation to remaining columns.
            for j in 0..i {
                let f = d[j];
                v[(j, i)] = f;
                let mut g = e[j] + v[(j, j)] * f;
                for k in (j + 1)..i {
                    g += v[(k, j)] * d[k];
                    e[k] += v[(k, j)] * f;
                }
                e[j] = g;
            }
            let mut f = 0.0;
            for j in 0..i {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..i {
                e[j] -= hh * d[j];
            }
            for j in 0..i {
                let f = d[j];
                let g = e[j];
                for k in j..i {
                    let delta = f * e[k] + g * d[k];
                    v[(k, j)] -= delta;
                }
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
            }
        }
        d[i] = h;
    }
    // Accumulate transformations.
    for i in 0..(n - 1) {
        v[(n - 1, i)] = v[(i, i)];
        v[(i, i)] = 1.0;
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                d[k] = v[(k, i + 1)] / h;
            }
            for j in 0..=i {
                let mut g = 0.0;
                for k in 0..=i {
                    g += v[(k, i + 1)] * v[(k, j)];
                }
                for k in 0..=i {
                    let delta = g * d[k];
                    v[(k, j)] -= delta;
                }
            }
        }
        for k in 0..=i {
            v[(k, i + 1)] = 0.0;
        }
    }
    for j in 0..n {
        d[j] = v[(n - 1, j)];
        v[(n - 1, j)] = 0.0;
    }
    v[(n - 1, n - 1)] = 1.0;
    e[0] = 0.0;
}

/// Implicit-shift QL iteration on the tridiagonal matrix produced by
/// [`tred2`], accumulating eigenvectors into `v` (EISPACK `tql2`).
fn tql2(v: &mut Matrix<f64>, d: &mut [f64], e: &mut [f64]) -> Result<(), LinalgError> {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0_f64;
    let mut tst1 = 0.0_f64;
    let eps = 2.0_f64.powi(-52);
    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                if iter > MAX_QL_ITERS {
                    return Err(LinalgError::NoConvergence {
                        routine: "tql2",
                        iterations: MAX_QL_ITERS,
                    });
                }
                // Compute implicit shift.
                let g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = p.hypot(1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for item in d.iter_mut().take(n).skip(l + 2) {
                    *item -= h;
                }
                f += h;
                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0_f64;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0_f64;
                let mut s2 = 0.0_f64;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    let g = c * e[i];
                    h = c * p;
                    r = p.hypot(e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);
                    // Accumulate transformation.
                    for k in 0..n {
                        let h = v[(k, i + 1)];
                        v[(k, i + 1)] = s * v[(k, i)] + c * h;
                        v[(k, i)] = c * v[(k, i)] - s * h;
                    }
                }
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;
                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;

    fn reconstruct(decomp: &EigenDecomposition) -> Matrix {
        let n = decomp.values.len();
        let v = &decomp.vectors;
        let lam = Matrix::from_diag(&decomp.values);
        let vl = blas::matmul(v, &lam);
        let mut out = Matrix::zeros(n, n);
        blas::gemm_nt(1.0, &vl, v, 0.0, &mut out);
        out
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let d = sym_eig(&a).unwrap();
        assert!((d.values[0] - 3.0).abs() < 1e-12);
        assert!((d.values[1] - 2.0).abs() < 1e-12);
        assert!((d.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let d = sym_eig(&a).unwrap();
        assert!((d.values[0] - 3.0).abs() < 1e-12);
        assert!((d.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/sqrt(2) up to sign.
        let v0 = d.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v0[0] - v0[1]).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        // Deterministic pseudo-random symmetric matrix.
        let mut state = 42_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let n = 40;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let d = sym_eig(&a).unwrap();
        // Descending order.
        for w in d.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // V^T V = I.
        let vtv = blas::matmul(&d.vectors.transpose(), &d.vectors);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-9, "vtv[{i},{j}]");
            }
        }
        // A = V Λ V^T.
        let rec = reconstruct(&d);
        for i in 0..n {
            for j in 0..n {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-8, "rec[{i},{j}]");
            }
        }
    }

    #[test]
    fn psd_gram_matrix_has_nonnegative_spectrum() {
        // Gram matrix X X^T is PSD.
        let x = Matrix::from_fn(20, 5, |i, j| ((i + 1) * (j + 2)) as f64 % 7.0 - 3.0);
        let mut g = Matrix::zeros(20, 20);
        blas::gemm_nt(1.0, &x, &x, 0.0, &mut g);
        let d = sym_eig(&g).unwrap();
        for &v in &d.values {
            assert!(v > -1e-8, "negative eigenvalue {v}");
        }
        // Rank is at most 5.
        assert!(d.values[5].abs() < 1e-7);
    }

    #[test]
    fn f32_input_solved_in_f64() {
        // A spectrum spanning more than f32's 24-bit relative precision
        // still comes out clean because the solve runs in f64 and only the
        // *input* was f32-rounded.
        let a32: Matrix<f32> = Matrix::from_diag(&[1.0e4_f32, 1.0, 1.0e-4]);
        let d = sym_eig_f64(&a32).unwrap();
        assert!((d.values[0] - 1.0e4).abs() < 1e-3);
        assert!((d.values[1] - 1.0).abs() < 1e-7);
        assert!((d.values[2] - 1.0e-4).abs() < 1e-10);
        // And the native-precision variant matches after rounding.
        let d32 = sym_eig(&a32).unwrap();
        assert_eq!(d32.values[0], 1.0e4_f32);
    }

    #[test]
    fn top_q_extracts_leading_block() {
        let a = Matrix::from_diag(&[5.0, 4.0, 3.0, 2.0]);
        let d = sym_eig(&a).unwrap();
        let (vals, vecs) = d.top_q(2);
        assert_eq!(vals, vec![5.0, 4.0]);
        assert_eq!(vecs.shape(), (4, 2));
    }

    #[test]
    fn empty_and_single() {
        let d = sym_eig::<f64>(&Matrix::zeros(0, 0)).unwrap();
        assert!(d.values.is_empty());
        let d1 = sym_eig(&Matrix::from_diag(&[7.0])).unwrap();
        assert_eq!(d1.values, vec![7.0]);
        assert_eq!(d1.vectors[(0, 0)], 1.0);
    }

    #[test]
    fn non_square_rejected() {
        let a: Matrix = Matrix::zeros(2, 3);
        assert!(matches!(
            sym_eig(&a),
            Err(LinalgError::InvalidArgument { .. })
        ));
    }
}
