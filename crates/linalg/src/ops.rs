//! Level-1 vector operations and numerically careful helpers, generic over
//! the element precision [`Scalar`].
//!
//! Hot-path kernels ([`dot`], [`axpy`], [`sq_dist`]) compute natively in `S`
//! — that is where f32's doubled SIMD width and halved memory traffic pay
//! off. Error-sensitive reductions ([`dot_accum`], [`norm2`]) carry their
//! accumulator in [`Scalar::Accum`] (f64 for both precisions), so
//! orthogonalisation and step-size-critical quantities do not degrade under
//! f32 storage.

use crate::scalar::Scalar;

/// Dot product `x . y`, accumulated natively in `S`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Unrolled four-way accumulation: ~4x faster than a naive loop without
    // `-ffast-math`, and slightly more accurate (pairwise-ish summation).
    let mut acc = [S::ZERO; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut tail = S::ZERO;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Dot product accumulated — and returned — in the wider [`Scalar::Accum`]
/// type, for consumers that keep working at the accumulator precision
/// (e.g. the kernel-assembly row norms, which stay `Accum`-width so bf16
/// storage never rounds a `‖x‖²` that later meets a cancelling `−2x·z`).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot_wide<S: Scalar>(x: &[S], y: &[S]) -> S::Accum {
    assert_eq!(x.len(), y.len(), "dot_wide: length mismatch");
    let mut acc = S::Accum::ZERO;
    for (a, b) in x.iter().zip(y) {
        acc += a.accum() * b.accum();
    }
    acc
}

/// Dot product accumulated in the wider [`Scalar::Accum`] type and rounded
/// back to `S` — for reorthogonalisation and other places where f32
/// cancellation error would compound structurally.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot_accum<S: Scalar>(x: &[S], y: &[S]) -> S {
    S::from_accum(dot_wide(x, y))
}

/// `y <- a * x + y`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy<S: Scalar>(a: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * *xi;
    }
}

/// `x <- a * x`.
#[inline]
pub fn scal<S: Scalar>(a: S, x: &mut [S]) {
    for v in x {
        *v *= a;
    }
}

/// Euclidean norm with overflow-safe scaling (like LAPACK `dnrm2`), the
/// scaled sum-of-squares carried in [`Scalar::Accum`].
pub fn norm2<S: Scalar>(x: &[S]) -> S {
    let mut scale = S::Accum::ZERO;
    let mut ssq = S::Accum::ONE;
    for &v in x {
        if v != S::ZERO {
            let a = v.accum().abs();
            if scale < a {
                ssq = S::Accum::ONE + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    S::from_accum(scale * ssq.sqrt())
}

/// Squared Euclidean distance `||x - y||^2`, computed natively in `S`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn sq_dist<S: Scalar>(x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len(), "sq_dist: length mismatch");
    let mut acc = S::ZERO;
    for (a, b) in x.iter().zip(y) {
        let d = *a - *b;
        acc += d * d;
    }
    acc
}

/// Neumaier-compensated sum of a slice (robust even when later terms exceed
/// the running sum, where plain Kahan loses the compensation).
pub fn ksum(x: &[f64]) -> f64 {
    let mut sum = 0.0_f64;
    let mut c = 0.0_f64;
    for &v in x {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            c += (sum - t) + v;
        } else {
            c += (v - t) + sum;
        }
        sum = t;
    }
    sum + c
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        ksum(x) / x.len() as f64
    }
}

/// Population variance (0 for slices with < 2 elements).
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    let ss: f64 = x.iter().map(|&v| (v - m) * (v - m)).sum();
    ss / x.len() as f64
}

/// Index and value of the maximum element.
///
/// Returns `None` for an empty slice; `NaN` entries are skipped.
pub fn argmax<S: Scalar>(x: &[S]) -> Option<(usize, S)> {
    let mut best: Option<(usize, S)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// `true` when `|a - b| <= atol + rtol * max(|a|, |b|)`.
pub fn approx_eq(a: f64, b: f64, rtol: f64, atol: f64) -> bool {
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..103).map(|i| i as f64 * 0.25).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn dot_works_in_f32() {
        let x: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        let y = vec![1.0_f32; 64];
        let expect: f32 = (0..64).map(|i| i as f32 * 0.5).sum();
        assert!((dot(&x, &y) - expect).abs() < 1e-3);
        // The Accum variant agrees with the f64 computation to f32 eps.
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let yd = vec![1.0_f64; 64];
        assert!((dot_accum(&x, &y) as f64 - dot(&xd, &yd)).abs() < 1e-3);
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn norm2_overflow_safe() {
        let x = [1e200, 1e200];
        let n = norm2(&x);
        assert!(n.is_finite());
        assert!((n - 2.0_f64.sqrt() * 1e200).abs() / n < 1e-12);
    }

    #[test]
    fn norm2_f32_overflow_safe() {
        // Values whose squares overflow f32 (but whose norm is still
        // representable): the Accum-carried sum survives.
        let x = [2.0e38_f32, 2.0e38];
        let n = norm2(&x);
        assert!(n.is_finite() && n > 2.0e38_f32, "norm2 = {n}");
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(norm2::<f64>(&[]), 0.0);
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[0.0_f32], &[2.0_f32]), 4.0_f32);
    }

    #[test]
    fn ksum_beats_naive_on_cancellation() {
        // 1 + 1e16 - 1e16 style cancellation.
        let xs = [1e16, 1.0, -1e16, 1.0];
        assert_eq!(ksum(&xs), 2.0);
    }

    #[test]
    fn mean_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn argmax_skips_nan() {
        let xs = [1.0, f64::NAN, 3.0, 2.0];
        assert_eq!(argmax(&xs), Some((2, 3.0)));
        assert_eq!(argmax::<f64>(&[]), None);
    }

    #[test]
    fn approx_eq_tolerances() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-9));
    }
}
