//! Level-1 vector operations and numerically careful helpers.

/// Dot product `x . y`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Unrolled four-way accumulation: ~4x faster than a naive loop without
    // `-ffast-math`, and slightly more accurate (pairwise-ish summation).
    let mut acc = [0.0_f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `y <- a * x + y`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x <- a * x`.
#[inline]
pub fn scal(a: f64, x: &mut [f64]) {
    for v in x {
        *v *= a;
    }
}

/// Euclidean norm with overflow-safe scaling (like LAPACK `dnrm2`).
pub fn norm2(x: &[f64]) -> f64 {
    let mut scale = 0.0_f64;
    let mut ssq = 1.0_f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Squared Euclidean distance `||x - y||^2`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn sq_dist(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sq_dist: length mismatch");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        let d = a - b;
        acc += d * d;
    }
    acc
}

/// Neumaier-compensated sum of a slice (robust even when later terms exceed
/// the running sum, where plain Kahan loses the compensation).
pub fn ksum(x: &[f64]) -> f64 {
    let mut sum = 0.0_f64;
    let mut c = 0.0_f64;
    for &v in x {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            c += (sum - t) + v;
        } else {
            c += (v - t) + sum;
        }
        sum = t;
    }
    sum + c
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        ksum(x) / x.len() as f64
    }
}

/// Population variance (0 for slices with < 2 elements).
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    let ss: f64 = x.iter().map(|&v| (v - m) * (v - m)).sum();
    ss / x.len() as f64
}

/// Index and value of the maximum element.
///
/// Returns `None` for an empty slice; `NaN` entries are skipped.
pub fn argmax(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// `true` when `|a - b| <= atol + rtol * max(|a|, |b|)`.
pub fn approx_eq(a: f64, b: f64, rtol: f64, atol: f64) -> bool {
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..103).map(|i| i as f64 * 0.25).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn norm2_overflow_safe() {
        let x = [1e200, 1e200];
        let n = norm2(&x);
        assert!(n.is_finite());
        assert!((n - 2.0_f64.sqrt() * 1e200).abs() / n < 1e-12);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn ksum_beats_naive_on_cancellation() {
        // 1 + 1e16 - 1e16 style cancellation.
        let xs = [1e16, 1.0, -1e16, 1.0];
        assert_eq!(ksum(&xs), 2.0);
    }

    #[test]
    fn mean_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn argmax_skips_nan() {
        let xs = [1.0, f64::NAN, 3.0, 2.0];
        assert_eq!(argmax(&xs), Some((2, 3.0)));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn approx_eq_tolerances() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-9));
    }
}
