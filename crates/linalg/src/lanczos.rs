//! Lanczos iteration with full reorthogonalisation for extremal eigenpairs
//! of a symmetric operator.
//!
//! Used where the spectrum's *edge* is needed cheaply — e.g. estimating
//! `λ₁(K)` for the critical-batch-size formula `m*(k) = β(K)/λ₁(K)` — and as
//! an independent cross-check of [`crate::subspace`]. Full
//! reorthogonalisation costs `O(n k²)` but the Krylov dimensions used here
//! are small (tens), so robustness wins over the classic three-term
//! recurrence.

use crate::eigen::sym_eig;
use crate::{ops, LinalgError, Matrix, SymOp};

/// Result of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Converged Ritz values, descending.
    pub values: Vec<f64>,
    /// Ritz vectors (`n x k`), column `i` pairs with `values[i]`.
    pub vectors: Matrix,
    /// Krylov dimension actually used.
    pub krylov_dim: usize,
}

/// Computes the top `q` eigenpairs of `op` with Lanczos.
///
/// `krylov_dim` is the maximum Krylov subspace size; it is clamped to
/// `op.dim()` and should comfortably exceed `q` (3–4x is typical).
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] for `q == 0`, `q > op.dim()` or
/// `krylov_dim < q`, and propagates dense-eigensolver failures.
pub fn lanczos_top_q(
    op: &dyn SymOp,
    q: usize,
    krylov_dim: usize,
    seed: u64,
) -> Result<LanczosResult, LinalgError> {
    let n = op.dim();
    if q == 0 || q > n {
        return Err(LinalgError::InvalidArgument {
            message: format!("lanczos_top_q: q = {q} must be in 1..={n}"),
        });
    }
    let k_max = krylov_dim.min(n);
    if k_max < q {
        return Err(LinalgError::InvalidArgument {
            message: format!("lanczos_top_q: krylov_dim = {krylov_dim} < q = {q}"),
        });
    }

    // Deterministic pseudo-random start vector.
    let mut state = seed | 1;
    let mut v_cur: Vec<f64> = (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
        .collect();
    let norm = ops::norm2(&v_cur);
    ops::scal(1.0 / norm, &mut v_cur);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k_max);
    let mut alphas: Vec<f64> = Vec::with_capacity(k_max);
    let mut betas: Vec<f64> = Vec::with_capacity(k_max);
    let mut w = vec![0.0_f64; n];

    let mut k = 0;
    while k < k_max {
        basis.push(v_cur.clone());
        op.apply(&v_cur, &mut w);
        let alpha = ops::dot(&w, &v_cur);
        alphas.push(alpha);
        // w <- w - alpha v_k - beta v_{k-1}, then full reorthogonalisation.
        ops::axpy(-alpha, &v_cur, &mut w);
        if k > 0 {
            let beta_prev = betas[k - 1];
            ops::axpy(-beta_prev, &basis[k - 1], &mut w);
        }
        for vb in &basis {
            let proj = ops::dot(vb, &w);
            ops::axpy(-proj, vb, &mut w);
        }
        let beta = ops::norm2(&w);
        k += 1;
        if beta < 1e-13 {
            break; // Invariant subspace found.
        }
        betas.push(beta);
        v_cur = w.iter().map(|&x| x / beta).collect();
    }

    // Solve the small tridiagonal eigenproblem via the dense solver.
    let dim = alphas.len();
    let mut t = Matrix::zeros(dim, dim);
    for i in 0..dim {
        t[(i, i)] = alphas[i];
        if i + 1 < dim {
            t[(i, i + 1)] = betas[i];
            t[(i + 1, i)] = betas[i];
        }
    }
    let dec = sym_eig(&t)?;
    let q_eff = q.min(dim);
    let (vals, small_vecs) = dec.top_q(q_eff);

    // Lift Ritz vectors back: columns of basis^T * small_vecs.
    let mut vectors = Matrix::zeros(n, q_eff);
    for j in 0..q_eff {
        let mut col = vec![0.0_f64; n];
        for (i, vb) in basis.iter().enumerate() {
            ops::axpy(small_vecs[(i, j)], vb, &mut col);
        }
        vectors.set_col(j, &col);
    }
    Ok(LanczosResult {
        values: vals,
        vectors,
        krylov_dim: dim,
    })
}

/// Estimates the largest eigenvalue of `op` (convenience wrapper around a
/// short Lanczos run).
///
/// # Errors
///
/// Propagates [`lanczos_top_q`] failures.
pub fn largest_eigenvalue(op: &dyn SymOp, seed: u64) -> Result<f64, LinalgError> {
    let dim = op.dim().clamp(1, 30);
    let result = lanczos_top_q(op, 1, dim, seed)?;
    Ok(result.values[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_top_values() {
        let a = Matrix::from_diag(&[9.0, 7.0, 5.0, 3.0, 1.0]);
        let r = lanczos_top_q(&a, 2, 5, 7).unwrap();
        assert!((r.values[0] - 9.0).abs() < 1e-9, "{:?}", r.values);
        assert!((r.values[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn largest_eigenvalue_of_gram() {
        // A = x x^T has λ₁ = ||x||².
        let x = [1.0, 2.0, 3.0];
        let mut a = Matrix::zeros(3, 3);
        crate::blas::ger(1.0, &x, &x, &mut a);
        let l1 = largest_eigenvalue(&a, 11).unwrap();
        assert!((l1 - 14.0).abs() < 1e-9);
    }

    #[test]
    fn ritz_residuals_small() {
        let n = 50;
        // Tridiagonal Toeplitz: known spectrum 2 - 2cos(pi i/(n+1)).
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let r = lanczos_top_q(&a, 3, n, 1).unwrap();
        let exact = |i: usize| 2.0 - 2.0 * (std::f64::consts::PI * i as f64 / (n as f64 + 1.0)).cos();
        assert!((r.values[0] - exact(n)).abs() < 1e-8);
        for j in 0..3 {
            let v = r.vectors.col(j);
            let mut av = vec![0.0; n];
            a.apply(&v, &mut av);
            ops::axpy(-r.values[j], &v, &mut av);
            assert!(ops::norm2(&av) < 1e-7, "residual pair {j}");
        }
    }

    #[test]
    fn early_breakdown_on_low_rank() {
        // Rank-1 operator: Lanczos must stop early and still return λ₁.
        let x = [2.0, 0.0, 0.0, 0.0];
        let mut a = Matrix::zeros(4, 4);
        crate::blas::ger(1.0, &x, &x, &mut a);
        let r = lanczos_top_q(&a, 1, 4, 3).unwrap();
        assert!((r.values[0] - 4.0).abs() < 1e-9);
        assert!(r.krylov_dim <= 3);
    }

    #[test]
    fn invalid_args() {
        let a = Matrix::identity(3);
        assert!(lanczos_top_q(&a, 0, 3, 1).is_err());
        assert!(lanczos_top_q(&a, 4, 4, 1).is_err());
        assert!(lanczos_top_q(&a, 3, 2, 1).is_err());
    }
}
