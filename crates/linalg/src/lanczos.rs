//! Lanczos iteration with full reorthogonalisation for extremal eigenpairs
//! of a symmetric operator, generic over the element precision [`Scalar`].
//!
//! Used where the spectrum's *edge* is needed cheaply — e.g. estimating
//! `λ₁(K)` for the critical-batch-size formula `m*(k) = β(K)/λ₁(K)` — and as
//! an independent cross-check of [`crate::subspace`]. Full
//! reorthogonalisation costs `O(n k²)` but the Krylov dimensions used here
//! are small (tens), so robustness wins over the classic three-term
//! recurrence.
//!
//! Operator applications run in the operator's precision `S` (the expensive
//! part, and where f32 speed matters); the scalar recurrence (`α`, `β`) and
//! the small tridiagonal eigensolve are carried in `f64`, so Ritz *values*
//! are always full precision — they feed step-size formulas.

use crate::eigen::sym_eig_f64;
use crate::scalar::Scalar;
use crate::{ops, LinalgError, Matrix, SymOp};

/// Result of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult<S: Scalar = f64> {
    /// Converged Ritz values, descending — always `f64` (see module docs).
    pub values: Vec<f64>,
    /// Ritz vectors (`n x k`), column `i` pairs with `values[i]`.
    pub vectors: Matrix<S>,
    /// Krylov dimension actually used.
    pub krylov_dim: usize,
}

/// Computes the top `q` eigenpairs of `op` with Lanczos.
///
/// `krylov_dim` is the maximum Krylov subspace size; it is clamped to
/// `op.dim()` and should comfortably exceed `q` (3–4x is typical).
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] for `q == 0`, `q > op.dim()` or
/// `krylov_dim < q`, and propagates dense-eigensolver failures.
pub fn lanczos_top_q<S: Scalar, O: SymOp<S> + ?Sized>(
    op: &O,
    q: usize,
    krylov_dim: usize,
    seed: u64,
) -> Result<LanczosResult<S>, LinalgError> {
    let n = op.dim();
    if q == 0 || q > n {
        return Err(LinalgError::InvalidArgument {
            message: format!("lanczos_top_q: q = {q} must be in 1..={n}"),
        });
    }
    let k_max = krylov_dim.min(n);
    if k_max < q {
        return Err(LinalgError::InvalidArgument {
            message: format!("lanczos_top_q: krylov_dim = {krylov_dim} < q = {q}"),
        });
    }

    // Deterministic pseudo-random start vector.
    let mut state = seed | 1;
    let mut v_cur: Vec<S> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            S::from_f64(((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
        })
        .collect();
    let norm = ops::norm2(&v_cur);
    ops::scal(S::ONE / norm, &mut v_cur);

    let mut basis: Vec<Vec<S>> = Vec::with_capacity(k_max);
    let mut alphas: Vec<f64> = Vec::with_capacity(k_max);
    let mut betas: Vec<f64> = Vec::with_capacity(k_max);
    let mut w = vec![S::ZERO; n];

    let mut k = 0;
    while k < k_max {
        basis.push(v_cur.clone());
        op.apply(&v_cur, &mut w);
        let alpha = ops::dot_accum(&w, &v_cur).to_f64();
        alphas.push(alpha);
        // w <- w - alpha v_k - beta v_{k-1}, then full reorthogonalisation.
        ops::axpy(S::from_f64(-alpha), &v_cur, &mut w);
        if k > 0 {
            let beta_prev = betas[k - 1];
            ops::axpy(S::from_f64(-beta_prev), &basis[k - 1], &mut w);
        }
        for vb in &basis {
            let proj = ops::dot_accum(vb, &w);
            ops::axpy(-proj, vb, &mut w);
        }
        let beta = ops::norm2(&w).to_f64();
        k += 1;
        // Breakdown tolerance scales with the working precision: ~2e-14 at
        // f64 (slightly tighter than the historical 1e-13), ~1e-5 at f32
        // where an invariant subspace is reached much earlier.
        if beta < 100.0 * S::EPSILON.to_f64() {
            break; // Invariant subspace found.
        }
        betas.push(beta);
        let inv = S::from_f64(1.0 / beta);
        v_cur = w.iter().map(|&x| x * inv).collect();
    }

    // Solve the small tridiagonal eigenproblem via the dense solver (f64).
    let dim = alphas.len();
    let mut t: Matrix<f64> = Matrix::zeros(dim, dim);
    for i in 0..dim {
        t[(i, i)] = alphas[i];
        if i + 1 < dim {
            t[(i, i + 1)] = betas[i];
            t[(i + 1, i)] = betas[i];
        }
    }
    let dec = sym_eig_f64(&t)?;
    let q_eff = q.min(dim);
    let (vals, small_vecs) = dec.top_q(q_eff);

    // Lift Ritz vectors back: columns of basis^T * small_vecs.
    let mut vectors = Matrix::zeros(n, q_eff);
    for j in 0..q_eff {
        let mut col = vec![S::ZERO; n];
        for (i, vb) in basis.iter().enumerate() {
            ops::axpy(S::from_f64(small_vecs[(i, j)]), vb, &mut col);
        }
        vectors.set_col(j, &col);
    }
    Ok(LanczosResult {
        values: vals,
        vectors,
        krylov_dim: dim,
    })
}

/// Estimates the largest eigenvalue of `op` (convenience wrapper around a
/// short Lanczos run).
///
/// # Errors
///
/// Propagates [`lanczos_top_q`] failures.
pub fn largest_eigenvalue<S: Scalar, O: SymOp<S> + ?Sized>(
    op: &O,
    seed: u64,
) -> Result<f64, LinalgError> {
    let dim = op.dim().clamp(1, 30);
    let result = lanczos_top_q(op, 1, dim, seed)?;
    Ok(result.values[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_top_values() {
        let a = Matrix::from_diag(&[9.0, 7.0, 5.0, 3.0, 1.0]);
        let r = lanczos_top_q(&a, 2, 5, 7).unwrap();
        assert!((r.values[0] - 9.0).abs() < 1e-9, "{:?}", r.values);
        assert!((r.values[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn largest_eigenvalue_of_gram() {
        // A = x x^T has λ₁ = ||x||².
        let x = [1.0, 2.0, 3.0];
        let mut a = Matrix::zeros(3, 3);
        crate::blas::ger(1.0, &x, &x, &mut a);
        let l1 = largest_eigenvalue(&a, 11).unwrap();
        assert!((l1 - 14.0).abs() < 1e-9);
    }

    #[test]
    fn f32_operator_recovers_spectrum_edge() {
        let a64 = Matrix::from_diag(&[6.0, 4.0, 2.0, 1.0]);
        let a32: Matrix<f32> = a64.cast();
        let r = lanczos_top_q(&a32, 2, 4, 5).unwrap();
        // Ritz values are carried in f64; for an exactly-representable
        // diagonal the edge comes back to f32-assembly accuracy.
        assert!((r.values[0] - 6.0).abs() < 1e-5, "{:?}", r.values);
        assert!((r.values[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn ritz_residuals_small() {
        let n = 50;
        // Tridiagonal Toeplitz: known spectrum 2 - 2cos(pi i/(n+1)).
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let r = lanczos_top_q(&a, 3, n, 1).unwrap();
        let exact =
            |i: usize| 2.0 - 2.0 * (std::f64::consts::PI * i as f64 / (n as f64 + 1.0)).cos();
        assert!((r.values[0] - exact(n)).abs() < 1e-8);
        for j in 0..3 {
            let v = r.vectors.col(j);
            let mut av = vec![0.0; n];
            a.apply(&v, &mut av);
            ops::axpy(-r.values[j], &v, &mut av);
            assert!(ops::norm2(&av) < 1e-7, "residual pair {j}");
        }
    }

    #[test]
    fn early_breakdown_on_low_rank() {
        // Rank-1 operator: Lanczos must stop early and still return λ₁.
        let x = [2.0, 0.0, 0.0, 0.0];
        let mut a = Matrix::zeros(4, 4);
        crate::blas::ger(1.0, &x, &x, &mut a);
        let r = lanczos_top_q(&a, 1, 4, 3).unwrap();
        assert!((r.values[0] - 4.0).abs() < 1e-9);
        assert!(r.krylov_dim <= 3);
    }

    #[test]
    fn invalid_args() {
        let a: Matrix = Matrix::identity(3);
        assert!(lanczos_top_q(&a, 0, 3, 1).is_err());
        assert!(lanczos_top_q(&a, 4, 4, 1).is_err());
        assert!(lanczos_top_q(&a, 3, 2, 1).is_err());
    }
}
