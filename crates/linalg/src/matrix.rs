use std::fmt;
use std::ops::{Index, IndexMut};

use crate::scalar::Scalar;

/// A dense, row-major matrix, generic over the element precision `S`
/// (default `f64`, so `Matrix` in type position keeps its historical
/// meaning).
///
/// Rows are stored contiguously, so [`Matrix::row`] is a cheap slice view and
/// row-wise kernels (the dominant access pattern in kernel machines, where a
/// row is a data point) are cache friendly. An f32 matrix occupies half the
/// memory of its f64 counterpart — which is exactly the lever the paper's
/// resource model `S_G` measures (see `ep2_device`).
///
/// # Example
///
/// ```
/// use ep2_linalg::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
///
/// // Same code, single precision:
/// let m32: Matrix<f32> = m.cast();
/// assert_eq!(m32[(1, 2)], 5.0_f32);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<S: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: S) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::ONE;
        }
        m
    }

    /// Creates a matrix from a closure `f(i, j)` evaluated at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[S]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix that takes ownership of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[S]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Converts every entry to another precision (via `f64`, which is
    /// lossless for widening and correctly rounded for narrowing).
    pub fn cast<T: Scalar>(&self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| T::from_f64(v.to_f64())).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[S] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [S] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<S> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Writes `values` into column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()` or `values.len() != self.rows()`.
    pub fn set_col(&mut self, j: usize, values: &[S]) {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        assert_eq!(values.len(), self.rows);
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// The full row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// The full row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix<S> {
        let mut t = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Returns a new matrix containing the rows selected by `indices`
    /// (duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix<S> {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Returns the `rows x cols` sub-matrix starting at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix<S> {
        assert!(row0 + rows <= self.rows && col0 + cols <= self.cols);
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            out.row_mut(i)
                .copy_from_slice(&self.row(row0 + i)[col0..col0 + cols]);
        }
        out
    }

    /// Reshapes the matrix to `rows x cols` in place, zero-filling every
    /// entry. The backing buffer is reused whenever its capacity suffices,
    /// so steady-state consumers that cycle through varying shapes (the
    /// serve path's per-batch kernel tiles) stop allocating once they have
    /// seen their largest shape.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, S::ZERO);
    }

    /// The main diagonal as a vector.
    pub fn diag(&self) -> Vec<S> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> S {
        self.diag().iter().copied().sum()
    }

    /// Frobenius norm, computed with a scaled accumulation to avoid overflow.
    pub fn frobenius_norm(&self) -> S {
        crate::ops::norm2(&self.data)
    }

    /// Maximum absolute entry (`max |a_ij|`), or 0 for an empty matrix.
    pub fn max_abs(&self) -> S {
        self.data.iter().fold(S::ZERO, |m, &v| m.max(v.abs()))
    }

    /// Entry-wise scaling in place: `A <- s * A`.
    pub fn scale(&mut self, s: S) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Symmetrises the matrix in place: `A <- (A + A^T) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        let half = S::from_f64(0.5);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = half * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Copies the strictly-lower triangle onto the strictly-upper one:
    /// `A[i][j] <- A[j][i]` for `j > i`. The symmetry pass for producers
    /// that only materialise the lower triangle (the fused lower-only
    /// kernel-matrix assembly) — an exact copy, where [`Self::symmetrize`]
    /// is an average.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn mirror_lower(&mut self) {
        assert!(self.is_square(), "mirror_lower requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                self[(i, j)] = self[(j, i)];
            }
        }
    }

    /// Maximum asymmetry `max |a_ij - a_ji|`; 0 for a symmetric matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn asymmetry(&self) -> S {
        assert!(self.is_square());
        let mut worst = S::ZERO;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }
}

impl<S: Scalar> Index<(usize, usize)> for Matrix<S> {
    type Output = S;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &S {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for Matrix<S> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<S: Scalar> fmt::Debug for Matrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix<{}> {}x{} [", S::NAME, self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            let row = self.row(i);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:9.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - show_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m: Matrix = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diag() {
        let m: Matrix = Matrix::identity(4);
        assert_eq!(m.trace(), 4.0);
        assert_eq!(m.diag(), vec![1.0; 4]);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn from_fn_row_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(37, 53, |i, j| (i * 53 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (53, 37));
        assert_eq!(t.transpose(), m);
        assert_eq!(t[(5, 7)], m[(7, 5)]);
    }

    #[test]
    fn select_rows_duplicates() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f64);
        let s = m.select_rows(&[3, 3, 0]);
        assert_eq!(s.col(0), vec![3.0, 3.0, 0.0]);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let b = m.submatrix(1, 2, 2, 3);
        assert_eq!(b.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(b.row(1), &[12.0, 13.0, 14.0]);
    }

    #[test]
    fn symmetrize_and_asymmetry() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        assert_eq!(m.asymmetry(), 2.0);
        m.symmetrize();
        assert_eq!(m.asymmetry(), 0.0);
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    fn col_set_col() {
        let mut m: Matrix = Matrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0; 3]);
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn f32_matrix_round_trip() {
        let m64 = Matrix::from_fn(7, 5, |i, j| (i as f64 - j as f64) * 0.25);
        let m32: Matrix<f32> = m64.cast();
        assert_eq!(m32.shape(), (7, 5));
        // Quarter-steps are exactly representable in f32.
        assert_eq!(m32.cast::<f64>(), m64);
        assert_eq!(m32.transpose()[(3, 2)], m32[(2, 3)]);
    }

    #[test]
    #[should_panic(expected = "row index")]
    fn row_out_of_bounds_panics() {
        let m: Matrix = Matrix::zeros(2, 2);
        let _ = m.row(2);
    }

    #[test]
    fn debug_is_nonempty() {
        let m: Matrix = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
        let m32: Matrix<f32> = Matrix::zeros(1, 1);
        assert!(format!("{m32:?}").contains("f32"));
    }
}
