//! The [`Scalar`] abstraction: one trait that the whole numeric stack —
//! [`crate::Matrix`], [`crate::ops`], [`crate::blas`], the eigensolvers, and
//! the kernel/training crates above — is generic over.
//!
//! Two instantiations exist: `f32` (the precision the paper's GPU
//! implementation runs in — half the memory per element, so Step 1's
//! `m^max_G` doubles, and roughly double throughput on the memory-bound
//! GEMM/kernel-assembly hot paths) and `f64` (the default, used wherever
//! numerical headroom matters more than speed).
//!
//! Each scalar carries an associated **accumulator type** [`Scalar::Accum`]
//! (`f64` for both instantiations): reductions whose error feeds analytic
//! decisions — norms, Lanczos/QR reorthogonalisation coefficients, and the
//! dense eigensolves behind the EigenPro preconditioner — are carried out in
//! `Accum` precision even when the bulk data is `f32`. This mirrors what
//! well-behaved GPU kernel implementations do (f32 storage, f32 FMA with
//! wider accumulation where it is cheap) and is what makes the `Mixed`
//! training policy in `ep2-core` numerically equivalent to `F64` for the
//! spectral quantities while keeping the hot loops in `f32`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point element type for the numeric stack.
///
/// Implemented for `f32` and `f64`. All constants enter through
/// [`Scalar::from_f64`], so generic code is written once and monomorphised
/// per precision with no runtime dispatch on the hot paths.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
    + Send
    + Sync
    + 'static
{
    /// Wider type used for error-sensitive accumulation (`f64` for both
    /// `f32` and `f64`; lossless to convert into from `Self`).
    type Accum: Scalar<Accum = Self::Accum>;

    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision.
    const EPSILON: Self;
    /// Short type name for reports/CLIs (`"f32"`, `"f64"`).
    const NAME: &'static str;
    /// Storage width in bytes (4 or 8). (The device crate's
    /// `Precision::bytes_per_element` is the source of truth for memory
    /// accounting; this constant describes the scalar itself.)
    const BYTES: usize;

    /// Row height of this precision's register-blocked GEMM microkernel
    /// (the `MR` of a BLIS-style kernel): 6 for `f32`, 8 for `f64`. Sized
    /// empirically so the `MR x NR` accumulator tile stays in the vector
    /// register file (LLVM spills the f32 tile at 8 rows) while keeping
    /// enough independent FMA chains in flight to cover FMA latency.
    const MR: usize;
    /// Column width of the microkernel tile (`NR`): 16 f32 lanes / 8 f64
    /// lanes — one 512-bit vector per accumulator row on AVX-512, two
    /// 256-bit halves on AVX2.
    const NR: usize;

    /// Converts from `f64`, rounding to this precision.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` (lossless for both instantiations).
    fn to_f64(self) -> f64;

    /// The register-blocked GEMM microkernel:
    /// `C[0..MR, 0..NR] += alpha * Ap · Bp`.
    ///
    /// `a_panel` is a packed `MR x k` panel stored k-major
    /// (`Ap[p*MR + i] = A[i, p]`), `b_panel` a packed `k x NR` panel stored
    /// k-major (`Bp[p*NR + j] = B[p, j]`), and the destination tile is the
    /// `MR x NR` block starting at `c[0]` with row stride `ldc`. Each
    /// implementation is written with literal `MR`/`NR` bounds and
    /// fixed-size accumulator arrays so the whole tile stays in vector
    /// registers and the `p` loop autovectorizes on stable Rust.
    ///
    /// # Panics
    ///
    /// Panics if the panels are shorter than `k*MR` / `k*NR` or `c` does not
    /// cover the tile (`(MR-1)*ldc + NR` elements).
    fn microkernel(
        k: usize,
        alpha: Self,
        a_panel: &[Self],
        b_panel: &[Self],
        c: &mut [Self],
        ldc: usize,
    );

    /// Widens into the accumulator type (lossless).
    #[inline]
    fn accum(self) -> Self::Accum {
        Self::Accum::from_f64(self.to_f64())
    }

    /// Narrows from the accumulator type (rounds for `f32`).
    #[inline]
    fn from_accum(a: Self::Accum) -> Self {
        Self::from_f64(a.to_f64())
    }

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Real power.
    fn powf(self, e: Self) -> Self;
    /// Overflow-safe `sqrt(self² + other²)`.
    fn hypot(self, other: Self) -> Self;
    /// Larger of two values (NaN-propagating like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` for finite values.
    fn is_finite(self) -> bool;
    /// `true` for NaN.
    fn is_nan(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal, $bytes:literal, $mr:literal, $nr:literal) => {
        impl Scalar for $t {
            type Accum = f64;

            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const NAME: &'static str = $name;
            const BYTES: usize = $bytes;
            const MR: usize = $mr;
            const NR: usize = $nr;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }

            fn microkernel(
                k: usize,
                alpha: Self,
                a_panel: &[Self],
                b_panel: &[Self],
                c: &mut [Self],
                ldc: usize,
            ) {
                // Literal MR/NR bounds: the accumulator tile is a fixed-size
                // array LLVM keeps entirely in vector registers; the rank-1
                // update in the `p` loop autovectorizes at this type's lane
                // width without intrinsics. The explicit `mul_add` lowers to
                // hardware FMA (Rust never contracts `a*b + c` on its own),
                // which doubles the sustained rate; build with a target that
                // has FMA (see `.cargo/config.toml`) or it falls back to a
                // libm call.
                let mut acc = [[0.0 as $t; $nr]; $mr];
                let a_it = a_panel[..k * $mr].chunks_exact($mr);
                let b_it = b_panel[..k * $nr].chunks_exact($nr);
                for (a, b) in a_it.zip(b_it) {
                    let a: &[$t; $mr] = a.try_into().unwrap();
                    let b: &[$t; $nr] = b.try_into().unwrap();
                    for i in 0..$mr {
                        let ai = a[i];
                        let row = &mut acc[i];
                        for j in 0..$nr {
                            row[j] = <$t>::mul_add(ai, b[j], row[j]);
                        }
                    }
                }
                for (i, row) in acc.iter().enumerate() {
                    let c_row = &mut c[i * ldc..i * ldc + $nr];
                    for j in 0..$nr {
                        c_row[j] += alpha * row[j];
                    }
                }
            }

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }

            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }

            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }

            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }

            #[inline]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }

            #[inline]
            fn powf(self, e: Self) -> Self {
                <$t>::powf(self, e)
            }

            #[inline]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }

            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }

            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }

            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }

            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }

            #[inline]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
        }
    };
}

impl_scalar!(f32, "f32", 4, 6, 16);
impl_scalar!(f64, "f64", 8, 8, 8);

/// Casts a slice between scalar precisions.
pub fn cast_slice<A: Scalar, B: Scalar>(src: &[A]) -> Vec<B> {
    src.iter().map(|&v| B::from_f64(v.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<S: Scalar>(xs: &[S]) -> S {
        xs.iter().copied().sum()
    }

    #[test]
    fn constants_and_conversions() {
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(<f32 as Scalar>::from_f64(1.5), 1.5_f32);
        assert_eq!(Scalar::to_f64(2.5_f32), 2.5_f64);
    }

    #[test]
    fn accum_is_wider_for_f32() {
        // f32 accumulates in f64: summing 1e-4 a million times stays exact
        // to ~1e-10 through the accumulator but drifts visibly in raw f32.
        let mut acc = <f32 as Scalar>::Accum::ZERO;
        let mut raw = 0.0_f32;
        for _ in 0..1_000_000 {
            acc += Scalar::accum(1e-4_f32);
            raw += 1e-4_f32;
        }
        assert!((acc.to_f64() - 1e-4_f32 as f64 * 1e6).abs() < 1e-6);
        assert!((raw as f64 - 100.0).abs() > 1e-2, "raw f32 drift expected");
    }

    #[test]
    fn generic_math_works_for_both() {
        assert_eq!(generic_sum(&[1.0_f32, 2.0, 3.0]), 6.0);
        assert_eq!(generic_sum(&[1.0_f64, 2.0, 3.0]), 6.0);
        assert!((Scalar::sqrt(2.0_f32) - std::f32::consts::SQRT_2).abs() < 1e-7);
        assert_eq!(Scalar::mul_add(2.0_f64, 3.0, 4.0), 10.0);
    }

    fn microkernel_matches_naive<S: Scalar>() {
        let (mr, nr) = (S::MR, S::NR);
        let k = 5;
        let a: Vec<S> = (0..k * mr)
            .map(|i| S::from_f64((i % 7) as f64 * 0.25 - 0.5))
            .collect();
        let b: Vec<S> = (0..k * nr)
            .map(|i| S::from_f64((i % 5) as f64 * 0.5 - 1.0))
            .collect();
        let ldc = nr + 3;
        let mut c = vec![S::from_f64(2.0); mr * ldc];
        S::microkernel(k, S::from_f64(1.5), &a, &b, &mut c, ldc);
        for i in 0..mr {
            for j in 0..nr {
                let mut dot = 0.0;
                for p in 0..k {
                    dot += a[p * mr + i].to_f64() * b[p * nr + j].to_f64();
                }
                let expect = 2.0 + 1.5 * dot;
                assert!(
                    (c[i * ldc + j].to_f64() - expect).abs() < 1e-5,
                    "({i},{j}): {} vs {expect}",
                    c[i * ldc + j]
                );
            }
            // Padding columns between tiles untouched.
            for j in nr..ldc {
                assert_eq!(c[i * ldc + j].to_f64(), 2.0);
            }
        }
    }

    #[test]
    fn microkernels_match_naive() {
        microkernel_matches_naive::<f32>();
        microkernel_matches_naive::<f64>();
        assert_eq!(<f32 as Scalar>::MR * <f32 as Scalar>::NR, 96);
        assert_eq!(<f64 as Scalar>::MR * <f64 as Scalar>::NR, 64);
    }

    #[test]
    fn cast_slice_round_trips() {
        let xs = [1.0_f64, -2.5, 0.125];
        let ys: Vec<f32> = cast_slice(&xs);
        let back: Vec<f64> = cast_slice(&ys);
        assert_eq!(back, xs);
    }
}
