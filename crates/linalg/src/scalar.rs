//! The [`Scalar`] abstraction: one trait that the whole numeric stack —
//! [`crate::Matrix`], [`crate::ops`], [`crate::blas`], the eigensolvers, and
//! the kernel/training crates above — is generic over.
//!
//! Two instantiations exist: `f32` (the precision the paper's GPU
//! implementation runs in — half the memory per element, so Step 1's
//! `m^max_G` doubles, and roughly double throughput on the memory-bound
//! GEMM/kernel-assembly hot paths) and `f64` (the default, used wherever
//! numerical headroom matters more than speed).
//!
//! Each scalar carries an associated **accumulator type** [`Scalar::Accum`]
//! (`f64` for both instantiations): reductions whose error feeds analytic
//! decisions — norms, Lanczos/QR reorthogonalisation coefficients, and the
//! dense eigensolves behind the EigenPro preconditioner — are carried out in
//! `Accum` precision even when the bulk data is `f32`. This mirrors what
//! well-behaved GPU kernel implementations do (f32 storage, f32 FMA with
//! wider accumulation where it is cheap) and is what makes the `Mixed`
//! training policy in `ep2-core` numerically equivalent to `F64` for the
//! spectral quantities while keeping the hot loops in `f32`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point element type for the numeric stack.
///
/// Implemented for `f32` and `f64`. All constants enter through
/// [`Scalar::from_f64`], so generic code is written once and monomorphised
/// per precision with no runtime dispatch on the hot paths.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
    + Send
    + Sync
    + 'static
{
    /// Wider type used for error-sensitive accumulation (`f64` for both
    /// `f32` and `f64`; lossless to convert into from `Self`).
    type Accum: Scalar<Accum = Self::Accum>;

    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision.
    const EPSILON: Self;
    /// Short type name for reports/CLIs (`"f32"`, `"f64"`).
    const NAME: &'static str;
    /// Storage width in bytes (4 or 8). (The device crate's
    /// `Precision::bytes_per_element` is the source of truth for memory
    /// accounting; this constant describes the scalar itself.)
    const BYTES: usize;

    /// Converts from `f64`, rounding to this precision.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` (lossless for both instantiations).
    fn to_f64(self) -> f64;

    /// Widens into the accumulator type (lossless).
    #[inline]
    fn accum(self) -> Self::Accum {
        Self::Accum::from_f64(self.to_f64())
    }

    /// Narrows from the accumulator type (rounds for `f32`).
    #[inline]
    fn from_accum(a: Self::Accum) -> Self {
        Self::from_f64(a.to_f64())
    }

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Real power.
    fn powf(self, e: Self) -> Self;
    /// Overflow-safe `sqrt(self² + other²)`.
    fn hypot(self, other: Self) -> Self;
    /// Larger of two values (NaN-propagating like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` for finite values.
    fn is_finite(self) -> bool;
    /// `true` for NaN.
    fn is_nan(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal, $bytes:literal) => {
        impl Scalar for $t {
            type Accum = f64;

            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const NAME: &'static str = $name;
            const BYTES: usize = $bytes;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }

            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }

            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }

            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }

            #[inline]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }

            #[inline]
            fn powf(self, e: Self) -> Self {
                <$t>::powf(self, e)
            }

            #[inline]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }

            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }

            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }

            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }

            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }

            #[inline]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
        }
    };
}

impl_scalar!(f32, "f32", 4);
impl_scalar!(f64, "f64", 8);

/// Casts a slice between scalar precisions.
pub fn cast_slice<A: Scalar, B: Scalar>(src: &[A]) -> Vec<B> {
    src.iter().map(|&v| B::from_f64(v.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<S: Scalar>(xs: &[S]) -> S {
        xs.iter().copied().sum()
    }

    #[test]
    fn constants_and_conversions() {
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(<f32 as Scalar>::from_f64(1.5), 1.5_f32);
        assert_eq!(Scalar::to_f64(2.5_f32), 2.5_f64);
    }

    #[test]
    fn accum_is_wider_for_f32() {
        // f32 accumulates in f64: summing 1e-4 a million times stays exact
        // to ~1e-10 through the accumulator but drifts visibly in raw f32.
        let mut acc = <f32 as Scalar>::Accum::ZERO;
        let mut raw = 0.0_f32;
        for _ in 0..1_000_000 {
            acc += Scalar::accum(1e-4_f32);
            raw += 1e-4_f32;
        }
        assert!((acc.to_f64() - 1e-4_f32 as f64 * 1e6).abs() < 1e-6);
        assert!((raw as f64 - 100.0).abs() > 1e-2, "raw f32 drift expected");
    }

    #[test]
    fn generic_math_works_for_both() {
        assert_eq!(generic_sum(&[1.0_f32, 2.0, 3.0]), 6.0);
        assert_eq!(generic_sum(&[1.0_f64, 2.0, 3.0]), 6.0);
        assert!((Scalar::sqrt(2.0_f32) - std::f32::consts::SQRT_2).abs() < 1e-7);
        assert_eq!(Scalar::mul_add(2.0_f64, 3.0, 4.0), 10.0);
    }

    #[test]
    fn cast_slice_round_trips() {
        let xs = [1.0_f64, -2.5, 0.125];
        let ys: Vec<f32> = cast_slice(&xs);
        let back: Vec<f64> = cast_slice(&ys);
        assert_eq!(back, xs);
    }
}
