//! The [`Scalar`] abstraction: one trait that the whole numeric stack —
//! [`crate::Matrix`], [`crate::ops`], [`crate::blas`], the eigensolvers, and
//! the kernel/training crates above — is generic over.
//!
//! Three instantiations exist: `f64` (the default, used wherever numerical
//! headroom matters more than speed), `f32` (the precision the paper's GPU
//! implementation runs in — half the memory per element, so Step 1's
//! `m^max_G` doubles, and roughly double throughput on the memory-bound
//! GEMM/kernel-assembly hot paths), and [`Bf16`] (bfloat16 **storage** at a
//! quarter of f64's footprint, software-converted on stable Rust — no
//! intrinsics — with all register-tile compute widened to f32).
//!
//! Each scalar carries two associated precisions:
//!
//! - [`Scalar::Accum`], the **accumulator type** (`f64` for `f32`/`f64`,
//!   `f32` for `Bf16`): reductions whose error feeds analytic decisions —
//!   norms, Lanczos/QR reorthogonalisation coefficients, and the dense
//!   eigensolves behind the EigenPro preconditioner — are carried out in
//!   `Accum` precision even when the bulk data is narrower. This mirrors
//!   what well-behaved GPU kernel implementations do (narrow storage, FMA
//!   with wider accumulation where it is cheap) and is what makes the
//!   `Mixed`/`Bf16` training policies in `ep2-core` numerically faithful to
//!   `F64` for the spectral quantities while keeping the hot loops narrow.
//! - [`Scalar::Compute`], the **register-tile compute type** of the packed
//!   GEMM (`Self` for `f32`/`f64`, `f32` for `Bf16`): the blocked engine in
//!   [`crate::gemm`] packs operand panels into `Compute` arenas — widening
//!   `bf16` elements **once, at pack time** — so the microkernel's inner
//!   FMA loop always runs at full native-float speed; only the `C`
//!   write-back rounds to the storage type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point element type for the numeric stack.
///
/// Implemented for `f32`, `f64` and [`Bf16`]. All constants enter through
/// [`Scalar::from_f64`], so generic code is written once and monomorphised
/// per precision with no runtime dispatch on the hot paths.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
    + Send
    + Sync
    + 'static
{
    /// Wider type used for error-sensitive accumulation (`f64` for `f32`
    /// and `f64`, `f32` for [`Bf16`]; lossless to convert into from
    /// `Self`).
    type Accum: Scalar;

    /// Register-tile compute precision of the packed GEMM: the type the
    /// blocked engine packs operand panels into and runs the microkernel's
    /// FMA loop in. `Self` for the native floats (packing is a plain copy);
    /// `f32` for [`Bf16`] (each element widens exactly once, at pack time,
    /// so the inner loop never touches a 16-bit value — though `C`, which
    /// the engine accumulates *through* across `KC` slabs, still rounds to
    /// storage once per slab; see the `crate::gemm` module docs for the
    /// resulting `ceil(k/KC)`-rounding model). Lossless to convert into
    /// from `Self`. Bounded by [`crate::vmath::VMath`] so every generic
    /// hot path can evaluate lane-batched transcendentals at compute
    /// width without repeating the bound at each call site.
    type Compute: Scalar<Compute = Self::Compute> + crate::vmath::VMath;

    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision.
    const EPSILON: Self;
    /// Short type name for reports/CLIs (`"f32"`, `"f64"`, `"bf16"`).
    const NAME: &'static str;
    /// Storage width in bytes (2, 4 or 8). (The device crate's
    /// `Precision::bytes_per_element` is the source of truth for memory
    /// accounting; this constant describes the scalar itself.)
    const BYTES: usize;

    /// Row height of this precision's register-blocked GEMM microkernel
    /// (the `MR` of a BLIS-style kernel): 6 for `f32`, 8 for `f64`. Sized
    /// empirically so the `MR x NR` accumulator tile stays in the vector
    /// register file (LLVM spills the f32 tile at 8 rows) while keeping
    /// enough independent FMA chains in flight to cover FMA latency.
    /// [`Bf16`] inherits f32's 6x16 — its packed panels *are* f32.
    const MR: usize;
    /// Column width of the microkernel tile (`NR`): 16 f32 lanes / 8 f64
    /// lanes — one 512-bit vector per accumulator row on AVX-512, two
    /// 256-bit halves on AVX2.
    const NR: usize;

    /// Converts from `f64`, rounding to this precision.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` (lossless for every instantiation).
    fn to_f64(self) -> f64;

    /// The register-blocked GEMM microkernel:
    /// `C[0..MR, 0..NR] += alpha * Ap · Bp`.
    ///
    /// `a_panel` is a packed `MR x k` panel stored k-major
    /// (`Ap[p*MR + i] = A[i, p]`), `b_panel` a packed `k x NR` panel stored
    /// k-major (`Bp[p*NR + j] = B[p, j]`) — both already widened to
    /// [`Scalar::Compute`] by the packing pass — and the destination tile
    /// is the `MR x NR` block starting at `c[0]` with row stride `ldc`,
    /// in the storage type. Each implementation is written with literal
    /// `MR`/`NR` bounds and fixed-size accumulator arrays so the whole tile
    /// stays in vector registers and the `p` loop autovectorizes on stable
    /// Rust; the accumulator runs in `Compute` and only the `C` write-back
    /// rounds to `Self` (a no-op for the native floats).
    ///
    /// # Panics
    ///
    /// Panics if the panels are shorter than `k*MR` / `k*NR` or `c` does not
    /// cover the tile (`(MR-1)*ldc + NR` elements).
    fn microkernel(
        k: usize,
        alpha: Self,
        a_panel: &[Self::Compute],
        b_panel: &[Self::Compute],
        c: &mut [Self],
        ldc: usize,
    );

    /// The raw register tile behind [`Scalar::microkernel`]: computes the
    /// packed-panel product `Ap · Bp` into `acc[i*NR + j]` at
    /// [`Scalar::Compute`] width **without** scaling by `alpha` or touching
    /// `C`. This is the write-back seam the fused-epilogue GEMM entry points
    /// in [`crate::gemm`] use: the engine combines the tile with the prior
    /// `C` value itself (replicating `microkernel`'s rounding chain bit for
    /// bit) and hands each fully-accumulated entry to the epilogue while it
    /// is still at compute width.
    ///
    /// # Panics
    ///
    /// Panics if the panels are shorter than `k*MR` / `k*NR` or
    /// `acc.len() < MR*NR`.
    fn microkernel_acc(
        k: usize,
        a_panel: &[Self::Compute],
        b_panel: &[Self::Compute],
        acc: &mut [Self::Compute],
    );

    /// Widens into the packed-GEMM compute type (lossless; identity for the
    /// native floats).
    fn compute(self) -> Self::Compute;

    /// Narrows from the compute type (rounds for [`Bf16`]; identity for the
    /// native floats).
    fn from_compute(v: Self::Compute) -> Self;

    /// Widens into the accumulator type (lossless).
    #[inline]
    fn accum(self) -> Self::Accum {
        Self::Accum::from_f64(self.to_f64())
    }

    /// Narrows from the accumulator type (rounds for `f32`).
    #[inline]
    fn from_accum(a: Self::Accum) -> Self {
        Self::from_f64(a.to_f64())
    }

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Real power.
    fn powf(self, e: Self) -> Self;
    /// Overflow-safe `sqrt(self² + other²)`.
    fn hypot(self, other: Self) -> Self;
    /// Larger of two values (NaN-propagating like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` for finite values.
    fn is_finite(self) -> bool;
    /// `true` for NaN.
    fn is_nan(self) -> bool;
}

/// The shared FMA loop of every microkernel: accumulates the packed-panel
/// product `Ap · Bp` into a fixed-size `MR x NR` register tile in the
/// compute precision `C`.
///
/// Literal `MR`/`NR` bounds: the accumulator tile is a fixed-size array
/// LLVM keeps entirely in vector registers; the rank-1 update in the `p`
/// loop autovectorizes at the compute type's lane width without intrinsics.
/// The explicit `mul_add` lowers to hardware FMA (Rust never contracts
/// `a*b + c` on its own), which doubles the sustained rate; build with a
/// target that has FMA (see `.cargo/config.toml`) or it falls back to a
/// libm call.
#[inline(always)]
fn microkernel_tile<C: Scalar, const MR: usize, const NR: usize>(
    k: usize,
    a_panel: &[C],
    b_panel: &[C],
) -> [[C; NR]; MR] {
    let mut acc = [[C::ZERO; NR]; MR];
    let a_it = a_panel[..k * MR].chunks_exact(MR);
    let b_it = b_panel[..k * NR].chunks_exact(NR);
    for (a, b) in a_it.zip(b_it) {
        let a: &[C; MR] = a.try_into().unwrap();
        let b: &[C; NR] = b.try_into().unwrap();
        for i in 0..MR {
            let ai = a[i];
            let row = &mut acc[i];
            for j in 0..NR {
                row[j] = C::mul_add(ai, b[j], row[j]);
            }
        }
    }
    acc
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal, $bytes:literal, $mr:literal, $nr:literal) => {
        impl Scalar for $t {
            type Accum = f64;
            type Compute = $t;

            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const NAME: &'static str = $name;
            const BYTES: usize = $bytes;
            const MR: usize = $mr;
            const NR: usize = $nr;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }

            fn microkernel(
                k: usize,
                alpha: Self,
                a_panel: &[Self],
                b_panel: &[Self],
                c: &mut [Self],
                ldc: usize,
            ) {
                let acc = microkernel_tile::<$t, $mr, $nr>(k, a_panel, b_panel);
                for (i, row) in acc.iter().enumerate() {
                    let c_row = &mut c[i * ldc..i * ldc + $nr];
                    for j in 0..$nr {
                        c_row[j] += alpha * row[j];
                    }
                }
            }

            fn microkernel_acc(k: usize, a_panel: &[Self], b_panel: &[Self], acc: &mut [Self]) {
                let tile = microkernel_tile::<$t, $mr, $nr>(k, a_panel, b_panel);
                for (row, dst) in tile.iter().zip(acc[..$mr * $nr].chunks_exact_mut($nr)) {
                    dst.copy_from_slice(row);
                }
            }

            #[inline]
            fn compute(self) -> Self {
                self
            }

            #[inline]
            fn from_compute(v: Self) -> Self {
                v
            }

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }

            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }

            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }

            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }

            #[inline]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }

            #[inline]
            fn powf(self, e: Self) -> Self {
                <$t>::powf(self, e)
            }

            #[inline]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }

            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }

            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }

            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }

            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }

            #[inline]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
        }
    };
}

impl_scalar!(f32, "f32", 4, 6, 16);
impl_scalar!(f64, "f64", 8, 8, 8);

/// bfloat16: the upper 16 bits of an IEEE-754 `f32` (1 sign, 8 exponent,
/// 7 mantissa bits) — f32's full range at a quarter of f64's storage.
///
/// This is a **storage** type, software-converted on stable Rust (a `u16`
/// newtype with shift/round bit tricks — no unstable intrinsics, no
/// hardware bf16 requirement). Arithmetic round-trips through `f32`
/// (`to_f32` is a lossless shift; `from_f32` rounds to nearest-even, the
/// IEEE default), so every `Scalar` operation is correctly rounded to bf16.
/// The hot paths never do bf16-by-bf16 arithmetic element-wise: the packed
/// GEMM widens panels to `f32` at pack time ([`Scalar::Compute`]) and
/// error-sensitive reductions accumulate in `f32` ([`Scalar::Accum`]),
/// so bf16 buys `2x` the resident elements per memory slot at f32 compute
/// speed, at the cost of `2^-8` relative rounding per *stored* value —
/// including the GEMM output, which re-rounds once per `KC` slab of a deep
/// product (see `crate::gemm`); the training stack keeps its deep bf16
/// products column-tiled for exactly this reason.
#[derive(Debug, Clone, Copy, Default)]
#[repr(transparent)]
pub struct Bf16(u16);

impl Bf16 {
    /// The raw bit pattern (the upper half of the equivalent `f32`).
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Builds the value with the given bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Widens to `f32` — lossless (bf16 values are exactly the f32 values
    /// whose low 16 mantissa bits are zero).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Rounds an `f32` to the nearest bf16 (ties to even), preserving NaN
    /// (quietened) and infinities.
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        let bits = v.to_bits();
        if v.is_nan() {
            // Keep sign + exponent, force a quiet mantissa bit so the
            // truncation cannot turn NaN into infinity.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest, ties to even: add 0x7FFF plus the parity of the
        // bit that will become the LSB.
        let round = 0x7FFF + ((bits >> 16) & 1);
        Bf16(((bits + round) >> 16) as u16)
    }
}

macro_rules! bf16_binop {
    ($op_trait:ident, $op:ident, $assign_trait:ident, $assign:ident, $sym:tt) => {
        impl $op_trait for Bf16 {
            type Output = Bf16;
            #[inline]
            fn $op(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f32(self.to_f32() $sym rhs.to_f32())
            }
        }
        impl $assign_trait for Bf16 {
            #[inline]
            fn $assign(&mut self, rhs: Bf16) {
                *self = *self $sym rhs;
            }
        }
    };
}

bf16_binop!(Add, add, AddAssign, add_assign, +);
bf16_binop!(Sub, sub, SubAssign, sub_assign, -);
bf16_binop!(Mul, mul, MulAssign, mul_assign, *);
bf16_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for Bf16 {
    type Output = Bf16;
    #[inline]
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl PartialEq for Bf16 {
    #[inline]
    fn eq(&self, other: &Bf16) -> bool {
        // f32 semantics: NaN != NaN, -0.0 == +0.0.
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for Bf16 {
    #[inline]
    fn partial_cmp(&self, other: &Bf16) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Sum for Bf16 {
    fn sum<I: Iterator<Item = Bf16>>(iter: I) -> Bf16 {
        iter.fold(Bf16::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

/// Round-trip a unary `f32` function through bf16.
macro_rules! bf16_unary {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[inline]
        fn $name(self) -> Self {
            Bf16::from_f32(self.to_f32().$name())
        }
    };
}

impl Scalar for Bf16 {
    // One step wider is enough for the accumulated reductions this stack
    // performs (bf16 already has f32's exponent range; the reductions are
    // s- or d-length, far below f32's 2^24 mantissa headroom).
    type Accum = f32;
    // Panels widen to f32 at pack time; the FMA loop is identical to f32's.
    type Compute = f32;

    const ZERO: Self = Bf16(0x0000);
    const ONE: Self = Bf16(0x3F80);
    /// `2^-7`: the gap between 1.0 and the next bf16 (7 mantissa bits ⇒
    /// unit roundoff, i.e. relative rounding error, ≤ `2^-8`).
    const EPSILON: Self = Bf16(0x3C00);
    const NAME: &'static str = "bf16";
    const BYTES: usize = 2;
    const MR: usize = <f32 as Scalar>::MR;
    const NR: usize = <f32 as Scalar>::NR;

    #[inline]
    fn from_f64(v: f64) -> Self {
        // Double rounding (f64 → f32 → bf16) can differ from direct
        // rounding only when the f64 sits within 2^-25 of a bf16 tie —
        // immaterial next to bf16's 2^-9 ulp, and it keeps the conversion
        // on the same fast path `from_f32` uses.
        Bf16::from_f32(v as f32)
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    fn microkernel(
        k: usize,
        alpha: Self,
        a_panel: &[f32],
        b_panel: &[f32],
        c: &mut [Self],
        ldc: usize,
    ) {
        // Identical register-tile FMA loop to the f32 kernel — the panels
        // were widened at pack time — with a single bf16 rounding per C
        // entry at write-back.
        let acc = microkernel_tile::<f32, { <f32 as Scalar>::MR }, { <f32 as Scalar>::NR }>(
            k, a_panel, b_panel,
        );
        let alpha = alpha.to_f32();
        for (i, row) in acc.iter().enumerate() {
            let c_row = &mut c[i * ldc..i * ldc + <f32 as Scalar>::NR];
            for (cv, &r) in c_row.iter_mut().zip(row.iter()) {
                *cv = Bf16::from_f32(cv.to_f32() + alpha * r);
            }
        }
    }

    fn microkernel_acc(k: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
        // Same f32 register tile as `microkernel`; no bf16 rounding happens
        // here — the fused write-back decides where (and whether) to narrow.
        <f32 as Scalar>::microkernel_acc(k, a_panel, b_panel, acc);
    }

    #[inline]
    fn compute(self) -> f32 {
        self.to_f32()
    }

    #[inline]
    fn from_compute(v: f32) -> Self {
        Bf16::from_f32(v)
    }

    bf16_unary!(
        /// Absolute value (exact: clears the sign bit).
        abs
    );
    bf16_unary!(
        /// Square root, correctly rounded to bf16.
        sqrt
    );
    bf16_unary!(
        /// Natural exponential, computed in f32 and rounded once.
        exp
    );
    bf16_unary!(
        /// Natural logarithm, computed in f32 and rounded once.
        ln
    );

    #[inline]
    fn powi(self, n: i32) -> Self {
        Bf16::from_f32(self.to_f32().powi(n))
    }

    #[inline]
    fn powf(self, e: Self) -> Self {
        Bf16::from_f32(self.to_f32().powf(e.to_f32()))
    }

    #[inline]
    fn hypot(self, other: Self) -> Self {
        Bf16::from_f32(self.to_f32().hypot(other.to_f32()))
    }

    #[inline]
    fn max(self, other: Self) -> Self {
        Bf16::from_f32(self.to_f32().max(other.to_f32()))
    }

    #[inline]
    fn min(self, other: Self) -> Self {
        Bf16::from_f32(self.to_f32().min(other.to_f32()))
    }

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Bf16::from_f32(self.to_f32().mul_add(a.to_f32(), b.to_f32()))
    }

    #[inline]
    fn is_finite(self) -> bool {
        self.to_f32().is_finite()
    }

    #[inline]
    fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }
}

/// Casts a slice between scalar precisions.
pub fn cast_slice<A: Scalar, B: Scalar>(src: &[A]) -> Vec<B> {
    src.iter().map(|&v| B::from_f64(v.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<S: Scalar>(xs: &[S]) -> S {
        xs.iter().copied().sum()
    }

    #[test]
    fn constants_and_conversions() {
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(<f32 as Scalar>::from_f64(1.5), 1.5_f32);
        assert_eq!(Scalar::to_f64(2.5_f32), 2.5_f64);
    }

    #[test]
    fn accum_is_wider_for_f32() {
        // f32 accumulates in f64: summing 1e-4 a million times stays exact
        // to ~1e-10 through the accumulator but drifts visibly in raw f32.
        let mut acc = <f32 as Scalar>::Accum::ZERO;
        let mut raw = 0.0_f32;
        for _ in 0..1_000_000 {
            acc += Scalar::accum(1e-4_f32);
            raw += 1e-4_f32;
        }
        assert!((acc.to_f64() - 1e-4_f32 as f64 * 1e6).abs() < 1e-6);
        assert!((raw as f64 - 100.0).abs() > 1e-2, "raw f32 drift expected");
    }

    #[test]
    fn generic_math_works_for_both() {
        assert_eq!(generic_sum(&[1.0_f32, 2.0, 3.0]), 6.0);
        assert_eq!(generic_sum(&[1.0_f64, 2.0, 3.0]), 6.0);
        assert!((Scalar::sqrt(2.0_f32) - std::f32::consts::SQRT_2).abs() < 1e-7);
        assert_eq!(Scalar::mul_add(2.0_f64, 3.0, 4.0), 10.0);
    }

    fn microkernel_matches_naive<S: Scalar>() {
        let (mr, nr) = (S::MR, S::NR);
        let k = 5;
        // Quarter/half-step values: exactly representable in every
        // precision down to bf16, so the expected tile is exact.
        let a: Vec<S::Compute> = (0..k * mr)
            .map(|i| S::Compute::from_f64((i % 7) as f64 * 0.25 - 0.5))
            .collect();
        let b: Vec<S::Compute> = (0..k * nr)
            .map(|i| S::Compute::from_f64((i % 5) as f64 * 0.5 - 1.0))
            .collect();
        let ldc = nr + 3;
        let mut c = vec![S::from_f64(2.0); mr * ldc];
        S::microkernel(k, S::from_f64(1.5), &a, &b, &mut c, ldc);
        for i in 0..mr {
            for j in 0..nr {
                let mut dot = 0.0;
                for p in 0..k {
                    dot += a[p * mr + i].to_f64() * b[p * nr + j].to_f64();
                }
                let expect = 2.0 + 1.5 * dot;
                assert!(
                    (c[i * ldc + j].to_f64() - expect).abs() < 1e-5,
                    "({i},{j}): {} vs {expect}",
                    c[i * ldc + j]
                );
            }
            // Padding columns between tiles untouched.
            for j in nr..ldc {
                assert_eq!(c[i * ldc + j].to_f64(), 2.0);
            }
        }
    }

    #[test]
    fn microkernels_match_naive() {
        microkernel_matches_naive::<f32>();
        microkernel_matches_naive::<f64>();
        microkernel_matches_naive::<Bf16>();
        assert_eq!(<f32 as Scalar>::MR * <f32 as Scalar>::NR, 96);
        assert_eq!(<f64 as Scalar>::MR * <f64 as Scalar>::NR, 64);
        // bf16 shares f32's register tile (its packed panels are f32).
        assert_eq!(<Bf16 as Scalar>::MR, <f32 as Scalar>::MR);
        assert_eq!(<Bf16 as Scalar>::NR, <f32 as Scalar>::NR);
    }

    #[test]
    fn cast_slice_round_trips() {
        let xs = [1.0_f64, -2.5, 0.125];
        let ys: Vec<f32> = cast_slice(&xs);
        let back: Vec<f64> = cast_slice(&ys);
        assert_eq!(back, xs);
        // bf16-representable values survive the round trip too.
        let bs: Vec<Bf16> = cast_slice(&xs);
        let back: Vec<f64> = cast_slice(&bs);
        assert_eq!(back, xs);
    }

    #[test]
    fn bf16_conversions_round_to_nearest_even() {
        // Exactly representable values pass through.
        for v in [0.0_f32, 1.0, -1.0, 0.5, 2.0, 384.0, -0.0078125] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "{v}");
        }
        // 1 + 2^-8 sits exactly between 1.0 and 1 + 2^-7: ties to even
        // round it down to 1.0; anything above the midpoint rounds up.
        assert_eq!(Bf16::from_f32(1.0 + 0.00390625).to_f32(), 1.0);
        assert_eq!(Bf16::from_f32(1.004).to_f32(), 1.0 + 0.0078125);
        // 1 + 3·2^-8 is the midpoint whose even neighbour is above.
        assert_eq!(
            Bf16::from_f32(1.0 + 3.0 * 0.00390625).to_f32(),
            1.0 + 2.0 * 0.0078125
        );
        // Relative rounding error ≤ 2^-8 (the unit roundoff) for normals.
        for i in 1..200 {
            let v = 0.37_f32 * i as f32;
            let r = Bf16::from_f32(v).to_f32();
            assert!(((r - v) / v).abs() <= 1.0 / 256.0 + f32::EPSILON, "{v}");
        }
    }

    #[test]
    fn bf16_specials() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(!Bf16::from_f32(f32::NAN).is_finite());
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
        // Overflow past the largest bf16 (f32::MAX rounds up across the
        // exponent boundary) saturates to inf via rounding, never wraps.
        assert_eq!(Bf16::from_f32(f32::MAX).to_f32(), f32::INFINITY);
        // NaN stays NaN (quiet bit forced), and NaN != NaN.
        let nan = Bf16::from_f32(f32::NAN);
        assert!(nan != nan);
        assert_eq!(-Bf16::ONE + Bf16::ONE, Bf16::ZERO);
    }

    #[test]
    fn bf16_scalar_contract() {
        assert_eq!(Bf16::NAME, "bf16");
        assert_eq!(Bf16::BYTES, 2);
        assert_eq!(Bf16::ONE.to_f64(), 1.0);
        assert_eq!(Bf16::ZERO.to_f64(), 0.0);
        // EPSILON = 2^-7 = gap between 1.0 and the next bf16.
        assert_eq!(Bf16::EPSILON.to_f64(), 0.0078125);
        assert_eq!((Bf16::ONE + Bf16::EPSILON).to_f64(), 1.0078125);
        // Generic math runs (round-tripped through f32).
        assert_eq!(generic_sum(&[Bf16::ONE, Bf16::ONE]).to_f64(), 2.0);
        assert_eq!(Scalar::sqrt(Bf16::from_f64(4.0)).to_f64(), 2.0);
        assert_eq!(
            Scalar::mul_add(Bf16::from_f64(2.0), Bf16::from_f64(3.0), Bf16::ONE).to_f64(),
            7.0
        );
        // Accum is f32: a million 1e-4 adds stay accurate to f32 eps
        // (raw bf16 would stall at ~16: 16 + 1e-4 rounds back to 16).
        let term = Bf16::from_f64(1e-4);
        let mut acc = <Bf16 as Scalar>::Accum::ZERO;
        let mut raw = Bf16::ZERO;
        for _ in 0..100_000 {
            acc += Scalar::accum(term);
            raw += term;
        }
        let exact = 100_000.0 * term.to_f64();
        assert!(
            (acc.to_f64() - exact).abs() < 1e-2,
            "accum {acc} vs {exact}"
        );
        assert!(
            raw.to_f64() < 1.0,
            "raw bf16 accumulation must stall: {raw}"
        );
    }
}
