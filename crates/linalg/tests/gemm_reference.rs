//! Property tests: the packed register-blocked GEMM family against a naive
//! triple-loop f64 reference, over adversarial shapes and α/β values.
//!
//! Shapes cross every blocking boundary of the engine: `0`, `1`, the
//! microkernel edges `MR±1`/`NR±1`, `63/64/65` (crossing `MC = 48` and NR
//! multiples), and `257` (crossing `KC = 256` and `MC`); `α, β ∈
//! {0, 1, −1, 0.5}`; both precisions; all of `gemm`/`gemm_tn`/`gemm_nt`
//! plus `gemv`/`gemv_t` and the seed `gemm_axpy`.
//!
//! # Forward-error bound
//!
//! For inputs in `[-1, 1]`, each output entry is checked against the f64
//! reference within
//!
//! ```text
//! tol_ij = eps_S * ( (k + 8) * |alpha| * absdot_ij  +  4 * (|expected_ij| + 1) )
//! ```
//!
//! where `absdot_ij = Σ_p |a_ip| |b_pj|`: the standard `γ_k`-style bound on
//! a length-`k` product accumulation (the packed kernel's blocked summation
//! and FMA only tighten it), plus a few ulps for the `α`/`β` combination.

use ep2_linalg::gemm::{gemm_packed, gemm_packed_perthread, View, KC, MC, NC};
use ep2_linalg::{blas, Matrix, Scalar};

fn lcg_matrix<S: Scalar>(rows: usize, cols: usize, seed: u64) -> Matrix<S> {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        S::from_f64(((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
    })
}

/// Naive triple-loop product and entry-wise absolute-value product of the
/// logical `m x k` / `k x n` f64 operands.
fn naive_product(a: &Matrix, b: &Matrix) -> (Matrix, Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut raw = Matrix::zeros(m, n);
    let mut abs = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            for j in 0..n {
                raw[(i, j)] += aip * b[(p, j)];
                abs[(i, j)] += aip.abs() * b[(p, j)].abs();
            }
        }
    }
    (raw, abs)
}

const ALPHAS: [f64; 4] = [0.0, 1.0, -1.0, 0.5];
const BETAS: [f64; 4] = [0.0, 1.0, -1.0, 0.5];

/// α/β pairs for one shape: the full 4x4 grid for small problems, a
/// deterministic rotation through the grid otherwise (every pair still
/// appears across the shape sweep).
fn alpha_beta_pairs(mnk: usize, salt: usize) -> Vec<(f64, f64)> {
    if mnk <= 5_000 {
        ALPHAS
            .iter()
            .flat_map(|&a| BETAS.iter().map(move |&b| (a, b)))
            .collect()
    } else {
        let a = ALPHAS[salt % 4];
        let b = BETAS[(salt / 4) % 4];
        vec![(a, b), (-a, b)]
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Variant {
    Nn,
    Tn,
    Nt,
    AxpySeed,
}

/// Runs one (shape, variant) case in precision `S` for every given (α, β)
/// pair, checking each entry against the naive f64 reference within the
/// documented bound. The operands and the reference product are built once
/// per shape.
fn check_case<S: Scalar>(m: usize, k: usize, n: usize, variant: Variant, pairs: &[(f64, f64)]) {
    // Logical operands in f64 (the reference), derived from the S-precision
    // storage so both computations see identical inputs.
    let (a_store, b_store, a_log, b_log): (Matrix<S>, Matrix<S>, Matrix, Matrix) = match variant {
        Variant::Nn | Variant::AxpySeed => {
            let a = lcg_matrix::<S>(m, k, 11);
            let b = lcg_matrix::<S>(k, n, 23);
            let (al, bl) = (a.cast(), b.cast());
            (a, b, al, bl)
        }
        Variant::Tn => {
            let a_t = lcg_matrix::<S>(k, m, 31);
            let b = lcg_matrix::<S>(k, n, 43);
            let (al, bl) = (a_t.cast::<f64>().transpose(), b.cast());
            (a_t, b, al, bl)
        }
        Variant::Nt => {
            let a = lcg_matrix::<S>(m, k, 53);
            let b_t = lcg_matrix::<S>(n, k, 61);
            let (al, bl) = (a.cast(), b_t.cast::<f64>().transpose());
            (a, b_t, al, bl)
        }
    };
    let c0 = lcg_matrix::<S>(m, n, 71);
    let (raw, abs) = naive_product(&a_log, &b_log);
    let eps = S::EPSILON.to_f64();
    for &(alpha, beta) in pairs {
        let (sa, sb) = (S::from_f64(alpha), S::from_f64(beta));
        // The public `blas` entry point (which may take the small-product
        // fast path) and — for the packed variants — the blocked engine
        // forced directly, so microkernel edge shapes are always exercised.
        let mut results: Vec<(&str, Matrix<S>)> = Vec::new();
        let mut c = c0.clone();
        match variant {
            Variant::Nn => blas::gemm(sa, &a_store, &b_store, sb, &mut c),
            Variant::AxpySeed => blas::gemm_axpy(sa, &a_store, &b_store, sb, &mut c),
            Variant::Tn => blas::gemm_tn(sa, &a_store, &b_store, sb, &mut c),
            Variant::Nt => blas::gemm_nt(sa, &a_store, &b_store, sb, &mut c),
        }
        results.push(("blas", c));
        if variant != Variant::AxpySeed {
            let mut c = c0.clone();
            let (av, bv) = match variant {
                Variant::Nn | Variant::AxpySeed => (
                    View::row_major(a_store.as_slice(), m, k),
                    View::row_major(b_store.as_slice(), k, n),
                ),
                Variant::Tn => (
                    View::transposed(a_store.as_slice(), k, m),
                    View::row_major(b_store.as_slice(), k, n),
                ),
                Variant::Nt => (
                    View::row_major(a_store.as_slice(), m, k),
                    View::transposed(b_store.as_slice(), n, k),
                ),
            };
            gemm_packed(sa, av, bv, sb, c.as_mut_slice());
            results.push(("packed", c));
        }
        for (path, c) in &results {
            for i in 0..m {
                for j in 0..n {
                    let expected = alpha * raw[(i, j)] + beta * c0[(i, j)].to_f64();
                    let tol = eps
                        * ((k + 8) as f64 * alpha.abs() * abs[(i, j)]
                            + 4.0 * (expected.abs() + 1.0));
                    let got = c[(i, j)].to_f64();
                    assert!(
                        (got - expected).abs() <= tol,
                        "{:?}/{path} {}: ({m},{k},{n}) alpha={alpha} beta={beta} entry \
                         ({i},{j}): got {got}, expected {expected}, tol {tol}",
                        variant,
                        S::NAME,
                    );
                }
            }
        }
    }
}

/// The adversarial dimension set for precision `S` (microkernel edges are
/// precision-dependent).
fn dims<S: Scalar>() -> Vec<usize> {
    let mut v = vec![
        0,
        1,
        S::MR - 1,
        S::MR,
        S::MR + 1,
        S::NR - 1,
        S::NR,
        S::NR + 1,
        63,
        64,
        65,
        257,
    ];
    v.sort_unstable();
    v.dedup();
    v
}

/// Cost cap per case: keeps the full sweep under control while every listed
/// dimension still appears in every position (shapes over the cap pair the
/// large dimension with small companions).
const MNK_CAP: usize = 1_500_000;

fn sweep<S: Scalar>(variant: Variant) {
    let dims = dims::<S>();
    let mut salt = 0;
    for &m in &dims {
        for &k in &dims {
            for &n in &dims {
                let mnk = m.max(1) * k.max(1) * n.max(1);
                if mnk > MNK_CAP {
                    continue;
                }
                salt += 1;
                check_case::<S>(m, k, n, variant, &alpha_beta_pairs(mnk, salt));
            }
        }
    }
    // One full-blocking case beyond every cache boundary at once.
    check_case::<S>(257, 257, 257, variant, &[(0.5, -1.0)]);
}

#[test]
fn gemm_nn_matches_reference_f32() {
    sweep::<f32>(Variant::Nn);
}

#[test]
fn gemm_nn_matches_reference_f64() {
    sweep::<f64>(Variant::Nn);
}

#[test]
fn gemm_tn_matches_reference_f32() {
    sweep::<f32>(Variant::Tn);
}

#[test]
fn gemm_tn_matches_reference_f64() {
    sweep::<f64>(Variant::Tn);
}

#[test]
fn gemm_nt_matches_reference_f32() {
    sweep::<f32>(Variant::Nt);
}

#[test]
fn gemm_nt_matches_reference_f64() {
    sweep::<f64>(Variant::Nt);
}

#[test]
fn gemm_axpy_seed_matches_reference_f64() {
    // The seed baseline stays correct too (it is the bench comparator).
    sweep::<f64>(Variant::AxpySeed);
}

/// `gemv` / `gemv_t` against the same naive reference (shape grid over
/// `(rows, cols)`, all α/β pairs — the vector routines are cheap).
fn gemv_sweep<S: Scalar>(transposed: bool) {
    let dims = dims::<S>();
    for &m in &dims {
        for &k in &dims {
            if m * k > MNK_CAP {
                continue;
            }
            let a = lcg_matrix::<S>(m, k, 91);
            let (xlen, ylen) = if transposed { (m, k) } else { (k, m) };
            let x: Vec<S> = lcg_matrix::<S>(1, xlen.max(1), 97).into_vec()[..xlen].to_vec();
            let y0: Vec<S> = lcg_matrix::<S>(1, ylen.max(1), 101).into_vec()[..ylen].to_vec();
            let a_log: Matrix = if transposed {
                a.cast::<f64>().transpose()
            } else {
                a.cast()
            };
            for &alpha in &ALPHAS {
                for &beta in &BETAS {
                    let mut y = y0.clone();
                    if transposed {
                        blas::gemv_t(S::from_f64(alpha), &a, &x, S::from_f64(beta), &mut y);
                    } else {
                        blas::gemv(S::from_f64(alpha), &a, &x, S::from_f64(beta), &mut y);
                    }
                    let eps = S::EPSILON.to_f64();
                    let klen = a_log.cols();
                    for (i, &yi) in y.iter().enumerate() {
                        let mut raw = 0.0;
                        let mut abs = 0.0;
                        for (p, &xp) in x.iter().enumerate() {
                            raw += a_log[(i, p)] * xp.to_f64();
                            abs += a_log[(i, p)].abs() * xp.to_f64().abs();
                        }
                        let expected = alpha * raw + beta * y0[i].to_f64();
                        let tol = eps
                            * ((klen + 8) as f64 * alpha.abs() * abs
                                + 4.0 * (expected.abs() + 1.0));
                        assert!(
                            (yi.to_f64() - expected).abs() <= tol,
                            "gemv(t={transposed}) {}: ({m},{k}) alpha={alpha} beta={beta} \
                             entry {i}: got {}, expected {expected}, tol {tol}",
                            S::NAME,
                            yi.to_f64(),
                        );
                    }
                }
            }
        }
    }
}

/// Pins the cooperative shared-slab engine against the per-thread-packing
/// baseline **bit-for-bit** across microkernel-edge shapes and 1/2/N
/// thread budgets: the per-entry accumulation order (ascending-`pc` KC
/// slabs, one register-tile accumulation each) must be invariant to who
/// packs B and which worker sweeps which rows.
fn shared_slab_sweep<S: Scalar>() {
    // Shapes crossing every boundary at once: MR/NR tails, the MC row
    // block, the KC slab, and (for n) the NC column block so a multi-NR
    // cooperative fill happens.
    let shapes: [(usize, usize, usize); 6] = [
        (1, 1, 1),
        (S::MR + 1, 2 * KC + 5, S::NR + 1),
        (MC - 1, KC + 1, 2 * S::NR + 3),
        (MC + 3, 67, NC + 7),
        (2 * MC + 5, KC - 3, S::NR),
        (97, 257, 130),
    ];
    let pairs = [(1.0, 0.0), (0.5, -1.0), (-1.0, 1.0)];
    for &(m, k, n) in &shapes {
        let a = lcg_matrix::<S>(m, k, 7);
        let b = lcg_matrix::<S>(k, n, 13);
        let c0 = lcg_matrix::<S>(m, n, 17);
        for &(alpha, beta) in &pairs {
            let (sa, sb) = (S::from_f64(alpha), S::from_f64(beta));
            let run = |budget: usize, perthread: bool| {
                ep2_runtime::with_budget(budget, || {
                    let mut c = c0.clone();
                    let (av, bv) = (
                        View::row_major(a.as_slice(), m, k),
                        View::row_major(b.as_slice(), k, n),
                    );
                    if perthread {
                        gemm_packed_perthread(sa, av, bv, sb, c.as_mut_slice());
                    } else {
                        gemm_packed(sa, av, bv, sb, c.as_mut_slice());
                    }
                    c
                })
            };
            // The per-thread engine at budget 1 is the PR 2 reference path.
            let reference = run(1, true);
            for budget in [1usize, 2, 5] {
                for perthread in [false, true] {
                    let got = run(budget, perthread);
                    assert_eq!(
                        got.as_slice(),
                        reference.as_slice(),
                        "{} ({m},{k},{n}) alpha={alpha} beta={beta} budget={budget} \
                         perthread={perthread}: shared-slab engine must be bit-for-bit",
                        S::NAME,
                    );
                }
            }
        }
    }
}

#[test]
fn shared_slab_matches_perthread_bitwise_f32() {
    shared_slab_sweep::<f32>();
}

#[test]
fn shared_slab_matches_perthread_bitwise_f64() {
    shared_slab_sweep::<f64>();
}

/// The full NN sweep again, but under explicit 2- and 5-thread budget
/// handles, so the cooperative-packing path (not just the budget-1 inline
/// path) is pinned against the naive f64 reference on every
/// microkernel-edge shape.
#[test]
fn gemm_nn_matches_reference_under_thread_budgets() {
    for budget in [2usize, 5] {
        ep2_runtime::with_budget(budget, || {
            sweep::<f32>(Variant::Nn);
            sweep::<f64>(Variant::Nn);
        });
    }
}

#[test]
fn gemv_matches_reference_both_precisions() {
    gemv_sweep::<f32>(false);
    gemv_sweep::<f64>(false);
}

#[test]
fn gemv_t_matches_reference_both_precisions() {
    gemv_sweep::<f32>(true);
    gemv_sweep::<f64>(true);
}
