//! Property suite for the vectorized transcendental layer: enforces the
//! documented relative-error bound of `vmath` — **≤ 4 ULP for f32, ≤ 8 ULP
//! for f64** — against a correctly-rounded reference (libm evaluated one
//! precision up for f32; libm itself for f64, whose own sub-ULP error the
//! bound absorbs). Coverage deliberately includes the regions a sampling
//! test misses: the gradual-underflow band where results are subnormal,
//! the exact underflow-to-zero range past it, the overflow boundary,
//! NaN/±inf propagation, and lane-remainder tails (slice lengths that are
//! not a multiple of `LANES`).
//!
//! The CI precision matrix runs this suite once per precision leg; each
//! leg exercises the compute width that precision actually runs profiles
//! at (`f64` for the f64 leg, `f32` for the f32/mixed/bf16 legs), the
//! same mapping the fused-parity suite uses.

use ep2_linalg::vmath::{precise_math, VMath};

/// Which compute width this CI leg exercises: honours `EP2_TEST_PRECISION`
/// like the fused-parity suite (mixed and bf16 profiles run at f32 compute
/// width); unset runs everything.
fn leg_selected(compute: &str) -> bool {
    match std::env::var("EP2_TEST_PRECISION") {
        Err(_) => true,
        Ok(p) => match p.as_str() {
            "f64" => compute == "f64",
            "f32" | "mixed" | "bf16" => compute == "f32",
            other => panic!("unknown EP2_TEST_PRECISION {other:?}"),
        },
    }
}

/// ULP distance between two nonnegative (or NaN) floats via the ordered
/// bit encoding — exp never returns a negative, so the bit patterns of
/// `0 ≤ a ≤ +inf` are already monotone.
fn ulp_f32(a: f32, b: f32) -> u64 {
    assert!(!a.is_nan() && !b.is_nan());
    assert!(a.is_sign_positive() && b.is_sign_positive(), "{a} {b}");
    (i64::from(a.to_bits()) - i64::from(b.to_bits())).unsigned_abs()
}

fn ulp_f64(a: f64, b: f64) -> u64 {
    assert!(!a.is_nan() && !b.is_nan());
    assert!(a.is_sign_positive() && b.is_sign_positive(), "{a} {b}");
    (a.to_bits() as i64).abs_diff(b.to_bits() as i64)
}

fn check_f32(x: f32) {
    let got = x.exp_lane();
    let reference = (f64::from(x)).exp() as f32;
    let d = ulp_f32(got, reference);
    assert!(
        d <= 4,
        "exp_lane({x:e}) = {got:e} is {d} ULP from reference {reference:e}"
    );
}

fn check_f64(x: f64) {
    let got = x.exp_lane();
    let reference = x.exp();
    let d = ulp_f64(got, reference);
    assert!(
        d <= 8,
        "exp_lane({x:e}) = {got:e} is {d} ULP from reference {reference:e}"
    );
}

/// Deterministic LCG over u64 (PCG multiplier) — no rand dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    /// Uniform in `[lo, hi)`.
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * u
    }
}

#[test]
fn f32_ulp_bound_over_full_range() {
    if !leg_selected("f32") {
        return;
    }
    // Dense grid across the whole interesting domain (both clamp bounds
    // sit inside it), then random samples over every finite f32 — inputs
    // past the domain collapse to exactly-0 / +inf on both sides.
    let (lo, hi) = (-110.0f64, 95.0f64);
    let steps = 400_000;
    for i in 0..=steps {
        check_f32((lo + (hi - lo) * i as f64 / steps as f64) as f32);
    }
    let mut rng = Lcg(0x9e37_79b9_7f4a_7c15);
    let mut tested = 0;
    while tested < 200_000 {
        let x = f32::from_bits(rng.next() as u32);
        if x.is_nan() {
            continue;
        }
        check_f32(x);
        tested += 1;
    }
}

#[test]
fn f64_ulp_bound_over_full_range() {
    if !leg_selected("f64") {
        return;
    }
    let (lo, hi) = (-750.0f64, 715.0f64);
    let steps = 400_000;
    for i in 0..=steps {
        check_f64(lo + (hi - lo) * i as f64 / steps as f64);
    }
    let mut rng = Lcg(0x2545_f491_4f6c_dd1d);
    let mut tested = 0;
    while tested < 200_000 {
        let x = f64::from_bits(rng.next());
        if x.is_nan() {
            continue;
        }
        check_f64(x);
        tested += 1;
    }
}

#[test]
fn f32_subnormal_outputs_and_exact_underflow() {
    if !leg_selected("f32") {
        return;
    }
    // Gradual underflow: exp(x) is subnormal for x in ~(-103.97, -87.34).
    // The ULP bound must hold right through it (these are the values the
    // split 2^k scaling exists for).
    let mut rng = Lcg(0xd1b5_4a32_d192_ed03);
    let mut saw_subnormal = 0u32;
    for _ in 0..200_000 {
        let x = rng.uniform(-104.5, -87.0) as f32;
        check_f32(x);
        if x.exp_lane().is_subnormal() {
            saw_subnormal += 1;
        }
    }
    assert!(saw_subnormal > 100_000, "sweep missed the subnormal band");
    // Past the band the result is exactly +0, not a stray subnormal.
    for x in [
        -104.0f32,
        -120.0,
        -1e4,
        -3.4e38,
        f32::MIN,
        f32::NEG_INFINITY,
    ] {
        let v = x.exp_lane();
        assert_eq!(v.to_bits(), 0.0f32.to_bits(), "exp_lane({x:e}) = {v:e}");
    }
}

#[test]
fn f64_subnormal_outputs_and_exact_underflow() {
    if !leg_selected("f64") {
        return;
    }
    // exp(x) is subnormal for x in ~(-745.13, -708.40).
    let mut rng = Lcg(0x853c_49e6_748f_ea9b);
    let mut saw_subnormal = 0u32;
    for _ in 0..200_000 {
        let x = rng.uniform(-745.8, -708.0);
        check_f64(x);
        if x.exp_lane().is_subnormal() {
            saw_subnormal += 1;
        }
    }
    assert!(saw_subnormal > 100_000, "sweep missed the subnormal band");
    for x in [-745.2f64, -800.0, -1e6, -1e300, f64::MIN, f64::NEG_INFINITY] {
        let v = x.exp_lane();
        assert_eq!(v.to_bits(), 0.0f64.to_bits(), "exp_lane({x:e}) = {v:e}");
    }
}

#[test]
fn specials_propagate() {
    if leg_selected("f32") {
        assert!(f32::NAN.exp_lane().is_nan());
        assert!((-f32::NAN).exp_lane().is_nan());
        assert_eq!(f32::INFINITY.exp_lane(), f32::INFINITY);
        assert_eq!(f32::NEG_INFINITY.exp_lane().to_bits(), 0);
        assert_eq!(0.0f32.exp_lane().to_bits(), 1.0f32.to_bits());
        assert_eq!((-0.0f32).exp_lane().to_bits(), 1.0f32.to_bits());
        // Overflow boundary: ln(f32::MAX) ≈ 88.7228; one step past it is inf.
        assert_eq!(89.0f32.exp_lane(), f32::INFINITY);
        assert!(88.5f32.exp_lane().is_finite());
    }
    if leg_selected("f64") {
        assert!(f64::NAN.exp_lane().is_nan());
        assert_eq!(f64::INFINITY.exp_lane(), f64::INFINITY);
        assert_eq!(f64::NEG_INFINITY.exp_lane().to_bits(), 0);
        assert_eq!(0.0f64.exp_lane().to_bits(), 1.0f64.to_bits());
        assert_eq!((-0.0f64).exp_lane().to_bits(), 1.0f64.to_bits());
        // Overflow boundary: ln(f64::MAX) ≈ 709.7827.
        assert_eq!(710.0f64.exp_lane(), f64::INFINITY);
        assert!(709.5f64.exp_lane().is_finite());
    }
}

/// Batched `vexp` must be bitwise independent of slice segmentation —
/// including remainder tails shorter than `LANES` — and must match the
/// per-lane kernel exactly (which is what makes fused and two-pass
/// assembly agree bit for bit regardless of row chunking).
fn tails_for<T: VMath + std::fmt::Debug>(values: impl Fn(usize) -> T) {
    let bits = |v: T| v.to_f64().to_bits();
    let max = 2 * T::LANES + 3;
    for len in 1..=max {
        let xs: Vec<T> = (0..len).map(&values).collect();
        let mut batched = xs.clone();
        T::vexp(&mut batched);
        for (i, (&b, &x)) in batched.iter().zip(&xs).enumerate() {
            // One-element slices take the remainder-tail path by
            // construction, so this pins batch == tail == scalar.
            let mut one = [x];
            T::vexp(&mut one);
            assert_eq!(bits(b), bits(one[0]), "len {len} lane {i}");
            if !precise_math() {
                assert_eq!(bits(b), bits(x.exp_lane()), "len {len} lane {i}");
            }
        }
    }
}

#[test]
fn vexp_tails_are_segmentation_independent() {
    if leg_selected("f32") {
        tails_for(|i| -0.83f32 * i as f32 + 0.11);
    }
    if leg_selected("f64") {
        tails_for(|i| -0.83f64 * i as f64 + 0.11);
    }
}

#[test]
fn vsqrt_is_bitwise_libm() {
    // Hardware sqrt is correctly rounded, so the batched path must agree
    // with libm exactly — subnormals, zero, and inf included.
    if leg_selected("f32") {
        let mut rng = Lcg(0xda3e_39cb_94b9_5bdb);
        let mut xs: Vec<f32> = (0..4099)
            .map(|_| f32::from_bits((rng.next() as u32) & 0x7fff_ffff))
            .filter(|x| !x.is_nan())
            .collect();
        xs.extend_from_slice(&[0.0, 1.0e-44, f32::MIN_POSITIVE, f32::MAX, f32::INFINITY]);
        let mut batched = xs.clone();
        f32::vsqrt(&mut batched);
        for (b, x) in batched.iter().zip(&xs) {
            assert_eq!(b.to_bits(), x.sqrt().to_bits(), "sqrt({x:e})");
        }
    }
    if leg_selected("f64") {
        let mut rng = Lcg(0x1234_5678_9abc_def1);
        let mut xs: Vec<f64> = (0..4099)
            .map(|_| f64::from_bits(rng.next() & 0x7fff_ffff_ffff_ffff))
            .filter(|x| !x.is_nan())
            .collect();
        xs.extend_from_slice(&[0.0, 5.0e-324, f64::MIN_POSITIVE, f64::MAX, f64::INFINITY]);
        let mut batched = xs.clone();
        f64::vsqrt(&mut batched);
        for (b, x) in batched.iter().zip(&xs) {
            assert_eq!(b.to_bits(), x.sqrt().to_bits(), "sqrt({x:e})");
        }
    }
}
