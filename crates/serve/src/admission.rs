//! Admission control: shed load explicitly instead of queueing past the
//! latency budget.
//!
//! The controller estimates the wait a new request would see behind the
//! current queue as `queued_rows · est_row_us`. The per-row estimate is
//! *seeded from the cost model* (`n·(d+l)` operations per row at the
//! device's sustained rate — the SGD row cost of `ep2_device::cost` with
//! `m = 1`) and then tracked against reality with an EWMA of measured
//! batch times, so a mis-calibrated device spec converges to the truth
//! after a few batches instead of shedding forever (or never).

/// A rejected request: the service is over its latency budget.
///
/// Carried back to the client verbatim (the line protocol's `busy`
/// response) so callers can implement informed backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Estimated wait behind the current queue, in microseconds.
    pub est_wait_us: u64,
    /// The budget that estimate exceeded, in microseconds.
    pub budget_us: u64,
}

/// Latency-budget admission controller (see module docs).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    budget_us: u64,
    est_row_us: f64,
}

/// EWMA smoothing factor for measured per-row cost: new observations move
/// the estimate 20% of the way, so a single anomalous batch (page fault,
/// scheduler hiccup) cannot flip admission decisions on its own.
const EWMA_ALPHA: f64 = 0.2;

impl AdmissionController {
    /// Creates a controller with a latency budget and a cost-model seed for
    /// the per-row execution time (both in microseconds).
    pub fn new(budget_us: u64, seed_row_us: f64) -> Self {
        AdmissionController {
            budget_us,
            est_row_us: seed_row_us.max(0.0),
        }
    }

    /// The latency budget, in microseconds.
    pub fn budget_us(&self) -> u64 {
        self.budget_us
    }

    /// Current per-row execution estimate, in microseconds.
    pub fn est_row_us(&self) -> f64 {
        self.est_row_us
    }

    /// Estimated wait behind `queued_rows` rows, in microseconds.
    pub fn est_wait_us(&self, queued_rows: usize) -> u64 {
        (queued_rows as f64 * self.est_row_us).ceil() as u64
    }

    /// Admits or sheds a request arriving behind `queued_rows` queued rows.
    ///
    /// An empty queue always admits — a service that can shed its *only*
    /// request would never recover from a pessimistic estimate.
    ///
    /// # Errors
    ///
    /// Returns [`Shed`] when the estimated wait exceeds the budget.
    pub fn admit(&self, queued_rows: usize) -> Result<(), Shed> {
        if queued_rows == 0 {
            return Ok(());
        }
        let est_wait_us = self.est_wait_us(queued_rows);
        if est_wait_us > self.budget_us {
            Err(Shed {
                est_wait_us,
                budget_us: self.budget_us,
            })
        } else {
            Ok(())
        }
    }

    /// Folds a measured batch (`rows` rows in `elapsed_us`) into the
    /// per-row estimate.
    pub fn observe_batch(&mut self, rows: usize, elapsed_us: f64) {
        if rows == 0 || !elapsed_us.is_finite() || elapsed_us < 0.0 {
            return;
        }
        let measured = elapsed_us / rows as f64;
        self.est_row_us = (1.0 - EWMA_ALPHA) * self.est_row_us + EWMA_ALPHA * measured;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_always_admits() {
        let c = AdmissionController::new(1, 1e9);
        assert!(c.admit(0).is_ok());
    }

    #[test]
    fn sheds_when_estimated_wait_exceeds_budget() {
        let c = AdmissionController::new(1000, 100.0);
        assert!(c.admit(10).is_ok()); // 1000 ≤ 1000
        let shed = c.admit(11).unwrap_err(); // 1100 > 1000
        assert_eq!(shed.est_wait_us, 1100);
        assert_eq!(shed.budget_us, 1000);
    }

    #[test]
    fn ewma_converges_toward_measured_cost() {
        let mut c = AdmissionController::new(1000, 1000.0);
        for _ in 0..50 {
            c.observe_batch(10, 100.0); // 10 µs/row measured
        }
        assert!(c.est_row_us() < 11.0, "est {} µs", c.est_row_us());
        assert!(c.admit(50).is_ok()); // ~500 µs wait under the 1000 µs budget
    }

    #[test]
    fn bogus_observations_ignored() {
        let mut c = AdmissionController::new(1000, 10.0);
        c.observe_batch(0, 100.0);
        c.observe_batch(10, f64::NAN);
        c.observe_batch(10, -5.0);
        assert_eq!(c.est_row_us(), 10.0);
    }
}
