//! The serving engine: a shared request queue drained by a pool of
//! batch-executing workers on the unified runtime.
//!
//! The model is shared read-only behind an `Arc` — workers never clone the
//! centers. Every per-request and per-batch buffer (request structs, the
//! staged input matrix, the kernel panel, the output block) is recycled,
//! so after warm-up the hot path performs no heap allocation.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use ep2_core::{KernelModel, PredictBuffers};
use ep2_device::{MemoryError, MemoryLedger};
use ep2_linalg::{Matrix, Scalar};
use parking_lot::Mutex;
use std::sync::Condvar;

use crate::admission::{AdmissionController, Shed};
use crate::batch::MicroBatcher;
use crate::metrics::percentile_us;
use crate::plan::ServePlan;

/// One queued prediction request; pooled and recycled by the engine.
#[derive(Debug)]
struct Request<S> {
    id: String,
    features: Vec<S>,
    enq_us: u64,
}

impl<S> Default for Request<S> {
    fn default() -> Self {
        Request {
            id: String::new(),
            features: Vec::new(),
            enq_us: 0,
        }
    }
}

#[derive(Debug)]
struct QueueState<S> {
    pending: VecDeque<Request<S>>,
    pool: Vec<Request<S>>,
    closed: bool,
}

impl<S> Default for QueueState<S> {
    fn default() -> Self {
        QueueState {
            pending: VecDeque::new(),
            pool: Vec::new(),
            closed: false,
        }
    }
}

/// Consecutive worker recoveries tolerated before a panic is treated as
/// deterministic (it would loop forever) and propagated.
const MAX_CONSECUTIVE_RECOVERIES: u64 = 8;

/// Counters and latency samples, snapshotted by [`ServeEngine::stats`].
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests answered with predictions.
    pub served: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Worker panics recovered by requeueing the batch.
    pub recoveries: u64,
    /// End-to-end per-request latencies (enqueue → reply), µs.
    pub latencies_us: Vec<u64>,
}

impl ServeStats {
    /// Nearest-rank latency percentile over the recorded samples, µs.
    pub fn percentile_us(&self, p: f64) -> u64 {
        percentile_us(&self.latencies_us, p)
    }
}

/// Persistent micro-batching prediction service over one model (see
/// module docs). Generic over the serving precision `S`.
#[derive(Debug)]
pub struct ServeEngine<S: Scalar> {
    model: Arc<KernelModel<S>>,
    plan: ServePlan,
    batcher: MicroBatcher,
    // The queue pairs a *std* mutex with its condvar (the vendored
    // parking_lot stand-in has no Condvar); poisoning is recovered in
    // `lock_queue` to keep parking_lot's panic-free semantics.
    queue: std::sync::Mutex<QueueState<S>>,
    work_ready: Condvar,
    admission: Mutex<AdmissionController>,
    stats: Mutex<ServeStats>,
    consecutive_recoveries: std::sync::atomic::AtomicU64,
    start: Instant,
    /// Ledger charges for the resident model and every worker's tile
    /// slots, held for the engine's lifetime.
    _charges: Vec<ep2_device::memory::Allocation>,
}

impl<S: Scalar> ServeEngine<S> {
    /// Builds an engine, charging the plan's footprint against `ledger`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] when the resident model plus per-worker
    /// tiles do not fit the ledger budget.
    pub fn new(
        model: Arc<KernelModel<S>>,
        plan: ServePlan,
        ledger: &MemoryLedger,
    ) -> Result<Self, MemoryError> {
        let charges = plan.charge(ledger)?;
        let batcher = MicroBatcher::new(plan.batch_rows, plan.window_us);
        let admission = AdmissionController::new(plan.latency_budget_us, plan.est_row_us);
        Ok(ServeEngine {
            model,
            plan,
            batcher,
            queue: std::sync::Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            admission: Mutex::new(admission),
            stats: Mutex::new(ServeStats::default()),
            consecutive_recoveries: std::sync::atomic::AtomicU64::new(0),
            start: Instant::now(),
            _charges: charges,
        })
    }

    /// The resolved plan the engine runs under.
    pub fn plan(&self) -> &ServePlan {
        &self.plan
    }

    /// The served model.
    pub fn model(&self) -> &Arc<KernelModel<S>> {
        &self.model
    }

    /// Microseconds since the engine started — the clock all queue
    /// timestamps use.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState<S>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot of the counters and latency samples.
    pub fn stats(&self) -> ServeStats {
        self.stats.lock().clone()
    }

    /// Submits a prediction request, subject to admission control.
    ///
    /// On admission the features are copied into a pooled request (the
    /// caller's slice is not retained) and a worker is woken.
    ///
    /// # Errors
    ///
    /// Returns [`Shed`] when the estimated wait behind the current queue
    /// exceeds the latency budget; the request is *not* enqueued.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the model dimension.
    pub fn submit(&self, id: &str, features: &[S]) -> Result<(), Shed> {
        assert_eq!(
            features.len(),
            self.model.dim(),
            "serve: feature dim mismatch"
        );
        let mut q = self.lock_queue();
        if let Err(shed) = self.admission.lock().admit(q.pending.len()) {
            drop(q);
            self.stats.lock().shed += 1;
            return Err(shed);
        }
        let mut req = q.pool.pop().unwrap_or_default();
        req.id.clear();
        req.id.push_str(id);
        req.features.clear();
        req.features.extend_from_slice(features);
        req.enq_us = self.now_us();
        q.pending.push_back(req);
        drop(q);
        self.work_ready.notify_one();
        Ok(())
    }

    /// Runs the service: spawns the plan's workers on the runtime, calls
    /// `driver` inline (the request-feeding side — e.g. the stdin reader),
    /// then drains the queue and joins the workers. Replies are delivered
    /// to `sink(id, outputs)` from worker threads; the outputs slice is
    /// only valid for the duration of the call.
    pub fn run<R>(&self, sink: &(dyn Fn(&str, &[S]) + Sync), driver: impl FnOnce() -> R) -> R {
        ep2_runtime::scope(|s| {
            for _ in 0..self.plan.workers {
                s.spawn(self.plan.worker_threads, || self.worker_loop(sink));
            }
            // Close the queue even when the driver panics: the workers
            // block on the condvar and would otherwise never be joined.
            let result = catch_unwind(AssertUnwindSafe(driver));
            {
                let mut q = self.lock_queue();
                q.closed = true;
            }
            self.work_ready.notify_all();
            match result {
                Ok(value) => value,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    }

    /// Worker: wait for a batch to be due, execute it, reply, recycle.
    fn worker_loop(&self, sink: &(dyn Fn(&str, &[S]) + Sync)) {
        let mut bufs = PredictBuffers::new();
        let mut batch: Vec<Request<S>> = Vec::new();
        let mut x: Matrix<S> = Matrix::zeros(1, 1);
        let mut out: Matrix<S> = Matrix::zeros(1, 1);
        loop {
            {
                let mut q = self.lock_queue();
                let take = loop {
                    let now = self.now_us();
                    let oldest = q.pending.front().map(|r| r.enq_us);
                    match oldest.and_then(|t0| self.batcher.ready(q.pending.len(), t0, now)) {
                        // A closed queue drains in max-size batches; an
                        // open one honours the batching window.
                        Some(rows) => break rows,
                        None if q.closed => match q.pending.len() {
                            0 => return,
                            depth => break depth.min(self.batcher.max_rows),
                        },
                        None => {
                            let wait = match oldest {
                                Some(t0) => self.batcher.wait_us(t0, self.now_us()).max(1),
                                None => self.batcher.window_us.max(1),
                            };
                            q = self
                                .work_ready
                                .wait_timeout(q, std::time::Duration::from_micros(wait))
                                .unwrap_or_else(|e| e.into_inner())
                                .0;
                        }
                    }
                };
                batch.extend(q.pending.drain(..take));
            }
            self.exec_batch(&mut batch, &mut bufs, &mut x, &mut out, sink);
        }
    }

    fn exec_batch(
        &self,
        batch: &mut Vec<Request<S>>,
        bufs: &mut PredictBuffers<S>,
        x: &mut Matrix<S>,
        out: &mut Matrix<S>,
        sink: &(dyn Fn(&str, &[S]) + Sync),
    ) {
        let rows = batch.len();
        let d = self.model.dim();
        let l = self.model.n_outputs();
        x.resize(rows, d);
        for (i, req) in batch.iter().enumerate() {
            x.row_mut(i).copy_from_slice(&req.features);
        }
        out.resize(rows, l);
        let seq = {
            let mut st = self.stats.lock();
            st.batches += 1;
            st.batches
        };
        let t0 = self.now_us();
        let executed = catch_unwind(AssertUnwindSafe(|| {
            // `serve_worker_panic@step=k` kills the k-th batch mid-flight;
            // the recovery path below requeues it, so chaos tests can pin
            // that a worker panic loses no request.
            if ep2_runtime::faults::fire_at("serve_worker_panic", seq) {
                panic!("injected serve worker panic (batch {seq})");
            }
            self.model.predict_with_into(x, &self.plan.opts, bufs, out);
        }));
        let elapsed = (self.now_us() - t0) as f64;
        use std::sync::atomic::Ordering;
        match executed {
            Ok(()) => {
                self.consecutive_recoveries.store(0, Ordering::Relaxed);
                self.admission.lock().observe_batch(rows, elapsed);
                let now = self.now_us();
                for (i, req) in batch.iter().enumerate() {
                    sink(&req.id, out.row(i));
                }
                let mut st = self.stats.lock();
                st.served += rows as u64;
                st.latencies_us
                    .extend(batch.iter().map(|r| now.saturating_sub(r.enq_us)));
                drop(st);
                let mut q = self.lock_queue();
                for mut req in batch.drain(..) {
                    req.features.clear();
                    q.pool.push(req);
                }
            }
            Err(payload) => {
                // Self-heal: the batch goes back to the queue front in its
                // original order; another (or this) worker retries it. A
                // panic that keeps recurring is deterministic — propagate
                // it instead of spinning on the same doomed batch.
                let streak = self.consecutive_recoveries.fetch_add(1, Ordering::Relaxed) + 1;
                if streak > MAX_CONSECUTIVE_RECOVERIES {
                    // Release the other workers before dying so the scope
                    // join cannot deadlock on the condvar.
                    self.lock_queue().closed = true;
                    self.work_ready.notify_all();
                    std::panic::resume_unwind(payload);
                }
                self.stats.lock().recoveries += 1;
                let mut q = self.lock_queue();
                for req in batch.drain(..).rev() {
                    q.pending.push_front(req);
                }
                drop(q);
                self.work_ready.notify_one();
            }
        }
    }
}
