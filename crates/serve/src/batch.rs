//! Micro-batch formation policy.
//!
//! The batcher is deliberately *pure*: it owns no queue and reads no clock.
//! Callers feed it the observable state — queue depth, enqueue time of the
//! oldest request, current time — and it answers "form a batch now, of this
//! many rows, or keep waiting". That makes bursty-arrival behaviour
//! testable with a simulated clock (no sleeps, no flakes), and the engine's
//! worker loop trivially correct: it only has to report state honestly.

/// When to cut a micro-batch: at `max_rows` queued, or when the oldest
/// waiting request has aged past `window_us`.
///
/// The two limits trade throughput against tail latency. A full batch
/// amortises the kernel evaluation best; the window bounds how long a lone
/// request in a quiet period can be held hostage waiting for company.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroBatcher {
    /// Largest batch the plan allows (memory- and capacity-bounded).
    pub max_rows: usize,
    /// Longest the oldest request may wait before a partial batch is cut,
    /// in microseconds.
    pub window_us: u64,
}

impl MicroBatcher {
    /// Creates a batcher; `max_rows` is clamped to at least 1.
    pub fn new(max_rows: usize, window_us: u64) -> Self {
        MicroBatcher {
            max_rows: max_rows.max(1),
            window_us,
        }
    }

    /// Decides whether a batch should be cut *now*.
    ///
    /// `depth` is the number of queued requests, `oldest_enq_us` the
    /// enqueue timestamp of the front request, `now_us` the current clock —
    /// both in microseconds on any common monotonic origin. Returns
    /// `Some(rows)` (how many rows to take, `min(depth, max_rows)`) when
    /// either trigger fires, `None` while waiting is still profitable.
    pub fn ready(&self, depth: usize, oldest_enq_us: u64, now_us: u64) -> Option<usize> {
        if depth == 0 {
            return None;
        }
        if depth >= self.max_rows || now_us.saturating_sub(oldest_enq_us) >= self.window_us {
            Some(depth.min(self.max_rows))
        } else {
            None
        }
    }

    /// How long (µs) the front request may still wait before the window
    /// trigger fires — the worker's condvar timeout. Zero when a batch is
    /// already due.
    pub fn wait_us(&self, oldest_enq_us: u64, now_us: u64) -> u64 {
        let aged = now_us.saturating_sub(oldest_enq_us);
        self.window_us.saturating_sub(aged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_never_ready() {
        let b = MicroBatcher::new(8, 1000);
        assert_eq!(b.ready(0, 0, u64::MAX), None);
    }

    #[test]
    fn full_batch_cuts_immediately() {
        let b = MicroBatcher::new(8, 1000);
        assert_eq!(b.ready(8, 500, 500), Some(8));
        assert_eq!(b.ready(20, 500, 500), Some(8));
    }

    #[test]
    fn window_expiry_cuts_partial_batch() {
        let b = MicroBatcher::new(8, 1000);
        assert_eq!(b.ready(3, 100, 1099), None);
        assert_eq!(b.ready(3, 100, 1100), Some(3));
    }

    #[test]
    fn wait_us_counts_down_to_window() {
        let b = MicroBatcher::new(8, 1000);
        assert_eq!(b.wait_us(100, 100), 1000);
        assert_eq!(b.wait_us(100, 600), 500);
        assert_eq!(b.wait_us(100, 5000), 0);
    }

    #[test]
    fn max_rows_clamped_to_one() {
        let b = MicroBatcher::new(0, 10);
        assert_eq!(b.max_rows, 1);
        assert_eq!(b.ready(1, 0, 0), Some(1));
    }
}
