//! Latency accounting: per-request end-to-end times and percentiles.

/// Nearest-rank percentile of an *unsorted* sample set (the recorder sorts
/// a copy). `p` in `[0, 100]`; returns 0 for an empty sample.
pub fn percentile_us(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(percentile_us(&[], 50.0), 0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 50.0), 50);
        assert_eq!(percentile_us(&v, 99.0), 99);
        assert_eq!(percentile_us(&v, 100.0), 100);
        assert_eq!(percentile_us(&v, 0.0), 1);
    }

    #[test]
    fn unsorted_input_handled() {
        assert_eq!(percentile_us(&[30, 10, 20], 50.0), 20);
    }
}
