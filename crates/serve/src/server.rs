//! The line protocol: a network-free request/response framing over any
//! `BufRead`/`Write` pair (`ep2 serve` wires it to stdin/stdout).
//!
//! Requests, one per line:
//!
//! ```text
//! predict <id> <v1,v2,...,vd>   ask for f(x) on one feature row
//! ping                          liveness probe
//! stats                         counters + latency percentiles so far
//! shutdown                      drain the queue and exit
//! ```
//!
//! Responses (interleaved; match them to requests by `<id>`):
//!
//! ```text
//! ok <id> <y1,...,yl>           prediction
//! busy <id> <est_wait_us> <budget_us>   shed by admission control
//! err <id> <message>            malformed request
//! pong / stats ... / bye
//! ```
//!
//! Floats are rendered with Rust's shortest round-trippable formatting, so
//! `ok` payloads parse back to bit-identical values at the serving
//! precision — the protocol does not erode the engine's bit-for-bit parity
//! with offline prediction.

use std::io::{BufRead, Write};

use ep2_linalg::Scalar;
use parking_lot::Mutex;

use crate::engine::ServeEngine;

/// Formats one output row as `v1,v2,...` with round-trippable floats.
fn format_row<S: Scalar>(out: &mut String, row: &[S]) {
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `{}` on f64 prints the shortest digits that re-parse exactly;
        // S -> f64 widening is lossless at every serving precision.
        out.push_str(&format!("{}", v.to_f64()));
    }
}

/// Parses a `v1,v2,...` feature payload at the serving precision.
fn parse_features<S: Scalar>(payload: &str, dim: usize, buf: &mut Vec<S>) -> Result<(), String> {
    buf.clear();
    for tok in payload.split(',') {
        let v: f64 = tok
            .trim()
            .parse()
            .map_err(|_| format!("bad float {tok:?}"))?;
        buf.push(S::from_f64(v));
    }
    if buf.len() != dim {
        return Err(format!("expected {dim} features, got {}", buf.len()));
    }
    Ok(())
}

/// Serves the line protocol until `shutdown` or end-of-input, then drains
/// the queue and joins the workers. Returns the number of protocol lines
/// handled.
///
/// Worker replies and driver-side responses (`busy`, `err`, `pong`, ...)
/// share one locked writer; every response is a single line, so
/// interleaving is per-response and clients demultiplex by id.
pub fn serve_lines<S: Scalar>(
    engine: &ServeEngine<S>,
    reader: impl BufRead,
    writer: impl Write + Send,
) -> std::io::Result<u64> {
    let out = Mutex::new(writer);
    let sink = |id: &str, row: &[S]| {
        let mut line = String::with_capacity(32);
        format_row(&mut line, row);
        let mut w = out.lock();
        // A broken client pipe must not kill the worker; drop the reply.
        let _ = writeln!(w, "ok {id} {line}");
        let _ = w.flush();
    };
    let dim = engine.model().dim();
    let mut handled = 0_u64;
    let result = engine.run(&sink, || -> std::io::Result<u64> {
        let mut features: Vec<S> = Vec::with_capacity(dim);
        for line in reader.lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            handled += 1;
            let mut parts = line.splitn(3, ' ');
            let verb = parts.next().unwrap_or("");
            match verb {
                "predict" => {
                    let id = parts.next().unwrap_or("");
                    let payload = parts.next().unwrap_or("");
                    if id.is_empty() || payload.is_empty() {
                        let mut w = out.lock();
                        writeln!(w, "err - usage: predict <id> <v1,v2,...>")?;
                        w.flush()?;
                        continue;
                    }
                    match parse_features::<S>(payload, dim, &mut features) {
                        Ok(()) => {
                            if let Err(shed) = engine.submit(id, &features) {
                                let mut w = out.lock();
                                writeln!(w, "busy {id} {} {}", shed.est_wait_us, shed.budget_us)?;
                                w.flush()?;
                            }
                        }
                        Err(msg) => {
                            let mut w = out.lock();
                            writeln!(w, "err {id} {msg}")?;
                            w.flush()?;
                        }
                    }
                }
                "ping" => {
                    let mut w = out.lock();
                    writeln!(w, "pong")?;
                    w.flush()?;
                }
                "stats" => {
                    let st = engine.stats();
                    let mut w = out.lock();
                    writeln!(
                        w,
                        "stats served={} shed={} batches={} recoveries={} p50_us={} p99_us={}",
                        st.served,
                        st.shed,
                        st.batches,
                        st.recoveries,
                        st.percentile_us(50.0),
                        st.percentile_us(99.0),
                    )?;
                    w.flush()?;
                }
                "shutdown" => break,
                other => {
                    let mut w = out.lock();
                    writeln!(w, "err - unknown command {other:?}")?;
                    w.flush()?;
                }
            }
        }
        Ok(handled)
    })?;
    let mut w = out.lock();
    let _ = writeln!(w, "bye");
    let _ = w.flush();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_parsing_rejects_bad_payloads() {
        let mut buf: Vec<f64> = Vec::new();
        assert!(parse_features::<f64>("1.0,2.0", 2, &mut buf).is_ok());
        assert_eq!(buf, vec![1.0, 2.0]);
        assert!(parse_features::<f64>("1.0", 2, &mut buf).is_err());
        assert!(parse_features::<f64>("1.0,abc", 2, &mut buf).is_err());
    }

    #[test]
    fn formatting_round_trips_exactly() {
        let vals = [0.1_f64, 1.0 / 3.0, -2.5e-9, f64::MIN_POSITIVE];
        let mut line = String::new();
        format_row(&mut line, &vals);
        let parsed: Vec<f64> = line.split(',').map(|t| t.parse().unwrap()).collect();
        assert_eq!(parsed, vals);
    }
}
