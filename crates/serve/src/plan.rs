//! Service sizing: batch cap, tiling, worker count, and latency budget
//! derived from the device spec, the memory ledger, and the cost model.

use ep2_core::PredictOptions;
use ep2_device::cost::{self, ProblemShape};
use ep2_device::{MemoryError, MemoryLedger, Precision, ResourceSpec};

/// User-tunable knobs for [`ServePlan::plan`]; `None`/default fields are
/// derived from the device.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Micro-batch row cap; derived from `C_G` and the memory plan when
    /// unset.
    pub batch_rows: Option<usize>,
    /// Batching window in microseconds (how long a lone request may wait
    /// for company); defaults to [`DEFAULT_WINDOW_US`].
    pub window_us: Option<u64>,
    /// Admission latency budget in microseconds; defaults to a multiple of
    /// the estimated full-batch execution time.
    pub latency_budget_us: Option<u64>,
    /// Worker count; defaults to 2 (capped by the thread budget).
    pub workers: Option<usize>,
}

/// Default batching window: 2 ms keeps single-request latency humane while
/// still coalescing bursts that arrive within one scheduling quantum.
pub const DEFAULT_WINDOW_US: u64 = 2_000;

/// Default latency budget as a multiple of the estimated full-batch
/// execution time: a request may wait behind roughly four batches' worth
/// of work before the service starts shedding.
const BUDGET_BATCHES: f64 = 4.0;

/// The resolved serving plan (see module docs).
#[derive(Debug, Clone)]
pub struct ServePlan {
    /// Micro-batch row cap.
    pub batch_rows: usize,
    /// Prediction blocking/tiling the workers execute with.
    pub opts: PredictOptions,
    /// Number of batch-executing workers.
    pub workers: usize,
    /// Thread budget each worker runs its GEMMs under.
    pub worker_threads: usize,
    /// Ledger slots held for the model lifetime (centers + weights +
    /// center-norm cache), scaled by the precision's slot width.
    pub resident_slots: f64,
    /// Ledger slots held per worker for its batch tile (kernel panel,
    /// staged input, output block).
    pub per_worker_slots: f64,
    /// Admission latency budget, µs.
    pub latency_budget_us: u64,
    /// Batching window, µs.
    pub window_us: u64,
    /// Cost-model seed for the per-row execution time, µs.
    pub est_row_us: f64,
}

impl ServePlan {
    /// Plans a service for an `n`-center, `d`-feature, `l`-output model on
    /// `spec` at `precision`.
    ///
    /// Sizing follows the paper's Step-1 logic transposed to inference:
    /// the capacity cap is the largest batch one launch executes at full
    /// utilisation (`m` with `m·n·(d+l) ≤ C_G`), the memory cap comes from
    /// [`PredictOptions::planned`] over the slots left after the resident
    /// model, and the per-row time seed is the SGD row cost at the
    /// sustained rate. bf16 models hold half the resident slots of f32
    /// (`slot_factor = 0.5`), so the same card serves twice the centers.
    pub fn plan(
        n: usize,
        d: usize,
        l: usize,
        spec: &ResourceSpec,
        precision: Precision,
        config: &ServeConfig,
    ) -> ServePlan {
        let slot = precision.slot_factor();
        // Resident set: centers (n·d) + weights (n·l) + center-norm cache
        // (n accumulator slots, charged at one slot each).
        let resident_slots = (n * (d + l + 1)) as f64 * slot;
        let row_ops = (n * (d + l)) as f64;
        let est_row_us = row_ops / spec.peak_flops * 1e6;

        let workers = config
            .workers
            .unwrap_or(2)
            .clamp(1, ep2_runtime::configured_threads());
        let worker_threads = (ep2_runtime::configured_threads() / workers).max(1);

        // Capacity cap: the inference analogue of Step 1's m^max_G. One
        // batch of m rows is one launch of m·n·(d+l) ops (cost::sgd's
        // compute term); past C_G / (n·(d+l)) rows the launch saturates
        // and per-row latency stops improving.
        let saturating = ProblemShape {
            n,
            m: 1,
            d,
            l,
            s: 0,
            q: 0,
        };
        let row_cost = cost::sgd(&saturating).compute_ops.max(1.0);
        let capacity_rows = ((spec.parallel_capacity / row_cost) as usize).max(1);

        // Memory cap: plan the blocking out of what the resident set
        // leaves, split across workers.
        let free = (spec.memory_floats - resident_slots).max(0.0) / workers as f64;
        let planned = PredictOptions::planned(n, d, l, free, precision);
        let batch_rows = config
            .batch_rows
            .unwrap_or(capacity_rows)
            .clamp(1, planned.block_rows);
        let opts = PredictOptions {
            block_rows: batch_rows,
            ..planned
        };
        let per_worker_slots = opts.transient_slots(n, d, l, precision);

        let window_us = config.window_us.unwrap_or(DEFAULT_WINDOW_US);
        let latency_budget_us = config.latency_budget_us.unwrap_or_else(|| {
            let batch_us = batch_rows as f64 * est_row_us + spec.launch_overhead * 1e6;
            (BUDGET_BATCHES * batch_us).ceil().max(1.0) as u64 + window_us
        });

        ServePlan {
            batch_rows,
            opts,
            workers,
            worker_threads,
            resident_slots,
            per_worker_slots,
            latency_budget_us,
            window_us,
            est_row_us,
        }
    }

    /// Charges the plan's full footprint — resident model plus every
    /// worker's tile slots — against `ledger`, returning the RAII guards.
    ///
    /// # Errors
    ///
    /// Returns the ledger's [`MemoryError`] when the footprint does not
    /// fit, so `ep2 serve` fails loudly at startup instead of thrashing.
    pub fn charge(
        &self,
        ledger: &MemoryLedger,
    ) -> Result<Vec<ep2_device::memory::Allocation>, MemoryError> {
        let mut guards = vec![ledger.alloc(self.resident_slots)?];
        for _ in 0..self.workers {
            guards.push(ledger.alloc(self.per_worker_slots)?);
        }
        Ok(guards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ResourceSpec {
        ResourceSpec::scaled_virtual_gpu()
    }

    #[test]
    fn batch_cap_respects_capacity_and_memory() {
        let plan = ServePlan::plan(
            10_000,
            390,
            10,
            &spec(),
            Precision::F32,
            &Default::default(),
        );
        // scaled_virtual_gpu: C_G = 4e9, n·(d+l) = 4e6 → capacity cap 1000.
        assert!(plan.batch_rows <= 1000);
        assert!(plan.batch_rows >= 1);
        let footprint = plan.resident_slots + plan.workers as f64 * plan.per_worker_slots;
        assert!(footprint <= spec().memory_floats);
    }

    #[test]
    fn bf16_halves_resident_slots() {
        let f32_plan = ServePlan::plan(5_000, 64, 4, &spec(), Precision::F32, &Default::default());
        let bf_plan = ServePlan::plan(5_000, 64, 4, &spec(), Precision::Bf16, &Default::default());
        assert_eq!(bf_plan.resident_slots, f32_plan.resident_slots / 2.0);
    }

    #[test]
    fn explicit_batch_rows_still_memory_clamped() {
        let cfg = ServeConfig {
            batch_rows: Some(1 << 30),
            ..Default::default()
        };
        let plan = ServePlan::plan(10_000, 390, 10, &spec(), Precision::F32, &cfg);
        assert!(plan.batch_rows <= plan.opts.block_rows);
        assert!(
            (plan.per_worker_slots + plan.resident_slots) * plan.workers as f64
                >= plan.per_worker_slots
        );
    }

    #[test]
    fn charge_fits_ledger_and_releases() {
        let plan = ServePlan::plan(2_000, 32, 2, &spec(), Precision::F32, &Default::default());
        let ledger = MemoryLedger::new(spec().memory_floats);
        {
            let guards = plan.charge(&ledger).unwrap();
            assert_eq!(guards.len(), plan.workers + 1);
            assert!(ledger.in_use() > 0.0);
        }
        assert_eq!(ledger.in_use(), 0.0);
    }

    #[test]
    fn latency_budget_covers_at_least_one_batch() {
        let plan = ServePlan::plan(
            10_000,
            390,
            10,
            &spec(),
            Precision::F32,
            &Default::default(),
        );
        let batch_us = plan.batch_rows as f64 * plan.est_row_us;
        assert!(plan.latency_budget_us as f64 >= batch_us);
    }
}
