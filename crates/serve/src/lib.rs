//! # ep2-serve — persistent micro-batching inference service
//!
//! Batch prediction amortises: one tiled kernel evaluation over `m` rows
//! costs `m·n·(d+l)` operations but only one pass over the resident
//! centers, so per-row latency falls steeply with batch size until the
//! launch saturates (the same `m^max_G` effect the trainer exploits in
//! Step 1). A request-at-a-time server forfeits all of that. This crate
//! keeps a trained [`KernelModel`](ep2_core::KernelModel) resident and
//! *micro-batches* incoming prediction requests:
//!
//! - [`plan::ServePlan`] sizes the service from the device: resident
//!   memory (centers + weights) is charged to a
//!   [`MemoryLedger`](ep2_device::MemoryLedger), per-batch tile slots are
//!   reserved per worker, and the batch cap comes from the paper's cost
//!   model (`ep2_device::cost`) and the memory plan
//!   ([`PredictOptions::planned`](ep2_core::PredictOptions::planned)).
//! - [`batch::MicroBatcher`] decides *when* a batch forms: as soon as the
//!   cap is reached, or when the oldest queued request has waited out the
//!   batching window — a pure function of (depth, oldest, now), so the
//!   policy is testable under a simulated clock.
//! - [`admission::AdmissionController`] sheds load explicitly: when the
//!   queued work (estimated from an EWMA of measured per-row cost, seeded
//!   by the cost model) exceeds the latency budget, the request is
//!   rejected with a `busy` response instead of silently queueing past the
//!   budget.
//! - [`engine::ServeEngine`] runs the workers on [`ep2_runtime::scope`],
//!   shares the model read-only via `Arc`, and recycles request and
//!   matrix buffers so the steady-state hot path allocates nothing.
//! - [`server`] exposes the whole thing over a line protocol on any
//!   `BufRead`/`Write` pair (the `ep2 serve` command wires it to
//!   stdin/stdout).
//!
//! Served predictions are computed by the exact same
//! [`predict_with`](ep2_core::KernelModel::predict_with) code path as
//! offline evaluation, so a served micro-batch is bit-for-bit identical to
//! an offline `predict_with` call on the same batch at the same precision.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod batch;
pub mod engine;
pub mod metrics;
pub mod plan;
pub mod server;

pub use admission::{AdmissionController, Shed};
pub use batch::MicroBatcher;
pub use engine::{ServeEngine, ServeStats};
pub use plan::{ServeConfig, ServePlan};
