//! The persistent worker pool: chunked data-parallel jobs with cross-job
//! stealing, plus scoped long-running stage tasks.
//!
//! # Why this shape
//!
//! The workloads here are coarse (GEMM row blocks, kernel-tile assembly,
//! packed-panel fills), so the pool optimises for *predictable completion*
//! over micro-latency:
//!
//! - A job is a closure plus an atomic chunk cursor. Workers and the
//!   submitting thread claim chunks through `fetch_add`; whoever claims a
//!   chunk runs it. There is no per-chunk allocation and no channel.
//! - The submitter always participates (caller-runs) and blocks until the
//!   chunk-done count reaches the total, which is also what makes the
//!   lifetime erasure sound: the closure cannot die before every chunk has
//!   finished executing.
//! - Workers scan *all* live jobs (stealing): a worker that finishes one
//!   job's chunks moves to the next job instead of idling, which is what
//!   keeps concurrent GEMMs from different pipeline stages from fencing
//!   off cores from each other.
//! - Stage tasks ([`scope`]) occupy a worker (or a dedicated runtime
//!   thread when none is idle) for their whole life and are joined by the
//!   scope before it returns — panics are captured and re-thrown at the
//!   join point, first payload wins.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// One published data-parallel job: a lifetime-erased chunk closure plus
/// the claim/done cursors. The submitter keeps the closure alive until
/// `done == n_chunks`, so workers may dereference `run` for exactly the
/// chunks they claim.
struct Job {
    /// Lifetime-erased `&'submitter dyn Fn(usize)`: sound because the
    /// submitter joins (waits for `done == n_chunks`) before returning.
    run: &'static (dyn Fn(usize) + Sync),
    n_chunks: usize,
    /// Next unclaimed chunk index; claims are unique via `fetch_add`.
    next: AtomicUsize,
    /// Chunks fully executed (panicked chunks count — they are done).
    done: AtomicUsize,
    /// Extra workers still allowed to join (the submitter is implicit).
    extra_slots: AtomicUsize,
    /// First panic payload raised by any chunk.
    panic: Mutex<Option<PanicPayload>>,
    /// Completion signal for the submitter.
    complete_lock: Mutex<()>,
    complete_cv: Condvar,
}

impl Job {
    /// Claims and runs chunks until the cursor runs out. Chunks execute
    /// under a budget handle of 1 (see the crate docs for why).
    fn run_chunks(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_chunks {
                break;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                crate::with_budget(1, || (self.run)(i));
            }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            let done = self.done.fetch_add(1, Ordering::AcqRel) + 1;
            if done == self.n_chunks {
                let _g = self.complete_lock.lock().unwrap_or_else(|e| e.into_inner());
                self.complete_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n_chunks
    }

    /// Blocks until every chunk has finished executing.
    fn wait_done(&self) {
        let mut g = self.complete_lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.done.load(Ordering::Acquire) < self.n_chunks {
            g = self.complete_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A long-running stage task queued for a pool worker.
struct StageTask {
    /// Lifetime-erased task body; the owning [`TaskScope`] joins before its
    /// borrows expire.
    run: Box<dyn FnOnce() + Send + 'static>,
    budget: usize,
    join: Arc<JoinState>,
}

impl StageTask {
    fn execute(self) {
        let StageTask { run, budget, join } = self;
        let result = catch_unwind(AssertUnwindSafe(|| crate::with_budget(budget, run)));
        if let Err(payload) = result {
            join.record_panic(payload);
        }
        join.task_done();
    }
}

/// Join bookkeeping for one [`scope`]: outstanding task count + first panic.
#[derive(Default)]
struct JoinState {
    lock: Mutex<usize>,
    cv: Condvar,
    panic: Mutex<Option<PanicPayload>>,
}

impl JoinState {
    fn add_task(&self) {
        *self.lock.lock().unwrap_or_else(|e| e.into_inner()) += 1;
    }

    fn task_done(&self) {
        let mut g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        *g -= 1;
        if *g == 0 {
            self.cv.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while *g > 0 {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn record_panic(&self, payload: PanicPayload) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(payload);
    }

    fn take_panic(&self) -> Option<PanicPayload> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// What a woken worker found to do.
enum Work {
    Job(Arc<Job>),
    Task(StageTask),
}

struct State {
    jobs: Vec<Arc<Job>>,
    tasks: VecDeque<StageTask>,
    /// Workers currently parked on the condvar.
    idle: usize,
    /// Workers ever spawned (the pool grows to the largest budget seen).
    spawned: usize,
}

struct Pool {
    state: Mutex<State>,
    work_cv: Condvar,
}

impl Pool {
    fn get() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State {
                jobs: Vec::new(),
                tasks: VecDeque::new(),
                idle: 0,
                spawned: 0,
            }),
            work_cv: Condvar::new(),
        })
    }

    /// Grows the pool so at least `threads - 1` persistent workers exist
    /// (the caller is the remaining participant). Capped defensively.
    fn ensure_workers(&'static self, threads: usize) {
        const MAX_WORKERS: usize = 256;
        let want = threads.saturating_sub(1).min(MAX_WORKERS);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.spawned < want {
            st.spawned += 1;
            let id = st.spawned;
            std::thread::Builder::new()
                .name(format!("ep2-worker-{id}"))
                .spawn(move || self.worker_loop())
                .expect("spawn ep2-runtime worker");
        }
    }

    fn worker_loop(&'static self) {
        loop {
            let work = {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(task) = st.tasks.pop_front() {
                        break Work::Task(task);
                    }
                    st.jobs.retain(|j| !j.exhausted());
                    if let Some(job) = claim_job(&st.jobs) {
                        break Work::Job(job);
                    }
                    st.idle += 1;
                    st = self.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    st.idle -= 1;
                }
            };
            match work {
                Work::Task(task) => task.execute(),
                Work::Job(job) => job.run_chunks(),
            }
        }
    }

    fn publish(&'static self, job: Arc<Job>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.jobs.push(job);
        self.work_cv.notify_all();
    }

    fn retire(&'static self, job: &Arc<Job>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.jobs.retain(|j| !Arc::ptr_eq(j, job));
    }

    /// Queues a stage task on an idle worker, or spawns a dedicated runtime
    /// thread when every worker is busy (a stage task pins its thread for
    /// its whole life — queueing it behind another stage would deadlock
    /// pipelines whose stages expect to run concurrently).
    fn submit_task(&'static self, task: StageTask) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.idle > st.tasks.len() {
            st.tasks.push_back(task);
            self.work_cv.notify_all();
            return;
        }
        drop(st);
        let join = Arc::clone(&task.join);
        let spawned = std::thread::Builder::new()
            .name("ep2-stage".to_string())
            .spawn(move || task.execute());
        if let Err(e) = spawned {
            // The task never ran (spawn consumed and dropped it): balance
            // its join count before surfacing the failure, or the owning
            // scope's join would hang forever on a task no thread will
            // ever finish.
            join.task_done();
            panic!("spawn ep2-runtime stage thread: {e}");
        }
    }
}

/// First live job with unclaimed chunks and a free worker slot.
fn claim_job(jobs: &[Arc<Job>]) -> Option<Arc<Job>> {
    for job in jobs {
        if job.exhausted() {
            continue;
        }
        let took = job
            .extra_slots
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
            .is_ok();
        if took {
            return Some(Arc::clone(job));
        }
    }
    None
}

/// Runs `f(i)` for every `i in 0..n_chunks` across at most `threads`
/// participants (the calling thread plus pool workers), returning when
/// every chunk has executed.
///
/// Chunks run under a thread-budget handle of 1; with `threads <= 1` (or a
/// single chunk) everything runs inline on the caller under its current
/// handle. A panic in any chunk is re-thrown on the caller *after* all
/// chunks finish (first payload wins).
pub fn parallel_for<F>(n_chunks: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n_chunks == 0 {
        return;
    }
    let threads = threads.max(1).min(n_chunks);
    if threads <= 1 {
        for i in 0..n_chunks {
            f(i);
        }
        return;
    }
    let pool = Pool::get();
    pool.ensure_workers(threads);
    let run: &(dyn Fn(usize) + Sync) = &f;
    // SAFETY: `run` outlives the job because this function waits for every
    // chunk to finish (`wait_done`) before returning — on the panic path
    // included. Workers only dereference `run` for chunks they claimed,
    // and all claims precede `done == n_chunks`.
    let run: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run) };
    let job = Arc::new(Job {
        run,
        n_chunks,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        extra_slots: AtomicUsize::new(threads - 1),
        panic: Mutex::new(None),
        complete_lock: Mutex::new(()),
        complete_cv: Condvar::new(),
    });
    pool.publish(Arc::clone(&job));
    job.run_chunks();
    job.wait_done();
    pool.retire(&job);
    let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// Handle for spawning scoped stage tasks; see [`scope`].
pub struct TaskScope<'env> {
    join: Arc<JoinState>,
    /// Invariant over `'env`, like `std::thread::Scope`: spawned tasks may
    /// borrow anything that outlives the `scope` call, and nothing shorter.
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for TaskScope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskScope").finish_non_exhaustive()
    }
}

impl<'env> TaskScope<'env> {
    /// Spawns a long-running stage task under a thread-budget handle of
    /// `budget`. The task starts immediately (idle pool worker or a
    /// dedicated runtime thread) and is joined before [`scope`] returns.
    pub fn spawn<F>(&self, budget: usize, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.join.add_task();
        let run: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: `scope` joins every task (waits for the count to reach
        // zero) before returning — on the panic path included — so the
        // borrows inside `f` outlive its execution.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(run) };
        Pool::get().submit_task(StageTask {
            run,
            budget: budget.max(1),
            join: Arc::clone(&self.join),
        });
    }
}

/// Runs `f` with a [`TaskScope`] whose spawned stage tasks are all joined
/// before this function returns. If the body or any task panics, the panic
/// resumes on the caller after the join (body's payload first).
///
/// This is the only place in the workspace allowed to put long-lived
/// workers on threads — every pipeline stage that used to `thread::scope`
/// its own workers goes through here instead, so the stages it runs are
/// visible to (and budgeted by) the same runtime that serves their inner
/// data-parallel jobs.
pub fn scope<'env, R>(f: impl FnOnce(&TaskScope<'env>) -> R) -> R {
    let ts = TaskScope {
        join: Arc::new(JoinState::default()),
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&ts)));
    ts.join.wait_all();
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if let Some(p) = ts.join.take_panic() {
                resume_unwind(p);
            }
            value
        }
    }
}
