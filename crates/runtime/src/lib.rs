//! # ep2-runtime — the unified execution runtime
//!
//! One pool, one thread budget. Every parallel layer of the workspace —
//! the blocked GEMM's row stripes and cooperative B-packing, the kernel
//! assembly's element-wise passes, the out-of-core stream producers — runs
//! on the primitives in this crate, so the whole stack is accountable to a
//! single core budget instead of each layer guessing on its own.
//!
//! The pieces:
//!
//! - **Budget resolution** ([`configured_threads`]): `EP2_THREADS` (or the
//!   deprecated `EP2_NUM_THREADS` alias), falling back to the machine's
//!   available parallelism. Read once per process.
//! - **Budget handles** ([`with_budget`], [`current_threads`]): a
//!   thread-scoped override that callers use to *partition* the budget —
//!   e.g. the streamed trainer gives each tile-assembly producer
//!   `producer_threads` and the update GEMM `update_threads`, and every
//!   nested `parallel_for` sizes itself from the handle it inherited.
//! - **Persistent worker pool** ([`parallel_for`]): data-parallel jobs are
//!   published as chunked task queues; persistent workers (spawned once,
//!   parked between jobs) steal chunks across all live jobs through an
//!   atomic cursor, and the submitting thread always participates
//!   (caller-runs), so a job completes even when every worker is busy —
//!   nested and oversubscribed use degrade to inline execution instead of
//!   deadlocking.
//! - **Scoped stage tasks** ([`scope`]): long-lived pipeline stages (the
//!   stream producers) run as runtime tasks with their own budget handle —
//!   dispatched to an idle pool worker when one is free, or a dedicated
//!   runtime-owned thread otherwise — and are always joined before the
//!   scope returns, panics included.
//!
//! Chunks of a `parallel_for` job execute under a budget of 1 (a chunk is
//! the unit of parallelism; implicit nested fan-out would oversubscribe),
//! while `scope` tasks run under the budget the caller assigns them — that
//! asymmetry is what lets a producer task run its assembly GEMM with a
//! planned slice of the machine while the pool keeps every other core busy.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod faults;
mod pool;

pub use pool::{parallel_for, scope, TaskScope};

use std::cell::Cell;
use std::sync::OnceLock;

/// Resolves the process-wide thread budget: `EP2_THREADS` if set (≥ 1),
/// else the deprecated `EP2_NUM_THREADS` alias, else the machine's
/// available parallelism. Cached after the first call.
pub fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        for key in ["EP2_THREADS", "EP2_NUM_THREADS"] {
            if let Ok(v) = std::env::var(key) {
                if let Ok(n) = v.parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// The active budget handle: 0 = unset (fall back to the process-wide
    /// budget). Worker threads set it to a job's per-chunk budget while
    /// executing chunks; `scope` tasks carry the budget they were assigned.
    static BUDGET: Cell<usize> = const { Cell::new(0) };
}

/// The thread budget in effect on this thread: the innermost
/// [`with_budget`] handle, or [`configured_threads`] when none is active.
/// Every parallel primitive in the workspace sizes itself from this.
pub fn current_threads() -> usize {
    let b = BUDGET.with(Cell::get);
    if b == 0 {
        configured_threads()
    } else {
        b
    }
}

/// Runs `f` under an explicit thread-budget handle: [`current_threads`]
/// reports `threads` (clamped to ≥ 1) for the dynamic extent of `f` on this
/// thread, and parallel work submitted inside sizes itself accordingly.
/// Restores the previous handle on exit, panics included.
pub fn with_budget<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|c| c.set(self.0));
        }
    }
    let prev = BUDGET.with(|c| c.replace(threads.max(1)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn budget_handle_scopes_and_restores() {
        let outer = current_threads();
        with_budget(3, || {
            assert_eq!(current_threads(), 3);
            with_budget(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn budget_restored_across_panic() {
        let outer = current_threads();
        let r = std::panic::catch_unwind(|| with_budget(5, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn zero_budget_clamps_to_one() {
        with_budget(0, || assert_eq!(current_threads(), 1));
    }

    #[test]
    fn parallel_for_covers_all_indices() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        with_budget(4, || {
            parallel_for(hits.len(), 4, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn parallel_chunks_run_under_unit_budget() {
        with_budget(4, || {
            parallel_for(8, 4, |_| {
                assert_eq!(current_threads(), 1);
            });
        });
    }

    #[test]
    fn single_thread_inline_path_keeps_budget() {
        with_budget(1, || {
            parallel_for(3, 1, |_| {
                // Inline execution: the caller's handle stays in effect so a
                // sole chunk can still fan out if it is the only work.
                assert_eq!(current_threads(), 1);
            });
        });
    }

    #[test]
    fn nested_parallel_for_inside_chunks_completes() {
        // Oversubscription/nested-use: chunks run at budget 1, so the inner
        // parallel_for degrades to inline execution instead of deadlocking,
        // and every (i, j) cell is still visited exactly once.
        let cells: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        with_budget(8, || {
            parallel_for(8, 8, |i| {
                parallel_for(8, current_threads(), |j| {
                    cells[i * 8 + j].fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert!(cells.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn oversubscribed_budget_exceeding_cores_completes() {
        // A budget far past the physical core count grows the pool and
        // still terminates with every chunk executed once.
        let hits: Vec<AtomicUsize> = (0..301).map(|_| AtomicUsize::new(0)).collect();
        with_budget(16, || {
            parallel_for(hits.len(), 16, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            with_budget(4, || {
                parallel_for(16, 4, |i| {
                    if i == 7 {
                        panic!("chunk 7 failed");
                    }
                });
            });
        });
        let p = r.expect_err("panic must propagate to the submitter");
        let msg = p
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| p.downcast_ref::<String>().map(String::as_str).unwrap());
        assert!(msg.contains("chunk 7"), "payload preserved: {msg}");
    }

    #[test]
    fn scope_tasks_run_with_assigned_budget_and_join() {
        let ran = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..3 {
                s.spawn(2, || {
                    assert_eq!(current_threads(), 2);
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // scope() returns only after every task finished.
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn scope_task_panic_propagates_after_join() {
        let finished = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(1, || panic!("task died"));
                s.spawn(1, || {
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert!(r.is_err());
        // The healthy task was still joined before the panic resumed.
        assert_eq!(finished.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_tasks_can_submit_parallel_work() {
        // A stage task fanning out through the pool (the stream-producer
        // pattern): must complete without deadlock even when the pool is
        // the same one serving the task itself.
        let sum = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(4, || {
                parallel_for(32, current_threads(), |i| {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 31 * 32 / 2);
    }

    #[test]
    fn concurrent_jobs_from_concurrent_tasks_complete() {
        // Two stage tasks each submitting chunked jobs: workers steal across
        // both queues; both must finish.
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(2, || {
                parallel_for(64, 2, |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                });
            });
            s.spawn(2, || {
                parallel_for(64, 2, |_| {
                    b.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(a.load(Ordering::Relaxed), 64);
        assert_eq!(b.load(Ordering::Relaxed), 64);
    }
}
