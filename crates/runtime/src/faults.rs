//! Deterministic fault injection: a process-wide failpoint registry.
//!
//! Chaos testing is only useful when the chaos is *reproducible*: a producer
//! that dies "sometimes" proves nothing, a producer that dies **exactly at
//! tile seq 7** turns recovery into a property a test can pin. This module
//! is the registry the whole workspace's failure hooks consult:
//!
//! - the stream producers ask [`fire_at`]`("producer_panic", seq)` before
//!   assembling a tile,
//! - the device memory ledger asks [`fire_at`]`("alloc_fail", k)` on its
//!   `k`-th allocation,
//! - the checkpoint writer asks [`payload`]`("torn_write")` for a byte
//!   offset at which to "crash" mid-write.
//!
//! Failpoints are **disarmed by default** and cost one atomic load on the
//! hot path ([`any_armed`] short-circuits every hook when the registry has
//! never been armed). They arm two ways:
//!
//! 1. The `EP2_FAILPOINTS` environment variable, parsed once on first use:
//!    `EP2_FAILPOINTS=producer_panic@tile=7,alloc_fail@step=3,torn_write@byte=128`
//!    — a comma-separated list of `name[@key=value]` entries. The `key` is
//!    documentation (what the value counts); only `name` and `value` are
//!    semantic.
//! 2. Programmatically via [`arm`], which returns a guard that disarms on
//!    drop (tests arm failpoints for exactly their own scope).
//!
//! Every failpoint fires **once** per arming (one-shot): a respawned
//! producer that re-executes the faulted tile must not die again, or
//! bounded-retry recovery could never converge. [`fired`] reports how often
//! a point fired, so tests can assert the fault actually happened.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// One armed failpoint.
#[derive(Debug, Clone)]
struct Point {
    /// Trigger/payload value (`None` = fire on the first probe).
    value: Option<u64>,
    /// Times this point has fired since arming.
    fired: u64,
}

/// Fast path: false until the first [`arm`] (env or programmatic), so
/// unfaulted runs pay one relaxed load per hook and never lock.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> MutexGuard<'static, HashMap<String, Point>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Point>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("EP2_FAILPOINTS") {
                for (name, value) in parse_spec(&spec) {
                    map.insert(name, Point { value, fired: 0 });
                }
                if !map.is_empty() {
                    ANY_ARMED.store(true, Ordering::Release);
                }
            }
            Mutex::new(map)
        })
        .lock()
        // A panic *while armed* is exactly when chaos tests inspect the
        // registry — poisoning must not cascade.
        .unwrap_or_else(PoisonError::into_inner)
}

/// Parses an `EP2_FAILPOINTS` specification: comma-separated
/// `name[@key=value]` entries. Malformed entries are skipped (fault
/// injection must never take a process down on its own).
fn parse_spec(spec: &str) -> Vec<(String, Option<u64>)> {
    spec.split(',')
        .filter_map(|entry| {
            let entry = entry.trim();
            if entry.is_empty() {
                return None;
            }
            match entry.split_once('@') {
                None => Some((entry.to_string(), None)),
                Some((name, arg)) => {
                    let name = name.trim();
                    if name.is_empty() {
                        return None;
                    }
                    // `key=value` — the key only names what the value means.
                    let value = arg.split_once('=').and_then(|(_, v)| v.trim().parse().ok());
                    Some((name.to_string(), value))
                }
            }
        })
        .collect()
}

/// Whether any failpoint has ever been armed in this process. Hooks use
/// this to skip the registry lock entirely on healthy runs.
#[inline]
pub fn any_armed() -> bool {
    // The env spec lives in the registry's lazy init, but the whole point
    // of this gate is to *not* touch the registry on the hot path — so the
    // first probe must force that init once, or `EP2_FAILPOINTS` would
    // never arm anything (every hook would short-circuit right here).
    // After completion `call_once` is a single atomic load.
    static ENV_INIT: std::sync::Once = std::sync::Once::new();
    ENV_INIT.call_once(|| drop(registry()));
    ANY_ARMED.load(Ordering::Acquire)
}

/// Guard returned by [`arm`]; disarms the failpoint when dropped.
#[derive(Debug)]
pub struct FaultGuard {
    name: String,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        registry().remove(&self.name);
    }
}

/// Arms failpoint `name` with an optional trigger/payload `value`,
/// replacing any previous arming. Returns a guard that disarms on drop.
pub fn arm(name: &str, value: Option<u64>) -> FaultGuard {
    registry().insert(name.to_string(), Point { value, fired: 0 });
    ANY_ARMED.store(true, Ordering::Release);
    FaultGuard {
        name: name.to_string(),
    }
}

/// Probes failpoint `name` with a counter `index`: returns `true` (and
/// consumes the one shot) when the point is armed, has not fired yet, and
/// its value is unset or equals `index`.
pub fn fire_at(name: &str, index: u64) -> bool {
    if !any_armed() {
        return false;
    }
    let mut reg = registry();
    let Some(point) = reg.get_mut(name) else {
        return false;
    };
    if point.fired > 0 || point.value.is_some_and(|v| v != index) {
        return false;
    }
    point.fired += 1;
    true
}

/// Probes failpoint `name` for its payload value: returns `Some(value)`
/// (and consumes the one shot) when armed with a value and not yet fired.
pub fn payload(name: &str) -> Option<u64> {
    if !any_armed() {
        return None;
    }
    let mut reg = registry();
    let point = reg.get_mut(name)?;
    if point.fired > 0 {
        return None;
    }
    let value = point.value?;
    point.fired += 1;
    Some(value)
}

/// How many times failpoint `name` has fired since it was (last) armed;
/// 0 when never fired or not armed. Chaos tests assert the fault actually
/// triggered, so a renamed hook cannot silently turn a chaos test into a
/// plain happy-path run.
pub fn fired(name: &str) -> u64 {
    if !any_armed() {
        return 0;
    }
    registry().get(name).map_or(0, |p| p.fired)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_never_fire() {
        assert!(!fire_at("never_armed_point", 0));
        assert_eq!(payload("never_armed_point"), None);
        assert_eq!(fired("never_armed_point"), 0);
    }

    #[test]
    fn fire_at_matches_index_once() {
        let _g = arm("test_fire_at", Some(3));
        assert!(!fire_at("test_fire_at", 2));
        assert!(fire_at("test_fire_at", 3));
        // One-shot: the same index does not fire twice.
        assert!(!fire_at("test_fire_at", 3));
        assert_eq!(fired("test_fire_at"), 1);
    }

    #[test]
    fn unvalued_point_fires_on_first_probe() {
        let _g = arm("test_unvalued", None);
        assert!(fire_at("test_unvalued", 17));
        assert!(!fire_at("test_unvalued", 17));
    }

    #[test]
    fn payload_is_one_shot() {
        let _g = arm("test_payload", Some(128));
        assert_eq!(payload("test_payload"), Some(128));
        assert_eq!(payload("test_payload"), None);
        assert_eq!(fired("test_payload"), 1);
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = arm("test_guard", None);
            assert_eq!(fired("test_guard"), 0);
        }
        assert!(!fire_at("test_guard", 0));
    }

    #[test]
    fn spec_parsing_handles_the_documented_syntax() {
        let parsed = parse_spec("producer_panic@tile=7, alloc_fail@step=3,torn_write@byte=128");
        assert_eq!(
            parsed,
            vec![
                ("producer_panic".to_string(), Some(7)),
                ("alloc_fail".to_string(), Some(3)),
                ("torn_write".to_string(), Some(128)),
            ]
        );
        // Bare names, malformed values, and empty entries survive parsing.
        let parsed = parse_spec("plain_point,,bad@tile=xyz,@tile=3");
        assert_eq!(
            parsed,
            vec![("plain_point".to_string(), None), ("bad".to_string(), None),]
        );
    }
}
