//! Plain mini-batch kernel SGD (randomized coordinate descent for
//! `Kα = y`) — the baseline whose linear scaling saturates at `m*(k)`.
//!
//! Runs on the same [`ep2_core::iteration::EigenProIteration`] machinery
//! with the preconditioner disabled, so Figure-2/3 comparisons measure the
//! preconditioner's effect and nothing else.

use std::sync::Arc;
use std::time::Instant;

use ep2_core::iteration::EigenProIteration;
use ep2_core::precond::SubsampleEigens;
use ep2_core::{critical, CoreError, KernelModel, PredictOptions};
use ep2_data::{metrics, Dataset};
use ep2_device::{DeviceMode, ResourceSpec, SimClock};
use ep2_kernels::KernelKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for the SGD baseline.
#[derive(Debug, Clone)]
pub struct SgdConfig {
    /// Kernel family.
    pub kernel: KernelKind,
    /// Kernel bandwidth σ.
    pub bandwidth: f64,
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size (required — sweeps drive this).
    pub batch_size: usize,
    /// Step size; `None` = analytic `η = m/(β + (m−1)λ₁)` with `λ₁`
    /// estimated by Nyström on a subsample.
    pub step_size: Option<f64>,
    /// Stop when training MSE reaches this value.
    pub target_train_mse: Option<f64>,
    /// Device-timing idealisation for the simulated clock.
    pub device_mode: DeviceMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 5.0,
            epochs: 10,
            batch_size: 64,
            step_size: None,
            target_train_mse: None,
            device_mode: DeviceMode::ActualGpu,
            seed: 0,
        }
    }
}

/// Common per-run report shared by the iterative baselines.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Method name for tables.
    pub method: String,
    /// `(epoch, train_mse, val_error)` per epoch.
    pub epochs: Vec<(usize, f64, Option<f64>)>,
    /// Total simulated device seconds.
    pub simulated_seconds: f64,
    /// Total wall-clock seconds.
    pub wall_seconds: f64,
    /// Iterations executed.
    pub iterations: u64,
    /// Final training MSE.
    pub final_train_mse: f64,
    /// Final validation classification error.
    pub final_val_error: Option<f64>,
    /// Whether the target training MSE was reached.
    pub reached_target: bool,
}

/// Outcome of a baseline run: trained model + report.
#[derive(Debug)]
pub struct BaselineOutcome {
    /// The trained kernel machine.
    pub model: KernelModel,
    /// Metrics and timings.
    pub report: BaselineReport,
}

/// Estimates `λ₁(K/n)` by Nyström on a subsample of `s` points — the
/// step-size ingredient for plain SGD.
///
/// # Errors
///
/// Propagates eigensolver failures.
pub fn estimate_lambda1(
    kernel: &Arc<dyn ep2_kernels::Kernel>,
    x: &ep2_linalg::Matrix,
    s: usize,
    seed: u64,
) -> Result<f64, CoreError> {
    let s = s.clamp(1, x.rows());
    let eig = SubsampleEigens::compute(kernel, x, s, 1, seed)?;
    Ok(eig.lambda(0))
}

/// Trains plain mini-batch kernel SGD.
///
/// # Errors
///
/// Returns [`CoreError`] for empty data or invalid configuration.
pub fn train(
    config: &SgdConfig,
    device: &ResourceSpec,
    train: &Dataset,
    val: Option<&Dataset>,
) -> Result<BaselineOutcome, CoreError> {
    if train.is_empty() {
        return Err(CoreError::InvalidConfig {
            message: "training set is empty".to_string(),
        });
    }
    if config.batch_size == 0 || config.epochs == 0 {
        return Err(CoreError::InvalidConfig {
            message: "batch_size and epochs must be positive".to_string(),
        });
    }
    let n = train.len();
    let m = config.batch_size.min(n);
    let kernel: Arc<dyn ep2_kernels::Kernel> =
        config.kernel.with_bandwidth(config.bandwidth).into();
    let eta = match config.step_size {
        Some(e) => e,
        None => {
            let s = 1_000.min(n);
            let lambda1 = estimate_lambda1(&kernel, &train.features, s, config.seed)?;
            critical::optimal_step_size(m, 1.0, lambda1)
        }
    };

    let model = KernelModel::zeros(kernel, train.features.clone(), train.n_classes);
    let mut iter = EigenProIteration::new(model, None, eta);
    let mut clock = SimClock::new(device.clone(), config.device_mode);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(17));
    let start = Instant::now();

    let mut epochs = Vec::new();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut reached_target = false;
    for epoch in 1..=config.epochs {
        indices.shuffle(&mut rng);
        for chunk in indices.chunks(m) {
            let ops = iter.step(chunk, &train.targets);
            clock.record_launch(ops);
        }
        let pred = iter
            .model()
            .predict_with(&train.features, &PredictOptions::default());
        let train_mse = metrics::mse(&pred, &train.targets);
        let val_error = val.map(|v| {
            let p = iter
                .model()
                .predict_with(&v.features, &PredictOptions::default());
            metrics::classification_error(&p, &v.labels)
        });
        epochs.push((epoch, train_mse, val_error));
        if config
            .target_train_mse
            .map(|t| train_mse <= t)
            .unwrap_or(false)
        {
            reached_target = true;
            break;
        }
    }
    let &(_, final_train_mse, final_val_error) = epochs.last().expect("ran at least one epoch");
    let report = BaselineReport {
        method: "SGD".to_string(),
        simulated_seconds: clock.elapsed(),
        wall_seconds: start.elapsed().as_secs_f64(),
        iterations: iter.counter().iterations,
        final_train_mse,
        final_val_error,
        reached_target,
        epochs,
    };
    Ok(BaselineOutcome {
        model: iter.into_model(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_data::catalog;

    #[test]
    fn sgd_learns_mnist_like() {
        let data = catalog::mnist_like(400, 1);
        let (tr, te) = data.split_at(320);
        let config = SgdConfig {
            bandwidth: 4.0,
            epochs: 8,
            batch_size: 16,
            ..SgdConfig::default()
        };
        let out = train(&config, &ResourceSpec::scaled_virtual_gpu(), &tr, Some(&te)).unwrap();
        assert!(out.report.final_val_error.unwrap() < 0.15);
        assert!(out.report.iterations > 0);
        assert!(out.report.simulated_seconds > 0.0);
    }

    #[test]
    fn large_batch_no_faster_per_epoch_than_critical_batch() {
        // The heart of the paper: raising m beyond m*(k) does not improve
        // per-epoch convergence for plain SGD.
        let data = catalog::mnist_like(300, 4);
        let (tr, _) = data.split_at(300);
        let run = |m: usize| {
            let config = SgdConfig {
                bandwidth: 4.0,
                epochs: 3,
                batch_size: m,
                seed: 5,
                ..SgdConfig::default()
            };
            train(&config, &ResourceSpec::scaled_virtual_gpu(), &tr, None)
                .unwrap()
                .report
                .final_train_mse
        };
        let mse_small = run(8);
        let mse_large = run(256);
        // Large batch converges no better per epoch (allow 20% tolerance for
        // shuffling noise).
        assert!(
            mse_large > mse_small * 0.8,
            "large batch should not beat small per epoch: {mse_large} vs {mse_small}"
        );
    }

    #[test]
    fn target_stops_early() {
        let data = catalog::mnist_like(200, 9);
        let (tr, _) = data.split_at(200);
        let config = SgdConfig {
            bandwidth: 4.0,
            epochs: 100,
            batch_size: 8,
            target_train_mse: Some(0.05),
            ..SgdConfig::default()
        };
        let out = train(&config, &ResourceSpec::scaled_virtual_gpu(), &tr, None).unwrap();
        assert!(out.report.reached_target);
        assert!(out.report.epochs.len() < 100);
    }

    #[test]
    fn rejects_bad_config() {
        let data = catalog::mnist_like(50, 1);
        let (tr, _) = data.split_at(50);
        let config = SgdConfig {
            batch_size: 0,
            ..SgdConfig::default()
        };
        assert!(train(&config, &ResourceSpec::scaled_virtual_gpu(), &tr, None).is_err());
    }
}
