//! FALKON (Rudi, Carratino & Rosasco, NeurIPS 2017): Nyström centers +
//! Cholesky-preconditioned conjugate gradient for kernel ridge regression.
//!
//! FALKON restricts the predictor to `M ≪ n` Nyström centers and solves
//!
//! `(K_nMᵀ K_nM / n + λ K_MM) β = K_nMᵀ y / n`
//!
//! with CG, preconditioned by `B = T⁻¹ A⁻¹` where `T = chol(K_MM)` and
//! `A = chol(T Tᵀ / M + λ I)`. It is the strongest single-GPU comparator in
//! Table 2 (4h on a Tesla K40c for ImageNet vs EigenPro 2.0's 40 min).

use std::sync::Arc;
use std::time::Instant;

use ep2_core::{CoreError, KernelModel, PredictOptions};
use ep2_data::{metrics, Dataset};
use ep2_device::{DeviceMode, ResourceSpec, SimClock};
use ep2_kernels::{matrix as kmat, KernelKind};
use ep2_linalg::cholesky::CholeskyFactor;
use ep2_linalg::{blas, ops, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::sgd::{BaselineOutcome, BaselineReport};

/// Configuration for the FALKON baseline.
#[derive(Debug, Clone)]
pub struct FalkonConfig {
    /// Kernel family.
    pub kernel: KernelKind,
    /// Kernel bandwidth σ.
    pub bandwidth: f64,
    /// Number of Nyström centers `M`.
    pub centers: usize,
    /// Ridge parameter λ (FALKON needs explicit regularisation; the paper's
    /// interpolation framework does not).
    pub lambda: f64,
    /// CG iterations `t`.
    pub cg_iterations: usize,
    /// Device-timing idealisation.
    pub device_mode: DeviceMode,
    /// RNG seed for center selection.
    pub seed: u64,
}

impl Default for FalkonConfig {
    fn default() -> Self {
        FalkonConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 5.0,
            centers: 500,
            lambda: 1e-6,
            cg_iterations: 20,
            device_mode: DeviceMode::ActualGpu,
            seed: 0,
        }
    }
}

/// Trains FALKON and returns a [`KernelModel`] over the Nyström centers.
///
/// # Errors
///
/// Returns [`CoreError`] for invalid configurations and propagates Cholesky
/// failures.
pub fn train(
    config: &FalkonConfig,
    device: &ResourceSpec,
    train: &Dataset,
    val: Option<&Dataset>,
) -> Result<BaselineOutcome, CoreError> {
    let n = train.len();
    if n == 0 {
        return Err(CoreError::InvalidConfig {
            message: "training set is empty".to_string(),
        });
    }
    if config.centers == 0 || config.cg_iterations == 0 {
        return Err(CoreError::InvalidConfig {
            message: "centers and cg_iterations must be positive".to_string(),
        });
    }
    let m_centers = config.centers.min(n);
    let d = train.dim();
    let l = train.n_classes;
    let kernel: Arc<dyn ep2_kernels::Kernel> =
        config.kernel.with_bandwidth(config.bandwidth).into();
    let start = Instant::now();
    let mut clock = SimClock::new(device.clone(), config.device_mode);

    // Uniform Nyström centers.
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    idx.shuffle(&mut rng);
    idx.truncate(m_centers);
    idx.sort_unstable();
    let centers = train.features.select_rows(&idx);

    // K_nM (n x M) and K_MM (M x M).
    let k_nm = kmat::kernel_cross(kernel.as_ref(), &train.features, &centers);
    clock.record_launch(kmat::assembly_ops(n, m_centers, d));
    let k_mm = kmat::kernel_matrix(kernel.as_ref(), &centers);
    clock.record_launch(kmat::assembly_ops(m_centers, m_centers, d));

    // Preconditioner factors: T = chol(K_MM), A = chol(T Tᵀ/M + λ M I).
    let (t_factor, _) =
        CholeskyFactor::new_with_jitter(&k_mm, 1e-10, 10).map_err(CoreError::from)?;
    let t_mat = t_factor.factor(); // lower L_T with K_MM = L_T L_Tᵀ
    let mut tt = Matrix::zeros(m_centers, m_centers);
    blas::gemm_tn(1.0, t_mat, t_mat, 0.0, &mut tt); // L_Tᵀ L_T
    tt.scale(1.0 / m_centers as f64);
    for i in 0..m_centers {
        tt[(i, i)] += config.lambda * n as f64 / n as f64; // λ I
    }
    let (a_factor, _) = CholeskyFactor::new_with_jitter(&tt, 1e-12, 10).map_err(CoreError::from)?;
    clock.record_launch(2.0 * (m_centers as f64).powi(3) / 3.0);

    // Preconditioned CG per output column on
    //   W(z) = A⁻ᵀ L_T⁻ᵀ (K_nMᵀ(K_nM L_T⁻¹A⁻¹ z)/n + λ K_MM L_T⁻¹A⁻¹ z).
    let apply_b = |z: &[f64]| -> Vec<f64> {
        // β = L_T⁻ᵀ? FALKON's B = T⁻¹A⁻¹ with upper-triangular T; with our
        // lower factor L_T (K_MM = L_T L_Tᵀ, so "T" = L_Tᵀ): B z = L_T⁻ᵀ(A⁻¹z).
        let az = a_factor.solve(z);
        t_factor.solve_upper(&az)
    };
    let apply_bt = |z: &[f64]| -> Vec<f64> {
        // Bᵀ z = A⁻ᵀ (L_T⁻¹ z); A factor symmetric solve ≈ full solve.
        let tz = t_factor.solve_lower(z);
        a_factor.solve(&tz)
    };
    let matvec_ops = (2 * n * m_centers + m_centers * m_centers * 3) as f64;
    let operator = |z: &[f64], clock: &mut SimClock| -> Vec<f64> {
        let beta = apply_b(z);
        // u = K_nM β (n), v = K_nMᵀ u / n (M).
        let mut u = vec![0.0_f64; n];
        blas::gemv(1.0, &k_nm, &beta, 0.0, &mut u);
        let mut v = vec![0.0_f64; m_centers];
        blas::gemv_t(1.0 / n as f64, &k_nm, &u, 0.0, &mut v);
        // + λ K_MM β.
        let mut w = vec![0.0_f64; m_centers];
        blas::gemv(config.lambda, &k_mm, &beta, 0.0, &mut w);
        for (vi, wi) in v.iter_mut().zip(&w) {
            *vi += wi;
        }
        clock.record_launch(matvec_ops);
        apply_bt(&v)
    };

    // RHS per column: A⁻ᵀ L_T⁻¹ (K_nMᵀ y / n).
    let mut weights = Matrix::zeros(m_centers, l);
    for col in 0..l {
        let y_col = train.targets.col(col);
        let mut rhs_raw = vec![0.0_f64; m_centers];
        blas::gemv_t(1.0 / n as f64, &k_nm, &y_col, 0.0, &mut rhs_raw);
        let rhs = apply_bt(&rhs_raw);

        // Standard CG on the SPD preconditioned operator.
        let mut z = vec![0.0_f64; m_centers];
        let mut r = rhs.clone();
        let mut p = r.clone();
        let mut rs_old = ops::dot(&r, &r);
        for _ in 0..config.cg_iterations {
            if rs_old.sqrt() < 1e-12 {
                break;
            }
            let ap = operator(&p, &mut clock);
            let p_ap = ops::dot(&p, &ap);
            if p_ap.abs() < 1e-300 {
                break;
            }
            let alpha = rs_old / p_ap;
            ops::axpy(alpha, &p, &mut z);
            ops::axpy(-alpha, &ap, &mut r);
            let rs_new = ops::dot(&r, &r);
            let ratio = rs_new / rs_old;
            for (pi, ri) in p.iter_mut().zip(&r) {
                *pi = ri + ratio * *pi;
            }
            rs_old = rs_new;
        }
        let beta = apply_b(&z);
        weights.set_col(col, &beta);
    }

    let model = KernelModel::from_weights(kernel, centers, weights);
    let pred = model.predict_with(&train.features, &PredictOptions::default());
    let final_train_mse = metrics::mse(&pred, &train.targets);
    let final_val_error = val.map(|v| {
        let p = model.predict_with(&v.features, &PredictOptions::default());
        metrics::classification_error(&p, &v.labels)
    });
    let report = BaselineReport {
        method: "FALKON".to_string(),
        epochs: vec![(1, final_train_mse, final_val_error)],
        simulated_seconds: clock.elapsed(),
        wall_seconds: start.elapsed().as_secs_f64(),
        iterations: (config.cg_iterations * l) as u64,
        final_train_mse,
        final_val_error,
        reached_target: false,
    };
    Ok(BaselineOutcome { model, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_data::catalog;

    #[test]
    fn falkon_learns_mnist_like() {
        let data = catalog::mnist_like(500, 3);
        let (tr, te) = data.split_at(400);
        let config = FalkonConfig {
            bandwidth: 4.0,
            centers: 250,
            lambda: 1e-7,
            cg_iterations: 25,
            ..FalkonConfig::default()
        };
        let out = train(&config, &ResourceSpec::scaled_virtual_gpu(), &tr, Some(&te)).unwrap();
        let err = out.report.final_val_error.unwrap();
        assert!(err < 0.15, "FALKON val error {err}");
        assert!(out.model.n_centers() == 250);
    }

    #[test]
    fn more_centers_fit_better() {
        let data = catalog::svhn_like(400, 7);
        let (tr, _) = data.split_at(400);
        let run = |centers: usize| {
            let config = FalkonConfig {
                bandwidth: 6.0,
                centers,
                lambda: 1e-7,
                cg_iterations: 25,
                seed: 2,
                ..FalkonConfig::default()
            };
            train(&config, &ResourceSpec::scaled_virtual_gpu(), &tr, None)
                .unwrap()
                .report
                .final_train_mse
        };
        let few = run(40);
        let many = run(300);
        assert!(
            many < few,
            "more centers should fit better: {many} vs {few}"
        );
    }

    #[test]
    fn rejects_zero_centers() {
        let data = catalog::susy_like(50, 1);
        let (tr, _) = data.split_at(50);
        let config = FalkonConfig {
            centers: 0,
            ..FalkonConfig::default()
        };
        assert!(train(&config, &ResourceSpec::scaled_virtual_gpu(), &tr, None).is_err());
    }

    #[test]
    fn interpolates_when_centers_equal_n_and_lambda_tiny() {
        let data = catalog::susy_like(120, 9);
        let (tr, _) = data.split_at(120);
        let config = FalkonConfig {
            bandwidth: 3.0,
            centers: 120,
            lambda: 1e-10,
            cg_iterations: 60,
            ..FalkonConfig::default()
        };
        let out = train(&config, &ResourceSpec::scaled_virtual_gpu(), &tr, None).unwrap();
        assert!(
            out.report.final_train_mse < 1e-2,
            "near-interpolation expected, mse {}",
            out.report.final_train_mse
        );
    }
}
