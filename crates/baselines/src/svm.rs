//! Kernel SVM trained by Sequential Minimal Optimisation — the Table-3
//! comparators.
//!
//! [`SvmConfig::parallel_kernel`] selects between the two stand-ins:
//!
//! - `false`: serial kernel-row evaluation — models **LibSVM** (CPU,
//!   single-threaded kernel computations);
//! - `true`: multi-threaded kernel-row evaluation — models **ThunderSVM**,
//!   whose principal win over LibSVM is parallelising exactly this step.
//!
//! The optimiser is LibSVM's SMO with maximal-violating-pair working-set
//! selection (WSS1) and an LRU-less row cache. Multiclass is one-vs-rest,
//! matching the paper's label reduction.

use std::sync::Arc;
use std::time::Instant;

use ep2_core::CoreError;
use ep2_data::Dataset;
use ep2_device::{DeviceMode, ResourceSpec, SimClock};
use ep2_kernels::{Kernel, KernelKind};
use ep2_linalg::{ops, parallel, Matrix};

/// Configuration for the SMO SVM baseline.
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Kernel family.
    pub kernel: KernelKind,
    /// Kernel bandwidth σ.
    pub bandwidth: f64,
    /// Box constraint `C`.
    pub c: f64,
    /// KKT violation tolerance (LibSVM default 1e-3).
    pub tol: f64,
    /// Maximum SMO pair updates per binary problem.
    pub max_iter: usize,
    /// `true` = ThunderSVM stand-in (parallel kernel rows).
    pub parallel_kernel: bool,
    /// Device-timing idealisation for the simulated clock.
    pub device_mode: DeviceMode,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 5.0,
            c: 10.0,
            tol: 1e-3,
            max_iter: 100_000,
            parallel_kernel: false,
            device_mode: DeviceMode::Sequential,
        }
    }
}

/// One-vs-rest multiclass SVM model.
#[derive(Debug)]
pub struct SvmModel {
    kernel: Arc<dyn Kernel>,
    train_x: Matrix,
    /// Per class: `(α_i · y_i)` coefficients over training points, plus bias.
    per_class: Vec<(Vec<f64>, f64)>,
}

impl SvmModel {
    /// Decision values for every row of `x` (`x.rows() x classes`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the training dimension.
    pub fn decision_values(&self, x: &Matrix) -> Matrix {
        let k_block = ep2_kernels::matrix::kernel_cross(self.kernel.as_ref(), x, &self.train_x);
        let mut out = Matrix::zeros(x.rows(), self.per_class.len());
        for (c, (coef, b)) in self.per_class.iter().enumerate() {
            for i in 0..x.rows() {
                out[(i, c)] = ops::dot(k_block.row(i), coef) + b;
            }
        }
        out
    }

    /// Predicted labels (argmax of decision values).
    pub fn predict_labels(&self, x: &Matrix) -> Vec<usize> {
        let dv = self.decision_values(x);
        (0..dv.rows())
            .map(|i| ops::argmax(dv.row(i)).expect("non-empty").0)
            .collect()
    }

    /// Number of support vectors (any class, `|coef| > 0`).
    pub fn n_support_vectors(&self) -> usize {
        let n = self.train_x.rows();
        (0..n)
            .filter(|&i| self.per_class.iter().any(|(coef, _)| coef[i].abs() > 1e-12))
            .count()
    }
}

/// Report from an SVM run.
#[derive(Debug, Clone)]
pub struct SvmReport {
    /// "LibSVM (SMO, serial)" or "ThunderSVM (SMO, parallel)".
    pub method: String,
    /// Total SMO pair updates across binary problems.
    pub iterations: u64,
    /// Kernel rows computed (the dominant cost).
    pub kernel_rows: u64,
    /// Simulated device seconds.
    pub simulated_seconds: f64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Training classification error.
    pub train_error: f64,
    /// Test classification error, when a test set was supplied.
    pub test_error: Option<f64>,
}

struct RowCache<'a> {
    kernel: &'a dyn Kernel,
    x: &'a Matrix,
    rows: Vec<Option<Arc<Vec<f64>>>>,
    computed: u64,
    parallel: bool,
}

impl<'a> RowCache<'a> {
    fn new(kernel: &'a dyn Kernel, x: &'a Matrix, parallel: bool) -> Self {
        RowCache {
            kernel,
            x,
            rows: vec![None; x.rows()],
            computed: 0,
            parallel,
        }
    }

    fn row(&mut self, i: usize) -> Arc<Vec<f64>> {
        if let Some(r) = &self.rows[i] {
            return Arc::clone(r);
        }
        let n = self.x.rows();
        let xi = self.x.row(i);
        let mut row = vec![0.0_f64; n];
        if self.parallel {
            let x = self.x;
            let kernel = self.kernel;
            parallel::for_each_chunk_mut(&mut row, 256, |off, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = kernel.eval(xi, x.row(off + k));
                }
            });
        } else {
            for (j, v) in row.iter_mut().enumerate() {
                *v = self.kernel.eval(xi, self.x.row(j));
            }
        }
        let arc = Arc::new(row);
        self.rows[i] = Some(Arc::clone(&arc));
        self.computed += 1;
        arc
    }
}

/// Solves one binary SMO problem; returns `(α_i y_i, b, iterations)`.
fn smo_binary(
    cache: &mut RowCache<'_>,
    y: &[f64],
    c: f64,
    tol: f64,
    max_iter: usize,
) -> (Vec<f64>, f64, u64) {
    let n = y.len();
    let mut alpha = vec![0.0_f64; n];
    // G_i = Σ_j α_j y_i y_j K_ij − 1; starts at −1.
    let mut g = vec![-1.0_f64; n];
    let mut iters = 0_u64;
    loop {
        // Maximal violating pair.
        let mut gmax = f64::NEG_INFINITY;
        let mut gmin = f64::INFINITY;
        let mut i_sel = usize::MAX;
        let mut j_sel = usize::MAX;
        for t in 0..n {
            let score = -y[t] * g[t];
            let in_up = (y[t] > 0.0 && alpha[t] < c) || (y[t] < 0.0 && alpha[t] > 0.0);
            let in_low = (y[t] > 0.0 && alpha[t] > 0.0) || (y[t] < 0.0 && alpha[t] < c);
            if in_up && score > gmax {
                gmax = score;
                i_sel = t;
            }
            if in_low && score < gmin {
                gmin = score;
                j_sel = t;
            }
        }
        if i_sel == usize::MAX || j_sel == usize::MAX || gmax - gmin < tol {
            let b = if gmax.is_finite() && gmin.is_finite() {
                (gmax + gmin) / 2.0
            } else {
                0.0
            };
            let coef: Vec<f64> = alpha.iter().zip(y).map(|(&a, &yi)| a * yi).collect();
            return (coef, b, iters);
        }
        if iters as usize >= max_iter {
            let b = (gmax + gmin) / 2.0;
            let coef: Vec<f64> = alpha.iter().zip(y).map(|(&a, &yi)| a * yi).collect();
            return (coef, b, iters);
        }
        let (i, j) = (i_sel, j_sel);
        let ki = cache.row(i);
        let kj = cache.row(j);
        let mut a = ki[i] + kj[j] - 2.0 * ki[j];
        if a <= 0.0 {
            a = 1e-12;
        }
        // Unconstrained step along (α_i += y_i t, α_j −= y_j t).
        let mut t_step = (gmax - gmin) / a;
        // Box constraints.
        let (lo_i, hi_i) = if y[i] > 0.0 {
            (-alpha[i], c - alpha[i])
        } else {
            (alpha[i] - c, alpha[i])
        };
        let (lo_j, hi_j) = if y[j] > 0.0 {
            (alpha[j] - c, alpha[j])
        } else {
            (-alpha[j], c - alpha[j])
        };
        let lo = lo_i.max(lo_j);
        let hi = hi_i.min(hi_j);
        t_step = t_step.clamp(lo, hi);
        if t_step == 0.0 {
            // Numerically stuck pair; declare convergence.
            let b = (gmax + gmin) / 2.0;
            let coef: Vec<f64> = alpha.iter().zip(y).map(|(&a2, &yi)| a2 * yi).collect();
            return (coef, b, iters);
        }
        alpha[i] += y[i] * t_step;
        alpha[j] -= y[j] * t_step;
        for k in 0..n {
            g[k] += y[k] * t_step * (ki[k] - kj[k]);
        }
        iters += 1;
    }
}

/// Trains a one-vs-rest SMO SVM.
///
/// # Errors
///
/// Returns [`CoreError`] for empty data or a non-positive `C`.
pub fn train(
    config: &SvmConfig,
    device: &ResourceSpec,
    train_set: &Dataset,
    test: Option<&Dataset>,
) -> Result<(SvmModel, SvmReport), CoreError> {
    if train_set.is_empty() {
        return Err(CoreError::InvalidConfig {
            message: "training set is empty".to_string(),
        });
    }
    if config.c <= 0.0 {
        return Err(CoreError::InvalidConfig {
            message: "C must be positive".to_string(),
        });
    }
    let n = train_set.len();
    let d = train_set.dim();
    let kernel: Arc<dyn Kernel> = config.kernel.with_bandwidth(config.bandwidth).into();
    let start = Instant::now();
    let mut clock = SimClock::new(device.clone(), config.device_mode);
    let (per_class, total_iters, rows_computed) = {
        let mut cache = RowCache::new(kernel.as_ref(), &train_set.features, config.parallel_kernel);
        let mut per_class = Vec::with_capacity(train_set.n_classes);
        let mut total_iters = 0_u64;
        for class in 0..train_set.n_classes {
            let y: Vec<f64> = train_set
                .labels
                .iter()
                .map(|&lbl| if lbl == class { 1.0 } else { -1.0 })
                .collect();
            let (coef, b, iters) =
                smo_binary(&mut cache, &y, config.c, config.tol, config.max_iter);
            total_iters += iters;
            // Gradient updates dominate alongside kernel rows: 2n ops per pair.
            clock.record_launch(iters as f64 * 2.0 * n as f64);
            per_class.push((coef, b));
        }
        (per_class, total_iters, cache.computed)
    };
    // Kernel-row cost (serial device mode models LibSVM's single thread).
    clock.record_launch(rows_computed as f64 * (n * d) as f64);

    let model = SvmModel {
        kernel,
        train_x: train_set.features.clone(),
        per_class,
    };
    let train_pred = model.predict_labels(&train_set.features);
    let train_error = mismatch_rate(&train_pred, &train_set.labels);
    let test_error = test.map(|t| {
        let p = model.predict_labels(&t.features);
        mismatch_rate(&p, &t.labels)
    });
    let kernel_rows = rows_computed;
    let report = SvmReport {
        method: if config.parallel_kernel {
            "ThunderSVM (SMO, parallel)".to_string()
        } else {
            "LibSVM (SMO, serial)".to_string()
        },
        iterations: total_iters,
        kernel_rows,
        simulated_seconds: clock.elapsed(),
        wall_seconds: start.elapsed().as_secs_f64(),
        train_error,
        test_error,
    };
    Ok((model, report))
}

fn mismatch_rate(pred: &[usize], truth: &[usize]) -> f64 {
    pred.iter().zip(truth).filter(|(a, b)| a != b).count() as f64 / truth.len().max(1) as f64
}

/// Convenience: classification error of the model on a dataset.
pub fn evaluate(model: &SvmModel, data: &Dataset) -> f64 {
    let pred = model.predict_labels(&data.features);
    let as_matrix = Matrix::from_fn(pred.len(), 1, |i, _| pred[i] as f64);
    let _ = as_matrix; // decision values path exists too; simple rate here
    mismatch_rate(&pred, &data.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_data::catalog;

    #[test]
    fn separable_binary_problem_solved() {
        // Two well-separated blobs.
        let x = Matrix::from_fn(40, 2, |i, j| {
            let base = if i < 20 { -2.0 } else { 2.0 };
            base + 0.2 * (((i * 7 + j * 13) % 10) as f64 / 10.0 - 0.5)
        });
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let ds = Dataset::from_labels("blobs", x, labels, 2);
        let config = SvmConfig {
            bandwidth: 2.0,
            ..SvmConfig::default()
        };
        let (model, report) = train(&config, &ResourceSpec::cpu_host(), &ds, None).unwrap();
        assert_eq!(report.train_error, 0.0, "separable data must be solved");
        assert!(model.n_support_vectors() > 0);
        assert!(report.iterations > 0);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let data = catalog::mnist_like(300, 5);
        let (tr, te) = data.split_at(240);
        let config = SvmConfig {
            bandwidth: 4.0,
            c: 10.0,
            ..SvmConfig::default()
        };
        let (_, report) = train(&config, &ResourceSpec::cpu_host(), &tr, Some(&te)).unwrap();
        assert!(
            report.train_error < 0.05,
            "train error {}",
            report.train_error
        );
        assert!(
            report.test_error.unwrap() < 0.2,
            "test error {:?}",
            report.test_error
        );
    }

    #[test]
    fn parallel_matches_serial_predictions() {
        let data = catalog::susy_like(200, 3);
        let (tr, te) = data.split_at(160);
        let serial_cfg = SvmConfig {
            bandwidth: 3.0,
            parallel_kernel: false,
            ..SvmConfig::default()
        };
        let parallel_cfg = SvmConfig {
            parallel_kernel: true,
            ..serial_cfg.clone()
        };
        let (m1, r1) = train(&serial_cfg, &ResourceSpec::cpu_host(), &tr, Some(&te)).unwrap();
        let (m2, r2) = train(&parallel_cfg, &ResourceSpec::cpu_host(), &tr, Some(&te)).unwrap();
        assert_eq!(
            m1.predict_labels(&te.features),
            m2.predict_labels(&te.features)
        );
        assert_eq!(r1.iterations, r2.iterations);
        assert!(r2.method.contains("Thunder"));
    }

    #[test]
    fn respects_max_iter_budget() {
        let data = catalog::cifar10_like(150, 7);
        let (tr, _) = data.split_at(150);
        let config = SvmConfig {
            bandwidth: 8.0,
            max_iter: 5,
            ..SvmConfig::default()
        };
        let (_, report) = train(&config, &ResourceSpec::cpu_host(), &tr, None).unwrap();
        assert!(report.iterations <= 5 * 10);
    }

    #[test]
    fn rejects_nonpositive_c() {
        let data = catalog::susy_like(20, 1);
        let (tr, _) = data.split_at(20);
        let config = SvmConfig {
            c: 0.0,
            ..SvmConfig::default()
        };
        assert!(train(&config, &ResourceSpec::cpu_host(), &tr, None).is_err());
    }
}
