//! # ep2-baselines — every comparator the paper evaluates against
//!
//! Tables 2–3 and Figure 2 compare EigenPro 2.0 to:
//!
//! - **plain mini-batch kernel SGD** ([`sgd`]): randomized coordinate
//!   descent for `Kα = y` — the method whose linear scaling saturates at
//!   the small `m*(k)`;
//! - **original EigenPro** (Ma & Belkin 2017, [`eigenpro1`]): the same
//!   spectral preconditioning but with eigenvectors represented over all
//!   `n` centers, so per-iteration overhead scales with `n` (Table 1's
//!   bolded terms);
//! - **FALKON** (Rudi, Carratino & Rosasco 2017, [`falkon`]): Nyström
//!   centers + Cholesky-preconditioned conjugate gradient;
//! - **SMO kernel SVM** ([`svm`]): LibSVM's sequential minimal
//!   optimisation, in a serial variant (LibSVM stand-in) and a
//!   parallel-kernel variant (ThunderSVM stand-in) for Table 3;
//! - **the direct solver** ([`direct`]): exact (jittered-Cholesky) kernel
//!   interpolation, the ground truth everything converges to.
//!
//! All baselines emit [`ep2_core::KernelModel`] predictors and report both
//! simulated-device and wall-clock time, so harness comparisons are
//! apples-to-apples.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod direct;
pub mod eigenpro1;
pub mod falkon;
pub mod sgd;
pub mod svm;
