//! Exact kernel interpolation by direct solve: `α = (K + εI)^{-1} Y`.
//!
//! `O(n³)` — usable only at small `n`, which is exactly why the paper
//! exists; here it serves as the ground-truth solution that both SGD and
//! EigenPro provably converge to (Section 2: the minimum-norm interpolant).

use std::sync::Arc;

use ep2_core::{CoreError, KernelModel};
use ep2_kernels::{matrix as kmat, Kernel};
use ep2_linalg::cholesky::CholeskyFactor;
use ep2_linalg::Matrix;

/// Solves the interpolation system exactly and returns the fitted model.
///
/// `jitter` is added to the diagonal for numerical positive-definiteness
/// (use ~1e-8; it perturbs the interpolant negligibly).
///
/// # Errors
///
/// Propagates Cholesky failures (after jitter escalation).
pub fn solve(
    kernel: Arc<dyn Kernel>,
    x: &Matrix,
    y: &Matrix,
    jitter: f64,
) -> Result<KernelModel, CoreError> {
    let km = kmat::kernel_matrix(kernel.as_ref(), x);
    let (factor, _used) =
        CholeskyFactor::new_with_jitter(&km, jitter, 10).map_err(CoreError::from)?;
    let alpha = factor.solve_matrix(y);
    Ok(KernelModel::from_weights(kernel, x.clone(), alpha))
}

/// Operation count of the direct solve: `n²d` assembly + `n³/3`
/// factorisation + `n²l` solves.
pub fn solve_ops(n: usize, d: usize, l: usize) -> f64 {
    let n = n as f64;
    n * n * d as f64 + n * n * n / 3.0 + n * n * l as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_core::PredictOptions;
    use ep2_kernels::GaussianKernel;

    #[test]
    fn interpolates_training_data() {
        let mut state = 3_u64;
        let x = Matrix::from_fn(25, 2, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let y = Matrix::from_fn(25, 2, |i, j| ((i + j) % 3) as f64);
        // Narrow bandwidth keeps the kernel matrix well conditioned, so the
        // jitter perturbs the interpolant negligibly.
        let kernel: Arc<dyn Kernel> = Arc::new(GaussianKernel::new(0.3));
        let model = solve(kernel, &x, &y, 1e-12).unwrap();
        let pred = model.predict_with(&x, &PredictOptions::default());
        let mse = ep2_data::metrics::mse(&pred, &y);
        assert!(mse < 1e-8, "direct solver must interpolate, mse = {mse}");
    }

    #[test]
    fn ops_formula_monotone() {
        assert!(solve_ops(100, 10, 2) < solve_ops(200, 10, 2));
        assert!(solve_ops(100, 10, 2) < solve_ops(100, 20, 2));
    }
}
