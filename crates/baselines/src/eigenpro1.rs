//! Original EigenPro (Ma & Belkin 2017): spectral preconditioning with
//! eigenvectors represented over **all `n` training centers**.
//!
//! The algorithm is the same double-block update as EigenPro 2.0, but the
//! preconditioner's eigenvectors are length-`n` coefficient vectors, so
//! each correction touches all `n` rows of `α` and the eigensystem costs
//! `n·q` memory — the bolded overhead row of Table 1. Section 4 of the
//! EigenPro-2.0 paper exists precisely to remove this `n`-dependence.
//!
//! Eigenvectors of the full `K_n` are computed by randomized subspace
//! iteration (matrix-free would also work; at reproduction scale we
//! materialise `K_n`).

use std::sync::Arc;
use std::time::Instant;

use ep2_core::{critical, CoreError, KernelModel, PredictOptions};
use ep2_data::{metrics, Dataset};
use ep2_device::{DeviceMode, ResourceSpec, SimClock};
use ep2_kernels::{matrix as kmat, KernelKind};
use ep2_linalg::{blas, subspace, Matrix, SymOp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::sgd::{BaselineOutcome, BaselineReport};

/// Configuration for the original-EigenPro baseline.
#[derive(Debug, Clone)]
pub struct EigenPro1Config {
    /// Kernel family.
    pub kernel: KernelKind,
    /// Kernel bandwidth σ.
    pub bandwidth: f64,
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Spectral truncation `q`.
    pub q: usize,
    /// Damping exponent (reference implementation uses 0.95).
    pub damping: f64,
    /// Step size; `None` = analytic from the damped tail eigenvalue.
    pub step_size: Option<f64>,
    /// Stop when training MSE reaches this value.
    pub target_train_mse: Option<f64>,
    /// Device-timing idealisation.
    pub device_mode: DeviceMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EigenPro1Config {
    fn default() -> Self {
        EigenPro1Config {
            kernel: KernelKind::Gaussian,
            bandwidth: 5.0,
            epochs: 10,
            batch_size: 64,
            q: 20,
            damping: 0.95,
            step_size: None,
            target_train_mse: None,
            device_mode: DeviceMode::ActualGpu,
            seed: 0,
        }
    }
}

/// Trains the original EigenPro baseline.
///
/// # Errors
///
/// Returns [`CoreError`] for invalid configurations and propagates
/// eigensolver failures.
pub fn train(
    config: &EigenPro1Config,
    device: &ResourceSpec,
    train: &Dataset,
    val: Option<&Dataset>,
) -> Result<BaselineOutcome, CoreError> {
    if train.is_empty() {
        return Err(CoreError::InvalidConfig {
            message: "training set is empty".to_string(),
        });
    }
    let n = train.len();
    let d = train.dim();
    let l = train.n_classes;
    if config.batch_size == 0 || config.epochs == 0 || config.q == 0 || config.q + 1 >= n {
        return Err(CoreError::InvalidConfig {
            message: format!(
                "need batch_size, epochs, q > 0 and q + 1 < n (got q = {}, n = {n})",
                config.q
            ),
        });
    }
    let m = config.batch_size.min(n);
    let kernel: Arc<dyn ep2_kernels::Kernel> =
        config.kernel.with_bandwidth(config.bandwidth).into();

    // Top-(q+1) eigensystem of the full kernel matrix. The dense solver is
    // exact (no Nyström/iteration leakage, so the analytic step size is
    // safe); fall back to subspace iteration only beyond dense reach.
    let km = kmat::kernel_matrix(kernel.as_ref(), &train.features);
    let (sigmas, u) = if n <= 2048 {
        let dec = ep2_linalg::eigen::sym_eig(&km).map_err(CoreError::from)?;
        dec.top_q(config.q + 1)
    } else {
        let cfg = subspace::SubspaceConfig {
            seed: config.seed,
            power_iters: 10,
            ..subspace::SubspaceConfig::default()
        };
        subspace::top_q_eig(&km as &dyn SymOp, config.q + 1, &cfg).map_err(CoreError::from)?
    };
    let tail = sigmas[config.q];
    if tail <= 0.0 {
        return Err(CoreError::InvalidConfig {
            message: format!("eigenvalue {} of K_n is not positive", config.q + 1),
        });
    }
    // D_jj = 1 − (τ/σ_j)^α over the *full-matrix* eigenvalues. Unlike the
    // Nyström form (which carries an extra 1/σ to cancel the feature-map
    // scale), the correction here dots the residual with the eigenvector
    // coordinates directly, so no 1/σ factor appears:
    // correction = η (2/m) Σ_j (1 − (τ/σ_j)^α)(u_j[batch]ᵀ g) u_j.
    let d_diag: Vec<f64> = sigmas[..config.q]
        .iter()
        .map(|&s| 1.0 - (tail / s).powf(config.damping))
        .collect();
    let u_q = u.submatrix(0, 0, n, config.q);

    // Analytic step size from the damped tail (normalised by n here — the
    // eigensystem is of K_n itself).
    let lambda_top_damped =
        (sigmas[0].powf(1.0 - config.damping) * tail.powf(config.damping)).max(tail) / n as f64;
    // β(K_G) on the training points.
    let beta_g = (0..n)
        .map(|i| {
            let mut drop = 0.0;
            for j in 0..config.q {
                let e = u_q[(i, j)];
                // Eigenvalue drop σ_j → σ_j (τ/σ_j)^α, i.e. σ_j · D_jj.
                drop += sigmas[j] * d_diag[j] * e * e;
            }
            kernel.as_ref().of_sq_dist(0.0) - drop
        })
        .fold(f64::NEG_INFINITY, f64::max);
    let eta = config
        .step_size
        .unwrap_or_else(|| critical::optimal_step_size(m, beta_g.max(1e-6), lambda_top_damped));

    let mut model = KernelModel::zeros(kernel, train.features.clone(), l);
    let mut clock = SimClock::new(device.clone(), config.device_mode);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(23));
    let start = Instant::now();

    let mut epochs = Vec::new();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut iterations = 0_u64;
    let mut reached_target = false;
    for epoch in 1..=config.epochs {
        indices.shuffle(&mut rng);
        for chunk in indices.chunks(m) {
            let mb = chunk.len();
            // Steps 2–3: standard SGD part.
            let batch_x = train.features.select_rows(chunk);
            let k_block = kmat::kernel_cross(model.kernel().as_ref(), &batch_x, model.centers());
            let f = model.predict_from_kernel_block(&k_block);
            let mut g = f;
            for (bi, &idx) in chunk.iter().enumerate() {
                for (c, v) in g.row_mut(bi).iter_mut().enumerate() {
                    *v -= train.targets[(idx, c)];
                }
            }
            let scale = eta * 2.0 / mb as f64;
            for (bi, &idx) in chunk.iter().enumerate() {
                let g_row = g.row(bi);
                let w_row = model.weights_mut().row_mut(idx);
                for (w, &gv) in w_row.iter_mut().zip(g_row) {
                    *w -= scale * gv;
                }
            }
            // Correction over ALL n coordinates: α += scale · U D U[batch]ᵀ g.
            let u_batch = u_q.select_rows(chunk); // mb x q
            let mut t = Matrix::zeros(config.q, l);
            blas::gemm_tn(1.0, &u_batch, &g, 0.0, &mut t);
            for (j, &dj) in d_diag.iter().enumerate() {
                for v in t.row_mut(j) {
                    *v *= dj;
                }
            }
            let correction = blas::matmul(&u_q, &t); // n x l
            for i in 0..n {
                let c_row = correction.row(i);
                let w_row = model.weights_mut().row_mut(i);
                for (w, &cv) in w_row.iter_mut().zip(c_row) {
                    *w += scale * cv;
                }
            }
            iterations += 1;
            // Table-1 accounting: SGD part + n-scaled correction.
            let sgd_ops = (n * mb * (d + l)) as f64;
            let corr_ops = (mb * config.q * l + n * config.q * l) as f64;
            clock.record_launch(sgd_ops + corr_ops);
        }
        let pred = model.predict_with(&train.features, &PredictOptions::default());
        let train_mse = metrics::mse(&pred, &train.targets);
        let val_error = val.map(|v| {
            let p = model.predict_with(&v.features, &PredictOptions::default());
            metrics::classification_error(&p, &v.labels)
        });
        epochs.push((epoch, train_mse, val_error));
        if config
            .target_train_mse
            .map(|t| train_mse <= t)
            .unwrap_or(false)
        {
            reached_target = true;
            break;
        }
    }
    let &(_, final_train_mse, final_val_error) = epochs.last().expect("ran at least one epoch");
    Ok(BaselineOutcome {
        model,
        report: BaselineReport {
            method: "EigenPro 1".to_string(),
            simulated_seconds: clock.elapsed(),
            wall_seconds: start.elapsed().as_secs_f64(),
            iterations,
            final_train_mse,
            final_val_error,
            reached_target,
            epochs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_data::catalog;

    #[test]
    fn eigenpro1_learns_and_beats_sgd_per_epoch() {
        let data = catalog::mnist_like(300, 2);
        let (tr, te) = data.split_at(240);
        let device = ResourceSpec::scaled_virtual_gpu();
        let m = 120; // well above m*(k)

        let ep1 = train(
            &EigenPro1Config {
                bandwidth: 4.0,
                epochs: 4,
                batch_size: m,
                q: 24,
                seed: 3,
                ..EigenPro1Config::default()
            },
            &device,
            &tr,
            Some(&te),
        )
        .unwrap();

        let sgd = crate::sgd::train(
            &crate::sgd::SgdConfig {
                bandwidth: 4.0,
                epochs: 4,
                batch_size: m,
                seed: 3,
                ..crate::sgd::SgdConfig::default()
            },
            &device,
            &tr,
            Some(&te),
        )
        .unwrap();

        assert!(
            ep1.report.final_train_mse < sgd.report.final_train_mse * 0.5,
            "eigenpro1 {} vs sgd {}",
            ep1.report.final_train_mse,
            sgd.report.final_train_mse
        );
        assert!(ep1.report.final_val_error.unwrap() < 0.2);
    }

    #[test]
    fn overhead_scales_with_n_in_sim_time() {
        // Same shape except n: per-iteration ops of EigenPro 1 grow with n
        // beyond the SGD part (Table 1).
        let device = ResourceSpec::scaled_virtual_gpu();
        let run = |n: usize| {
            let data = catalog::susy_like(n, 5);
            let (tr, _) = data.split_at(n);
            let out = train(
                &EigenPro1Config {
                    bandwidth: 3.0,
                    epochs: 1,
                    batch_size: 50,
                    q: 10,
                    seed: 1,
                    ..EigenPro1Config::default()
                },
                &device,
                &tr,
                None,
            )
            .unwrap();
            let clock_ops = out.report.iterations as f64;
            let _ = clock_ops;
            out
        };
        let small = run(100);
        let big = run(400);
        // ops per iteration ratio ≈ n ratio (d, l, m, q fixed).
        let small_ops = small.report.simulated_seconds;
        let big_ops = big.report.simulated_seconds;
        assert!(big_ops > small_ops, "{big_ops} vs {small_ops}");
    }

    #[test]
    fn rejects_bad_q() {
        let data = catalog::susy_like(30, 1);
        let (tr, _) = data.split_at(30);
        let bad = EigenPro1Config {
            q: 29,
            ..EigenPro1Config::default()
        };
        assert!(train(&bad, &ResourceSpec::scaled_virtual_gpu(), &tr, None).is_err());
    }
}
