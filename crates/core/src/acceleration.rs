//! The Appendix-C acceleration claim.
//!
//! Using the adaptive kernel `k_G` decreases the resource time required for
//! training over the original kernel `k` by approximately
//!
//! `a ≈ (β(K) / β(K_G)) · (m^max_G / m*(k))`
//!
//! The paper reports `β(K_G) ≈ β(K)` empirically and
//! `m^max_G / m*(k)` between 50 and 500 on its datasets.

/// The predicted acceleration factor of `k_G` over `k`.
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn acceleration_factor(beta: f64, beta_g: f64, m_max: usize, m_star: f64) -> f64 {
    assert!(beta > 0.0 && beta_g > 0.0, "betas must be positive");
    assert!(m_max > 0, "m_max must be positive");
    assert!(m_star > 0.0, "m_star must be positive");
    (beta / beta_g) * (m_max as f64 / m_star)
}

/// The iteration-count ratio from the Appendix-C derivation: training with
/// `k_G` needs `λ_q(K)/λ₁(K)` times the iterations of `k` (to reach the
/// same accuracy), i.e. a *reduction* by `λ₁/λ_q`.
///
/// # Panics
///
/// Panics if eigenvalues are non-positive or out of order.
pub fn iteration_ratio(lambda1: f64, lambda_q: f64) -> f64 {
    assert!(lambda_q > 0.0 && lambda1 >= lambda_q, "need λ₁ ≥ λ_q > 0");
    lambda_q / lambda1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_formula() {
        // β = β_G = 1, m_max = 400, m* = 4 → 100x.
        assert_eq!(acceleration_factor(1.0, 1.0, 400, 4.0), 100.0);
    }

    #[test]
    fn smaller_beta_g_boosts_acceleration() {
        let a1 = acceleration_factor(1.0, 1.0, 100, 5.0);
        let a2 = acceleration_factor(1.0, 0.5, 100, 5.0);
        assert_eq!(a2, 2.0 * a1);
    }

    #[test]
    fn iteration_ratio_consistent_with_acceleration() {
        // With β = β_G and λ_q/λ₁ = m*(k)/m*(k_G) = m*/m_max, the iteration
        // ratio inverts the acceleration factor.
        let (l1, lq) = (0.25, 0.001);
        let m_star = 1.0 / l1; // β = 1
        let m_max = (1.0 / lq) as usize;
        let a = acceleration_factor(1.0, 1.0, m_max, m_star);
        let r = iteration_ratio(l1, lq);
        assert!((a * r - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "m_star")]
    fn rejects_zero_m_star() {
        let _ = acceleration_factor(1.0, 1.0, 10, 0.0);
    }
}
