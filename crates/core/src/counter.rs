//! Operation counting.
//!
//! Every training iteration reports its operation count here; the totals
//! drive the simulated GPU clock and let the Table-1 harness print
//! *measured* per-iteration costs next to the analytic formulas.

/// Accumulated operation counts, split into the standard-SGD part
/// (Steps 2–3 of Algorithm 1) and the preconditioner overhead (Steps 4–5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlopCounter {
    /// Operations spent in the SGD part (`n·m·(d+l)` per iteration).
    pub sgd_ops: f64,
    /// Operations spent applying the preconditioner
    /// (`s·m·q + q·m·l + s·q·l` per iteration).
    pub precond_ops: f64,
    /// Iterations recorded.
    pub iterations: u64,
}

impl FlopCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        FlopCounter::default()
    }

    /// Records one iteration's costs.
    pub fn record(&mut self, sgd_ops: f64, precond_ops: f64) {
        self.sgd_ops += sgd_ops;
        self.precond_ops += precond_ops;
        self.iterations += 1;
    }

    /// Total operations.
    pub fn total_ops(&self) -> f64 {
        self.sgd_ops + self.precond_ops
    }

    /// Preconditioner overhead as a fraction of the SGD cost (the quantity
    /// Table 1 bounds below 1% at paper scale).
    pub fn overhead_fraction(&self) -> f64 {
        if self.sgd_ops == 0.0 {
            0.0
        } else {
            self.precond_ops / self.sgd_ops
        }
    }

    /// Mean operations per iteration.
    pub fn ops_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.total_ops() / self.iterations as f64
        }
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = FlopCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reports() {
        let mut c = FlopCounter::new();
        c.record(100.0, 1.0);
        c.record(100.0, 1.0);
        assert_eq!(c.total_ops(), 202.0);
        assert_eq!(c.iterations, 2);
        assert!((c.overhead_fraction() - 0.01).abs() < 1e-12);
        assert_eq!(c.ops_per_iteration(), 101.0);
    }

    #[test]
    fn zero_state_is_safe() {
        let c = FlopCounter::new();
        assert_eq!(c.overhead_fraction(), 0.0);
        assert_eq!(c.ops_per_iteration(), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut c = FlopCounter::new();
        c.record(5.0, 5.0);
        c.reset();
        assert_eq!(c, FlopCounter::new());
    }
}
