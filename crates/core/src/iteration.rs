//! Algorithm 1: the improved EigenPro iteration
//! ("double coordinate block descent").
//!
//! Model state is the weight vector `α ∈ R^{n x l}` over **all** training
//! centers. Each step touches two coordinate blocks:
//!
//! 1. Steps 2–3 (exactly standard SGD): predict on the sampled mini-batch
//!    and update the `m` sampled coordinates of `α` with the residual.
//! 2. Steps 4–5 (the preconditioner correction): evaluate the feature map
//!    `φ` of the mini-batch against the `s` fixed subsample coordinates and
//!    add `η (2/m) V D Vᵀ Φᵀ (f − y)` to the fixed block.
//!
//! With the preconditioner disabled this type **is** plain mini-batch
//! kernel SGD (randomized coordinate descent for `Kα = y`), which is how
//! the SGD baseline and Figure-2/3 comparisons run on identical code paths.
//!
//! Every dense product in the step — the `m x n` kernel-block assembly
//! (`gemm_nt` cross-term), the prediction `gemm`, and the correction's
//! `gemm`/`gemm_tn` — runs on `ep2_linalg`'s packed register-blocked engine,
//! so per-iteration wall time tracks the `2·m·n·(d+l)` operation count the
//! simulated clock prices (see `BENCH_gemm.json`).

use ep2_linalg::{blas, Matrix, Scalar};

use crate::counter::FlopCounter;

/// Widens the `m x l` residual into the compute precision (borrow-free: it
/// is a tiny matrix, copied once per step only when preconditioning).
fn widen_residual<S: Scalar>(g: &Matrix<S>) -> Matrix<S::Compute> {
    Matrix::from_fn(g.rows(), g.cols(), |i, j| g[(i, j)].compute())
}
use crate::model::KernelModel;
use crate::precond::Preconditioner;

/// One training-iteration driver over a [`KernelModel`] whose centers are
/// the training set, generic over the numeric precision `S`.
///
/// The step size `η` is kept in `f64` regardless of `S` — it is an analytic
/// spectral quantity (see `ep2_device::Precision`) — and converted once per
/// step when scaling the residual. The preconditioner lives at the GEMM
/// compute precision `S::Compute` (identical to `S` for the native floats):
/// its correction `V D Vᵀ` damps the top eigendirections through near-exact
/// cancellation, so quantising the eigenvectors to a storage-only format
/// like bf16 would leak un-damped top-eigenvalue mass and push the
/// analytically-stepped iteration over the stability edge — while the
/// buffers involved are `s x q`, a rounding error of the kernel blocks'
/// footprint. Storage stays `S`; only Φ (gathered per batch) and the
/// residual are widened for the correction products.
#[derive(Debug)]
pub struct EigenProIteration<S: Scalar = f64> {
    model: KernelModel<S>,
    precond: Option<Preconditioner<S::Compute>>,
    eta: f64,
    counter: FlopCounter,
}

impl<S: Scalar> EigenProIteration<S> {
    /// Creates the driver. Pass `precond: None` for plain mini-batch SGD.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn new(
        model: KernelModel<S>,
        precond: Option<Preconditioner<S::Compute>>,
        eta: f64,
    ) -> Self {
        assert!(eta > 0.0 && eta.is_finite(), "step size must be positive");
        EigenProIteration {
            model,
            precond,
            eta,
            counter: FlopCounter::new(),
        }
    }

    /// The model being trained.
    pub fn model(&self) -> &KernelModel<S> {
        &self.model
    }

    /// Mutable access to the model (used by the trainer's divergence
    /// safeguard to reset weights).
    pub fn model_mut(&mut self) -> &mut KernelModel<S> {
        &mut self.model
    }

    /// Consumes the driver and returns the trained model.
    pub fn into_model(self) -> KernelModel<S> {
        self.model
    }

    /// Step size `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Overrides the step size (used by batch-size sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn set_eta(&mut self, eta: f64) {
        assert!(eta > 0.0 && eta.is_finite(), "step size must be positive");
        self.eta = eta;
    }

    /// Operation counts accumulated so far.
    pub fn counter(&self) -> &FlopCounter {
        &self.counter
    }

    /// Mutable access to the operation counter — used by checkpoint resume
    /// to restore accumulated counts so reports continue the interrupted
    /// trajectory.
    pub fn counter_mut(&mut self) -> &mut FlopCounter {
        &mut self.counter
    }

    /// Executes one iteration of Algorithm 1 on the mini-batch given by
    /// `batch_indices` (rows into the training set/centers), with targets
    /// `y` (`n x l`, the full target matrix).
    ///
    /// Returns the operation count of this iteration (for the simulated
    /// clock).
    ///
    /// # Panics
    ///
    /// Panics if any batch index is out of range or `y` has wrong shape.
    pub fn step(&mut self, batch_indices: &[usize], y: &Matrix<S>) -> f64 {
        let m = batch_indices.len();
        assert!(m > 0, "empty mini-batch");

        // Step 2: predictions on the mini-batch. Assemble the m x n kernel
        // block once; its subsample columns double as the feature map Φ.
        let batch_x = self.model.centers().select_rows(batch_indices);
        let k_block = ep2_kernels::matrix::kernel_cross(
            self.model.kernel().as_ref(),
            &batch_x,
            self.model.centers(),
        );
        let f = self.model.predict_from_kernel_block(&k_block);

        // Φ: gather the subsample columns of the batch kernel block
        // (k(x_r_j, x_t_i) already computed in Step 2), widened to the
        // compute precision the preconditioner operates at.
        let phi = self.precond.as_ref().map(|precond| {
            let sub_idx = precond.subsample_indices();
            let mut phi: Matrix<S::Compute> = Matrix::zeros(m, precond.s());
            for bi in 0..m {
                let src = k_block.row(bi);
                let dst = phi.row_mut(bi);
                for (j, &cj) in sub_idx.iter().enumerate() {
                    dst[j] = src[cj].compute();
                }
            }
            phi
        });
        self.finish_step(batch_indices, y, f, phi)
    }

    /// The streamed (out-of-core) variant of [`EigenProIteration::step`]:
    /// instead of one resident `m x n` kernel block, the block arrives as a
    /// sequence of column tiles (the [`ep2_stream::TileGuard`]s a
    /// [`ep2_stream::StreamEngine`] delivers). Tiles must arrive in column
    /// order and cover all `n` centers exactly once; each tile contributes
    /// its slice of the prediction (`f += K_tile · α[tile]`) and of the
    /// feature map `Φ`, and its ring buffer recycles as soon as the guard
    /// drops — so peak residency stays at the plan's budget while assembly
    /// of the next tile overlaps this consumer work.
    ///
    /// Returns the operation count of this iteration (for the simulated
    /// clock); the counted work is identical to the in-core step.
    ///
    /// # Panics
    ///
    /// Panics if the tiles do not tile `0..n` contiguously, a tile's row
    /// count differs from the batch size, any batch index is out of range,
    /// or `y` has the wrong shape.
    pub fn step_streamed<I>(&mut self, batch_indices: &[usize], y: &Matrix<S>, tiles: I) -> f64
    where
        I: IntoIterator<Item = ep2_stream::TileGuard<S>>,
    {
        let n = self.model.n_centers();
        let l = self.model.n_outputs();
        let m = batch_indices.len();
        assert!(m > 0, "empty mini-batch");

        let mut f: Matrix<S> = Matrix::zeros(m, l);
        let sub_idx = self
            .precond
            .as_ref()
            .map(|p| p.subsample_indices().to_vec())
            .unwrap_or_default();
        let mut phi: Option<Matrix<S::Compute>> =
            self.precond.as_ref().map(|p| Matrix::zeros(m, p.s()));
        let mut covered = 0usize;
        for tile in tiles {
            let range = tile.col_range();
            assert_eq!(
                range.start, covered,
                "tiles must arrive in column order with no gaps"
            );
            assert_eq!(tile.block().rows(), m, "tile row count != batch size");
            covered = range.end;
            // f += K_tile · α[range].
            let w_tile = self
                .model
                .weights()
                .submatrix(range.start, 0, range.len(), l);
            blas::gemm(S::ONE, tile.block(), &w_tile, S::ONE, &mut f);
            // Φ columns whose subsample center falls inside this tile.
            if let Some(phi) = phi.as_mut() {
                for (j, &cj) in sub_idx.iter().enumerate() {
                    if range.contains(&cj) {
                        let local = cj - range.start;
                        for bi in 0..m {
                            phi[(bi, j)] = tile.block()[(bi, local)].compute();
                        }
                    }
                }
            }
            // `tile` drops here: the ring buffer recycles to the producers.
        }
        assert_eq!(covered, n, "tiles must cover all {n} centers");
        self.finish_step(batch_indices, y, f, phi)
    }

    /// Steps 2b–5 of Algorithm 1, shared by the in-core and streamed paths:
    /// given the mini-batch predictions `f` (and the feature map `Φ` when
    /// preconditioning), form the residual, update the sampled coordinate
    /// block, apply the preconditioner correction, and account the work.
    fn finish_step(
        &mut self,
        batch_indices: &[usize],
        y: &Matrix<S>,
        f: Matrix<S>,
        phi: Option<Matrix<S::Compute>>,
    ) -> f64 {
        let n = self.model.n_centers();
        let l = self.model.n_outputs();
        let d = self.model.dim();
        assert_eq!(y.rows(), n, "targets must cover all centers");
        assert_eq!(y.cols(), l, "target width mismatch");
        let m = batch_indices.len();

        // Residual G = f − y on the batch.
        let mut g = f;
        for (bi, &idx) in batch_indices.iter().enumerate() {
            let row = g.row_mut(bi);
            for (c, v) in row.iter_mut().enumerate() {
                *v -= y[(idx, c)];
            }
        }

        let scale = S::from_f64(self.eta * 2.0 / m as f64);

        // Step 3: update the sampled coordinate block.
        for (bi, &idx) in batch_indices.iter().enumerate() {
            let g_row = g.row(bi);
            let w_row = self.model.weights_mut().row_mut(idx);
            for (w, &gv) in w_row.iter_mut().zip(g_row) {
                *w -= scale * gv;
            }
        }

        let sgd_ops = (n * m * (d + l)) as f64;
        let mut precond_ops = 0.0;

        // Steps 4–5: preconditioner correction on the fixed block, run
        // entirely at the compute precision (the residual is widened, the
        // weight update narrows once per touched entry).
        if let Some(precond) = &self.precond {
            let phi = phi.expect("phi gathered whenever a preconditioner is set");
            let sub_idx = precond.subsample_indices();
            let g_c: Matrix<S::Compute> = widen_residual(&g);
            let correction = precond.apply_correction(&phi, &g_c);
            precond_ops = precond.correction_ops(m, l);
            let scale_c = S::Compute::from_f64(self.eta * 2.0 / m as f64);
            for (j, &idx) in sub_idx.iter().enumerate() {
                let c_row = correction.row(j);
                let w_row = self.model.weights_mut().row_mut(idx);
                for (w, &cv) in w_row.iter_mut().zip(c_row) {
                    *w = S::from_compute(w.compute() + scale_c * cv);
                }
            }
        }

        self.counter.record(sgd_ops, precond_ops);
        sgd_ops + precond_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PredictOptions;
    use ep2_kernels::{GaussianKernel, Kernel};
    use ep2_linalg::cholesky::solve_spd;
    use std::sync::Arc;

    /// Clustered features (fast spectral decay — the regime the paper's
    /// analysis targets) with labels given by cluster membership.
    fn toy_problem(n: usize, seed: u64) -> (Matrix, Matrix, Arc<dyn Kernel>) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x = Matrix::from_fn(n, 3, |i, _| 2.0 * ((i % 4) as f64) + 0.15 * next());
        let y = Matrix::from_fn(n, 1, |i, _| if i % 4 < 2 { 1.0 } else { 0.0 });
        let k: Arc<dyn Kernel> = Arc::new(GaussianKernel::new(1.0));
        (x, y, k)
    }

    /// A target concentrated on the top eigendirections of K (a "smooth"
    /// function), where unpreconditioned gradient descent converges quickly.
    fn smooth_target(km: &Matrix, top: usize) -> Matrix {
        let dec = ep2_linalg::eigen::sym_eig(km).unwrap();
        let n = km.rows();
        let mut y = Matrix::zeros(n, 1);
        for j in 0..top {
            for i in 0..n {
                y[(i, 0)] += dec.vectors[(i, j)];
            }
        }
        y
    }

    /// Full-batch gradient descent (m = n) must converge toward the
    /// interpolating solution K⁻¹y for a smooth (top-eigenspace) target.
    #[test]
    fn full_batch_sgd_converges_to_interpolation() {
        let (x, _, k) = toy_problem(30, 3);
        let km = ep2_kernels::matrix::kernel_matrix(k.as_ref(), &x);
        let y = smooth_target(&km, 3);
        // Exact interpolant (with tiny jitter for conditioning).
        let mut km_j = km.clone();
        for i in 0..30 {
            km_j[(i, i)] += 1e-10;
        }
        let alpha_star = solve_spd(&km_j, &y.col(0)).unwrap();

        let model = KernelModel::zeros(k.clone(), x.clone(), 1);
        // λ₁ of normalised kernel matrix for the step size.
        let dec = ep2_linalg::eigen::sym_eig(&km).unwrap();
        let l1 = dec.values[0] / 30.0;
        let eta = crate::critical::optimal_step_size(30, 1.0, l1);
        let mut it = EigenProIteration::new(model, None, eta);
        let all: Vec<usize> = (0..30).collect();
        for _ in 0..4000 {
            it.step(&all, &y);
        }
        let f = it.model().predict_with(&x, &PredictOptions::default());
        let mse = ep2_data::metrics::mse(&f, &y);
        assert!(mse < 1e-5, "train mse {mse}");
        // Weights approach the interpolant.
        let w = it.model().weights().col(0);
        let mut err = 0.0;
        let mut norm = 0.0;
        for i in 0..30 {
            err += (w[i] - alpha_star[i]) * (w[i] - alpha_star[i]);
            norm += alpha_star[i] * alpha_star[i];
        }
        assert!(err / norm < 0.05, "relative weight error {}", err / norm);
    }

    /// The preconditioned iteration must reach a much smaller training MSE
    /// than plain SGD in the same number of epochs at the same large batch
    /// size — Figure 1's claim.
    #[test]
    fn preconditioning_accelerates_large_batch() {
        let (x, y, k) = toy_problem(120, 7);
        let m = 60; // far above m*(k) for clustered data

        let run = |precond: Option<Preconditioner>, eta: f64| -> f64 {
            let model = KernelModel::zeros(k.clone(), x.clone(), 1);
            let mut it = EigenProIteration::new(model, precond, eta);
            let idx: Vec<usize> = (0..120).collect();
            for _epoch in 0..20 {
                for chunk_start in (0..120).step_by(m) {
                    let batch: Vec<usize> = idx[chunk_start..chunk_start + m].to_vec();
                    it.step(&batch, &y);
                }
            }
            let f = it.model().predict_with(&x, &PredictOptions::default());
            ep2_data::metrics::mse(&f, &y)
        };

        // Plain SGD with its own optimal step for this batch.
        let km = ep2_kernels::matrix::kernel_matrix(k.as_ref(), &x);
        let dec = ep2_linalg::eigen::sym_eig(&km).unwrap();
        let l1 = dec.values[0] / 120.0;
        let eta_sgd = crate::critical::optimal_step_size(m, 1.0, l1);
        let mse_sgd = run(None, eta_sgd);

        // EigenPro with q = 12, reference damping, and robust β/λ estimates.
        let p = Preconditioner::fit_damped(&k, &x, 80, 12, 0.95, 5).unwrap();
        let beta_g = p.beta_estimate(&k, &x, 120, 1);
        let lambda = p
            .lambda1_preconditioned()
            .max(p.probe_lambda_max(&k, &x, 120, 12, 1));
        let eta_ep = crate::critical::optimal_step_size(m, beta_g, lambda);
        let mse_ep = run(Some(p), eta_ep);

        assert!(
            mse_ep < mse_sgd * 0.2,
            "eigenpro {mse_ep} not ≪ sgd {mse_sgd}"
        );
    }

    /// EigenPro and plain SGD converge to the same (interpolating) solution:
    /// the preconditioner changes the path, not the fixed point.
    #[test]
    fn same_fixed_point_as_sgd() {
        let (x, _, k) = toy_problem(40, 9);
        let km = ep2_kernels::matrix::kernel_matrix(k.as_ref(), &x);
        let y = smooth_target(&km, 4);
        let p = Preconditioner::fit_damped(&k, &x, 30, 5, 0.95, 2).unwrap();
        let beta_g = p.beta_estimate(&k, &x, 40, 2);
        let lambda = p
            .lambda1_preconditioned()
            .max(p.probe_lambda_max(&k, &x, 40, 12, 2));
        let eta = crate::critical::optimal_step_size(40, beta_g, lambda);
        let model = KernelModel::zeros(k.clone(), x.clone(), 1);
        let mut it = EigenProIteration::new(model, Some(p), eta);
        let all: Vec<usize> = (0..40).collect();
        for _ in 0..3000 {
            it.step(&all, &y);
        }
        // At convergence the residual is ~0, i.e. f interpolates y — the
        // same solution SGD converges to.
        let f = it.model().predict_with(&x, &PredictOptions::default());
        let mse = ep2_data::metrics::mse(&f, &y);
        assert!(mse < 1e-6, "not interpolating: mse {mse}");
    }

    /// Cuts the in-core kernel block of a batch into detached column tiles
    /// (what the streaming producers would deliver, minus the threads).
    fn tiles_for(
        model: &KernelModel,
        batch: &[usize],
        n_tile: usize,
    ) -> Vec<ep2_stream::TileGuard<f64>> {
        let bx = model.centers().select_rows(batch);
        let block =
            ep2_kernels::matrix::kernel_cross(model.kernel().as_ref(), &bx, model.centers());
        let n = model.n_centers();
        let mut tiles = Vec::new();
        let mut j0 = 0;
        while j0 < n {
            let cols = n_tile.min(n - j0);
            let mut t = Matrix::zeros(batch.len(), cols);
            for i in 0..batch.len() {
                t.row_mut(i).copy_from_slice(&block.row(i)[j0..j0 + cols]);
            }
            tiles.push(ep2_stream::TileGuard::detached(j0, t));
            j0 += cols;
        }
        tiles
    }

    /// A streamed step must produce (numerically near-)identical weights to
    /// the in-core step: the only difference is the column order of the
    /// prediction accumulation.
    #[test]
    fn streamed_step_matches_in_core_step() {
        let (x, y, k) = toy_problem(90, 11);
        let p = Preconditioner::fit_damped(&k, &x, 40, 6, 0.95, 3).unwrap();
        let batch: Vec<usize> = (10..42).collect();
        for n_tile in [7usize, 16, 64, 90] {
            let mut a = EigenProIteration::new(
                KernelModel::zeros(k.clone(), x.clone(), 1),
                Some(p.clone()),
                0.5,
            );
            let mut b = EigenProIteration::new(
                KernelModel::zeros(k.clone(), x.clone(), 1),
                Some(p.clone()),
                0.5,
            );
            let ops_in_core = a.step(&batch, &y);
            let tiles = tiles_for(b.model(), &batch, n_tile);
            let ops_streamed = b.step_streamed(&batch, &y, tiles);
            assert_eq!(ops_in_core, ops_streamed, "identical accounted work");
            for (u, v) in a
                .model()
                .weights()
                .as_slice()
                .iter()
                .zip(b.model().weights().as_slice())
            {
                assert!((u - v).abs() < 1e-12, "tile {n_tile}: {u} vs {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cover all")]
    fn streamed_step_rejects_partial_tiles() {
        let (x, y, k) = toy_problem(30, 5);
        let mut it = EigenProIteration::new(KernelModel::zeros(k, x, 1), None, 1.0);
        let batch: Vec<usize> = (0..4).collect();
        let mut tiles = tiles_for(it.model(), &batch, 10);
        tiles.pop(); // drop the last tile: columns 20..30 never arrive
        it.step_streamed(&batch, &y, tiles);
    }

    #[test]
    fn counter_tracks_ops() {
        let (x, y, k) = toy_problem(20, 1);
        let model = KernelModel::zeros(k, x, 1);
        let mut it = EigenProIteration::new(model, None, 1.0);
        let ops = it.step(&[0, 1, 2, 3], &y);
        // n·m·(d+l) = 20·4·(3+1).
        assert_eq!(ops, 320.0);
        assert_eq!(it.counter().iterations, 1);
        assert_eq!(it.counter().precond_ops, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty mini-batch")]
    fn empty_batch_panics() {
        let (x, y, k) = toy_problem(5, 1);
        let model = KernelModel::zeros(k, x, 1);
        let mut it = EigenProIteration::new(model, None, 1.0);
        it.step(&[], &y);
    }
}
