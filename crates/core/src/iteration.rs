//! Algorithm 1: the improved EigenPro iteration
//! ("double coordinate block descent").
//!
//! Model state is the weight vector `α ∈ R^{n x l}` over **all** training
//! centers. Each step touches two coordinate blocks:
//!
//! 1. Steps 2–3 (exactly standard SGD): predict on the sampled mini-batch
//!    and update the `m` sampled coordinates of `α` with the residual.
//! 2. Steps 4–5 (the preconditioner correction): evaluate the feature map
//!    `φ` of the mini-batch against the `s` fixed subsample coordinates and
//!    add `η (2/m) V D Vᵀ Φᵀ (f − y)` to the fixed block.
//!
//! With the preconditioner disabled this type **is** plain mini-batch
//! kernel SGD (randomized coordinate descent for `Kα = y`), which is how
//! the SGD baseline and Figure-2/3 comparisons run on identical code paths.
//!
//! Every dense product in the step — the `m x n` kernel-block assembly
//! (`gemm_nt` cross-term), the prediction `gemm`, and the correction's
//! `gemm`/`gemm_tn` — runs on `ep2_linalg`'s packed register-blocked engine,
//! so per-iteration wall time tracks the `2·m·n·(d+l)` operation count the
//! simulated clock prices (see `BENCH_gemm.json`).

use ep2_linalg::{Matrix, Scalar};

use crate::counter::FlopCounter;
use crate::model::KernelModel;
use crate::precond::Preconditioner;

/// One training-iteration driver over a [`KernelModel`] whose centers are
/// the training set, generic over the numeric precision `S`.
///
/// The step size `η` is kept in `f64` regardless of `S` — it is an analytic
/// spectral quantity (see `ep2_device::Precision`) — and converted to `S`
/// once per step when scaling the residual.
#[derive(Debug)]
pub struct EigenProIteration<S: Scalar = f64> {
    model: KernelModel<S>,
    precond: Option<Preconditioner<S>>,
    eta: f64,
    counter: FlopCounter,
}

impl<S: Scalar> EigenProIteration<S> {
    /// Creates the driver. Pass `precond: None` for plain mini-batch SGD.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn new(model: KernelModel<S>, precond: Option<Preconditioner<S>>, eta: f64) -> Self {
        assert!(eta > 0.0 && eta.is_finite(), "step size must be positive");
        EigenProIteration {
            model,
            precond,
            eta,
            counter: FlopCounter::new(),
        }
    }

    /// The model being trained.
    pub fn model(&self) -> &KernelModel<S> {
        &self.model
    }

    /// Mutable access to the model (used by the trainer's divergence
    /// safeguard to reset weights).
    pub fn model_mut(&mut self) -> &mut KernelModel<S> {
        &mut self.model
    }

    /// Consumes the driver and returns the trained model.
    pub fn into_model(self) -> KernelModel<S> {
        self.model
    }

    /// Step size `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Overrides the step size (used by batch-size sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn set_eta(&mut self, eta: f64) {
        assert!(eta > 0.0 && eta.is_finite(), "step size must be positive");
        self.eta = eta;
    }

    /// Operation counts accumulated so far.
    pub fn counter(&self) -> &FlopCounter {
        &self.counter
    }

    /// Executes one iteration of Algorithm 1 on the mini-batch given by
    /// `batch_indices` (rows into the training set/centers), with targets
    /// `y` (`n x l`, the full target matrix).
    ///
    /// Returns the operation count of this iteration (for the simulated
    /// clock).
    ///
    /// # Panics
    ///
    /// Panics if any batch index is out of range or `y` has wrong shape.
    pub fn step(&mut self, batch_indices: &[usize], y: &Matrix<S>) -> f64 {
        let n = self.model.n_centers();
        let l = self.model.n_outputs();
        let d = self.model.dim();
        assert_eq!(y.rows(), n, "targets must cover all centers");
        assert_eq!(y.cols(), l, "target width mismatch");
        let m = batch_indices.len();
        assert!(m > 0, "empty mini-batch");

        // Step 2: predictions on the mini-batch. Assemble the m x n kernel
        // block once; its subsample columns double as the feature map Φ.
        let batch_x = self.model.centers().select_rows(batch_indices);
        let k_block = ep2_kernels::matrix::kernel_cross(
            self.model.kernel().as_ref(),
            &batch_x,
            self.model.centers(),
        );
        let f = self.model.predict_from_kernel_block(&k_block);

        // Residual G = f − y on the batch.
        let mut g = f;
        for (bi, &idx) in batch_indices.iter().enumerate() {
            let row = g.row_mut(bi);
            for (c, v) in row.iter_mut().enumerate() {
                *v -= y[(idx, c)];
            }
        }

        let scale = S::from_f64(self.eta * 2.0 / m as f64);

        // Step 3: update the sampled coordinate block.
        for (bi, &idx) in batch_indices.iter().enumerate() {
            let g_row = g.row(bi);
            let w_row = self.model.weights_mut().row_mut(idx);
            for (w, &gv) in w_row.iter_mut().zip(g_row) {
                *w -= scale * gv;
            }
        }

        let sgd_ops = (n * m * (d + l)) as f64;
        let mut precond_ops = 0.0;

        // Steps 4–5: preconditioner correction on the fixed block.
        if let Some(precond) = &self.precond {
            let s = precond.s();
            // Φ: gather the subsample columns of the batch kernel block
            // (k(x_r_j, x_t_i) already computed in Step 2).
            let sub_idx = precond.subsample_indices();
            let mut phi: Matrix<S> = Matrix::zeros(m, s);
            for bi in 0..m {
                let src = k_block.row(bi);
                let dst = phi.row_mut(bi);
                for (j, &cj) in sub_idx.iter().enumerate() {
                    dst[j] = src[cj];
                }
            }
            let correction = precond.apply_correction(&phi, &g);
            precond_ops = precond.correction_ops(m, l);
            for (j, &idx) in sub_idx.iter().enumerate() {
                let c_row = correction.row(j);
                let w_row = self.model.weights_mut().row_mut(idx);
                for (w, &cv) in w_row.iter_mut().zip(c_row) {
                    *w += scale * cv;
                }
            }
        }

        self.counter.record(sgd_ops, precond_ops);
        sgd_ops + precond_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_kernels::{GaussianKernel, Kernel};
    use ep2_linalg::cholesky::solve_spd;
    use std::sync::Arc;

    /// Clustered features (fast spectral decay — the regime the paper's
    /// analysis targets) with labels given by cluster membership.
    fn toy_problem(n: usize, seed: u64) -> (Matrix, Matrix, Arc<dyn Kernel>) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x = Matrix::from_fn(n, 3, |i, _| 2.0 * ((i % 4) as f64) + 0.15 * next());
        let y = Matrix::from_fn(n, 1, |i, _| if i % 4 < 2 { 1.0 } else { 0.0 });
        let k: Arc<dyn Kernel> = Arc::new(GaussianKernel::new(1.0));
        (x, y, k)
    }

    /// A target concentrated on the top eigendirections of K (a "smooth"
    /// function), where unpreconditioned gradient descent converges quickly.
    fn smooth_target(km: &Matrix, top: usize) -> Matrix {
        let dec = ep2_linalg::eigen::sym_eig(km).unwrap();
        let n = km.rows();
        let mut y = Matrix::zeros(n, 1);
        for j in 0..top {
            for i in 0..n {
                y[(i, 0)] += dec.vectors[(i, j)];
            }
        }
        y
    }

    /// Full-batch gradient descent (m = n) must converge toward the
    /// interpolating solution K⁻¹y for a smooth (top-eigenspace) target.
    #[test]
    fn full_batch_sgd_converges_to_interpolation() {
        let (x, _, k) = toy_problem(30, 3);
        let km = ep2_kernels::matrix::kernel_matrix(k.as_ref(), &x);
        let y = smooth_target(&km, 3);
        // Exact interpolant (with tiny jitter for conditioning).
        let mut km_j = km.clone();
        for i in 0..30 {
            km_j[(i, i)] += 1e-10;
        }
        let alpha_star = solve_spd(&km_j, &y.col(0)).unwrap();

        let model = KernelModel::zeros(k.clone(), x.clone(), 1);
        // λ₁ of normalised kernel matrix for the step size.
        let dec = ep2_linalg::eigen::sym_eig(&km).unwrap();
        let l1 = dec.values[0] / 30.0;
        let eta = crate::critical::optimal_step_size(30, 1.0, l1);
        let mut it = EigenProIteration::new(model, None, eta);
        let all: Vec<usize> = (0..30).collect();
        for _ in 0..4000 {
            it.step(&all, &y);
        }
        let f = it.model().predict(&x);
        let mse = ep2_data::metrics::mse(&f, &y);
        assert!(mse < 1e-5, "train mse {mse}");
        // Weights approach the interpolant.
        let w = it.model().weights().col(0);
        let mut err = 0.0;
        let mut norm = 0.0;
        for i in 0..30 {
            err += (w[i] - alpha_star[i]) * (w[i] - alpha_star[i]);
            norm += alpha_star[i] * alpha_star[i];
        }
        assert!(err / norm < 0.05, "relative weight error {}", err / norm);
    }

    /// The preconditioned iteration must reach a much smaller training MSE
    /// than plain SGD in the same number of epochs at the same large batch
    /// size — Figure 1's claim.
    #[test]
    fn preconditioning_accelerates_large_batch() {
        let (x, y, k) = toy_problem(120, 7);
        let m = 60; // far above m*(k) for clustered data

        let run = |precond: Option<Preconditioner>, eta: f64| -> f64 {
            let model = KernelModel::zeros(k.clone(), x.clone(), 1);
            let mut it = EigenProIteration::new(model, precond, eta);
            let idx: Vec<usize> = (0..120).collect();
            for _epoch in 0..20 {
                for chunk_start in (0..120).step_by(m) {
                    let batch: Vec<usize> = idx[chunk_start..chunk_start + m].to_vec();
                    it.step(&batch, &y);
                }
            }
            let f = it.model().predict(&x);
            ep2_data::metrics::mse(&f, &y)
        };

        // Plain SGD with its own optimal step for this batch.
        let km = ep2_kernels::matrix::kernel_matrix(k.as_ref(), &x);
        let dec = ep2_linalg::eigen::sym_eig(&km).unwrap();
        let l1 = dec.values[0] / 120.0;
        let eta_sgd = crate::critical::optimal_step_size(m, 1.0, l1);
        let mse_sgd = run(None, eta_sgd);

        // EigenPro with q = 12, reference damping, and robust β/λ estimates.
        let p = Preconditioner::fit_damped(&k, &x, 80, 12, 0.95, 5).unwrap();
        let beta_g = p.beta_estimate(&k, &x, 120, 1);
        let lambda = p
            .lambda1_preconditioned()
            .max(p.probe_lambda_max(&k, &x, 120, 12, 1));
        let eta_ep = crate::critical::optimal_step_size(m, beta_g, lambda);
        let mse_ep = run(Some(p), eta_ep);

        assert!(
            mse_ep < mse_sgd * 0.2,
            "eigenpro {mse_ep} not ≪ sgd {mse_sgd}"
        );
    }

    /// EigenPro and plain SGD converge to the same (interpolating) solution:
    /// the preconditioner changes the path, not the fixed point.
    #[test]
    fn same_fixed_point_as_sgd() {
        let (x, _, k) = toy_problem(40, 9);
        let km = ep2_kernels::matrix::kernel_matrix(k.as_ref(), &x);
        let y = smooth_target(&km, 4);
        let p = Preconditioner::fit_damped(&k, &x, 30, 5, 0.95, 2).unwrap();
        let beta_g = p.beta_estimate(&k, &x, 40, 2);
        let lambda = p
            .lambda1_preconditioned()
            .max(p.probe_lambda_max(&k, &x, 40, 12, 2));
        let eta = crate::critical::optimal_step_size(40, beta_g, lambda);
        let model = KernelModel::zeros(k.clone(), x.clone(), 1);
        let mut it = EigenProIteration::new(model, Some(p), eta);
        let all: Vec<usize> = (0..40).collect();
        for _ in 0..3000 {
            it.step(&all, &y);
        }
        // At convergence the residual is ~0, i.e. f interpolates y — the
        // same solution SGD converges to.
        let f = it.model().predict(&x);
        let mse = ep2_data::metrics::mse(&f, &y);
        assert!(mse < 1e-6, "not interpolating: mse {mse}");
    }

    #[test]
    fn counter_tracks_ops() {
        let (x, y, k) = toy_problem(20, 1);
        let model = KernelModel::zeros(k, x, 1);
        let mut it = EigenProIteration::new(model, None, 1.0);
        let ops = it.step(&[0, 1, 2, 3], &y);
        // n·m·(d+l) = 20·4·(3+1).
        assert_eq!(ops, 320.0);
        assert_eq!(it.counter().iterations, 1);
        assert_eq!(it.counter().precond_ops, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty mini-batch")]
    fn empty_batch_panics() {
        let (x, y, k) = toy_problem(5, 1);
        let model = KernelModel::zeros(k, x, 1);
        let mut it = EigenProIteration::new(model, None, 1.0);
        it.step(&[], &y);
    }
}
