//! The kernel predictor `f(x) = Σ_i α_i k(x_i, x)`, generic over the
//! numeric precision `S`.

use std::sync::Arc;

use ep2_device::Precision;
use ep2_kernels::{matrix as kmat, Kernel, KernelKind};
use ep2_linalg::{blas, Matrix, Scalar};

/// Default row-block size for prediction: the transient kernel panel stays
/// below ~`1024 x n` elements unless the caller plans otherwise.
pub const DEFAULT_PREDICT_BLOCK_ROWS: usize = 1024;

/// Smallest row block / column tile [`PredictOptions::planned`] will pick
/// before giving up on fitting the budget exactly (a floor, not a promise —
/// the ledger still audits the real charge).
const MIN_PLANNED_BLOCK: usize = 16;
const MIN_PLANNED_TILE: usize = 64;

/// Post-GEMM transform applied to each predicted row block before it is
/// written back — the prediction-side analogue of the fused GEMM epilogue.
///
/// [`PredictEpilogue::Identity`] is bitwise free: no pass runs at all, so
/// identity predictions are bit-for-bit what the raw `K·α` product produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictEpilogue {
    /// Return raw `K·α` untouched (no pass over the output runs).
    Identity,
    /// Affine map `y ← scale · y + bias` per output element, evaluated in
    /// f64 and rounded once back to the storage precision.
    Affine {
        /// Multiplicative factor.
        scale: f64,
        /// Additive offset.
        bias: f64,
    },
}

impl PredictEpilogue {
    fn apply<S: Scalar>(&self, block: &mut Matrix<S>) {
        if let PredictEpilogue::Affine { scale, bias } = *self {
            for v in block.as_mut_slice() {
                *v = S::from_f64(scale * v.to_f64() + bias);
            }
        }
    }
}

/// How [`KernelModel::predict_with`] evaluates: the one entry point behind
/// which the historical `predict` / `predict_blocked` / `predict_tiled`
/// trio collapsed.
///
/// Build it fluently — defaults are the old `predict` behaviour (1024-row
/// blocks, full-width kernel panels, identity epilogue):
///
/// ```
/// use ep2_core::model::PredictOptions;
///
/// let opts = PredictOptions::new().block_rows(256).col_tile(512);
/// assert_eq!(opts.block_rows, 256);
/// ```
///
/// or let [`PredictOptions::planned`] derive the blocking from a device
/// memory budget, the way the serve path sizes its micro-batches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictOptions {
    /// Rows of `x` evaluated per kernel panel (`> 0`).
    pub block_rows: usize,
    /// Center-side tile width; `None` materialises full `block_rows x n`
    /// panels (the historical `predict_blocked` shape), `Some(t)` caps the
    /// transient panel at `block_rows x t` and accumulates tile by tile
    /// (the historical `predict_tiled` shape).
    pub col_tile: Option<usize>,
    /// Output transform fused into the per-block write-back.
    pub epilogue: PredictEpilogue,
}

impl Default for PredictOptions {
    fn default() -> Self {
        PredictOptions {
            block_rows: DEFAULT_PREDICT_BLOCK_ROWS,
            col_tile: None,
            epilogue: PredictEpilogue::Identity,
        }
    }
}

impl PredictOptions {
    /// The default options ([`Default::default`], fluently nameable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the row-block size.
    pub fn block_rows(mut self, rows: usize) -> Self {
        self.block_rows = rows;
        self
    }

    /// Sets the center-side tile width.
    pub fn col_tile(mut self, tile: usize) -> Self {
        self.col_tile = Some(tile);
        self
    }

    /// Sets the output epilogue.
    pub fn epilogue(mut self, epilogue: PredictEpilogue) -> Self {
        self.epilogue = epilogue;
        self
    }

    /// Plans blocking factors from a device memory budget: the largest
    /// `block_rows x col_tile` shape (halving rows from
    /// [`DEFAULT_PREDICT_BLOCK_ROWS`], then narrowing the tile) whose
    /// transient slots — kernel panel + staged input block + output block,
    /// `block_rows·(tile + d + l)`, plus the `n`-slot center-norm cache —
    /// fit `budget_slots` at this precision's slot width. Best-effort: when
    /// even the floor shape (16 x 64) exceeds the budget it returns the
    /// floor and leaves enforcement to the ledger that audits the real
    /// charge.
    pub fn planned(n: usize, d: usize, l: usize, budget_slots: f64, precision: Precision) -> Self {
        let avail = (budget_slots / precision.slot_factor() - n as f64).max(0.0);
        let mut rows = DEFAULT_PREDICT_BLOCK_ROWS;
        let fits_full = |rows: usize| (rows * (n + d + l)) as f64 <= avail;
        while rows > MIN_PLANNED_BLOCK && !fits_full(rows) {
            rows /= 2;
        }
        if fits_full(rows) {
            return PredictOptions::new().block_rows(rows);
        }
        // Full-width panels never fit: tile the centers as wide as the
        // budget allows at the floor row block.
        let tile_f = (avail / rows as f64 - (d + l) as f64).floor();
        let floor = MIN_PLANNED_TILE.min(n.max(1));
        let tile = if tile_f.is_finite() && tile_f > 0.0 {
            (tile_f as usize).clamp(floor, n.max(1))
        } else {
            floor
        };
        PredictOptions::new().block_rows(rows).col_tile(tile)
    }

    /// Slots one prediction call transiently charges under these options
    /// for an `n`-center, `d`-feature, `l`-output model at `precision` —
    /// what the serve engine charges its ledger per worker.
    pub fn transient_slots(&self, n: usize, d: usize, l: usize, precision: Precision) -> f64 {
        let tile = self.col_tile.unwrap_or(n).min(n.max(1));
        (self.block_rows * (tile + d + l) + n) as f64 * precision.slot_factor()
    }
}

/// Recycled scratch for [`KernelModel::predict_with_into`] — the
/// zero-allocation serving hot path.
///
/// Holds the center-side norm cache (computed once per model, revalidated
/// by the centers' `Arc` identity), the per-block input norms, the staged
/// input block, the kernel panel, and the output block. After the first
/// call at the largest batch shape, subsequent calls allocate nothing.
#[derive(Debug)]
pub struct PredictBuffers<S: Scalar> {
    /// Center-norm cache key: `Arc::as_ptr` of the centers it was built
    /// from (0 = never built).
    c_sq_key: usize,
    c_sq: Vec<S::Accum>,
    b_sq: Vec<S::Accum>,
    x_block: Matrix<S>,
    k_tile: Matrix<S>,
    f_block: Matrix<S>,
}

impl<S: Scalar> Default for PredictBuffers<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> PredictBuffers<S> {
    /// Fresh (empty) buffers.
    pub fn new() -> Self {
        PredictBuffers {
            c_sq_key: 0,
            c_sq: Vec::new(),
            b_sq: Vec::new(),
            x_block: Matrix::zeros(0, 0),
            k_tile: Matrix::zeros(0, 0),
            f_block: Matrix::zeros(0, 0),
        }
    }

    /// Ensures the center-norm cache matches `model`'s centers, rebuilding
    /// it only when the model changed since the last call.
    fn center_norms(&mut self, model: &KernelModel<S>) {
        let key = Arc::as_ptr(&model.centers) as *const u8 as usize;
        if self.c_sq_key != key || self.c_sq.len() != model.n_centers() {
            kmat::row_sq_norms_into(&model.centers, &mut self.c_sq);
            self.c_sq_key = key;
        }
    }
}

/// A kernel machine: training points as centers plus an `n x l` weight
/// matrix `α`, with all buffers stored in precision `S` (default `f64`).
///
/// Both EigenPro 2.0 and every baseline (plain SGD, EigenPro 1, FALKON's
/// Nyström-restricted variant, the direct solver) produce predictions
/// through this type, so evaluation code is shared and comparisons are
/// apples-to-apples. Under the f32/mixed precision policies the centers,
/// weights, and transient kernel blocks are all f32 — half the resident
/// memory the device ledger charges, and the memory-bound prediction GEMM
/// runs correspondingly faster.
///
/// The (immutable) center matrix is held behind an [`Arc`]: cloning a model
/// shares the training features instead of copying them, and the out-of-core
/// streaming engine holds the same handle its producers assemble tiles from
/// while the trainer mutates the weights — no aliasing, no duplicate copy of
/// the (potentially enormous) training set.
#[derive(Debug, Clone)]
pub struct KernelModel<S: Scalar = f64> {
    kernel: Arc<dyn Kernel<S>>,
    centers: Arc<Matrix<S>>,
    weights: Matrix<S>,
}

impl<S: Scalar> KernelModel<S> {
    /// Creates a model with zero weights over the given centers.
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty or `l == 0`.
    pub fn zeros(kernel: Arc<dyn Kernel<S>>, centers: Matrix<S>, l: usize) -> Self {
        Self::zeros_shared(kernel, Arc::new(centers), l)
    }

    /// [`KernelModel::zeros`] over an already-shared center matrix (the
    /// out-of-core trainer hands the same `Arc` to the streaming engine).
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty or `l == 0`.
    pub fn zeros_shared(kernel: Arc<dyn Kernel<S>>, centers: Arc<Matrix<S>>, l: usize) -> Self {
        assert!(centers.rows() > 0, "model needs at least one center");
        assert!(l > 0, "label dimension must be positive");
        let weights = Matrix::zeros(centers.rows(), l);
        KernelModel {
            kernel,
            centers,
            weights,
        }
    }

    /// Creates a model from explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.rows() != centers.rows()`.
    pub fn from_weights(
        kernel: Arc<dyn Kernel<S>>,
        centers: Matrix<S>,
        weights: Matrix<S>,
    ) -> Self {
        assert_eq!(weights.rows(), centers.rows(), "weights/centers mismatch");
        KernelModel {
            kernel,
            centers: Arc::new(centers),
            weights,
        }
    }

    /// Number of centers `n`.
    pub fn n_centers(&self) -> usize {
        self.centers.rows()
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.centers.cols()
    }

    /// Output dimension `l`.
    pub fn n_outputs(&self) -> usize {
        self.weights.cols()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Arc<dyn Kernel<S>> {
        &self.kernel
    }

    /// The center matrix (training features).
    pub fn centers(&self) -> &Matrix<S> {
        &self.centers
    }

    /// A shared handle to the center matrix — what the out-of-core
    /// streaming producers assemble kernel tiles from while the trainer
    /// owns the model mutably.
    pub fn centers_shared(&self) -> Arc<Matrix<S>> {
        Arc::clone(&self.centers)
    }

    /// The weight matrix `α` (`n x l`).
    pub fn weights(&self) -> &Matrix<S> {
        &self.weights
    }

    /// Mutable access to the weights — the coordinate blocks Algorithm 1
    /// updates.
    pub fn weights_mut(&mut self) -> &mut Matrix<S> {
        &mut self.weights
    }

    /// Converts the model to another precision.
    ///
    /// The kernel object is re-instantiated from its named family at the
    /// same bandwidth, so this only works for the named kernels
    /// (`KernelKind::parse(self.kernel().name())` must succeed) — true for
    /// every kernel this workspace constructs.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is a custom (unnamed) implementation.
    pub fn cast<T: Scalar>(&self) -> KernelModel<T> {
        let kind = KernelKind::parse(self.kernel.name())
            .unwrap_or_else(|| panic!("cannot cast custom kernel {}", self.kernel.name()));
        let kernel: Arc<dyn Kernel<T>> =
            kind.with_bandwidth_in::<T>(self.kernel.bandwidth()).into();
        KernelModel {
            kernel,
            centers: Arc::new(self.centers.cast()),
            weights: self.weights.cast(),
        }
    }

    /// Predicts `f(x)` for every row of `x` under explicit evaluation
    /// [`PredictOptions`], returning an `(x.rows(), l)` matrix.
    ///
    /// This is the single prediction entry point: row blocks of `x` are
    /// evaluated against center-side kernel panels (full width, or tiled by
    /// [`PredictOptions::col_tile`] to respect an out-of-core budget:
    /// `f += K[:, j0..j1] · α[j0..j1, :]`), and the optional
    /// [`PredictEpilogue`] is applied per block before write-back. One
    /// kernel-panel buffer is recycled across *all* row blocks and column
    /// tiles.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()` or a blocking factor is 0.
    pub fn predict_with(&self, x: &Matrix<S>, opts: &PredictOptions) -> Matrix<S> {
        let mut bufs = PredictBuffers::new();
        let mut out = Matrix::zeros(x.rows(), self.n_outputs());
        self.predict_with_into(x, opts, &mut bufs, &mut out);
        out
    }

    /// [`KernelModel::predict_with`] through caller-recycled scratch and
    /// into a preallocated output — the zero-allocation serving hot path.
    /// Produces exactly (bit-for-bit) the values `predict_with` produces at
    /// the same options.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()`, `out` is not `(x.rows(), l)`, or
    /// a blocking factor is 0.
    pub fn predict_with_into(
        &self,
        x: &Matrix<S>,
        opts: &PredictOptions,
        bufs: &mut PredictBuffers<S>,
        out: &mut Matrix<S>,
    ) {
        assert_eq!(x.cols(), self.dim(), "predict: feature dim mismatch");
        assert!(opts.block_rows > 0, "block_rows must be positive");
        assert!(opts.col_tile != Some(0), "col_tile must be positive");
        let n = self.n_centers();
        let l = self.n_outputs();
        let m = x.rows();
        assert_eq!(out.shape(), (m, l), "predict: output shape mismatch");
        let col_tile = opts.col_tile.unwrap_or(n).min(n);
        // Center-side norms are cached across calls (revalidated by Arc
        // identity) and sliced per tile; the input-side norms and the
        // kernel panel live in recycled buffers.
        bufs.center_norms(self);
        let mut row0 = 0;
        while row0 < m {
            let rows = opts.block_rows.min(m - row0);
            // Whole-input blocks (the serving case: one micro-batch, one
            // block) borrow `x` directly; partial blocks stage into the
            // recycled copy.
            let block: &Matrix<S> = if rows == m {
                x
            } else {
                bufs.x_block.resize(rows, x.cols());
                for i in 0..rows {
                    bufs.x_block.row_mut(i).copy_from_slice(x.row(row0 + i));
                }
                &bufs.x_block
            };
            kmat::row_sq_norms_into(block, &mut bufs.b_sq);
            bufs.f_block.resize(rows, l);
            let mut j0 = 0;
            while j0 < n {
                let cols = col_tile.min(n - j0);
                let c_tile = self.centers.submatrix(j0, 0, cols, self.dim());
                bufs.k_tile.resize(rows, cols);
                kmat::kernel_cross_into(
                    self.kernel.as_ref(),
                    block,
                    &c_tile,
                    &bufs.b_sq,
                    &bufs.c_sq[j0..j0 + cols],
                    &mut bufs.k_tile,
                );
                let w_tile = self.weights.submatrix(j0, 0, cols, l);
                blas::gemm(S::ONE, &bufs.k_tile, &w_tile, S::ONE, &mut bufs.f_block);
                j0 += cols;
            }
            opts.epilogue.apply(&mut bufs.f_block);
            for i in 0..rows {
                out.row_mut(row0 + i).copy_from_slice(bufs.f_block.row(i));
            }
            row0 += rows;
        }
    }

    /// Predicts `f(x)` for every row of `x` under the default
    /// [`PredictOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()`.
    #[deprecated(
        since = "0.2.0",
        note = "use predict_with(&x, &PredictOptions::default())"
    )]
    pub fn predict(&self, x: &Matrix<S>) -> Matrix<S> {
        self.predict_with(x, &PredictOptions::default())
    }

    /// [`KernelModel::predict_with`] with only the row block overridden.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()` or `block_rows == 0`.
    #[deprecated(
        since = "0.2.0",
        note = "use predict_with(&x, &PredictOptions::new().block_rows(r))"
    )]
    pub fn predict_blocked(&self, x: &Matrix<S>, block_rows: usize) -> Matrix<S> {
        self.predict_with(x, &PredictOptions::new().block_rows(block_rows))
    }

    /// [`KernelModel::predict_with`] with row block and column tile
    /// overridden.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()` or either blocking factor is 0.
    #[deprecated(
        since = "0.2.0",
        note = "use predict_with(&x, &PredictOptions::new().block_rows(r).col_tile(t))"
    )]
    pub fn predict_tiled(&self, x: &Matrix<S>, block_rows: usize, col_tile: usize) -> Matrix<S> {
        self.predict_with(
            x,
            &PredictOptions::new()
                .block_rows(block_rows)
                .col_tile(col_tile),
        )
    }

    /// Predicts from a precomputed kernel block `k_block[i][j] = k(x_i,
    /// c_j)` (used inside the training loop where the block is already
    /// available), returning `k_block · α`.
    ///
    /// # Panics
    ///
    /// Panics if `k_block.cols() != self.n_centers()`.
    pub fn predict_from_kernel_block(&self, k_block: &Matrix<S>) -> Matrix<S> {
        assert_eq!(
            k_block.cols(),
            self.n_centers(),
            "kernel block width mismatch"
        );
        let mut f = Matrix::zeros(k_block.rows(), self.n_outputs());
        blas::gemm(S::ONE, k_block, &self.weights, S::ZERO, &mut f);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_kernels::GaussianKernel;

    fn toy_model() -> KernelModel {
        let centers = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 0.0]]);
        let kernel: Arc<dyn Kernel> = Arc::new(GaussianKernel::new(1.0));
        KernelModel::zeros(kernel, centers, 2)
    }

    fn predict_default(m: &KernelModel, x: &Matrix) -> Matrix {
        m.predict_with(x, &PredictOptions::default())
    }

    #[test]
    fn zero_model_predicts_zero() {
        let m = toy_model();
        let x = Matrix::from_rows(&[&[0.5, 0.5]]);
        let p = predict_default(&m, &x);
        assert_eq!(p.shape(), (1, 2));
        assert_eq!(p.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn single_center_unit_weight() {
        let kernel: Arc<dyn Kernel> = Arc::new(GaussianKernel::new(1.0));
        let centers = Matrix::from_rows(&[&[0.0]]);
        let weights = Matrix::from_rows(&[&[1.0]]);
        let m = KernelModel::from_weights(kernel.clone(), centers, weights);
        let x = Matrix::from_rows(&[&[1.0]]);
        let expect = kernel.eval(&[0.0], &[1.0]);
        assert!((predict_default(&m, &x)[(0, 0)] - expect).abs() < 1e-14);
    }

    #[test]
    fn blocked_prediction_matches_unblocked() {
        let mut m = toy_model();
        // Set some nonzero weights.
        m.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.5, -1.0, 2.0, 0.0, -0.3, 0.7]);
        let x = Matrix::from_fn(10, 2, |i, j| (i as f64) * 0.3 - (j as f64) * 0.1);
        let a = m.predict_with(&x, &PredictOptions::new().block_rows(3));
        let b = m.predict_with(&x, &PredictOptions::new().block_rows(100));
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn tiled_prediction_matches_unblocked() {
        let mut m = toy_model();
        m.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.5, -1.0, 2.0, 0.0, -0.3, 0.7]);
        let x = Matrix::from_fn(10, 2, |i, j| (i as f64) * 0.3 - (j as f64) * 0.1);
        let full = predict_default(&m, &x);
        for (rows, cols) in [(1, 1), (3, 2), (100, 3), (4, 100)] {
            let opts = PredictOptions::new().block_rows(rows).col_tile(cols);
            let tiled = m.predict_with(&x, &opts);
            for (u, v) in tiled.as_slice().iter().zip(full.as_slice()) {
                assert!((u - v).abs() < 1e-14, "tile {rows}x{cols}");
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_are_bitwise_equal_to_predict_with() {
        let mut m = toy_model();
        m.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.5, -1.0, 2.0, 0.0, -0.3, 0.7]);
        let x = Matrix::from_fn(9, 2, |i, j| (i as f64) * 0.21 - (j as f64) * 0.4);
        assert_eq!(m.predict(&x).as_slice(), predict_default(&m, &x).as_slice());
        assert_eq!(
            m.predict_blocked(&x, 4).as_slice(),
            m.predict_with(&x, &PredictOptions::new().block_rows(4))
                .as_slice()
        );
        assert_eq!(
            m.predict_tiled(&x, 4, 2).as_slice(),
            m.predict_with(&x, &PredictOptions::new().block_rows(4).col_tile(2))
                .as_slice()
        );
    }

    #[test]
    fn predict_with_into_reuses_buffers_and_matches() {
        let mut m = toy_model();
        m.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.5, -1.0, 2.0, 0.0, -0.3, 0.7]);
        let opts = PredictOptions::new().block_rows(4).col_tile(2);
        let mut bufs = PredictBuffers::new();
        for rows in [7, 3, 7] {
            let x = Matrix::from_fn(rows, 2, |i, j| (i as f64) * 0.3 - (j as f64) * 0.1);
            let mut out = Matrix::zeros(rows, 2);
            m.predict_with_into(&x, &opts, &mut bufs, &mut out);
            assert_eq!(out.as_slice(), m.predict_with(&x, &opts).as_slice());
        }
    }

    #[test]
    fn affine_epilogue_maps_outputs() {
        let mut m = toy_model();
        m.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.5, -1.0, 2.0, 0.0, -0.3, 0.7]);
        let x = Matrix::from_fn(5, 2, |i, j| (i as f64) * 0.3 - (j as f64) * 0.1);
        let base = predict_default(&m, &x);
        let opts = PredictOptions::new().epilogue(PredictEpilogue::Affine {
            scale: 2.0,
            bias: -1.0,
        });
        let mapped = m.predict_with(&x, &opts);
        for (u, v) in mapped.as_slice().iter().zip(base.as_slice()) {
            assert_eq!(*u, 2.0 * v - 1.0);
        }
    }

    #[test]
    fn planned_options_respect_budget() {
        use ep2_device::Precision;
        let (n, d, l) = (10_000, 64, 10);
        // A roomy budget keeps the default full-width shape.
        let roomy = PredictOptions::planned(n, d, l, 1e9, Precision::F64);
        assert_eq!(roomy.block_rows, DEFAULT_PREDICT_BLOCK_ROWS);
        assert_eq!(roomy.col_tile, None);
        // A tight budget shrinks until the transient charge fits.
        let budget = 2e5;
        let tight = PredictOptions::planned(n, d, l, budget, Precision::F32);
        assert!(tight.transient_slots(n, d, l, Precision::F32) <= budget);
        // bf16 halves the slot width, so the same budget fits wider shapes.
        let bf = PredictOptions::planned(n, d, l, budget, Precision::Bf16);
        assert!(
            bf.block_rows > tight.block_rows
                || bf.col_tile.unwrap_or(n) >= tight.col_tile.unwrap_or(n)
        );
    }

    #[test]
    fn clone_shares_centers() {
        let m = toy_model();
        let c = m.clone();
        assert!(std::sync::Arc::ptr_eq(
            &m.centers_shared(),
            &c.centers_shared()
        ));
    }

    #[test]
    fn predict_from_block_consistent() {
        let mut m = toy_model();
        m.weights_mut()[(1, 0)] = 2.0;
        let x = Matrix::from_rows(&[&[0.2, 0.4], &[1.5, -0.5]]);
        let k_block = ep2_kernels::matrix::kernel_cross(m.kernel().as_ref(), &x, m.centers());
        let a = m.predict_from_kernel_block(&k_block);
        let b = predict_default(&m, &x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn cast_preserves_predictions_to_single_eps() {
        let mut m = toy_model();
        m.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.5, -1.0, 2.0, 0.0, -0.3, 0.7]);
        let m32: KernelModel<f32> = m.cast();
        assert_eq!(m32.kernel().name(), "gaussian");
        assert_eq!(m32.kernel().bandwidth(), 1.0);
        let x = Matrix::from_fn(6, 2, |i, j| (i as f64) * 0.4 - (j as f64) * 0.2);
        let p64 = predict_default(&m, &x);
        let p32 = m32.predict_with(&x.cast(), &PredictOptions::default());
        for (a, b) in p32.as_slice().iter().zip(p64.as_slice()) {
            assert!((*a as f64 - b).abs() < 1e-5);
        }
        // Round-trip back to f64 keeps shapes and kernel identity.
        let back: KernelModel = m32.cast();
        assert_eq!(back.n_centers(), 3);
        assert_eq!(back.n_outputs(), 2);
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn dim_mismatch_panics() {
        let m = toy_model();
        let x = Matrix::zeros(1, 3);
        let _ = predict_default(&m, &x);
    }
}
