//! The kernel predictor `f(x) = Σ_i α_i k(x_i, x)`, generic over the
//! numeric precision `S`.

use std::sync::Arc;

use ep2_kernels::{matrix as kmat, Kernel, KernelKind};
use ep2_linalg::{blas, Matrix, Scalar};

/// A kernel machine: training points as centers plus an `n x l` weight
/// matrix `α`, with all buffers stored in precision `S` (default `f64`).
///
/// Both EigenPro 2.0 and every baseline (plain SGD, EigenPro 1, FALKON's
/// Nyström-restricted variant, the direct solver) produce predictions
/// through this type, so evaluation code is shared and comparisons are
/// apples-to-apples. Under the f32/mixed precision policies the centers,
/// weights, and transient kernel blocks are all f32 — half the resident
/// memory the device ledger charges, and the memory-bound prediction GEMM
/// runs correspondingly faster.
///
/// The (immutable) center matrix is held behind an [`Arc`]: cloning a model
/// shares the training features instead of copying them, and the out-of-core
/// streaming engine holds the same handle its producers assemble tiles from
/// while the trainer mutates the weights — no aliasing, no duplicate copy of
/// the (potentially enormous) training set.
#[derive(Debug, Clone)]
pub struct KernelModel<S: Scalar = f64> {
    kernel: Arc<dyn Kernel<S>>,
    centers: Arc<Matrix<S>>,
    weights: Matrix<S>,
}

impl<S: Scalar> KernelModel<S> {
    /// Creates a model with zero weights over the given centers.
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty or `l == 0`.
    pub fn zeros(kernel: Arc<dyn Kernel<S>>, centers: Matrix<S>, l: usize) -> Self {
        Self::zeros_shared(kernel, Arc::new(centers), l)
    }

    /// [`KernelModel::zeros`] over an already-shared center matrix (the
    /// out-of-core trainer hands the same `Arc` to the streaming engine).
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty or `l == 0`.
    pub fn zeros_shared(kernel: Arc<dyn Kernel<S>>, centers: Arc<Matrix<S>>, l: usize) -> Self {
        assert!(centers.rows() > 0, "model needs at least one center");
        assert!(l > 0, "label dimension must be positive");
        let weights = Matrix::zeros(centers.rows(), l);
        KernelModel {
            kernel,
            centers,
            weights,
        }
    }

    /// Creates a model from explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.rows() != centers.rows()`.
    pub fn from_weights(
        kernel: Arc<dyn Kernel<S>>,
        centers: Matrix<S>,
        weights: Matrix<S>,
    ) -> Self {
        assert_eq!(weights.rows(), centers.rows(), "weights/centers mismatch");
        KernelModel {
            kernel,
            centers: Arc::new(centers),
            weights,
        }
    }

    /// Number of centers `n`.
    pub fn n_centers(&self) -> usize {
        self.centers.rows()
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.centers.cols()
    }

    /// Output dimension `l`.
    pub fn n_outputs(&self) -> usize {
        self.weights.cols()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Arc<dyn Kernel<S>> {
        &self.kernel
    }

    /// The center matrix (training features).
    pub fn centers(&self) -> &Matrix<S> {
        &self.centers
    }

    /// A shared handle to the center matrix — what the out-of-core
    /// streaming producers assemble kernel tiles from while the trainer
    /// owns the model mutably.
    pub fn centers_shared(&self) -> Arc<Matrix<S>> {
        Arc::clone(&self.centers)
    }

    /// The weight matrix `α` (`n x l`).
    pub fn weights(&self) -> &Matrix<S> {
        &self.weights
    }

    /// Mutable access to the weights — the coordinate blocks Algorithm 1
    /// updates.
    pub fn weights_mut(&mut self) -> &mut Matrix<S> {
        &mut self.weights
    }

    /// Converts the model to another precision.
    ///
    /// The kernel object is re-instantiated from its named family at the
    /// same bandwidth, so this only works for the named kernels
    /// (`KernelKind::parse(self.kernel().name())` must succeed) — true for
    /// every kernel this workspace constructs.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is a custom (unnamed) implementation.
    pub fn cast<T: Scalar>(&self) -> KernelModel<T> {
        let kind = KernelKind::parse(self.kernel.name())
            .unwrap_or_else(|| panic!("cannot cast custom kernel {}", self.kernel.name()));
        let kernel: Arc<dyn Kernel<T>> =
            kind.with_bandwidth_in::<T>(self.kernel.bandwidth()).into();
        KernelModel {
            kernel,
            centers: Arc::new(self.centers.cast()),
            weights: self.weights.cast(),
        }
    }

    /// Predicts `f(x)` for every row of `x`, returning an
    /// `(x.rows(), l)` matrix. Evaluation is blocked so the transient
    /// kernel block stays below ~`block_rows x n` memory.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()`.
    pub fn predict(&self, x: &Matrix<S>) -> Matrix<S> {
        self.predict_blocked(x, 1024)
    }

    /// [`KernelModel::predict`] with an explicit evaluation block size.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()` or `block_rows == 0`.
    pub fn predict_blocked(&self, x: &Matrix<S>, block_rows: usize) -> Matrix<S> {
        assert_eq!(x.cols(), self.dim(), "predict: feature dim mismatch");
        assert!(block_rows > 0, "block_rows must be positive");
        let m = x.rows();
        let l = self.n_outputs();
        let mut out = Matrix::zeros(m, l);
        // Center-side norms once per call, shared by every row block.
        let c_sq = kmat::row_sq_norms(&self.centers);
        let mut row0 = 0;
        while row0 < m {
            let rows = block_rows.min(m - row0);
            let block = x.submatrix(row0, 0, rows, x.cols());
            // K_block: rows x n (fused assembly), then f = K_block · α.
            let b_sq = kmat::row_sq_norms(&block);
            let mut k_block = Matrix::zeros(rows, self.n_centers());
            kmat::kernel_cross_into(
                self.kernel.as_ref(),
                &block,
                &self.centers,
                &b_sq,
                &c_sq,
                &mut k_block,
            );
            let mut f_block = Matrix::zeros(rows, l);
            blas::gemm(S::ONE, &k_block, &self.weights, S::ZERO, &mut f_block);
            for i in 0..rows {
                out.row_mut(row0 + i).copy_from_slice(f_block.row(i));
            }
            row0 += rows;
        }
        out
    }

    /// [`KernelModel::predict_blocked`] with the kernel block additionally
    /// tiled over *columns* (centers): the transient kernel panel never
    /// exceeds `block_rows x col_tile` elements, so evaluation respects an
    /// out-of-core memory budget where the plain row-blocked path would
    /// materialise a `block_rows x n` block. Predictions accumulate tile by
    /// tile: `f += K[:, j0..j1] · α[j0..j1, :]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()` or either blocking factor is 0.
    pub fn predict_tiled(&self, x: &Matrix<S>, block_rows: usize, col_tile: usize) -> Matrix<S> {
        assert_eq!(x.cols(), self.dim(), "predict: feature dim mismatch");
        assert!(block_rows > 0, "block_rows must be positive");
        assert!(col_tile > 0, "col_tile must be positive");
        let n = self.n_centers();
        let l = self.n_outputs();
        let m = x.rows();
        let mut out = Matrix::zeros(m, l);
        // Center-side norms once per call (`kernel_cross` per tile would
        // recompute them per (row-block, tile) pair), sliced per tile below;
        // the Φ tile itself assembles through the fused-epilogue path into
        // a buffer recycled across tiles.
        let c_sq = kmat::row_sq_norms(&self.centers);
        let mut k_tile = Matrix::zeros(block_rows.min(m).max(1), col_tile.min(n).max(1));
        let mut row0 = 0;
        while row0 < m {
            let rows = block_rows.min(m - row0);
            let block = x.submatrix(row0, 0, rows, x.cols());
            let b_sq = kmat::row_sq_norms(&block);
            let mut f_block = Matrix::zeros(rows, l);
            let mut j0 = 0;
            while j0 < n {
                let cols = col_tile.min(n - j0);
                let c_tile = self.centers.submatrix(j0, 0, cols, self.dim());
                if k_tile.shape() != (rows, cols) {
                    k_tile = Matrix::zeros(rows, cols);
                }
                kmat::kernel_cross_into(
                    self.kernel.as_ref(),
                    &block,
                    &c_tile,
                    &b_sq,
                    &c_sq[j0..j0 + cols],
                    &mut k_tile,
                );
                let w_tile = self.weights.submatrix(j0, 0, cols, l);
                blas::gemm(S::ONE, &k_tile, &w_tile, S::ONE, &mut f_block);
                j0 += cols;
            }
            for i in 0..rows {
                out.row_mut(row0 + i).copy_from_slice(f_block.row(i));
            }
            row0 += rows;
        }
        out
    }

    /// Predicts from a precomputed kernel block `k_block[i][j] = k(x_i,
    /// c_j)` (used inside the training loop where the block is already
    /// available), returning `k_block · α`.
    ///
    /// # Panics
    ///
    /// Panics if `k_block.cols() != self.n_centers()`.
    pub fn predict_from_kernel_block(&self, k_block: &Matrix<S>) -> Matrix<S> {
        assert_eq!(
            k_block.cols(),
            self.n_centers(),
            "kernel block width mismatch"
        );
        let mut f = Matrix::zeros(k_block.rows(), self.n_outputs());
        blas::gemm(S::ONE, k_block, &self.weights, S::ZERO, &mut f);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_kernels::GaussianKernel;

    fn toy_model() -> KernelModel {
        let centers = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 0.0]]);
        let kernel: Arc<dyn Kernel> = Arc::new(GaussianKernel::new(1.0));
        KernelModel::zeros(kernel, centers, 2)
    }

    #[test]
    fn zero_model_predicts_zero() {
        let m = toy_model();
        let x = Matrix::from_rows(&[&[0.5, 0.5]]);
        let p = m.predict(&x);
        assert_eq!(p.shape(), (1, 2));
        assert_eq!(p.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn single_center_unit_weight() {
        let kernel: Arc<dyn Kernel> = Arc::new(GaussianKernel::new(1.0));
        let centers = Matrix::from_rows(&[&[0.0]]);
        let weights = Matrix::from_rows(&[&[1.0]]);
        let m = KernelModel::from_weights(kernel.clone(), centers, weights);
        let x = Matrix::from_rows(&[&[1.0]]);
        let expect = kernel.eval(&[0.0], &[1.0]);
        assert!((m.predict(&x)[(0, 0)] - expect).abs() < 1e-14);
    }

    #[test]
    fn blocked_prediction_matches_unblocked() {
        let mut m = toy_model();
        // Set some nonzero weights.
        m.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.5, -1.0, 2.0, 0.0, -0.3, 0.7]);
        let x = Matrix::from_fn(10, 2, |i, j| (i as f64) * 0.3 - (j as f64) * 0.1);
        let a = m.predict_blocked(&x, 3);
        let b = m.predict_blocked(&x, 100);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn tiled_prediction_matches_unblocked() {
        let mut m = toy_model();
        m.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.5, -1.0, 2.0, 0.0, -0.3, 0.7]);
        let x = Matrix::from_fn(10, 2, |i, j| (i as f64) * 0.3 - (j as f64) * 0.1);
        let full = m.predict(&x);
        for (rows, cols) in [(1, 1), (3, 2), (100, 3), (4, 100)] {
            let tiled = m.predict_tiled(&x, rows, cols);
            for (u, v) in tiled.as_slice().iter().zip(full.as_slice()) {
                assert!((u - v).abs() < 1e-14, "tile {rows}x{cols}");
            }
        }
    }

    #[test]
    fn clone_shares_centers() {
        let m = toy_model();
        let c = m.clone();
        assert!(std::sync::Arc::ptr_eq(
            &m.centers_shared(),
            &c.centers_shared()
        ));
    }

    #[test]
    fn predict_from_block_consistent() {
        let mut m = toy_model();
        m.weights_mut()[(1, 0)] = 2.0;
        let x = Matrix::from_rows(&[&[0.2, 0.4], &[1.5, -0.5]]);
        let k_block = ep2_kernels::matrix::kernel_cross(m.kernel().as_ref(), &x, m.centers());
        let a = m.predict_from_kernel_block(&k_block);
        let b = m.predict(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn cast_preserves_predictions_to_single_eps() {
        let mut m = toy_model();
        m.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[0.5, -1.0, 2.0, 0.0, -0.3, 0.7]);
        let m32: KernelModel<f32> = m.cast();
        assert_eq!(m32.kernel().name(), "gaussian");
        assert_eq!(m32.kernel().bandwidth(), 1.0);
        let x = Matrix::from_fn(6, 2, |i, j| (i as f64) * 0.4 - (j as f64) * 0.2);
        let p64 = m.predict(&x);
        let p32 = m32.predict(&x.cast());
        for (a, b) in p32.as_slice().iter().zip(p64.as_slice()) {
            assert!((*a as f64 - b).abs() < 1e-5);
        }
        // Round-trip back to f64 keeps shapes and kernel identity.
        let back: KernelModel = m32.cast();
        assert_eq!(back.n_centers(), 3);
        assert_eq!(back.n_outputs(), 2);
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn dim_mismatch_panics() {
        let m = toy_model();
        let x = Matrix::zeros(1, 3);
        let _ = m.predict(&x);
    }
}
