//! Model persistence: a small versioned binary format for trained
//! [`KernelModel`]s, doubling as the checkpoint format for fault-tolerant
//! training.
//!
//! Training on millions of points is exactly what one does *not* want to
//! repeat; a released kernel-machine library must round-trip models — and a
//! production trainer must survive being killed mid-run. Version 2 of the
//! format therefore adds two things to the v1 layout:
//!
//! - an optional **trainer-state record** ([`TrainerState`]: executed η,
//!   epoch counters, early-stopping state, simulated-clock state, and a
//!   plan fingerprint) so a checkpoint carries everything `EigenPro2::fit`
//!   needs to continue the exact trajectory, and
//! - a trailing **CRC32 checksum** over the whole record, so torn or
//!   bit-flipped files are detected instead of silently loaded.
//!
//! ```text
//! v1: "EP2M" | u32 version=1 | u16 name_len | name | f64 bandwidth
//!            | u64 n | u64 d | u64 l | n·d f64 centers | n·l f64 weights
//! v2: "EP2M" | u32 version=2 | u16 name_len | name | f64 bandwidth
//!            | u64 n | u64 d | u64 l | u8 flags (bit0 = trainer state)
//!            | [TrainerState] | n·d f64 centers | n·l f64 weights
//!            | u32 crc32 (over all preceding bytes)
//! ```
//!
//! All integers and floats are little-endian; matrices are stored as f64
//! regardless of the training precision (widening f32/bf16 → f64 is
//! lossless, so storage-precision weights round-trip bit-exactly).
//!
//! Writers go through an **atomic protocol**: serialise to a `.tmp` sibling,
//! `fsync`, rename over the destination, then best-effort `fsync` the
//! directory. A crash (or the `torn_write` failpoint) mid-write leaves the
//! previous file intact and at worst a stray `.tmp` — never a half-written
//! model under the real name.

use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ep2_device::Precision;
use ep2_kernels::KernelKind;
use ep2_linalg::Matrix;

use crate::model::KernelModel;
use crate::trainer::EpochStats;
use crate::CoreError;

const MAGIC: &[u8; 4] = b"EP2M";
/// Current (written) format version.
pub const VERSION: u32 = 2;
/// Flag bit: a [`TrainerState`] record follows the header.
const FLAG_TRAINER_STATE: u8 = 1;

fn err(message: impl Into<String>) -> CoreError {
    CoreError::InvalidConfig {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial) — implemented inline; the integrity check
// must not pull in a dependency.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Trainer state
// ---------------------------------------------------------------------------

/// Everything beyond the weights that `EigenPro2::fit` needs to continue an
/// interrupted run on its exact trajectory: where the loop was, the η it was
/// actually executing (after any divergence backoffs), the early-stopping
/// and safeguard state, the operation/clock accounting, and a fingerprint of
/// the plan the run was executing under (so a checkpoint cannot silently
/// resume under a different configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// Epochs fully completed.
    pub epochs_done: u64,
    /// The step size in effect (after divergence backoffs, if any).
    pub eta: f64,
    /// Times the divergence safeguard halved η.
    pub eta_backoffs: u32,
    /// Times the safeguard rolled weights back to the last checkpoint.
    pub rollbacks: u32,
    /// Best validation error seen (early stopping), `INFINITY` when none.
    pub best_val: f64,
    /// Epochs since `best_val` improved.
    pub since_best: u64,
    /// Best (lowest) training MSE seen, for the divergence safeguard.
    pub prev_mse: f64,
    /// Accumulated SGD operations.
    pub sgd_ops: f64,
    /// Accumulated preconditioner operations.
    pub precond_ops: f64,
    /// Iterations executed.
    pub iterations: u64,
    /// Simulated device seconds elapsed.
    pub simulated_seconds: f64,
    /// Simulated-clock launches recorded.
    pub sim_launches: u64,
    /// Simulated-clock total operations.
    pub sim_total_ops: f64,
    /// FNV-1a fingerprint of the executed plan (precision, dims, m, s, q,
    /// kernel, bandwidth, seed, residency); resume refuses a mismatch.
    pub plan_fingerprint: u64,
    /// Numeric precision policy the run executed under.
    pub precision: Precision,
    /// Per-epoch statistics up to `epochs_done`.
    pub history: Vec<EpochStats>,
}

fn precision_tag(p: Precision) -> u8 {
    match p {
        Precision::F32 => 0,
        Precision::F64 => 1,
        Precision::Mixed => 2,
        Precision::Bf16 => 3,
    }
}

fn precision_from_tag(tag: u8) -> Result<Precision, CoreError> {
    match tag {
        0 => Ok(Precision::F32),
        1 => Ok(Precision::F64),
        2 => Ok(Precision::Mixed),
        3 => Ok(Precision::Bf16),
        other => Err(err(format!("unknown precision tag {other}"))),
    }
}

fn put_state(buf: &mut BytesMut, s: &TrainerState) {
    buf.put_u64_le(s.epochs_done);
    buf.put_f64_le(s.eta);
    buf.put_u32_le(s.eta_backoffs);
    buf.put_u32_le(s.rollbacks);
    buf.put_f64_le(s.best_val);
    buf.put_u64_le(s.since_best);
    buf.put_f64_le(s.prev_mse);
    buf.put_f64_le(s.sgd_ops);
    buf.put_f64_le(s.precond_ops);
    buf.put_u64_le(s.iterations);
    buf.put_f64_le(s.simulated_seconds);
    buf.put_u64_le(s.sim_launches);
    buf.put_f64_le(s.sim_total_ops);
    buf.put_u64_le(s.plan_fingerprint);
    buf.put_u8(precision_tag(s.precision));
    buf.put_u64_le(s.history.len() as u64);
    for e in &s.history {
        buf.put_u64_le(e.epoch as u64);
        buf.put_f64_le(e.train_mse);
        buf.put_u8(u8::from(e.val_error.is_some()));
        buf.put_f64_le(e.val_error.unwrap_or(0.0));
        buf.put_f64_le(e.simulated_seconds);
        buf.put_f64_le(e.wall_seconds);
    }
}

/// Fixed-size part of a serialised [`TrainerState`], before the history.
const STATE_FIXED_BYTES: usize = 8 + 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 1 + 8;
/// Bytes per serialised history entry.
const HISTORY_ENTRY_BYTES: usize = 8 + 8 + 1 + 8 + 8 + 8;

fn get_state(data: &mut &[u8]) -> Result<TrainerState, CoreError> {
    if data.remaining() < STATE_FIXED_BYTES {
        return Err(err("truncated trainer state"));
    }
    let epochs_done = data.get_u64_le();
    let eta = data.get_f64_le();
    let eta_backoffs = data.get_u32_le();
    let rollbacks = data.get_u32_le();
    let best_val = data.get_f64_le();
    let since_best = data.get_u64_le();
    let prev_mse = data.get_f64_le();
    let sgd_ops = data.get_f64_le();
    let precond_ops = data.get_f64_le();
    let iterations = data.get_u64_le();
    let simulated_seconds = data.get_f64_le();
    let sim_launches = data.get_u64_le();
    let sim_total_ops = data.get_f64_le();
    let plan_fingerprint = data.get_u64_le();
    let precision = precision_from_tag(data.get_u8())?;
    let n_history = data.get_u64_le() as usize;
    let need = n_history
        .checked_mul(HISTORY_ENTRY_BYTES)
        .ok_or_else(|| err("trainer-state history length overflows"))?;
    if data.remaining() < need {
        return Err(err(format!(
            "truncated trainer state: need {need} history bytes, have {}",
            data.remaining()
        )));
    }
    let mut history = Vec::with_capacity(n_history);
    for _ in 0..n_history {
        let epoch = data.get_u64_le() as usize;
        let train_mse = data.get_f64_le();
        let has_val = data.get_u8() != 0;
        let val = data.get_f64_le();
        let simulated_seconds = data.get_f64_le();
        let wall_seconds = data.get_f64_le();
        history.push(EpochStats {
            epoch,
            train_mse,
            val_error: has_val.then_some(val),
            simulated_seconds,
            wall_seconds,
        });
    }
    Ok(TrainerState {
        epochs_done,
        eta,
        eta_backoffs,
        rollbacks,
        best_val,
        since_best,
        prev_mse,
        sgd_ops,
        precond_ops,
        iterations,
        simulated_seconds,
        sim_launches,
        sim_total_ops,
        plan_fingerprint,
        precision,
        history,
    })
}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

/// Serialises a model (no trainer state) to v2 bytes.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the model's kernel is not one of
/// the named families (a custom `Kernel` impl cannot be round-tripped by
/// name).
pub fn to_bytes(model: &KernelModel) -> Result<Bytes, CoreError> {
    to_bytes_with_state(model, None)
}

/// Serialises a model plus an optional [`TrainerState`] (a checkpoint) to
/// v2 bytes, checksummed.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the model's kernel is not one of
/// the named families.
pub fn to_bytes_with_state(
    model: &KernelModel,
    state: Option<&TrainerState>,
) -> Result<Bytes, CoreError> {
    let kernel = model.kernel();
    let name = kernel.name();
    if KernelKind::parse(name).is_none() {
        return Err(err(format!(
            "kernel {name} is not a named family; cannot persist"
        )));
    }
    let (n, d, l) = (model.n_centers(), model.dim(), model.n_outputs());
    let state_bytes = state
        .map(|s| STATE_FIXED_BYTES + s.history.len() * HISTORY_ENTRY_BYTES)
        .unwrap_or(0);
    let mut buf = BytesMut::with_capacity(
        4 + 4 + 2 + name.len() + 8 + 8 * 3 + 1 + state_bytes + 8 * (n * d + n * l) + 4,
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
    buf.put_f64_le(kernel.bandwidth());
    buf.put_u64_le(n as u64);
    buf.put_u64_le(d as u64);
    buf.put_u64_le(l as u64);
    buf.put_u8(if state.is_some() {
        FLAG_TRAINER_STATE
    } else {
        0
    });
    if let Some(s) = state {
        put_state(&mut buf, s);
    }
    for &v in model.centers().as_slice() {
        buf.put_f64_le(v);
    }
    for &v in model.weights().as_slice() {
        buf.put_f64_le(v);
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    Ok(buf.freeze())
}

/// Parses the common header (shared by v1 and v2), returning
/// `(version, name, bandwidth, n, d, l)` with `data` advanced past it.
fn get_header<'a>(
    data: &mut &'a [u8],
) -> Result<(u32, &'a str, f64, usize, usize, usize), CoreError> {
    if data.len() < 8 || &data[..4] != MAGIC {
        return Err(err("not an EP2M model file (bad magic)"));
    }
    data.advance(4);
    let version = data.get_u32_le();
    if version == 0 || version > VERSION {
        return Err(err(format!("unsupported model version {version}")));
    }
    if data.remaining() < 2 {
        return Err(err("truncated model file"));
    }
    let name_len = data.get_u16_le() as usize;
    if data.remaining() < name_len + 8 * 4 {
        return Err(err("truncated model file"));
    }
    let name =
        std::str::from_utf8(&data[..name_len]).map_err(|_| err("kernel name is not UTF-8"))?;
    data.advance(name_len);
    let bandwidth = data.get_f64_le();
    let n = data.get_u64_le() as usize;
    let d = data.get_u64_le() as usize;
    let l = data.get_u64_le() as usize;
    Ok((version, name, bandwidth, n, d, l))
}

/// Payload bytes the declared dimensions require — every multiplication
/// checked, so hostile headers cannot overflow the size validation and land
/// in a short-read panic.
fn payload_bytes(n: usize, d: usize, l: usize) -> Result<usize, CoreError> {
    n.checked_mul(d)
        .and_then(|nd| nd.checked_add(n.checked_mul(l)?))
        .and_then(|elems| elems.checked_mul(8))
        .ok_or_else(|| err("model dimensions overflow"))
}

/// Deserialises a model from bytes (v1 or v2; v2 files are checksummed).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for bad magic, unsupported version,
/// truncated input, checksum mismatch, or an unknown kernel name — never
/// panics on corrupt input.
pub fn from_bytes(data: &[u8]) -> Result<KernelModel, CoreError> {
    from_bytes_full(data).map(|(model, _)| model)
}

/// Deserialises a model **and** its embedded [`TrainerState`] (if the file
/// carries one) from bytes.
///
/// # Errors
///
/// Same conditions as [`from_bytes`].
pub fn from_bytes_full(mut data: &[u8]) -> Result<(KernelModel, Option<TrainerState>), CoreError> {
    let whole = data;
    let (version, name, bandwidth, n, d, l) = get_header(&mut data)?;
    let kind = KernelKind::parse(name).ok_or_else(|| err(format!("unknown kernel {name}")))?;
    if !(bandwidth > 0.0 && bandwidth.is_finite()) {
        return Err(err(format!("invalid bandwidth {bandwidth}")));
    }
    let mut state = None;
    if version >= 2 {
        // Verify the checksum over everything before the 4-byte trailer
        // *before* trusting any field beyond the header.
        if data.remaining() < 1 + 4 {
            return Err(err("truncated model file"));
        }
        let body_len = whole.len() - 4;
        let stored = u32::from_le_bytes(whole[body_len..].try_into().expect("4 bytes"));
        let computed = crc32(&whole[..body_len]);
        if stored != computed {
            return Err(err(format!(
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} \
                 — the file is corrupt or was torn mid-write"
            )));
        }
        let flags = data.get_u8();
        if flags & !FLAG_TRAINER_STATE != 0 {
            return Err(err(format!("unknown flags {flags:#04x}")));
        }
        if flags & FLAG_TRAINER_STATE != 0 {
            state = Some(get_state(&mut data)?);
        }
    }
    let trailer = if version >= 2 { 4 } else { 0 };
    let need = payload_bytes(n, d, l)?;
    let have = data.remaining().saturating_sub(trailer);
    if have < need || (version >= 2 && have != need) {
        return Err(err(format!(
            "truncated model file: need {need} payload bytes, have {have}"
        )));
    }
    let mut centers = vec![0.0_f64; n * d];
    for v in &mut centers {
        *v = data.get_f64_le();
    }
    let mut weights = vec![0.0_f64; n * l];
    for v in &mut weights {
        *v = data.get_f64_le();
    }
    let kernel: Arc<dyn ep2_kernels::Kernel> = kind.with_bandwidth(bandwidth).into();
    Ok((
        KernelModel::from_weights(
            kernel,
            Matrix::from_vec(n, d, centers),
            Matrix::from_vec(n, l, weights),
        ),
        state,
    ))
}

// ---------------------------------------------------------------------------
// Precision-erased loading
// ---------------------------------------------------------------------------

use ep2_linalg::{Bf16, Scalar};

/// A loaded model at whatever precision its file says it was trained under —
/// the precision-erased result of [`load_any`].
///
/// The EP2M format stores matrices widened to f64; the embedded
/// [`TrainerState::precision`] tag says which storage precision the run
/// actually executed (widening narrow storage to f64 is lossless, so casting
/// back reproduces the trained weights bit-for-bit). `AnyModel` performs
/// that one `match` so `ep2 inspect`, `ep2 eval`, the trainer's `--resume`,
/// and `ep2 serve` stop each maintaining their own per-precision arms:
///
/// - files without trainer state load as [`AnyModel::F64`] (plain f64 model
///   files);
/// - `Precision::Mixed` runs execute f32 storage and load as
///   [`AnyModel::F32`].
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// Single-precision storage (also `Precision::Mixed` runs).
    F32(KernelModel<f32>),
    /// Double-precision storage.
    F64(KernelModel<f64>),
    /// bfloat16 storage (half an f32 slot per resident element).
    Bf16(KernelModel<Bf16>),
}

impl AnyModel {
    /// Wraps an f64-storage model under the precision `tag` its trainer
    /// state declares (`None` = a plain model file, kept at f64).
    pub fn from_f64_storage(model: KernelModel, tag: Option<Precision>) -> Self {
        match tag {
            None | Some(Precision::F64) => AnyModel::F64(model),
            Some(Precision::F32) | Some(Precision::Mixed) => AnyModel::F32(model.cast()),
            Some(Precision::Bf16) => AnyModel::Bf16(model.cast()),
        }
    }

    /// The storage precision of the wrapped model.
    pub fn precision(&self) -> Precision {
        match self {
            AnyModel::F32(_) => Precision::F32,
            AnyModel::F64(_) => Precision::F64,
            AnyModel::Bf16(_) => Precision::Bf16,
        }
    }

    /// Number of centers `n`.
    pub fn n_centers(&self) -> usize {
        match self {
            AnyModel::F32(m) => m.n_centers(),
            AnyModel::F64(m) => m.n_centers(),
            AnyModel::Bf16(m) => m.n_centers(),
        }
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        match self {
            AnyModel::F32(m) => m.dim(),
            AnyModel::F64(m) => m.dim(),
            AnyModel::Bf16(m) => m.dim(),
        }
    }

    /// Output dimension `l`.
    pub fn n_outputs(&self) -> usize {
        match self {
            AnyModel::F32(m) => m.n_outputs(),
            AnyModel::F64(m) => m.n_outputs(),
            AnyModel::Bf16(m) => m.n_outputs(),
        }
    }

    /// Kernel family name.
    pub fn kernel_name(&self) -> &str {
        match self {
            AnyModel::F32(m) => m.kernel().name(),
            AnyModel::F64(m) => m.kernel().name(),
            AnyModel::Bf16(m) => m.kernel().name(),
        }
    }

    /// Kernel bandwidth σ.
    pub fn bandwidth(&self) -> f64 {
        match self {
            AnyModel::F32(m) => m.kernel().bandwidth(),
            AnyModel::F64(m) => m.kernel().bandwidth(),
            AnyModel::Bf16(m) => m.kernel().bandwidth(),
        }
    }

    /// The model cast to an explicit precision `S` — the one `match` the
    /// typed consumers (serve engines, resumed trainers) go through.
    pub fn cast_into<S: Scalar>(&self) -> KernelModel<S> {
        match self {
            AnyModel::F32(m) => m.cast(),
            AnyModel::F64(m) => m.cast(),
            AnyModel::Bf16(m) => m.cast(),
        }
    }

    /// Just the weights, cast to precision `S` (resume restores weights
    /// into an already-built model without copying the centers twice).
    pub fn weights_in<S: Scalar>(&self) -> Matrix<S> {
        match self {
            AnyModel::F32(m) => m.weights().cast(),
            AnyModel::F64(m) => m.weights().cast(),
            AnyModel::Bf16(m) => m.weights().cast(),
        }
    }

    /// Re-wraps at an explicit precision (the `ep2 serve --precision`
    /// override) — a no-op when the target matches.
    pub fn to_precision(&self, precision: Precision) -> AnyModel {
        match precision {
            Precision::F32 | Precision::Mixed => AnyModel::F32(self.cast_into()),
            Precision::F64 => AnyModel::F64(self.cast_into()),
            Precision::Bf16 => AnyModel::Bf16(self.cast_into()),
        }
    }

    /// Predicts through the wrapped precision with f64 input/output (the
    /// `ep2 eval` convenience): input rows are cast to the storage
    /// precision, evaluated under `opts`, and the result widened back.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` does not match the model dimension.
    pub fn predict_f64(&self, x: &Matrix, opts: &crate::model::PredictOptions) -> Matrix {
        match self {
            AnyModel::F32(m) => m.predict_with(&x.cast(), opts).cast(),
            AnyModel::F64(m) => m.predict_with(x, opts).cast(),
            AnyModel::Bf16(m) => m.predict_with(&x.cast(), opts).cast(),
        }
    }
}

/// Deserialises a model from bytes at its trained storage precision (see
/// [`AnyModel`]).
///
/// # Errors
///
/// Same conditions as [`from_bytes`].
pub fn any_from_bytes(data: &[u8]) -> Result<(AnyModel, Option<TrainerState>), CoreError> {
    let (model, state) = from_bytes_full(data)?;
    let tag = state.as_ref().map(|s| s.precision);
    Ok((AnyModel::from_f64_storage(model, tag), state))
}

/// Loads a model from `path` at its trained storage precision — the
/// precision-erased loader behind `ep2 eval`, `ep2 inspect`, trainer
/// resume, and `ep2 serve`.
///
/// # Errors
///
/// Propagates deserialisation and I/O failures.
pub fn load_any(path: impl AsRef<Path>) -> Result<AnyModel, CoreError> {
    load_any_with_state(path).map(|(model, _)| model)
}

/// [`load_any`] returning the embedded [`TrainerState`] too (the resume
/// path needs both).
///
/// # Errors
///
/// Propagates deserialisation and I/O failures.
pub fn load_any_with_state(
    path: impl AsRef<Path>,
) -> Result<(AnyModel, Option<TrainerState>), CoreError> {
    let data = std::fs::read(path.as_ref())
        .map_err(|e| err(format!("reading {}: {e}", path.as_ref().display())))?;
    any_from_bytes(&data)
}

// ---------------------------------------------------------------------------
// Inspection (the `ep2 inspect` backend)
// ---------------------------------------------------------------------------

/// Checksum verdict for an inspected file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChecksumStatus {
    /// v2 file, stored CRC32 matches the contents.
    Valid,
    /// v2 file, stored CRC32 does not match (corrupt / torn).
    Mismatch {
        /// CRC32 stored in the trailer.
        stored: u32,
        /// CRC32 computed over the contents.
        computed: u32,
    },
    /// v1 file — the format carried no checksum.
    Absent,
}

/// What [`inspect`] reports about a model/checkpoint file: header fields,
/// dimensions, checksum verdict, and the embedded trainer state when present
/// and decodable.
#[derive(Debug, Clone)]
pub struct Inspection {
    /// Format version.
    pub version: u32,
    /// Kernel family name.
    pub kernel: String,
    /// Kernel bandwidth σ.
    pub bandwidth: f64,
    /// Centers count.
    pub n: usize,
    /// Feature dimension.
    pub d: usize,
    /// Output dimension.
    pub l: usize,
    /// Total file size in bytes.
    pub total_bytes: usize,
    /// Checksum verdict.
    pub checksum: ChecksumStatus,
    /// Embedded trainer state, when the file carries a decodable one.
    pub state: Option<TrainerState>,
}

/// Inspects a model/checkpoint file without requiring it to be fully valid:
/// the header must parse, but a checksum mismatch is *reported* (in
/// [`Inspection::checksum`]) rather than failing, so `ep2 inspect` can
/// diagnose a torn checkpoint.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when even the header is unreadable.
pub fn inspect(mut data: &[u8]) -> Result<Inspection, CoreError> {
    let whole = data;
    let (version, name, bandwidth, n, d, l) = get_header(&mut data)?;
    let checksum = if version >= 2 {
        if whole.len() < 4 {
            ChecksumStatus::Mismatch {
                stored: 0,
                computed: 0,
            }
        } else {
            let body_len = whole.len() - 4;
            let stored = u32::from_le_bytes(whole[body_len..].try_into().expect("4 bytes"));
            let computed = crc32(&whole[..body_len]);
            if stored == computed {
                ChecksumStatus::Valid
            } else {
                ChecksumStatus::Mismatch { stored, computed }
            }
        }
    } else {
        ChecksumStatus::Absent
    };
    let mut state = None;
    if version >= 2 && data.remaining() >= 1 {
        let flags = data.get_u8();
        if flags & FLAG_TRAINER_STATE != 0 {
            // Best-effort: a torn file may truncate inside the state; the
            // inspection then reports it as absent rather than failing.
            state = get_state(&mut data).ok();
        }
    }
    Ok(Inspection {
        version,
        kernel: name.to_string(),
        bandwidth,
        n,
        d,
        l,
        total_bytes: whole.len(),
        checksum,
        state,
    })
}

// ---------------------------------------------------------------------------
// File I/O — atomic writes
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: serialise to a `.tmp` sibling,
/// `fsync`, rename over `path`, best-effort directory `fsync`. The
/// `torn_write@byte=k` failpoint simulates a crash after `k` bytes — the
/// temp file is left torn and the rename never happens, so the previous
/// file (if any) survives intact.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp)?;
    if let Some(k) = ep2_runtime::faults::payload("torn_write") {
        let k = (k as usize).min(bytes.len());
        file.write_all(&bytes[..k])?;
        let _ = file.sync_all();
        return Err(std::io::Error::other(format!(
            "injected fault: torn_write crashed the writer after {k} of {} bytes",
            bytes.len()
        )));
    }
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Saves a model to `path` (atomically: temp file + fsync + rename).
///
/// # Errors
///
/// Propagates serialisation and I/O failures (I/O errors are wrapped in
/// [`CoreError::InvalidConfig`] with the path in the message).
pub fn save(model: &KernelModel, path: impl AsRef<Path>) -> Result<(), CoreError> {
    let bytes = to_bytes(model)?;
    write_atomic(path.as_ref(), &bytes)
        .map_err(|e| err(format!("writing {}: {e}", path.as_ref().display())))
}

/// Saves a checkpoint (model + trainer state) to `path` atomically.
///
/// # Errors
///
/// Propagates serialisation and I/O failures.
pub fn save_checkpoint(
    model: &KernelModel,
    state: &TrainerState,
    path: impl AsRef<Path>,
) -> Result<(), CoreError> {
    let bytes = to_bytes_with_state(model, Some(state))?;
    write_atomic(path.as_ref(), &bytes)
        .map_err(|e| err(format!("writing {}: {e}", path.as_ref().display())))
}

/// Loads a model from `path`.
///
/// # Errors
///
/// Propagates deserialisation and I/O failures.
pub fn load(path: impl AsRef<Path>) -> Result<KernelModel, CoreError> {
    let data = std::fs::read(path.as_ref())
        .map_err(|e| err(format!("reading {}: {e}", path.as_ref().display())))?;
    from_bytes(&data)
}

/// Loads a checkpoint (model + optional trainer state) from `path`.
///
/// # Errors
///
/// Propagates deserialisation and I/O failures.
pub fn load_checkpoint(
    path: impl AsRef<Path>,
) -> Result<(KernelModel, Option<TrainerState>), CoreError> {
    let data = std::fs::read(path.as_ref())
        .map_err(|e| err(format!("reading {}: {e}", path.as_ref().display())))?;
    from_bytes_full(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PredictOptions;
    use ep2_kernels::LaplacianKernel;

    fn model() -> KernelModel {
        let kernel: Arc<dyn ep2_kernels::Kernel> = Arc::new(LaplacianKernel::new(2.5));
        let centers = Matrix::from_fn(7, 3, |i, j| (i * 3 + j) as f64 * 0.1);
        let weights = Matrix::from_fn(7, 2, |i, j| (i + j) as f64 - 3.0);
        KernelModel::from_weights(kernel, centers, weights)
    }

    fn state() -> TrainerState {
        TrainerState {
            epochs_done: 3,
            eta: 0.75,
            eta_backoffs: 1,
            rollbacks: 0,
            best_val: 0.125,
            since_best: 1,
            prev_mse: 0.03,
            sgd_ops: 1.5e9,
            precond_ops: 2.0e7,
            iterations: 42,
            simulated_seconds: 1.25,
            sim_launches: 42,
            sim_total_ops: 1.52e9,
            plan_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            precision: Precision::Bf16,
            history: vec![
                EpochStats {
                    epoch: 1,
                    train_mse: 0.2,
                    val_error: Some(0.3),
                    simulated_seconds: 0.4,
                    wall_seconds: 0.01,
                },
                EpochStats {
                    epoch: 2,
                    train_mse: 0.05,
                    val_error: None,
                    simulated_seconds: 0.8,
                    wall_seconds: 0.02,
                },
            ],
        }
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let m = model();
        let bytes = to_bytes(&m).unwrap();
        let m2 = from_bytes(&bytes).unwrap();
        assert_eq!(m2.n_centers(), 7);
        assert_eq!(m2.kernel().name(), "laplacian");
        assert_eq!(m2.kernel().bandwidth(), 2.5);
        let x = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 * 0.3);
        let (p1, p2) = (
            m.predict_with(&x, &PredictOptions::default()),
            m2.predict_with(&x, &PredictOptions::default()),
        );
        assert_eq!(p1.as_slice(), p2.as_slice());
    }

    #[test]
    fn trainer_state_round_trips_exactly() {
        let m = model();
        let s = state();
        let bytes = to_bytes_with_state(&m, Some(&s)).unwrap();
        let (m2, s2) = from_bytes_full(&bytes).unwrap();
        assert_eq!(m.weights().as_slice(), m2.weights().as_slice());
        let s2 = s2.expect("state embedded");
        assert_eq!(s2, s);
    }

    #[test]
    fn stateless_v2_reports_no_state() {
        let bytes = to_bytes(&model()).unwrap();
        let (_, s) = from_bytes_full(&bytes).unwrap();
        assert!(s.is_none());
    }

    #[test]
    fn v1_files_still_load() {
        // Hand-build a v1 record for the same model.
        let m = model();
        let mut buf = BytesMut::with_capacity(256);
        buf.put_slice(MAGIC);
        buf.put_u32_le(1);
        buf.put_u16_le(9);
        buf.put_slice(b"laplacian");
        buf.put_f64_le(2.5);
        buf.put_u64_le(7);
        buf.put_u64_le(3);
        buf.put_u64_le(2);
        for &v in m.centers().as_slice() {
            buf.put_f64_le(v);
        }
        for &v in m.weights().as_slice() {
            buf.put_f64_le(v);
        }
        let m2 = from_bytes(&buf).unwrap();
        assert_eq!(m.weights().as_slice(), m2.weights().as_slice());
        let insp = inspect(&buf).unwrap();
        assert_eq!(insp.version, 1);
        assert_eq!(insp.checksum, ChecksumStatus::Absent);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ep2_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ep2m");
        let m = model();
        save(&m, &path).unwrap();
        let m2 = load(&path).unwrap();
        assert_eq!(m.weights().as_slice(), m2.weights().as_slice());
        // The atomic protocol leaves no temp file behind.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(from_bytes(b"NOPE").is_err());
        let bytes = to_bytes(&model()).unwrap();
        assert!(from_bytes(&bytes[..bytes.len() - 9]).is_err());
        assert!(from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = to_bytes(&model()).unwrap().to_vec();
        bytes[4] = 99;
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn bit_flip_caught_by_checksum() {
        let mut bytes = to_bytes_with_state(&model(), Some(&state()))
            .unwrap()
            .to_vec();
        // Flip one bit in the middle of the weights payload.
        let idx = bytes.len() - 20;
        bytes[idx] ^= 0x10;
        let e = from_bytes(&bytes).unwrap_err();
        assert!(e.to_string().contains("checksum"), "{e}");
        // inspect still reads the header and reports the mismatch.
        let insp = inspect(&bytes).unwrap();
        assert!(matches!(insp.checksum, ChecksumStatus::Mismatch { .. }));
    }

    #[test]
    fn trailing_garbage_rejected_in_v2() {
        let mut bytes = to_bytes(&model()).unwrap().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load("/definitely/not/a/real/path.ep2m").is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
