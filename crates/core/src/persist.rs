//! Model persistence: a small versioned binary format for trained
//! [`KernelModel`]s.
//!
//! Training on millions of points is exactly what one does *not* want to
//! repeat; a released kernel-machine library must round-trip models. The
//! format stores the kernel (by name + bandwidth), centers, and weights as
//! little-endian `f64`s behind a magic/version header.
//!
//! ```text
//! "EP2M" | u32 version | u16 name_len | name bytes | f64 bandwidth
//!        | u64 n | u64 d | u64 l | n·d f64 centers | n·l f64 weights
//! ```

use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ep2_kernels::KernelKind;
use ep2_linalg::Matrix;

use crate::model::KernelModel;
use crate::CoreError;

const MAGIC: &[u8; 4] = b"EP2M";
const VERSION: u32 = 1;

fn err(message: impl Into<String>) -> CoreError {
    CoreError::InvalidConfig {
        message: message.into(),
    }
}

/// Serialises a model to bytes.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the model's kernel is not one of
/// the named families (a custom `Kernel` impl cannot be round-tripped by
/// name).
pub fn to_bytes(model: &KernelModel) -> Result<Bytes, CoreError> {
    let kernel = model.kernel();
    let name = kernel.name();
    if KernelKind::parse(name).is_none() {
        return Err(err(format!(
            "kernel {name} is not a named family; cannot persist"
        )));
    }
    let (n, d, l) = (model.n_centers(), model.dim(), model.n_outputs());
    let mut buf = BytesMut::with_capacity(4 + 4 + 2 + name.len() + 8 * (3 + n * d + n * l) + 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
    buf.put_f64_le(kernel.bandwidth());
    buf.put_u64_le(n as u64);
    buf.put_u64_le(d as u64);
    buf.put_u64_le(l as u64);
    for &v in model.centers().as_slice() {
        buf.put_f64_le(v);
    }
    for &v in model.weights().as_slice() {
        buf.put_f64_le(v);
    }
    Ok(buf.freeze())
}

/// Deserialises a model from bytes.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for bad magic, unsupported version,
/// truncated input, or an unknown kernel name.
pub fn from_bytes(mut data: &[u8]) -> Result<KernelModel, CoreError> {
    if data.len() < 8 || &data[..4] != MAGIC {
        return Err(err("not an EP2M model file (bad magic)"));
    }
    data.advance(4);
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(err(format!("unsupported model version {version}")));
    }
    if data.remaining() < 2 {
        return Err(err("truncated model file"));
    }
    let name_len = data.get_u16_le() as usize;
    if data.remaining() < name_len + 8 * 4 {
        return Err(err("truncated model file"));
    }
    let name = std::str::from_utf8(&data[..name_len])
        .map_err(|_| err("kernel name is not UTF-8"))?
        .to_string();
    data.advance(name_len);
    let bandwidth = data.get_f64_le();
    let n = data.get_u64_le() as usize;
    let d = data.get_u64_le() as usize;
    let l = data.get_u64_le() as usize;
    let need = 8 * n
        .checked_mul(d)
        .and_then(|nd| nd.checked_add(n.checked_mul(l)?))
        .ok_or_else(|| err("model dimensions overflow"))?;
    if data.remaining() < need {
        return Err(err(format!(
            "truncated model file: need {need} payload bytes, have {}",
            data.remaining()
        )));
    }
    let kind = KernelKind::parse(&name).ok_or_else(|| err(format!("unknown kernel {name}")))?;
    if !(bandwidth > 0.0 && bandwidth.is_finite()) {
        return Err(err(format!("invalid bandwidth {bandwidth}")));
    }
    let mut centers = vec![0.0_f64; n * d];
    for v in &mut centers {
        *v = data.get_f64_le();
    }
    let mut weights = vec![0.0_f64; n * l];
    for v in &mut weights {
        *v = data.get_f64_le();
    }
    let kernel: Arc<dyn ep2_kernels::Kernel> = kind.with_bandwidth(bandwidth).into();
    Ok(KernelModel::from_weights(
        kernel,
        Matrix::from_vec(n, d, centers),
        Matrix::from_vec(n, l, weights),
    ))
}

/// Saves a model to `path`.
///
/// # Errors
///
/// Propagates serialisation and I/O failures (I/O errors are wrapped in
/// [`CoreError::InvalidConfig`] with the path in the message).
pub fn save(model: &KernelModel, path: impl AsRef<Path>) -> Result<(), CoreError> {
    let bytes = to_bytes(model)?;
    std::fs::write(path.as_ref(), &bytes)
        .map_err(|e| err(format!("writing {}: {e}", path.as_ref().display())))
}

/// Loads a model from `path`.
///
/// # Errors
///
/// Propagates deserialisation and I/O failures.
pub fn load(path: impl AsRef<Path>) -> Result<KernelModel, CoreError> {
    let data = std::fs::read(path.as_ref())
        .map_err(|e| err(format!("reading {}: {e}", path.as_ref().display())))?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_kernels::LaplacianKernel;

    fn model() -> KernelModel {
        let kernel: Arc<dyn ep2_kernels::Kernel> = Arc::new(LaplacianKernel::new(2.5));
        let centers = Matrix::from_fn(7, 3, |i, j| (i * 3 + j) as f64 * 0.1);
        let weights = Matrix::from_fn(7, 2, |i, j| (i + j) as f64 - 3.0);
        KernelModel::from_weights(kernel, centers, weights)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let m = model();
        let bytes = to_bytes(&m).unwrap();
        let m2 = from_bytes(&bytes).unwrap();
        assert_eq!(m2.n_centers(), 7);
        assert_eq!(m2.kernel().name(), "laplacian");
        assert_eq!(m2.kernel().bandwidth(), 2.5);
        let x = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 * 0.3);
        let (p1, p2) = (m.predict(&x), m2.predict(&x));
        assert_eq!(p1.as_slice(), p2.as_slice());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ep2_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ep2m");
        let m = model();
        save(&m, &path).unwrap();
        let m2 = load(&path).unwrap();
        assert_eq!(m.weights().as_slice(), m2.weights().as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(from_bytes(b"NOPE").is_err());
        let bytes = to_bytes(&model()).unwrap();
        assert!(from_bytes(&bytes[..bytes.len() - 9]).is_err());
        assert!(from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = to_bytes(&model()).unwrap().to_vec();
        bytes[4] = 99;
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load("/definitely/not/a/real/path.ep2m").is_err());
    }
}
