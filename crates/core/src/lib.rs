//! # ep2-core — EigenPro 2.0: kernel machines that adapt to GPUs
//!
//! This crate implements the paper's contribution. Given a kernel `k` and a
//! computational resource `G = (C_G, S_G)`, EigenPro 2.0 learns a *data- and
//! resource-adaptive kernel* `k_G` whose critical mini-batch size `m*(k_G)`
//! matches the largest batch `m^max_G` the resource can execute in one
//! launch — extending SGD's linear scaling all the way to the hardware's
//! parallel capacity **without changing the interpolating solution**.
//!
//! The three steps of the main algorithm (Section 3):
//!
//! 1. **Step 1** — compute `m^max_G` from the resource
//!    (`ep2_device::batch::max_batch`).
//! 2. **Step 2** — construct `k_G = k_{P_q}` with
//!    `m*(k_G) = m^max_G`: [`Preconditioner`] builds the Nyström top-`q`
//!    eigensystem of the subsample kernel matrix, and
//!    [`autotune`] selects `q` by Eq. (7).
//! 3. **Step 3** — train with the improved EigenPro iteration
//!    (Algorithm 1, [`iteration::EigenProIteration`]) at analytic batch
//!    size `m = m^max_G` and step size `η = m / (β_G + (m−1) λ₁(K_G))`
//!    (the optimal step of Ma–Bassily–Belkin 2017, which the paper's
//!    Table 4 values follow).
//!
//! Supporting pieces: [`model::KernelModel`] (the predictor
//! `f(x) = Σ_i α_i k(x_i, x)`), [`critical`] (critical batch sizes and
//! convergence rates), [`acceleration`] (the Appendix-C acceleration
//! claim), [`counter::FlopCounter`] (per-phase operation counts that drive
//! the simulated GPU clock), and [`trainer::EigenPro2`] — the user-facing
//! "worry-free" trainer with early stopping.
//!
//! # Example
//!
//! ```
//! use ep2_core::trainer::{EigenPro2, TrainConfig};
//! use ep2_data::catalog;
//! use ep2_device::ResourceSpec;
//! use ep2_kernels::KernelKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = catalog::mnist_like(300, 0);
//! let (train, test) = data.split_at(250);
//! let config = TrainConfig {
//!     kernel: KernelKind::Gaussian,
//!     bandwidth: 5.0,
//!     epochs: 2,
//!     ..TrainConfig::default()
//! };
//! let outcome = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu())
//!     .fit(&train, Some(&test))?;
//! assert!(outcome.report.final_train_mse < 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acceleration;
pub mod autotune;
pub mod counter;
pub mod critical;
pub mod distributed;
mod error;
pub mod iteration;
pub mod model;
pub mod persist;
pub mod precond;
pub mod trainer;

pub use error::CoreError;
pub use model::{KernelModel, PredictBuffers, PredictEpilogue, PredictOptions};
pub use persist::AnyModel;
pub use precond::Preconditioner;
