use std::error::Error;
use std::fmt;

use ep2_linalg::LinalgError;

/// Errors produced by EigenPro 2.0 training and setup.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CoreError {
    /// A linear-algebra routine failed (eigensolver, Cholesky, ...).
    Linalg(LinalgError),
    /// The training configuration is inconsistent with the data or device.
    InvalidConfig {
        /// Description of the violated requirement.
        message: String,
    },
    /// The device memory ledger rejected a required allocation.
    DeviceMemory {
        /// Human-readable description from the ledger.
        message: String,
    },
    /// The streaming pipeline failed beyond what self-healing could absorb
    /// (e.g. every producer died and the respawn budget ran out).
    Stream {
        /// Human-readable description of the pipeline failure.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CoreError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            CoreError::DeviceMemory { message } => write!(f, "device memory: {message}"),
            CoreError::Stream { message } => write!(f, "stream pipeline: {message}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(LinalgError::NotPositiveDefinite { pivot: 2 });
        assert!(e.to_string().contains("pivot 2"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
