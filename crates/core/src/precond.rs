//! The Nyström EigenPro preconditioner (Section 4 of the paper), generic
//! over the training precision `S`.
//!
//! The improved EigenPro iteration approximates the top-`q` eigensystem of
//! the kernel operator from a *subsample* kernel matrix
//! `K_s = [k(x_{r_i}, x_{r_j})]` over `s` of the `n` training points, and
//! represents eigenfunctions in the span of those `s` points only. This
//! section's two facts drive everything:
//!
//! - **Eigenvalue transfer**: `λ_i ≈ σ_i / s`, where `σ_i` are eigenvalues
//!   of `K_s` and `λ_i` those of the *normalised* kernel matrix `K/n`.
//! - **Nyström extension**: the eigenfunction evaluates as
//!   `ψ_i(x) ≈ (1/σ_i) e_iᵀ φ(x)` with `φ(x) = (k(x_{r_1}, x), …)` and
//!   `e_i` the unit-norm eigenvector of `K_s`.
//!
//! The preconditioner damps the top-`q` spectral directions: its diagonal
//! matrix is `D = Σ^{-1}(1 − τ Σ^{-1})` with `Σ = diag(σ_1 … σ_q)` and
//! `τ = σ_{q+1}` the damping target (the `(q+1)`-th eigenvalue; the paper's
//! Algorithm 1 writes `σ_q` — using the next eigenvalue matches the
//! reference EigenPro implementation and makes `λ₁(K_G) = σ_{q+1}/s` exact;
//! by Remark 3.1 the off-by-one is immaterial).
//!
//! **Precision split.** Bulk data — subsample centers, eigen*vectors*, the
//! feature maps and corrections they multiply — lives in `S` (that is the
//! per-iteration hot path). Eigen*values*, the damping diagonal `D`, and
//! every derived spectral quantity (`λ₁`, `β`, probe estimates) are carried
//! in `f64` regardless of `S`: they are `O(q)` scalars that feed the
//! analytic step size, where f32 rounding would be structural error rather
//! than noise. Eigensolves always run in `f64` internally
//! (`ep2_linalg::eigen::sym_eig_f64`).

use std::sync::Arc;

use ep2_kernels::{matrix as kmat, Kernel};
use ep2_linalg::{blas, eigen, subspace, Matrix, Scalar};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::CoreError;

/// Above this subsample size the dense `O(s³)` eigensolver is replaced by
/// randomized subspace iteration on `K_s`.
const DENSE_EIG_THRESHOLD: usize = 2048;

/// Largest probe-subset size whose transient `probe x probe` kernel matrix
/// fits within `elements` matrix-element slots.
///
/// Setup-time transients (the `λ₁(K_G)` power-iteration probe, the `β(K_G)`
/// diagonal sample) are not ledger-charged — they are released before the
/// training loop starts — but under the out-of-core `Streamed` residency
/// they should not *grow* past the device either: a probe block much bigger
/// than the device defeats the point of streaming. `autotune::plan_streamed`
/// clamps its probe and β-sample sizes with this cap. The clamp floors at
/// the subsample size `s` (a probe below `s` is meaningless), so the
/// `s x s` subsample block — Step 2's irreducible setup transient — is the
/// caller's responsibility: choose `s ≲ sqrt(S_G)` when setup must also fit.
pub fn probe_cap_for_elements(elements: f64) -> usize {
    if elements <= 1.0 {
        1
    } else {
        elements.sqrt().floor() as usize
    }
}

/// The eigensystem of a subsample kernel matrix: the raw material for both
/// the preconditioner and the Eq.-(7) choice of `q`.
#[derive(Debug, Clone)]
pub struct SubsampleEigens<S: Scalar = f64> {
    /// Indices of the `s` subsampled training rows (the "fixed coordinate
    /// block" of Algorithm 1).
    pub indices: Vec<usize>,
    /// The `s x d` subsample feature matrix.
    pub centers: Matrix<S>,
    /// Eigenvalues `σ_1 ≥ σ_2 ≥ …` of `K_s` (all `s` when the dense solver
    /// ran, the requested top block otherwise) — always `f64`.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors (`s x values.len()`), stored in `S` for the
    /// hot-path GEMMs.
    pub vectors: Matrix<S>,
}

impl<S: Scalar> SubsampleEigens<S> {
    /// Subsamples `s` rows of `x` (without replacement, seeded) and
    /// computes the eigensystem of their kernel matrix.
    ///
    /// `top` limits how many eigenpairs are computed when the iterative
    /// solver is used; the dense solver (for `s ≤ 2048`) always returns the
    /// full spectrum, which [`crate::autotune`] wants for selecting `q`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `s == 0` or `s > n`, and
    /// propagates eigensolver failures.
    pub fn compute(
        kernel: &Arc<dyn Kernel<S>>,
        x: &Matrix<S>,
        s: usize,
        top: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let n = x.rows();
        if s == 0 || s > n {
            return Err(CoreError::InvalidConfig {
                message: format!("subsample size s = {s} must be in 1..={n}"),
            });
        }
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        indices.truncate(s);
        indices.sort_unstable();
        let centers = x.select_rows(&indices);
        let ks = kmat::kernel_matrix(kernel.as_ref(), &centers);
        let (values, vectors) = if s <= DENSE_EIG_THRESHOLD {
            // Dense path: solve in f64 (the Accum contract), keep vectors
            // in the training precision for the hot-path GEMMs.
            let dec = eigen::sym_eig_f64(&ks)?;
            (dec.values, dec.vectors.cast::<S>())
        } else {
            let top = top.clamp(1, s);
            let cfg = subspace::SubspaceConfig {
                seed,
                ..subspace::SubspaceConfig::default()
            };
            let (vals, vecs) = subspace::top_q_eig(&ks, top, &cfg)?;
            (vals, vecs)
        };
        Ok(SubsampleEigens {
            indices,
            centers,
            values,
            vectors,
        })
    }

    /// Subsample size `s`.
    pub fn s(&self) -> usize {
        self.indices.len()
    }

    /// Nyström estimate `λ_i ≈ σ_i / s` of the `i`-th eigenvalue of the
    /// normalised kernel matrix `K/n` (0-based `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the computed spectrum.
    pub fn lambda(&self, i: usize) -> f64 {
        self.values[i] / self.s() as f64
    }

    /// Converts the bulk buffers to another precision (eigenvalues are
    /// already precision-independent `f64`).
    pub fn cast<T: Scalar>(&self) -> SubsampleEigens<T> {
        SubsampleEigens {
            indices: self.indices.clone(),
            centers: self.centers.cast(),
            values: self.values.clone(),
            vectors: self.vectors.cast(),
        }
    }
}

/// Default damping exponent `α` (see [`Preconditioner::from_eigens_damped`])
/// — the value the reference EigenPro implementation ships with.
pub const DEFAULT_DAMPING: f64 = 0.95;

/// The fitted EigenPro preconditioner `P_q`.
#[derive(Debug, Clone)]
pub struct Preconditioner<S: Scalar = f64> {
    eig: SubsampleEigens<S>,
    q: usize,
    /// Damping target `τ = σ_{q+1}`.
    tail: f64,
    /// Damping exponent `α ∈ (0, 1]`; 1 is the paper's exact formula.
    alpha: f64,
    /// `D_jj = (1 − (τ/σ_j)^α)/σ_j` for `j < q` — always `f64`.
    d_diag: Vec<f64>,
}

impl<S: Scalar> Preconditioner<S> {
    /// Builds the paper-exact `P_q` (damping exponent `α = 1`) from a
    /// precomputed subsample eigensystem.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if fewer than `q + 1` eigenpairs
    /// are available or the `(q+1)`-th eigenvalue is not positive.
    pub fn from_eigens(eig: SubsampleEigens<S>, q: usize) -> Result<Self, CoreError> {
        Preconditioner::from_eigens_damped(eig, q, 1.0)
    }

    /// Builds `P_q` with damping exponent `alpha`:
    /// `D_jj = (1 − (τ/σ_j)^α)/σ_j`, leaving the `j`-th damped direction an
    /// effective eigenvalue `σ_j^{1−α} τ^α` instead of exactly `τ`.
    ///
    /// With `α = 1` this is the paper's Algorithm 1 verbatim. The reference
    /// EigenPro implementation uses `α < 1` (0.95): the retained margin
    /// absorbs the Nyström eigenvector-estimation error, which otherwise
    /// leaves "killed" directions with leakage above `τ` and pushes the
    /// analytic step size past the stability edge when `s` is small.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if fewer than `q + 1` eigenpairs
    /// are available, the `(q+1)`-th eigenvalue is not positive, or
    /// `alpha ∉ (0, 1]`.
    pub fn from_eigens_damped(
        eig: SubsampleEigens<S>,
        q: usize,
        alpha: f64,
    ) -> Result<Self, CoreError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(CoreError::InvalidConfig {
                message: format!("damping exponent alpha = {alpha} must be in (0, 1]"),
            });
        }
        if q + 1 > eig.values.len() {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "preconditioner needs q + 1 = {} eigenpairs, have {}",
                    q + 1,
                    eig.values.len()
                ),
            });
        }
        let tail = eig.values[q];
        if tail <= 0.0 {
            return Err(CoreError::InvalidConfig {
                message: format!("eigenvalue σ_{} = {tail:.3e} is not positive", q + 1),
            });
        }
        let d_diag: Vec<f64> = eig.values[..q]
            .iter()
            .map(|&sigma| (1.0 - (tail / sigma).powf(alpha)) / sigma)
            .collect();
        Ok(Preconditioner {
            eig,
            q,
            tail,
            alpha,
            d_diag,
        })
    }

    /// Convenience: subsample + eigensolve + build in one call with the
    /// paper-exact `α = 1`, computing `q + 1` eigenpairs (plus solver
    /// oversampling).
    ///
    /// # Errors
    ///
    /// Propagates [`SubsampleEigens::compute`] and
    /// [`Preconditioner::from_eigens`] failures.
    pub fn fit(
        kernel: &Arc<dyn Kernel<S>>,
        x: &Matrix<S>,
        s: usize,
        q: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let eig = SubsampleEigens::compute(kernel, x, s, q + 1, seed)?;
        Preconditioner::from_eigens(eig, q)
    }

    /// [`Preconditioner::fit`] with an explicit damping exponent.
    ///
    /// # Errors
    ///
    /// Propagates [`SubsampleEigens::compute`] and
    /// [`Preconditioner::from_eigens_damped`] failures.
    pub fn fit_damped(
        kernel: &Arc<dyn Kernel<S>>,
        x: &Matrix<S>,
        s: usize,
        q: usize,
        alpha: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let eig = SubsampleEigens::compute(kernel, x, s, q + 1, seed)?;
        Preconditioner::from_eigens_damped(eig, q, alpha)
    }

    /// Converts the preconditioner's bulk buffers to another precision.
    /// Spectral scalars (`σ`, `τ`, `D`, `α`) are `f64` on both sides, so
    /// `Mixed` training can plan at f64 and execute at f32 with *identical*
    /// analytic parameters.
    pub fn cast<T: Scalar>(&self) -> Preconditioner<T> {
        Preconditioner {
            eig: self.eig.cast(),
            q: self.q,
            tail: self.tail,
            alpha: self.alpha,
            d_diag: self.d_diag.clone(),
        }
    }

    /// Spectral truncation level `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Subsample size `s` (the fixed coordinate block).
    pub fn s(&self) -> usize {
        self.eig.s()
    }

    /// The underlying subsample eigensystem.
    pub fn eigens(&self) -> &SubsampleEigens<S> {
        &self.eig
    }

    /// Indices of the fixed coordinate block within the training set.
    pub fn subsample_indices(&self) -> &[usize] {
        &self.eig.indices
    }

    /// `λ₁(K_G)`: the largest eigenvalue of the *adaptive* kernel's
    /// normalised matrix — the quantity that sets `m*(k_G)`.
    ///
    /// With damping `α`, the largest surviving eigenvalue is the damped
    /// first direction `σ₁^{1−α} τ^α` (equal to `τ = σ_{q+1}` when `α = 1`).
    pub fn lambda1_preconditioned(&self) -> f64 {
        let damped_top = self.eig.values[0].powf(1.0 - self.alpha) * self.tail.powf(self.alpha);
        damped_top.max(self.tail) / self.s() as f64
    }

    /// Damping exponent `α` in use.
    pub fn damping(&self) -> f64 {
        self.alpha
    }

    /// `λ₁(K) = σ₁/s`: largest eigenvalue of the original normalised kernel
    /// matrix.
    pub fn lambda1_original(&self) -> f64 {
        self.eig.lambda(0)
    }

    /// The adaptive kernel's diagonal `k_G(x, x)` at each row of `points`:
    /// `k(x,x) − Σ_{j<q} (σ_j − τ)/s · (√s · ψ_j(x))²` with the Nyström
    /// eigenfunctions — used to estimate `β(K_G)`. The feature-map GEMM runs
    /// in `S`; the spectral drop accumulates in `f64`.
    pub fn precond_diag(&self, kernel: &Arc<dyn Kernel<S>>, points: &Matrix<S>) -> Vec<f64> {
        // φ(x) for all points: (points.rows x s).
        let phi = kmat::feature_map(kernel.as_ref(), &self.eig.centers, points);
        // Ψ = φ V diag(1/σ_j): (points.rows x q); column j holds the
        // Nyström extension ê_j(x) = (1/σ_j) e_jᵀ φ(x), which restricts to
        // the unit-norm eigenvector entries e_j[i] on the subsample.
        let v_q = self.eig.vectors.submatrix(0, 0, self.s(), self.q);
        let mut psi = Matrix::zeros(points.rows(), self.q);
        blas::gemm(S::ONE, &phi, &v_q, S::ZERO, &mut psi);
        let kxx = kernel.as_ref().of_sq_dist(S::ZERO).to_f64();
        (0..points.rows())
            .map(|i| {
                let mut drop = 0.0_f64;
                for j in 0..self.q {
                    let sigma = self.eig.values[j];
                    let psi_val = psi[(i, j)].to_f64() / sigma;
                    // Spectral drop σ_j → σ_j (τ/σ_j)^α, i.e. σ_j² D_jj.
                    drop += sigma * sigma * self.d_diag[j] * psi_val * psi_val;
                }
                kxx - drop
            })
            .collect()
    }

    /// `β(K_G)` estimated over (at most) `sample` random rows of the
    /// training matrix `x` *plus* the subsample points.
    ///
    /// The subsample-only estimate systematically underestimates the true
    /// maximum: on subsample points the Nyström eigenfunctions are exact and
    /// the spectral drop maximal, while off-subsample points retain more of
    /// the diagonal. Underestimating `β(K_G)` inflates the analytic step
    /// size past the stability edge, so — like the reference EigenPro
    /// implementation, which scans the whole training set — we take the max
    /// over a broad sample.
    pub fn beta_estimate(
        &self,
        kernel: &Arc<dyn Kernel<S>>,
        x: &Matrix<S>,
        sample: usize,
        seed: u64,
    ) -> f64 {
        let mut beta = self.beta_preconditioned(kernel);
        let n = x.rows();
        if n == 0 || sample == 0 {
            return beta;
        }
        let take = sample.min(n);
        let rows: Vec<usize> = if take == n {
            (0..n).collect()
        } else {
            let mut idx: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBE7A_BE7A);
            idx.shuffle(&mut rng);
            idx.truncate(take);
            idx
        };
        let pts = x.select_rows(&rows);
        for v in self.precond_diag(kernel, &pts) {
            beta = beta.max(v);
        }
        beta
    }

    /// `β(K_G) = max_x k_G(x, x)` estimated on the subsample points only
    /// (the paper: "accurately estimated using the maximum of `k_{P_q}(x,x)`
    /// on a small number of subsamples"). Prefer [`Preconditioner::beta_estimate`]
    /// for step-size selection.
    pub fn beta_preconditioned(&self, kernel: &Arc<dyn Kernel<S>>) -> f64 {
        // On the subsample the eigenfunctions are exact (e_j entries), so
        // compute directly from the eigenvectors: k_G(x_i, x_i) =
        // 1 − Σ_j (σ_j − τ) e_j[i]².
        let kxx = kernel.as_ref().of_sq_dist(S::ZERO).to_f64();
        (0..self.s())
            .map(|i| {
                let mut drop = 0.0_f64;
                for j in 0..self.q {
                    let e = self.eig.vectors[(i, j)].to_f64();
                    let sigma = self.eig.values[j];
                    drop += sigma * sigma * self.d_diag[j] * e * e;
                }
                kxx - drop
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Applies the correction of Algorithm 1, Step 5:
    /// returns `V D Vᵀ Φᵀ G` (`s x l`) given the feature map `Φ` (`m x s`)
    /// and the residual `G = f − y` (`m x l`). All GEMMs run in `S` — this
    /// is the per-iteration hot path.
    ///
    /// Cost: `s·m·q + q·m·l + s·q·l` operations — the Table-1 overhead.
    ///
    /// # Panics
    ///
    /// Panics if `phi.cols() != s` or `phi.rows() != residual.rows()`.
    pub fn apply_correction(&self, phi: &Matrix<S>, residual: &Matrix<S>) -> Matrix<S> {
        assert_eq!(phi.cols(), self.s(), "phi width must equal s");
        assert_eq!(phi.rows(), residual.rows(), "phi/residual row mismatch");
        let v_q = self.eig.vectors.submatrix(0, 0, self.s(), self.q);
        // T1 = Φ V  (m x q)
        let t1 = blas::matmul(phi, &v_q);
        // T2 = T1ᵀ G (q x l)
        let mut t2 = Matrix::zeros(self.q, residual.cols());
        blas::gemm_tn(S::ONE, &t1, residual, S::ZERO, &mut t2);
        // T2 <- D T2 (row scaling)
        for (j, &d) in self.d_diag.iter().enumerate() {
            let d_s = S::from_f64(d);
            for val in t2.row_mut(j) {
                *val *= d_s;
            }
        }
        // out = V T2 (s x l)
        blas::matmul(&v_q, &t2)
    }

    /// Empirically estimates the largest eigenvalue of the *effective*
    /// preconditioned (normalised) iteration operator by power iteration on
    /// a probe subset of the training data.
    ///
    /// The analytic value [`Preconditioner::lambda1_preconditioned`] assumes
    /// the Nyström eigenfunctions are exact; with small `s` (or `q` close to
    /// `s`) the estimation error leaves leakage in the damped directions
    /// that raises the true top eigenvalue — and an optimal step size
    /// computed from the analytic value can cross the stability edge. This
    /// probe measures the mean-iteration operator
    /// `A = (1/p)(I − S V D Vᵀ B) K_P` (with `B = K_P[sub, :]`) on a subset
    /// `P ⊇ subsample` of size `probe`, which includes all of that leakage.
    /// Matrix–vector products run in `S`; the Rayleigh quotient accumulates
    /// in `f64`.
    pub fn probe_lambda_max(
        &self,
        kernel: &Arc<dyn Kernel<S>>,
        x: &Matrix<S>,
        probe: usize,
        iters: usize,
        seed: u64,
    ) -> f64 {
        let n = x.rows();
        let s = self.s();
        // Probe subset: the subsample first, then random extra rows.
        let mut in_sub = vec![false; n];
        for &i in &self.eig.indices {
            in_sub[i] = true;
        }
        let mut extras: Vec<usize> = (0..n).filter(|&i| !in_sub[i]).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
        extras.shuffle(&mut rng);
        let extra_take = probe.saturating_sub(s).min(extras.len());
        let mut probe_idx = self.eig.indices.clone();
        probe_idx.extend_from_slice(&extras[..extra_take]);
        let p = probe_idx.len();
        let xp = x.select_rows(&probe_idx);
        let kp = kmat::kernel_matrix(kernel.as_ref(), &xp);

        // Power iteration on A(r) = (1/p)(I − S V D Vᵀ B)(K_P r).
        let mut v: Vec<S> = (0..p)
            .map(|i| S::from_f64(((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        let norm = ep2_linalg::ops::norm2(&v);
        ep2_linalg::ops::scal(S::ONE / norm, &mut v);
        let mut lambda = 0.0_f64;
        let mut u = vec![S::ZERO; p];
        let mut b_u = vec![S::ZERO; s];
        // The subsample block B = K_P[0..s, :] (first s rows by
        // construction), hoisted out of the iteration loop so every pass is
        // a register-blocked gemv instead of per-row dots.
        let kp_top = kp.submatrix(0, 0, s, p);
        let inv_p = S::from_f64(1.0 / p as f64);
        for _ in 0..iters.max(3) {
            // u = K_P v.
            blas::gemv(S::ONE, &kp, &v, S::ZERO, &mut u);
            // c = B u, then the V D Vᵀ correction.
            blas::gemv(S::ONE, &kp_top, &u, S::ZERO, &mut b_u);
            // Reuse apply_correction with a 1-column residual: Φᵀg ≡ b_u.
            // apply_correction computes V D Vᵀ Φᵀ g, where here Φᵀ g = b_u,
            // so feed Φ = I-block trick: compute directly.
            let v_q = self.eig.vectors.submatrix(0, 0, s, self.q);
            let mut t = vec![S::ZERO; self.q];
            blas::gemv_t(S::ONE, &v_q, &b_u, S::ZERO, &mut t);
            for (j, tv) in t.iter_mut().enumerate() {
                *tv *= S::from_f64(self.d_diag[j]);
            }
            let mut c2 = vec![S::ZERO; s];
            blas::gemv(S::ONE, &v_q, &t, S::ZERO, &mut c2);
            // out = (u − scatter(c2)) / p.
            for (i, cv) in c2.iter().enumerate() {
                u[i] -= *cv;
            }
            for val in u.iter_mut() {
                *val *= inv_p;
            }
            let norm = ep2_linalg::ops::norm2(&u);
            if norm == S::ZERO {
                return 0.0;
            }
            lambda = ep2_linalg::ops::dot_accum(&u, &v).to_f64();
            let inv_norm = S::ONE / norm;
            for (vi, ui) in v.iter_mut().zip(&u) {
                *vi = *ui * inv_norm;
            }
        }
        lambda.abs()
    }

    /// Operation count of one [`Preconditioner::apply_correction`] call for
    /// batch size `m` and `l` outputs.
    pub fn correction_ops(&self, m: usize, l: usize) -> f64 {
        let (s, q) = (self.s() as f64, self.q as f64);
        let m = m as f64;
        let l = l as f64;
        s * m * q + q * m * l + s * q * l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_kernels::GaussianKernel;

    fn toy_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(n, d, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn kernel() -> Arc<dyn Kernel> {
        Arc::new(GaussianKernel::new(1.5))
    }

    #[test]
    fn eigens_full_spectrum_for_small_s() {
        let x = toy_data(60, 5, 1);
        let eig = SubsampleEigens::compute(&kernel(), &x, 40, 10, 7).unwrap();
        assert_eq!(eig.s(), 40);
        assert_eq!(eig.values.len(), 40); // dense path: full spectrum
                                          // Descending, all ≥ ~0 (PSD).
        for w in eig.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(eig.values[39] > -1e-9);
    }

    #[test]
    fn subsample_is_deterministic_and_in_range() {
        let x = toy_data(50, 4, 2);
        let a = SubsampleEigens::compute(&kernel(), &x, 20, 5, 3).unwrap();
        let b = SubsampleEigens::compute(&kernel(), &x, 20, 5, 3).unwrap();
        assert_eq!(a.indices, b.indices);
        assert!(a.indices.iter().all(|&i| i < 50));
        // Without replacement.
        let mut sorted = a.indices.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    fn d_diag_matches_formula() {
        let x = toy_data(80, 6, 4);
        let p = Preconditioner::fit(&kernel(), &x, 50, 5, 9).unwrap();
        let tail = p.eig.values[5];
        for j in 0..5 {
            let sigma = p.eig.values[j];
            let expect = (1.0 - tail / sigma) / sigma;
            assert!((p.d_diag[j] - expect).abs() < 1e-12);
        }
        // D entries are non-negative and increase then... at least first is
        // the smallest damping (largest eigenvalue gets strongest rescale).
        assert!(p.d_diag.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn lambda1_preconditioned_is_tail_over_s() {
        let x = toy_data(70, 5, 5);
        let p = Preconditioner::fit(&kernel(), &x, 40, 4, 2).unwrap();
        assert!((p.lambda1_preconditioned() - p.eig.values[4] / 40.0).abs() < 1e-15);
        assert!(p.lambda1_preconditioned() < p.lambda1_original());
    }

    #[test]
    fn beta_preconditioned_in_unit_interval() {
        let x = toy_data(100, 5, 6);
        let p = Preconditioner::fit(&kernel(), &x, 60, 8, 3).unwrap();
        let beta = p.beta_preconditioned(&kernel());
        assert!(beta > 0.0 && beta <= 1.0 + 1e-12, "beta_G = {beta}");
        // Damping strictly reduces the diagonal somewhere.
        assert!(beta < 1.0);
    }

    #[test]
    fn precond_diag_matches_beta_on_subsample() {
        let x = toy_data(90, 4, 8);
        let k = kernel();
        let p = Preconditioner::fit(&k, &x, 50, 6, 4).unwrap();
        let diag = p.precond_diag(&k, &p.eig.centers.clone());
        let beta_direct = p.beta_preconditioned(&k);
        let beta_via_diag = diag.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (beta_direct - beta_via_diag).abs() < 1e-8,
            "{beta_direct} vs {beta_via_diag}"
        );
    }

    #[test]
    fn f32_preconditioner_matches_f64_spectral_quantities() {
        // Fit the same preconditioner at f64 and (via cast) run its f32
        // twin: the spectral scalars are shared verbatim, and the f32
        // correction output agrees with f64 to single-precision accuracy.
        let x = toy_data(60, 4, 21);
        let k = kernel();
        let p64 = Preconditioner::fit_damped(&k, &x, 40, 5, 0.95, 3).unwrap();
        let p32: Preconditioner<f32> = p64.cast();
        assert_eq!(p32.q(), p64.q());
        assert_eq!(p32.eigens().values, p64.eigens().values);
        assert_eq!(p32.lambda1_preconditioned(), p64.lambda1_preconditioned());
        let phi = toy_data(8, 40, 5);
        let resid = toy_data(8, 2, 6);
        let c64 = p64.apply_correction(&phi, &resid);
        let c32 = p32.apply_correction(&phi.cast(), &resid.cast());
        for i in 0..c64.rows() {
            for j in 0..c64.cols() {
                assert!((c32[(i, j)] as f64 - c64[(i, j)]).abs() < 1e-4, "({i},{j})");
            }
        }
    }

    #[test]
    fn correction_kills_top_eigendirection() {
        // Apply the preconditioned iteration matrix to the top eigenvector
        // of Ks: the effective eigenvalue must shrink to ~tail.
        // For a batch equal to the full subsample, one step of
        // Richardson + correction multiplies the residual's top-eigen
        // component by (1 - 2η/m (σ1 - σ1·D1·σ1 ... )) — here we check the
        // algebra at the matrix level: (I - V D Vᵀ Ks) has eigenvalue
        // τ/σ_j along e_j for j < q: VDVᵀKs e_j = (1-τ/σ_j) e_j.
        let x = toy_data(40, 4, 11);
        let k = kernel();
        let p = Preconditioner::fit(&k, &x, 30, 3, 5).unwrap();
        let ks = ep2_kernels::matrix::kernel_matrix(k.as_ref(), &p.eig.centers);
        // Φ for the subsample itself is Ks (m = s).
        for j in 0..3 {
            let e_j: Vec<f64> = p.eig.vectors.col(j);
            // residual = e_j as a single-output target (s x 1).
            let resid = Matrix::from_vec(30, 1, e_j.clone());
            let corr = p.apply_correction(&ks, &resid);
            // corr should equal (1 - τ/σ_j) e_j.
            let coef = 1.0 - p.tail / p.eig.values[j];
            for i in 0..30 {
                assert!(
                    (corr[(i, 0)] - coef * e_j[i]).abs() < 1e-8,
                    "direction {j}, entry {i}"
                );
            }
        }
    }

    #[test]
    fn correction_leaves_tail_directions_untouched() {
        let x = toy_data(40, 4, 12);
        let k = kernel();
        let p = Preconditioner::fit(&k, &x, 30, 3, 5).unwrap();
        let ks = ep2_kernels::matrix::kernel_matrix(k.as_ref(), &p.eig.centers);
        // Direction q+2 (well inside the tail) must map to ~zero.
        let eig = eigen::sym_eig(&ks).unwrap();
        let e_tail: Vec<f64> = eig.vectors.col(6);
        let resid = Matrix::from_vec(30, 1, e_tail);
        let corr = p.apply_correction(&ks, &resid);
        let norm: f64 = corr.col(0).iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm < 1e-8, "tail direction leaked: {norm}");
    }

    #[test]
    fn rejects_q_too_large() {
        let x = toy_data(30, 3, 1);
        let eig = SubsampleEigens::compute(&kernel(), &x, 20, 21, 1).unwrap();
        assert!(Preconditioner::from_eigens(eig, 20).is_err());
    }

    #[test]
    fn rejects_bad_subsample_size() {
        let x = toy_data(10, 3, 1);
        assert!(SubsampleEigens::compute(&kernel(), &x, 0, 1, 1).is_err());
        assert!(SubsampleEigens::compute(&kernel(), &x, 11, 1, 1).is_err());
    }

    #[test]
    fn correction_ops_formula() {
        let x = toy_data(50, 3, 1);
        let p = Preconditioner::fit(&kernel(), &x, 30, 4, 1).unwrap();
        let ops = p.correction_ops(10, 2);
        assert_eq!(ops, 30.0 * 10.0 * 4.0 + 4.0 * 10.0 * 2.0 + 30.0 * 4.0 * 2.0);
    }
}
