//! Automatic parameter selection — Steps 1–2 of the main algorithm plus the
//! analytic optimisation parameters of Step 3.
//!
//! Given data, a kernel and a device spec, [`plan`] produces everything
//! Table 4 of the paper reports for each dataset: the saturating batch size
//! `m = m^max_G`, the Eq.-(7) truncation `q` and its Appendix-B adjustment,
//! `β(K_G)`, the analytic step size `η`, both critical batch sizes, and the
//! Appendix-C predicted acceleration.

use std::sync::Arc;

use ep2_device::cost::{self, StreamThreadPlan};
use ep2_device::{batch, Precision, ResourceSpec};
use ep2_kernels::Kernel;
use ep2_linalg::{Matrix, Scalar};

use crate::acceleration::acceleration_factor;
use crate::critical;
use crate::precond::{Preconditioner, SubsampleEigens};
use crate::CoreError;

/// Relative eigenvalue floor for the Appendix-B adjusted-`q` heuristic.
pub const ADJUST_Q_REL_FLOOR: f64 = 1e-4;

/// Number of training rows sampled when estimating `β(K_G)` (on top of the
/// subsample itself).
pub const BETA_SAMPLE: usize = 2_000;

/// Extra (off-subsample) rows in the λ₁(K_G) power-iteration probe.
pub const PROBE_EXTRAS: usize = 512;

/// Power-iteration steps for the λ₁(K_G) probe.
pub const PROBE_ITERS: usize = 24;

/// The paper's rule for the fixed coordinate block size: `s = 2·10³` when
/// `n ≤ 10⁵`, `s = 1.2·10⁴` otherwise (Section 5), clamped to `n`.
pub fn default_subsample_size(n: usize) -> usize {
    if n <= 100_000 {
        2_000.min(n)
    } else {
        12_000.min(n)
    }
}

/// Everything Step 1–3 derive analytically. All intermediate quantities are
/// public so harnesses can print the full Table-4 row.
#[derive(Debug, Clone)]
pub struct AutoParams {
    /// `m^max_G` — the batch size used for training.
    pub m: usize,
    /// `m^C_G` (capacity-saturating batch).
    pub capacity_batch: usize,
    /// `m^S_G` (memory-limited batch).
    pub memory_batch: usize,
    /// Eq.-(7) spectral truncation.
    pub q: usize,
    /// Appendix-B adjusted truncation actually used for training.
    pub adjusted_q: usize,
    /// Fixed coordinate block size `s`.
    pub s: usize,
    /// `β(K)` of the original kernel (1 for normalised radial kernels).
    pub beta: f64,
    /// `β(K_G)` of the adaptive kernel, estimated on the subsample.
    pub beta_g: f64,
    /// `λ₁(K)` (normalised; Nyström estimate `σ₁/s`).
    pub lambda1: f64,
    /// `λ₁(K_G) = σ_{q+1}/s` for the *adjusted* `q`.
    pub lambda1_g: f64,
    /// `m*(k) = β/λ₁` — original critical batch size.
    pub m_star: f64,
    /// `m*(k_G) = β_G/λ₁(K_G)` — adaptive critical batch size.
    pub m_star_g: f64,
    /// Analytic step size `η = m/(β_G + (m−1)λ₁(K_G))`.
    pub eta: f64,
    /// Appendix-C predicted acceleration of `k_G` over `k`.
    pub acceleration: f64,
    /// The runtime's resolved thread budget (`EP2_THREADS`, the deprecated
    /// `EP2_NUM_THREADS` alias, or the available CPUs) the plan was made
    /// under — every hot path of the run is accountable to it.
    pub threads: usize,
    /// Streamed runs only: how the budget splits between tile-assembly
    /// producers and the update GEMM (the `device::cost` overlap model's
    /// partition, threaded down to the stream engine).
    pub stream_threads: Option<StreamThreadPlan>,
}

/// Runs Steps 1–2 and derives Step 3's optimisation parameters.
///
/// `s_override` / `q_override` replace the defaults (paper-rule `s`,
/// adjusted Eq.-(7) `q`); `m_override` replaces `m^max_G` (used by the
/// batch-size-sweep figures). `precision` feeds Step 1's memory accounting
/// (`ResourceSpec::memory_slots`): under `Precision::F32`/`Mixed` the
/// memory-limited batch is the paper's f32 value, under `Precision::F64`
/// every resident element costs two reference slots. Bulk numeric work
/// (kernel assembly, eigenvector storage, β/λ probes) runs in `S`; all
/// reported parameters are `f64` (spectral scalars).
///
/// Returns the parameter record and the fitted [`Preconditioner`]
/// (`None` when `q == 0`, i.e. the original kernel already saturates the
/// device — Remark "no preconditioning needed").
///
/// # Errors
///
/// Propagates eigensolver and configuration failures.
// Overrides are deliberately explicit positional options: every harness
// names them at the call site, and a builder would obscure the 1:1 mapping
// onto the paper's Step-1/2 knobs.
#[allow(clippy::too_many_arguments)]
pub fn plan<S: Scalar>(
    kernel: &Arc<dyn Kernel<S>>,
    train_x: &Matrix<S>,
    n_labels: usize,
    device: &ResourceSpec,
    s_override: Option<usize>,
    q_override: Option<usize>,
    m_override: Option<usize>,
    precision: Precision,
    seed: u64,
) -> Result<(AutoParams, Option<Preconditioner<S>>), CoreError> {
    let n = train_x.rows();
    let d = train_x.cols();
    if n == 0 {
        return Err(CoreError::InvalidConfig {
            message: "training set is empty".to_string(),
        });
    }
    // Step 1: resource-saturating batch size under the chosen precision.
    let plan = batch::max_batch_with(device, n, d, n_labels, precision);
    let step1 = Step1 {
        m: m_override.unwrap_or(plan.batch).clamp(1, n),
        capacity_batch: plan.capacity_batch,
        memory_batch: plan.memory_batch,
        setup_elements: None,
    };
    plan_with_step1(kernel, train_x, s_override, q_override, step1, seed)
}

/// [`plan`] for the out-of-core (`Streamed`) residency: Step 1 is the
/// *streamed* plan (`m` and `n_tile` chosen jointly by
/// [`ep2_device::batch::max_batch_streamed`] — the in-core `m^S_G` has no
/// solution, which is why the run streams), and the Step-2 setup probes
/// are clamped so they do not *grow* the setup transients past the device
/// budget: the `λ₁(K_G)` power-iteration probe keeps its extra
/// (off-subsample) rows within [`crate::precond::probe_cap_for_elements`],
/// and the `β(K_G)` diagonal sample is capped at `budget / s` rows. The
/// `s x s` subsample eigensolve itself is Step 2's irreducible setup cost
/// and is *not* reducible here — choose `s ≲ sqrt(S_G)` when the setup
/// phase must also fit the device.
///
/// Reported parameters: `m` is the streamed batch, `capacity_batch` the
/// unshrunk `m^C_G`, and `memory_batch` is 0 — the in-core memory bound's
/// "does not fit" marker. The returned [`AutoParams::stream_threads`]
/// carries the budget partition between tile-assembly producers and the
/// update GEMM ([`cost::partition_stream_threads`] over the planned shape
/// — including the fitted `s`/`q` setup terms), with `producers_override`
/// (the `--producers` flag or the deprecated `EP2_STREAM_PRODUCERS` env
/// var) pinning the producer count; producers are clamped to the ring
/// depth minus one, the pipeline's liveness bound.
///
/// # Errors
///
/// Propagates eigensolver and configuration failures.
// Positional options mirror `plan` 1:1 (same rationale as there).
#[allow(clippy::too_many_arguments)]
pub fn plan_streamed<S: Scalar>(
    kernel: &Arc<dyn Kernel<S>>,
    train_x: &Matrix<S>,
    n_labels: usize,
    device: &ResourceSpec,
    s_override: Option<usize>,
    q_override: Option<usize>,
    splan: &batch::StreamedBatchPlan,
    producers_override: Option<usize>,
    precision: Precision,
    seed: u64,
) -> Result<(AutoParams, Option<Preconditioner<S>>), CoreError> {
    if train_x.rows() == 0 {
        return Err(CoreError::InvalidConfig {
            message: "training set is empty".to_string(),
        });
    }
    let step1 = Step1 {
        m: splan.m,
        capacity_batch: splan.capacity_batch,
        memory_batch: 0,
        setup_elements: Some(device.memory_slots(precision)),
    };
    let (mut params, precond) =
        plan_with_step1(kernel, train_x, s_override, q_override, step1, seed)?;
    let shape = cost::ProblemShape {
        n: train_x.rows(),
        m: splan.m,
        d: train_x.cols(),
        l: n_labels,
        s: params.s,
        q: params.adjusted_q,
    };
    let max_producers = splan.tiles_in_flight.saturating_sub(1).max(1);
    let mut tp = cost::partition_stream_threads(
        &shape,
        splan.n_tile,
        params.threads,
        producers_override.map(|p| p.clamp(1, max_producers)),
    );
    if tp.producers > max_producers {
        // The refined (s/q-aware) partition wants more producers than the
        // ring admits: re-partition with the ring bound pinned, so the
        // per-task budgets are rebalanced instead of threads going idle.
        tp = cost::partition_stream_threads(
            &shape,
            splan.n_tile,
            params.threads,
            Some(max_producers),
        );
    }
    params.stream_threads = Some(tp);
    Ok((params, precond))
}

/// The Step-1 outcome [`plan_with_step1`] starts from, however it was
/// computed (in-core `max_batch_with` or streamed `max_batch_streamed`).
struct Step1 {
    m: usize,
    capacity_batch: usize,
    memory_batch: usize,
    /// When set (streamed mode), setup transients are clamped to this many
    /// matrix elements.
    setup_elements: Option<f64>,
}

/// Step 2 plus the Step-3 analytics, shared by the in-core and streamed
/// planners.
fn plan_with_step1<S: Scalar>(
    kernel: &Arc<dyn Kernel<S>>,
    train_x: &Matrix<S>,
    s_override: Option<usize>,
    q_override: Option<usize>,
    step1: Step1,
    seed: u64,
) -> Result<(AutoParams, Option<Preconditioner<S>>), CoreError> {
    let n = train_x.rows();
    let m = step1.m;

    // Step 2: subsample eigensystem and the Eq.-(7) / adjusted q.
    let s = s_override
        .unwrap_or_else(|| default_subsample_size(n))
        .clamp(1, n);
    // Ask for a generous top block so the iterative solver (s > 2048) still
    // supports the adjusted q; the dense path returns the full spectrum.
    let top_request = q_override
        .map(|q| q + 1)
        .unwrap_or_else(|| (s / 8).max(64).min(s));
    let eig = SubsampleEigens::compute(kernel, train_x, s, top_request, seed)?;

    let beta = kernel.as_ref().of_sq_dist(S::ZERO).to_f64(); // = 1 for normalised kernels
    let lambda1 = eig.lambda(0);
    let m_star = critical::critical_batch(beta, lambda1);

    // Estimability cap: eigenpairs beyond ~s/4 cannot be reliably extracted
    // from an s-point subsample (at paper scale q ≪ s and the cap never
    // binds; at reduced scale slow-decay kernels can push Eq. (7) to q ≈ s).
    let q_cap = (s / 4).max(1).min(eig.values.len().saturating_sub(2));
    let q_eq7 = critical::select_q(&eig.values, s, m).min(q_cap);
    let adjusted_q = q_override
        .unwrap_or_else(|| critical::adjust_q(&eig.values, s, q_eq7, ADJUST_Q_REL_FLOOR))
        .min(q_cap);

    let (precond, beta_g, lambda1_g) = if adjusted_q == 0 {
        (None, beta, lambda1)
    } else {
        let p =
            Preconditioner::from_eigens_damped(eig, adjusted_q, crate::precond::DEFAULT_DAMPING)?;
        // Streamed mode: clamp the setup transients to the device budget —
        // the β sample assembles a `sample x s` feature map and the probe a
        // `probe x probe` kernel block, neither of which may exceed what
        // the streaming plan promises never to exceed.
        let beta_sample = match step1.setup_elements {
            Some(e) => BETA_SAMPLE.min(((e / s.max(1) as f64) as usize).max(1)),
            None => BETA_SAMPLE,
        };
        let beta_g = p.beta_estimate(kernel, train_x, beta_sample, seed);
        // The analytic λ₁(K_G) assumes exact Nyström eigenfunctions; the
        // power-iteration probe additionally captures estimation leakage in
        // the damped directions. The max of the two keeps the analytic step
        // size on the stable side (see Preconditioner::probe_lambda_max).
        let probe_cap = step1
            .setup_elements
            .map(crate::precond::probe_cap_for_elements)
            .unwrap_or(usize::MAX);
        let probe = (s + PROBE_EXTRAS).min(n).min(probe_cap.max(s));
        let lambda1_probed = p.probe_lambda_max(kernel, train_x, probe, PROBE_ITERS, seed);
        let lambda1_g = p.lambda1_preconditioned().max(lambda1_probed);
        (Some(p), beta_g, lambda1_g)
    };

    let m_star_g = critical::critical_batch(beta_g, lambda1_g);
    let eta = critical::optimal_step_size(m, beta_g, lambda1_g);
    let acceleration = acceleration_factor(beta, beta_g, m, m_star);

    Ok((
        AutoParams {
            m,
            capacity_batch: step1.capacity_batch,
            memory_batch: step1.memory_batch,
            q: q_eq7,
            adjusted_q,
            s,
            beta,
            beta_g,
            lambda1,
            lambda1_g,
            m_star,
            m_star_g,
            eta,
            acceleration,
            threads: ep2_runtime::current_threads(),
            stream_threads: None,
        },
        precond,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_kernels::GaussianKernel;

    fn clustered_data(n: usize, d: usize, seed: u64) -> Matrix {
        // Clustered data → fast spectral decay → small m*(k).
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        Matrix::from_fn(n, d, |i, _| 2.0 * ((i % 5) as f64) + 0.2 * next())
    }

    fn kernel() -> Arc<dyn Kernel> {
        Arc::new(GaussianKernel::new(2.0))
    }

    #[test]
    fn plan_produces_consistent_parameters() {
        let x = clustered_data(400, 8, 3);
        let device = ResourceSpec::scaled_virtual_gpu();
        let (params, precond) = plan(
            &kernel(),
            &x,
            10,
            &device,
            Some(200),
            None,
            None,
            Precision::F64,
            7,
        )
        .unwrap();
        assert!(params.m >= 1 && params.m <= 400);
        assert_eq!(params.s, 200);
        assert!(params.adjusted_q >= params.q);
        assert!(params.beta_g <= params.beta + 1e-12);
        assert!(params.lambda1_g <= params.lambda1);
        assert!(params.m_star_g >= params.m_star * 0.9);
        assert!(params.eta > 0.0);
        assert!(params.acceleration >= 1.0);
        if params.adjusted_q > 0 {
            let p = precond.expect("preconditioner expected when q > 0");
            assert_eq!(p.q(), params.adjusted_q);
        }
    }

    #[test]
    fn m_star_small_for_clustered_data() {
        // The paper: "for kernels used in practice m*(k) is typically quite
        // small, less than 10".
        let x = clustered_data(300, 8, 5);
        let device = ResourceSpec::scaled_virtual_gpu();
        let (params, _) = plan(
            &kernel(),
            &x,
            10,
            &device,
            Some(150),
            None,
            None,
            Precision::F64,
            2,
        )
        .unwrap();
        assert!(params.m_star < 15.0, "m*(k) = {}", params.m_star);
        // And the adaptive kernel's critical batch reaches (≈) m.
        assert!(params.m_star_g > params.m_star);
    }

    #[test]
    fn q_override_respected() {
        let x = clustered_data(200, 6, 9);
        let device = ResourceSpec::scaled_virtual_gpu();
        let (params, precond) = plan(
            &kernel(),
            &x,
            5,
            &device,
            Some(100),
            Some(7),
            None,
            Precision::F64,
            1,
        )
        .unwrap();
        assert_eq!(params.adjusted_q, 7);
        assert_eq!(precond.unwrap().q(), 7);
    }

    #[test]
    fn m_override_respected_and_step_size_scales() {
        let x = clustered_data(200, 6, 11);
        let device = ResourceSpec::scaled_virtual_gpu();
        let (p_small, _) = plan(
            &kernel(),
            &x,
            5,
            &device,
            Some(100),
            Some(5),
            Some(4),
            Precision::F64,
            1,
        )
        .unwrap();
        let (p_big, _) = plan(
            &kernel(),
            &x,
            5,
            &device,
            Some(100),
            Some(5),
            Some(100),
            Precision::F64,
            1,
        )
        .unwrap();
        assert_eq!(p_small.m, 4);
        assert_eq!(p_big.m, 100);
        // Larger batch → larger step size (linear scaling regime; the exact
        // ratio depends on how far λ₁(K_G) sits below β_G).
        assert!(p_big.eta > p_small.eta * 2.0);
    }

    #[test]
    fn empty_data_rejected() {
        let x = Matrix::zeros(0, 3);
        let device = ResourceSpec::scaled_virtual_gpu();
        assert!(plan(
            &kernel(),
            &x,
            2,
            &device,
            None,
            None,
            None,
            Precision::F64,
            1
        )
        .is_err());
    }

    #[test]
    fn default_subsample_rule_matches_paper() {
        assert_eq!(default_subsample_size(50_000), 2_000);
        assert_eq!(default_subsample_size(100_000), 2_000);
        assert_eq!(default_subsample_size(1_000_000), 12_000);
        assert_eq!(default_subsample_size(500), 500);
    }
}
