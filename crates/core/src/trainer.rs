//! The user-facing "worry-free" trainer: Steps 1–3 end to end, with early
//! stopping, dual (simulated-GPU + wall-clock) timing, and a numeric
//! [`Precision`] policy.
//!
//! # Precision policy
//!
//! [`TrainConfig::precision`] selects one of three operating points
//! (see [`ep2_device::Precision`]):
//!
//! - **`F64`** (default): everything in double precision — the library's
//!   historical behaviour, and the reference the other modes are validated
//!   against.
//! - **`F32`**: the paper's GPU configuration. Features, kernel blocks,
//!   weights, and the whole Algorithm-1 loop run in f32; Step 1's memory
//!   accounting gets the full f32 slot budget, so the memory-limited batch
//!   `m^S_G` doubles relative to `F64`. Setup quantities are estimated from
//!   f32-assembled kernel matrices (the dense eigensolver itself still
//!   iterates in f64 — see `ep2_linalg::eigen`).
//! - **`Mixed`**: plan at f64, execute at f32. Subsample kernel assembly,
//!   eigensolves, `β`/`λ₁` estimation, and the analytic step size are
//!   computed exactly as under `F64`, then the preconditioner is cast to
//!   f32 for the hot loop (its spectral scalars are `f64` on both sides, so
//!   the analytic parameters transfer verbatim). Per-epoch error metrics
//!   accumulate in f64 under every mode.
//! - **`Bf16`**: the half-storage extension of `Mixed` — plan at f64,
//!   store at bfloat16, compute at f32. Kernel blocks, streamed tile rings,
//!   features and weights live in 2-byte bf16 (`slot_factor = 0.5`: the
//!   memory-limited batch `m^S_G` and the streamed `n_tile` double vs f32
//!   at equal `S_G`), while every packed-GEMM register tile widens its
//!   panels to f32 at pack time (`Scalar::Compute`) and error-sensitive
//!   reductions accumulate in f32 (`Scalar::Accum`), so the hot loop runs
//!   at f32 FMA speed over half the bytes. Each *stored* value carries
//!   bf16's `2^-8` relative rounding — see the README's rounding-error
//!   model and `tests/precision.rs` for the enforced divergence bounds.
//!
//! Whatever the policy, [`TrainOutcome::model`] is returned in f64 so
//! persistence and downstream evaluation are precision-agnostic.

use std::any::Any;
use std::borrow::Cow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use ep2_data::{metrics, Dataset};
use ep2_device::{batch, DeviceMode, Precision, ResidencyMode, ResourceSpec, SimClock};
use ep2_kernels::KernelKind;
use ep2_linalg::{Matrix, Scalar};
use ep2_stream::{BlockPlan, StreamEngine};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::autotune::{self, AutoParams};
use crate::counter::FlopCounter;
use crate::iteration::EigenProIteration;
use crate::model::{KernelModel, PredictOptions};
use crate::persist::{self, TrainerState};
use crate::CoreError;

/// Spectral margin added to the planned `λ₁(K_G)` when executing under
/// [`Precision::Bf16`]: the spectral estimates come from the f64 plan, but
/// the executed kernel blocks carry bf16 storage rounding — a perturbation
/// `E` with `|E_ij| ≤ u·|K_ij| ≤ u` (`u = 2^-8`, kernel values in (0, 1]),
/// so the *normalised* operator the stability analysis runs on shifts by at
/// most `‖E‖₂/n ≤ ‖E‖_F/n ≤ u`. The preconditioner cannot damp `E` (it is
/// built from the exact spectrum), so the executed step size is re-derived
/// as `η = m/(β_G + (m−1)(λ₁ + 4u))` — the factor 4 (empirical: 2u still
/// drifts at memory-limited batches, 4u is smooth) covers the analysis
/// running on mini-batch blocks rather than the full Gram matrix, and the
/// second noise source the Frobenius bound misses: the *weights* are also
/// bf16-stored, so every step re-injects `O(u·|w|)` quantisation noise
/// that near-neutral directions (`η'λ ≈ 0`) integrate. This is
/// self-scaling where a flat derate is not: at small batches
/// `(m−1)·2u ≪ β_G` and η is essentially the analytic optimum, while at
/// the memory-limited batches half-width storage unlocks (where
/// `η*λ₁ → 1` with no margin, and a percent-level λ₁ shift demonstrably
/// diverges — f32 at the same `m`/`η` converges) it backs η off by exactly
/// the quantisation-noise share of the spectrum.
pub const BF16_LAMBDA_MARGIN: f64 = 4.0 / 256.0;

/// Early-stopping policy (the interpolation framework's regulariser —
/// Yao–Rosasco–Caponnetto 2007, as adopted by the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopping {
    /// Stop after this many epochs without validation improvement.
    pub patience: usize,
    /// Minimum decrease in validation error that counts as improvement.
    pub min_delta: f64,
}

impl Default for EarlyStopping {
    fn default() -> Self {
        EarlyStopping {
            patience: 2,
            min_delta: 1e-4,
        }
    }
}

/// Training configuration. Only the kernel and its bandwidth are required
/// choices (the paper's selling point); everything else has analytic or
/// paper-rule defaults.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Kernel family.
    pub kernel: KernelKind,
    /// Kernel bandwidth σ.
    pub bandwidth: f64,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Fixed coordinate block size `s`; `None` = paper rule
    /// ([`autotune::default_subsample_size`]).
    pub subsample_size: Option<usize>,
    /// Spectral truncation `q`; `None` = Eq. (7) + Appendix-B adjustment.
    pub q: Option<usize>,
    /// Mini-batch size; `None` = `m^max_G` from Step 1.
    pub batch_size: Option<usize>,
    /// Step size; `None` = analytic `η`.
    pub step_size: Option<f64>,
    /// Early stopping on validation error; `None` disables it.
    pub early_stopping: Option<EarlyStopping>,
    /// Stop once training MSE falls below this value (the Figure-2
    /// convergence criterion); `None` disables it.
    pub target_train_mse: Option<f64>,
    /// Stop once validation classification error falls to this value or
    /// below (the Table-3 "match the SVM's accuracy" protocol); `None`
    /// disables it. Requires a validation set to have any effect.
    pub target_val_error: Option<f64>,
    /// Device-timing idealisation for the simulated clock.
    pub device_mode: DeviceMode,
    /// Numeric precision policy (see the module docs).
    pub precision: Precision,
    /// Residency override: `None` (the default) picks
    /// [`ResidencyMode::InCore`] when the Step-1 bound
    /// `(d + l + m) · n ≤ S_G` has a solution and
    /// [`ResidencyMode::Streamed`] (out-of-core kernel-block streaming)
    /// when even `m = 1` over-budgets. `Some(mode)` forces the mode —
    /// forcing `Streamed` on a problem that fits is how the in-core vs
    /// streamed equivalence tests and throughput comparisons run.
    pub residency: Option<ResidencyMode>,
    /// Streamed-mode tile-width override (columns per kernel-block tile);
    /// `None` = the widest tile the ring budget affords. Must still fit the
    /// budget formula — see `ep2_device::batch::streamed_slots`.
    pub stream_tile: Option<usize>,
    /// Streamed-mode producer-count override (tile-assembly stage tasks).
    /// `None` (the default) lets `autotune::plan_streamed` partition the
    /// thread budget between assembly and the update GEMM via the
    /// `device::cost` overlap model; the deprecated `EP2_STREAM_PRODUCERS`
    /// env var is honoured beneath an explicit setting. Clamped to the ring
    /// depth minus one (the pipeline's liveness bound).
    pub stream_producers: Option<usize>,
    /// RNG seed (subsampling + batch shuffling).
    pub seed: u64,
    /// Directory for periodic training checkpoints; `None` disables
    /// checkpointing. Checkpoints are `ckpt-{epoch:06}.ep2` files in the v2
    /// persist format (model + [`TrainerState`] + CRC32), written
    /// atomically so a crash mid-write can never corrupt the last good one.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in epochs (default 1 = every epoch). Only epochs
    /// the divergence safeguard did not flag are checkpointed, so a resume
    /// always starts from a healthy state.
    pub checkpoint_every: usize,
    /// Resume from the newest valid checkpoint in `checkpoint_dir` (corrupt
    /// or torn files are skipped with a warning). The restored run continues
    /// the interrupted trajectory exactly: batch shuffles are re-derived per
    /// epoch from `seed`, and weights/η/clock/counters are restored from the
    /// checkpoint, so an uninterrupted run and a killed-and-resumed run
    /// produce bit-identical weights and reports at equal total epochs.
    pub resume: bool,
    /// Retention bound for on-disk checkpoints: keep only the newest `k`
    /// `ckpt-*.ep2` files, pruning older ones **after** each successful
    /// atomic checkpoint write (never mid-write, so the file a crashed
    /// resume would fall back to is always intact). `None` keeps every
    /// checkpoint; values are clamped to at least 1.
    pub checkpoint_keep: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 5.0,
            epochs: 10,
            subsample_size: None,
            q: None,
            batch_size: None,
            step_size: None,
            early_stopping: Some(EarlyStopping::default()),
            target_train_mse: None,
            target_val_error: None,
            device_mode: DeviceMode::ActualGpu,
            precision: Precision::F64,
            residency: None,
            stream_tile: None,
            stream_producers: None,
            seed: 0,
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
            checkpoint_keep: None,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Training MSE at epoch end (always accumulated in f64).
    pub train_mse: f64,
    /// Validation classification error at epoch end (when a validation set
    /// was supplied).
    pub val_error: Option<f64>,
    /// Simulated device seconds elapsed since training started.
    pub simulated_seconds: f64,
    /// Wall-clock seconds elapsed since training started.
    pub wall_seconds: f64,
}

/// Full training report.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// The analytically selected parameters (Table 4's columns).
    pub params: AutoParams,
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Final training MSE.
    pub final_train_mse: f64,
    /// Final validation classification error.
    pub final_val_error: Option<f64>,
    /// Total simulated device seconds.
    pub simulated_seconds: f64,
    /// Total wall-clock seconds.
    pub wall_seconds: f64,
    /// Total iterations executed.
    pub iterations: u64,
    /// Preconditioner overhead fraction (Table 1's measured counterpart).
    pub overhead_fraction: f64,
    /// Why training stopped.
    pub stop_reason: StopReason,
    /// Times the step size was halved by the divergence safeguard (0 when
    /// the analytic η was stable, the common case).
    pub eta_backoffs: u32,
    /// Numeric precision policy the run executed under.
    pub precision: Precision,
    /// Residency the run executed under (`Streamed` = out-of-core
    /// kernel-block streaming).
    pub residency: ResidencyMode,
    /// High-water mark of ledger-charged device slots over the whole run —
    /// streamed runs assert `peak_slots <= budget_slots` to prove they
    /// never exceeded `S_G`.
    pub peak_slots: f64,
    /// The device budget `S_G` the ledger enforced (raw f32-reference
    /// slots).
    pub budget_slots: f64,
    /// Times the divergence safeguard restored weights from the last
    /// healthy checkpoint instead of zeroing them (0 in stable runs).
    pub rollbacks: u32,
    /// Dead stream producers the self-healing pipeline absorbed (respawns
    /// or work redistributions); 0 for in-core runs and fault-free streams.
    pub stream_recoveries: usize,
    /// Graceful-degradation and self-healing events, in order: mid-setup
    /// memory re-plans (in-core → streamed), tile narrowings, and stream
    /// producer deaths the pipeline recovered from. Empty in healthy runs.
    pub degradations: Vec<String>,
    /// `Some(epoch)` when this run resumed from a checkpoint written at
    /// that epoch.
    pub resumed_from_epoch: Option<usize>,
}

/// Why the training loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All configured epochs ran.
    EpochsExhausted,
    /// Validation error stopped improving.
    EarlyStopped,
    /// The training-MSE target was reached.
    TargetReached,
}

/// Outcome of [`EigenPro2::fit`]: the trained model plus its report.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The trained kernel machine (always returned in f64; under
    /// `F32`/`Mixed` the f32 weights are widened losslessly).
    pub model: KernelModel,
    /// Metrics, parameters and timings.
    pub report: TrainReport,
}

/// Validation data + metric, precision-agnostic (features are cast into the
/// training precision once per run; the metric itself accumulates in f64).
enum ValMetric {
    /// Classification error against integer labels (arg-max over outputs).
    Classification {
        features: Matrix,
        labels: Vec<usize>,
    },
    /// Mean squared error against continuous targets.
    Mse { features: Matrix, targets: Matrix },
}

/// The EigenPro 2.0 trainer.
#[derive(Debug, Clone)]
pub struct EigenPro2 {
    config: TrainConfig,
    device: ResourceSpec,
}

impl EigenPro2 {
    /// Creates a trainer for the given configuration and device.
    pub fn new(config: TrainConfig, device: ResourceSpec) -> Self {
        EigenPro2 { config, device }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains on `train`, optionally tracking validation classification
    /// error on `val`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for inconsistent configurations or eigensolver
    /// failures.
    pub fn fit(&self, train: &Dataset, val: Option<&Dataset>) -> Result<TrainOutcome, CoreError> {
        let val_metric = val.map(|v| ValMetric::Classification {
            features: v.features.clone(),
            labels: v.labels.clone(),
        });
        self.fit_impl(&train.features, &train.targets, val_metric)
    }

    /// Trains a regression model on continuous targets; the validation
    /// metric (driving early stopping and `target_val_error`) is the
    /// validation MSE.
    ///
    /// Kernel interpolation is loss-agnostic (Remark 2.1), so this is the
    /// same Algorithm-1 training loop as classification — only the
    /// validation metric differs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for inconsistent configurations or eigensolver
    /// failures.
    pub fn fit_regression(
        &self,
        train: &ep2_data::RegressionDataset,
        val: Option<&ep2_data::RegressionDataset>,
    ) -> Result<TrainOutcome, CoreError> {
        let val_metric = val.map(|v| ValMetric::Mse {
            features: v.features.clone(),
            targets: v.targets.clone(),
        });
        self.fit_impl(&train.features, &train.targets, val_metric)
    }

    fn fit_impl(
        &self,
        features: &Matrix,
        targets: &Matrix,
        val: Option<ValMetric>,
    ) -> Result<TrainOutcome, CoreError> {
        match self.config.precision {
            Precision::F64 => self.fit_typed::<f64>(features, targets, val, false),
            Precision::F32 => self.fit_typed::<f32>(features, targets, val, false),
            Precision::Mixed => self.fit_typed::<f32>(features, targets, val, true),
            Precision::Bf16 => self.fit_typed::<ep2_linalg::Bf16>(features, targets, val, true),
        }
    }

    /// The training loop, monomorphised per precision. `plan_at_f64` is the
    /// `Mixed` policy: Steps 1–2 (subsample eigensolve, β/λ₁ estimation,
    /// analytic η) run at f64 on the f64 data, and only the resulting
    /// preconditioner is cast into `S` for the Algorithm-1 hot loop.
    fn fit_typed<S: Scalar>(
        &self,
        features: &Matrix,
        targets: &Matrix,
        val: Option<ValMetric>,
        plan_at_f64: bool,
    ) -> Result<TrainOutcome, CoreError> {
        let cfg = &self.config;
        if features.rows() == 0 {
            return Err(CoreError::InvalidConfig {
                message: "training set is empty".to_string(),
            });
        }
        if cfg.epochs == 0 {
            return Err(CoreError::InvalidConfig {
                message: "epochs must be positive".to_string(),
            });
        }
        let kernel: Arc<dyn ep2_kernels::Kernel<S>> =
            cfg.kernel.with_bandwidth_in::<S>(cfg.bandwidth).into();
        // Borrow when S is already f64 (the default path pays no cast copy).
        let features_s: Cow<'_, Matrix<S>> = cast_cow(features);
        let targets_s: Cow<'_, Matrix<S>> = cast_cow(targets);
        let n_outputs = targets.cols();
        let n = features.rows();
        let d = features.cols();

        // Residency: honour the override, otherwise stream exactly when the
        // in-core Step-1 bound has no solution (m^S_G = 0 — features +
        // weights + one kernel-block row over-budget).
        let fits = batch::fits_in_core(&self.device, n, d, n_outputs, cfg.precision);
        let residency = cfg.residency.unwrap_or(if fits {
            ResidencyMode::InCore
        } else {
            ResidencyMode::Streamed
        });
        if residency == ResidencyMode::InCore && !fits {
            return Err(CoreError::DeviceMemory {
                message: format!(
                    "in-core residency needs (d + l + 1)·n = {:.3e} slots of {:.3e} at {}; \
                     the dataset can only train Streamed (--out-of-core)",
                    ((d + n_outputs + 1) * n) as f64 * cfg.precision.slot_factor(),
                    self.device.memory_floats,
                    cfg.precision,
                ),
            });
        }

        // Steps 1–2 (+ Step-3 parameters), residency-specific. The producer
        // count resolves explicit config > deprecated env var > planned;
        // `max_batch_streamed_planned` (shared with `ep2 plan`, so both
        // always agree on the tiling) sizes the ring to the planned
        // producer count, and the final cost-model partition runs inside
        // `plan_streamed` once `s`/`q` are known.
        let requested_producers = cfg.stream_producers.or(ep2_stream::producer_override());
        let mut stream_plan = match residency {
            ResidencyMode::InCore => None,
            ResidencyMode::Streamed => {
                let mut splan = batch::max_batch_streamed_planned(
                    &self.device,
                    n,
                    d,
                    n_outputs,
                    cfg.precision,
                    cfg.batch_size,
                    requested_producers,
                    ep2_runtime::current_threads(),
                )
                .map_err(|e| CoreError::DeviceMemory {
                    message: e.to_string(),
                })?;
                if let Some(tile) = cfg.stream_tile {
                    splan.n_tile = tile.clamp(1, n);
                    splan.resident_elements = batch::streamed_slots(
                        n,
                        d,
                        n_outputs,
                        splan.m,
                        splan.n_tile,
                        splan.tiles_in_flight,
                    );
                    if splan.resident_slots(cfg.precision) > self.device.memory_floats {
                        return Err(CoreError::DeviceMemory {
                            message: format!(
                                "stream_tile override {} needs {:.3e} slots of {:.3e}",
                                splan.n_tile,
                                splan.resident_slots(cfg.precision),
                                self.device.memory_floats,
                            ),
                        });
                    }
                }
                Some(splan)
            }
        };
        let centers: Arc<Matrix<S>> = Arc::new(features_s.into_owned());
        // Steps 1–2 planning, re-callable: the graceful-degradation loop
        // below may re-plan after a mid-setup allocation failure (in-core →
        // streamed residency, or a narrower streamed tile).
        type Planned<C> = Result<(AutoParams, Option<crate::Preconditioner<C>>), CoreError>;
        let plan_with = |splan: Option<&batch::StreamedBatchPlan>| -> Planned<S::Compute> {
            Ok(match splan {
                None => {
                    if plan_at_f64 {
                        let kernel64: Arc<dyn ep2_kernels::Kernel> =
                            cfg.kernel.with_bandwidth(cfg.bandwidth).into();
                        let (params, precond64) = autotune::plan(
                            &kernel64,
                            features,
                            n_outputs,
                            &self.device,
                            cfg.subsample_size,
                            cfg.q,
                            cfg.batch_size,
                            cfg.precision,
                            cfg.seed,
                        )?;
                        (params, precond64.map(|p| p.cast::<S::Compute>()))
                    } else {
                        let (params, precond) = autotune::plan(
                            &kernel,
                            &centers,
                            n_outputs,
                            &self.device,
                            cfg.subsample_size,
                            cfg.q,
                            cfg.batch_size,
                            cfg.precision,
                            cfg.seed,
                        )?;
                        (params, precond.map(precond_into_compute))
                    }
                }
                Some(splan) => {
                    if plan_at_f64 {
                        let kernel64: Arc<dyn ep2_kernels::Kernel> =
                            cfg.kernel.with_bandwidth(cfg.bandwidth).into();
                        let (params, precond64) = autotune::plan_streamed(
                            &kernel64,
                            features,
                            n_outputs,
                            &self.device,
                            cfg.subsample_size,
                            cfg.q,
                            splan,
                            requested_producers,
                            cfg.precision,
                            cfg.seed,
                        )?;
                        (params, precond64.map(|p| p.cast::<S::Compute>()))
                    } else {
                        let (params, precond) = autotune::plan_streamed(
                            &kernel,
                            &centers,
                            n_outputs,
                            &self.device,
                            cfg.subsample_size,
                            cfg.q,
                            splan,
                            requested_producers,
                            cfg.precision,
                            cfg.seed,
                        )?;
                        (params, precond.map(precond_into_compute))
                    }
                }
            })
        };
        let (mut params, mut precond) = plan_with(stream_plan.as_ref())?;
        // Enforce the Step-1 memory accounting on the device ledger, at the
        // slot width of the chosen precision (f64 elements cost two
        // f32-reference slots). In-core: the resident features (d·n) +
        // weights (l·n) + the mini-batch kernel block (m·n). Streamed: the
        // weights (l·n) + batch feature block (d·m) held here, plus the tile
        // ring charged by the engine below. The guard is held for the whole
        // training run (dropped explicitly after the last epoch), so the
        // reservation provably spans every transient the loop charges.
        //
        // A `MemoryError` here does not abort the run: the loop degrades
        // gracefully — an in-core residency that fails to allocate re-plans
        // as streamed, and a streamed ring that fails to allocate narrows
        // its tile (halving down to a 16-column floor) — recording each
        // step in `degradations` so the report shows what happened.
        let ledger = ep2_device::MemoryLedger::new(self.device.memory_floats);
        let mut residency = residency;
        let mut degradations: Vec<String> = Vec::new();
        let mut executor = loop {
            let built: Result<Executor<S>, ep2_device::MemoryError> = match &stream_plan {
                None => {
                    let resident_slots =
                        ((d + n_outputs + params.m) * n) as f64 * cfg.precision.slot_factor();
                    ledger
                        .alloc(resident_slots)
                        .map(|guard| Executor::InCore { _residency: guard })
                }
                Some(splan) => {
                    let bplan = BlockPlan::from_streamed(n, d, n_outputs, splan, cfg.precision)
                        .with_stream_threads(
                            params
                                .stream_threads
                                .expect("plan_streamed always records the thread partition"),
                        );
                    ledger.alloc(bplan.static_slots()).and_then(|guard| {
                        StreamEngine::new(Arc::clone(&kernel), Arc::clone(&centers), bplan, &ledger)
                            .map(|engine| Executor::Streamed {
                                engine: Box::new(engine),
                                shape: ep2_device::cost::ProblemShape {
                                    n,
                                    m: params.m,
                                    d,
                                    l: n_outputs,
                                    s: params.s,
                                    q: params.adjusted_q,
                                },
                                _residency: guard,
                            })
                    })
                }
            };
            match built {
                Ok(executor) => break executor,
                Err(e) => match &mut stream_plan {
                    None => {
                        let splan = batch::max_batch_streamed_planned(
                            &self.device,
                            n,
                            d,
                            n_outputs,
                            cfg.precision,
                            cfg.batch_size,
                            requested_producers,
                            ep2_runtime::current_threads(),
                        )
                        .map_err(|plan_err| CoreError::DeviceMemory {
                            message: format!(
                                "in-core residency allocation failed ({e}) and no streamed \
                                 plan fits either: {plan_err}"
                            ),
                        })?;
                        degradations.push(format!(
                            "in-core residency allocation failed ({e}); re-planned to \
                             streamed residency (tile {})",
                            splan.n_tile
                        ));
                        residency = ResidencyMode::Streamed;
                        stream_plan = Some(splan);
                        let (p, pc) = plan_with(stream_plan.as_ref())?;
                        params = p;
                        precond = pc;
                    }
                    Some(splan) if splan.n_tile > 16 => {
                        let narrowed = (splan.n_tile / 2).max(16);
                        degradations.push(format!(
                            "streamed allocation failed ({e}); narrowed tile {} -> {narrowed}",
                            splan.n_tile
                        ));
                        splan.n_tile = narrowed;
                        splan.resident_elements = batch::streamed_slots(
                            n,
                            d,
                            n_outputs,
                            splan.m,
                            narrowed,
                            splan.tiles_in_flight,
                        );
                        let (p, pc) = plan_with(stream_plan.as_ref())?;
                        params = p;
                        precond = pc;
                    }
                    Some(_) => {
                        return Err(CoreError::DeviceMemory {
                            message: format!(
                                "{e} (streamed tile already at the 16-column floor; no \
                                 degradation path left)"
                            ),
                        })
                    }
                },
            }
        };
        let m = params.m;
        // The analytic η sits on the stability edge: η* = m/(β_G + (m−1)λ₁)
        // with λ₁ estimated from the f64 plan. Under bf16 the *executed*
        // kernel blocks carry 2^-8-relative storage rounding the
        // preconditioner cannot damp, so the executed step is re-derived
        // with the quantisation margin [`BF16_LAMBDA_MARGIN`] added to λ₁.
        // The reported plan keeps the analytic value (it is the f64 plan,
        // transferred verbatim), an explicit `step_size` is always
        // respected, and the divergence safeguard below remains the
        // backstop.
        let eta = cfg.step_size.unwrap_or(match cfg.precision {
            Precision::Bf16 => crate::critical::optimal_step_size(
                m,
                params.beta_g,
                params.lambda1_g + BF16_LAMBDA_MARGIN,
            ),
            _ => params.eta,
        });
        let model = KernelModel::zeros_shared(kernel, centers, n_outputs);
        let mut iter = EigenProIteration::new(model, precond, eta);
        let mut clock = SimClock::new(self.device.clone(), cfg.device_mode);
        let start = Instant::now();

        // Validation features cast into the training precision once
        // (borrowed under f64).
        let val_s: Option<(Cow<'_, Matrix<S>>, &ValMetric)> = val.as_ref().map(|v| {
            let f = match v {
                ValMetric::Classification { features, .. } => cast_cow(features),
                ValMetric::Mse { features, .. } => cast_cow(features),
            };
            (f, v)
        });

        let mut epochs_out = Vec::with_capacity(cfg.epochs);
        let mut best_val = f64::INFINITY;
        let mut since_best = 0usize;
        let mut stop_reason = StopReason::EpochsExhausted;
        let mut prev_mse = f64::INFINITY;
        let mut eta_backoffs = 0_u32;
        let mut rollbacks = 0_u32;
        // Last healthy weights, refreshed at the checkpoint cadence: the
        // divergence safeguard's rollback target, kept in memory even when
        // no checkpoint directory is configured.
        let mut last_good: Option<Matrix<S>> = None;
        let mut start_epoch = 1_usize;
        let mut resumed_from_epoch = None;
        let fingerprint = plan_fingerprint(cfg, n, d, n_outputs, &params, residency);
        let ckpt_kernel: Option<Arc<dyn ep2_kernels::Kernel>> = cfg
            .checkpoint_dir
            .as_ref()
            .map(|_| cfg.kernel.with_bandwidth(cfg.bandwidth).into());
        if let Some(dir) = &cfg.checkpoint_dir {
            // Fail fast, before the expensive run: a checkpoint directory
            // that cannot be created would otherwise degrade every epoch's
            // snapshot into a warning.
            std::fs::create_dir_all(dir).map_err(|e| CoreError::InvalidConfig {
                message: format!("cannot create checkpoint directory {}: {e}", dir.display()),
            })?;
        }

        if cfg.resume {
            let dir = cfg
                .checkpoint_dir
                .as_deref()
                .ok_or_else(|| CoreError::InvalidConfig {
                    message: "resume requires checkpoint_dir".to_string(),
                })?;
            if let Some((path, ckpt_model, state)) = latest_valid_checkpoint(dir) {
                if state.plan_fingerprint != fingerprint {
                    return Err(CoreError::InvalidConfig {
                        message: format!(
                            "checkpoint {} was written under a different plan \
                             (fingerprint {:#018x}, this run {:#018x}); refusing to resume",
                            path.display(),
                            state.plan_fingerprint,
                            fingerprint
                        ),
                    });
                }
                if state.history.len() as u64 != state.epochs_done
                    || ckpt_model.n_centers() != n
                    || ckpt_model.n_outputs() != n_outputs
                {
                    return Err(CoreError::InvalidConfig {
                        message: format!(
                            "checkpoint {} is inconsistent with this run's data",
                            path.display()
                        ),
                    });
                }
                // Lossless: checkpoints store f64 weights widened from `S`,
                // so casting back reproduces the stored values bit-for-bit.
                *iter.model_mut().weights_mut() = ckpt_model.weights_in();
                iter.set_eta(state.eta);
                *iter.counter_mut() = FlopCounter {
                    sgd_ops: state.sgd_ops,
                    precond_ops: state.precond_ops,
                    iterations: state.iterations,
                };
                clock.restore(
                    state.simulated_seconds,
                    state.sim_launches,
                    state.sim_total_ops,
                );
                epochs_out = state.history.clone();
                best_val = state.best_val;
                since_best = state.since_best as usize;
                prev_mse = state.prev_mse;
                eta_backoffs = state.eta_backoffs;
                rollbacks = state.rollbacks;
                last_good = Some(iter.model().weights().clone());
                start_epoch = state.epochs_done as usize + 1;
                resumed_from_epoch = Some(state.epochs_done as usize);
            }
        }

        // Streamed runs evaluate epoch metrics through the column-tiled
        // prediction path so the transient kernel panel stays within one
        // ring slot (`m x n_tile`) — the in-core `block x n` panel would
        // break the very budget streaming exists to respect.
        let eval_tile = stream_plan.as_ref().map(|sp| (m.max(1), sp.n_tile));

        'outer: for epoch in start_epoch..=cfg.epochs {
            // Each epoch derives its shuffle from (seed, epoch) alone — not
            // from a run-long RNG stream — so a resumed run at epoch e
            // replays exactly the batches the uninterrupted run drew there.
            let mut rng = StdRng::seed_from_u64(epoch_seed(cfg.seed, epoch as u64));
            let mut indices: Vec<usize> = (0..n).collect();
            indices.shuffle(&mut rng);
            if matches!(executor, Executor::Streamed { .. }) {
                // A streamed epoch can still fail beyond what the pipeline's
                // self-healing absorbs (every producer dead with the respawn
                // budget exhausted): surface the panic as a typed error so
                // callers can retry from the last checkpoint.
                let run = catch_unwind(AssertUnwindSafe(|| {
                    executor.run_epoch(&mut iter, &targets_s, &indices, m, &mut clock)
                }));
                if let Err(payload) = run {
                    return Err(CoreError::Stream {
                        message: panic_message(payload.as_ref()),
                    });
                }
            } else {
                executor.run_epoch(&mut iter, &targets_s, &indices, m, &mut clock);
            }
            let stats = epoch_stats(
                epoch,
                &iter,
                targets,
                val_s.as_ref().map(|(f, v)| (f.as_ref(), *v)),
                eval_tile,
                &clock,
                start,
            );
            // Divergence safeguard: the analytic η relies on estimated
            // spectra; if the training MSE regresses, the estimate was on
            // the unstable side — halve the step and continue. At paper
            // scale (s = 1.2e4) this never fires; it protects small-s runs.
            // A catastrophic blow-up (MSE far beyond the one-hot target
            // scale) additionally rolls the weights back to the last
            // healthy snapshot (falling back to a zero restart when none
            // exists yet), since exponentially overgrown weights cannot be
            // contracted back within any reasonable epoch budget.
            let diverged = stats.train_mse > prev_mse * 1.2;
            if diverged && eta_backoffs < 16 {
                iter.set_eta(iter.eta() * 0.5);
                eta_backoffs += 1;
                if !stats.train_mse.is_finite() || stats.train_mse > 100.0 {
                    match &last_good {
                        Some(weights) => {
                            iter.model_mut()
                                .weights_mut()
                                .as_mut_slice()
                                .copy_from_slice(weights.as_slice());
                            rollbacks += 1;
                        }
                        None => iter.model_mut().weights_mut().as_mut_slice().fill(S::ZERO),
                    }
                }
            }
            // "Healthy" is the bar for a state worth resuming from: finite
            // and within the catastrophic-blow-up bound. A mild regression
            // (the 1.2x divergence test above) still checkpoints — the
            // halved η is part of the recorded state, so resuming from it
            // continues the corrected trajectory.
            let healthy = stats.train_mse.is_finite() && stats.train_mse <= 100.0;
            prev_mse = stats.train_mse.min(prev_mse);
            let reached_target = cfg
                .target_train_mse
                .map(|t| stats.train_mse <= t)
                .unwrap_or(false)
                || matches!(
                    (cfg.target_val_error, stats.val_error),
                    (Some(t), Some(ve)) if ve <= t
                );
            let mut stop = None;
            if let (Some(es), Some(ve)) = (cfg.early_stopping, stats.val_error) {
                if ve < best_val - es.min_delta {
                    best_val = ve;
                    since_best = 0;
                } else {
                    since_best += 1;
                }
                if since_best >= es.patience {
                    stop = Some(StopReason::EarlyStopped);
                }
            }
            if stop.is_none() && reached_target {
                stop = Some(StopReason::TargetReached);
            }
            epochs_out.push(stats);
            // Checkpoint cadence: only healthy epochs refresh the rollback
            // snapshot and hit disk, so the newest checkpoint is always a
            // state worth resuming from. A failed write warns and keeps
            // training — the previous checkpoint survives intact (atomic
            // rename), which is exactly the crash-consistency contract.
            if healthy
                && (epoch % cfg.checkpoint_every.max(1) == 0
                    || stop.is_some()
                    || epoch == cfg.epochs)
            {
                last_good = Some(iter.model().weights().clone());
                if let (Some(dir), Some(k64)) = (&cfg.checkpoint_dir, &ckpt_kernel) {
                    let state = TrainerState {
                        epochs_done: epoch as u64,
                        eta: iter.eta(),
                        eta_backoffs,
                        rollbacks,
                        best_val,
                        since_best: since_best as u64,
                        prev_mse,
                        sgd_ops: iter.counter().sgd_ops,
                        precond_ops: iter.counter().precond_ops,
                        iterations: iter.counter().iterations,
                        simulated_seconds: clock.elapsed(),
                        sim_launches: clock.launches(),
                        sim_total_ops: clock.total_ops(),
                        plan_fingerprint: fingerprint,
                        precision: cfg.precision,
                        history: epochs_out.clone(),
                    };
                    let snapshot = KernelModel::from_weights(
                        Arc::clone(k64),
                        features.clone(),
                        iter.model().weights().cast(),
                    );
                    let path = dir.join(format!("ckpt-{epoch:06}.ep2"));
                    if let Err(e) = persist::save_checkpoint(&snapshot, &state, &path) {
                        eprintln!(
                            "warning: checkpoint write failed at epoch {epoch} ({e}); \
                             training continues"
                        );
                    } else if let Some(keep) = cfg.checkpoint_keep {
                        // Prune only after the atomic write landed: the
                        // newest file is durable before any older one is
                        // deleted, so a crash at any point still leaves a
                        // resumable checkpoint on disk.
                        prune_checkpoints(dir, keep.max(1));
                    }
                }
            }
            if let Some(reason) = stop {
                stop_reason = reason;
                break 'outer;
            }
        }

        // Training over: collect the self-healing log, release the ring and
        // the residency reservation, then audit the ledger — the whole run,
        // tiles included, must have stayed within `S_G`.
        let stream_recoveries = executor.stream_recoveries();
        degradations.extend(executor.stream_fault_log());
        drop(executor);
        let peak_slots = ledger.peak_slots();
        let budget_slots = ledger.budget();
        debug_assert!(peak_slots <= budget_slots, "ledger over-ran S_G");

        let last = *epochs_out.last().expect("at least one epoch ran");
        let report = TrainReport {
            params,
            final_train_mse: last.train_mse,
            final_val_error: last.val_error,
            simulated_seconds: clock.elapsed(),
            wall_seconds: start.elapsed().as_secs_f64(),
            iterations: iter.counter().iterations,
            overhead_fraction: iter.counter().overhead_fraction(),
            epochs: epochs_out,
            stop_reason,
            eta_backoffs,
            precision: cfg.precision,
            residency,
            peak_slots,
            budget_slots,
            rollbacks,
            stream_recoveries,
            degradations,
            resumed_from_epoch,
        };
        Ok(TrainOutcome {
            model: into_f64_model(iter.into_model()),
            report,
        })
    }
}

/// The per-epoch execution strategy, carrying the residency reservation it
/// runs under (the RAII guard lives exactly as long as training does).
enum Executor<S: Scalar> {
    /// The paper's path: one in-core `step` per mini-batch.
    InCore {
        _residency: ep2_device::memory::Allocation,
    },
    /// Out-of-core: the streaming engine produces kernel-block tiles into
    /// its ledger-charged ring while `step_streamed` consumes them. The
    /// engine is boxed so the enum's variants stay size-balanced (one
    /// executor exists per training run — the indirection is free).
    Streamed {
        engine: Box<StreamEngine<S>>,
        /// Table-1 shape of one iteration, for the streamed cost model
        /// (`m` is rewritten per mini-batch — the last one may be short).
        shape: ep2_device::cost::ProblemShape,
        _residency: ep2_device::memory::Allocation,
    },
}

impl<S: Scalar> Executor<S> {
    /// Dead producers the self-healing stream pipeline absorbed (0 for
    /// in-core execution).
    fn stream_recoveries(&self) -> usize {
        match self {
            Executor::InCore { .. } => 0,
            Executor::Streamed { engine, .. } => engine.recoveries(),
        }
    }

    /// Human-readable log of producer deaths the pipeline recovered from.
    fn stream_fault_log(&self) -> Vec<String> {
        match self {
            Executor::InCore { .. } => Vec::new(),
            Executor::Streamed { engine, .. } => engine.fault_log().to_vec(),
        }
    }

    /// Runs one epoch over the shuffled `indices` in mini-batches of `m`,
    /// recording every iteration's operation count on the simulated clock.
    fn run_epoch(
        &mut self,
        iter: &mut EigenProIteration<S>,
        targets: &Matrix<S>,
        indices: &[usize],
        m: usize,
        clock: &mut SimClock,
    ) {
        match self {
            Executor::InCore { .. } => {
                for chunk in indices.chunks(m) {
                    let ops = iter.step(chunk, targets);
                    clock.record_launch(ops);
                }
            }
            Executor::Streamed { engine, shape, .. } => {
                let n_tile = engine.plan().n_tile;
                let batches: Vec<&[usize]> = indices.chunks(m).collect();
                engine.run_epoch(&batches, |bi, tiles| {
                    iter.step_streamed(batches[bi], targets, tiles);
                    // The simulated clock prices the *exposed* critical path
                    // of the overlapped pipeline (assembly of tile t+1 runs
                    // under the update of tile t) — the same
                    // `cost::streamed_eigenpro` model the fig3b harness
                    // plans with, so `ep2 train --out-of-core` and the
                    // fig3b tables agree on what a streamed iteration
                    // costs. The FlopCounter keeps counting the full work.
                    let shape = ep2_device::cost::ProblemShape {
                        m: batches[bi].len(),
                        ..*shape
                    };
                    let exposed = ep2_device::cost::streamed_eigenpro(&shape, n_tile).exposed_ops;
                    clock.record_launch(exposed);
                });
            }
        }
    }
}

/// Moves a freshly planned preconditioner to the GEMM compute precision the
/// iteration holds it at — a free move for the native floats
/// (`S::Compute == S`), a widening cast only under bf16 storage.
fn precond_into_compute<S: Scalar>(
    p: crate::Preconditioner<S>,
) -> crate::Preconditioner<S::Compute> {
    let boxed: Box<dyn Any> = Box::new(p);
    match boxed.downcast::<crate::Preconditioner<S::Compute>>() {
        Ok(same) => *same,
        Err(boxed) => boxed
            .downcast_ref::<crate::Preconditioner<S>>()
            .expect("preconditioner has type Preconditioner<S>")
            .cast(),
    }
}

/// Casts a borrowed f64 matrix into the training precision, borrowing
/// (zero-copy) when `S` is already `f64`.
fn cast_cow<S: Scalar>(m: &Matrix) -> Cow<'_, Matrix<S>> {
    match (m as &dyn Any).downcast_ref::<Matrix<S>>() {
        Some(same) => Cow::Borrowed(same),
        None => Cow::Owned(m.cast()),
    }
}

/// Converts the trained model back to f64 — a move (no copy) when `S` is
/// already `f64`, a lossless widening cast otherwise.
fn into_f64_model<S: Scalar>(model: KernelModel<S>) -> KernelModel {
    let boxed: Box<dyn Any> = Box::new(model);
    match boxed.downcast::<KernelModel>() {
        Ok(same) => *same,
        Err(boxed) => boxed
            .downcast_ref::<KernelModel<S>>()
            .expect("model has type KernelModel<S>")
            .cast(),
    }
}

/// Splitmix64 over `(seed, epoch)`: every epoch's shuffle seed is derived
/// independently of how many epochs ran before it, which is what makes
/// checkpoint resume trajectory-exact.
fn epoch_seed(seed: u64, epoch: u64) -> u64 {
    let mut z = seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a fingerprint of the executed plan. A checkpoint refuses to resume
/// under a different fingerprint: same data shape, analytic parameters,
/// kernel, precision, seed and residency — or nothing.
fn plan_fingerprint(
    cfg: &TrainConfig,
    n: usize,
    d: usize,
    l: usize,
    params: &AutoParams,
    residency: ResidencyMode,
) -> u64 {
    let tag = format!(
        "{:?}|{n}|{d}|{l}|{}|{}|{}|{:?}|{:016x}|{}|{residency:?}",
        cfg.kernel,
        params.m,
        params.s,
        params.adjusted_q,
        cfg.precision,
        cfg.bandwidth.to_bits(),
        cfg.seed,
    );
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Finds the newest loadable checkpoint in `dir` (highest epoch whose file
/// parses and passes its CRC). Torn or corrupt files — e.g. a crash mid
/// `write(2)` before the atomic rename, or bit rot — are skipped with a
/// warning, so recovery lands on the last *good* checkpoint.
fn latest_valid_checkpoint(dir: &Path) -> Option<(PathBuf, persist::AnyModel, TrainerState)> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(epoch) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".ep2"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((epoch, path));
    }
    found.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
    for (_, path) in found {
        match persist::load_any_with_state(&path) {
            Ok((model, Some(state))) => return Some((path, model, state)),
            Ok((_, None)) => {
                eprintln!(
                    "warning: {} carries no trainer state; skipping",
                    path.display()
                );
            }
            Err(e) => {
                eprintln!(
                    "warning: skipping corrupt checkpoint {}: {e}",
                    path.display()
                );
            }
        }
    }
    None
}

/// Enumerates `ckpt-NNNNNN.ep2` files in `dir`, sorted by epoch.
fn checkpoint_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(epoch) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".ep2"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((epoch, path));
    }
    found.sort_by_key(|&(epoch, _)| epoch);
    found
}

/// Deletes all but the newest `keep` checkpoints in `dir` (by epoch
/// number). Called only after a successful atomic checkpoint write, so the
/// retained newest file is always a complete, durable checkpoint; a failed
/// unlink merely warns — stale files are retried on the next prune.
fn prune_checkpoints(dir: &Path, keep: usize) {
    let found = checkpoint_files(dir);
    for (_, path) in found.iter().take(found.len().saturating_sub(keep)) {
        if let Err(e) = std::fs::remove_file(path) {
            eprintln!(
                "warning: could not prune checkpoint {}: {e}",
                path.display()
            );
        }
    }
}

/// Extracts the human-readable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "stream pipeline panicked".to_string()
    }
}

fn epoch_stats<S: Scalar>(
    epoch: usize,
    iter: &EigenProIteration<S>,
    targets: &Matrix,
    val: Option<(&Matrix<S>, &ValMetric)>,
    eval_tile: Option<(usize, usize)>,
    clock: &SimClock,
    start: Instant,
) -> EpochStats {
    // `eval_tile = (block_rows, col_tile)` routes evaluation through the
    // column-tiled prediction so streamed runs honour their memory budget.
    let predict = |x: &Matrix<S>| {
        let opts = match eval_tile {
            Some((rows, cols)) => PredictOptions::new().block_rows(rows).col_tile(cols),
            None => PredictOptions::default(),
        };
        iter.model().predict_with(x, &opts)
    };
    let train_pred = predict(iter.model().centers());
    let train_mse = metrics::mse(&train_pred, targets);
    let val_error = val.map(|(features_s, metric)| {
        let pred = predict(features_s);
        match metric {
            ValMetric::Classification { labels, .. } => {
                metrics::classification_error(&pred, labels)
            }
            ValMetric::Mse { targets, .. } => metrics::mse(&pred, targets),
        }
    });
    EpochStats {
        epoch,
        train_mse,
        val_error,
        simulated_seconds: clock.elapsed(),
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

/// Predicts class labels with a trained model (argmax over outputs).
///
/// # Panics
///
/// Panics if `x.cols()` differs from the model's feature dimension.
pub fn predict_labels(model: &KernelModel, x: &Matrix) -> Vec<usize> {
    let pred = model.predict_with(x, &PredictOptions::default());
    (0..pred.rows())
        .map(|i| {
            ep2_linalg::ops::argmax(pred.row(i))
                .expect("non-empty row")
                .0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_data::catalog;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 4.0,
            epochs: 5,
            subsample_size: Some(150),
            early_stopping: None,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn trains_mnist_like_to_low_error() {
        let data = catalog::mnist_like(500, 3);
        let (train, test) = data.split_at(400);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, Some(&test)).unwrap();
        let err = out.report.final_val_error.unwrap();
        assert!(err < 0.12, "test error {err}");
        // Train MSE decreases monotonically (allow tiny noise).
        let mses: Vec<f64> = out.report.epochs.iter().map(|e| e.train_mse).collect();
        assert!(mses.last().unwrap() < &mses[0]);
        assert_eq!(out.report.precision, Precision::F64);
    }

    #[test]
    fn f32_policy_trains_to_comparable_error() {
        let data = catalog::mnist_like(500, 3);
        let (train, test) = data.split_at(400);
        let cfg = TrainConfig {
            precision: Precision::F32,
            ..quick_config()
        };
        let trainer = EigenPro2::new(cfg, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, Some(&test)).unwrap();
        let err = out.report.final_val_error.unwrap();
        assert!(err < 0.12, "f32 test error {err}");
        assert_eq!(out.report.precision, Precision::F32);
        // The returned model is f64 regardless of the training precision.
        let pred = out
            .model
            .predict_with(&test.features, &PredictOptions::default());
        assert_eq!(pred.shape(), (test.len(), train.n_classes));
    }

    #[test]
    fn mixed_policy_matches_f64_mse_closely() {
        let data = catalog::mnist_like(400, 11);
        let (train, _) = data.split_at(400);
        let run = |precision| {
            let cfg = TrainConfig {
                precision,
                ..quick_config()
            };
            EigenPro2::new(cfg, ResourceSpec::scaled_virtual_gpu())
                .fit(&train, None)
                .unwrap()
        };
        let out64 = run(Precision::F64);
        let mixed = run(Precision::Mixed);
        // Mixed plans at f64: identical analytic parameters...
        assert_eq!(mixed.report.params.eta, out64.report.params.eta);
        assert_eq!(
            mixed.report.params.adjusted_q,
            out64.report.params.adjusted_q
        );
        // ...and the f32 hot loop lands within 1e-3 of the f64 final MSE.
        assert!(
            (mixed.report.final_train_mse - out64.report.final_train_mse).abs() <= 1e-3,
            "mixed {} vs f64 {}",
            mixed.report.final_train_mse,
            out64.report.final_train_mse
        );
    }

    #[test]
    fn early_stopping_halts() {
        let data = catalog::mnist_like(400, 5);
        let (train, test) = data.split_at(300);
        let config = TrainConfig {
            epochs: 50,
            early_stopping: Some(EarlyStopping {
                patience: 1,
                min_delta: 0.0,
            }),
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, Some(&test)).unwrap();
        assert!(out.report.epochs.len() < 50);
        // Stop reason must be early stopping or the (unset) target.
        assert_eq!(out.report.stop_reason, StopReason::EarlyStopped);
    }

    #[test]
    fn target_mse_stops_training() {
        let data = catalog::mnist_like(300, 7);
        let (train, _) = data.split_at(300);
        let config = TrainConfig {
            epochs: 40,
            target_train_mse: Some(0.05),
            early_stopping: None,
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, None).unwrap();
        assert!(out.report.final_train_mse <= 0.05);
        if out.report.epochs.len() < 40 {
            assert_eq!(out.report.stop_reason, StopReason::TargetReached);
        }
    }

    #[test]
    fn overhead_is_small() {
        let data = catalog::mnist_like(600, 9);
        let (train, _) = data.split_at(600);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, None).unwrap();
        // Improved EigenPro: precond overhead ≪ SGD cost. At this scale
        // (s=150, n=600, d=784) it is well under 10%.
        assert!(
            out.report.overhead_fraction < 0.10,
            "overhead {}",
            out.report.overhead_fraction
        );
        assert!(out.report.simulated_seconds > 0.0);
        assert!(out.report.iterations > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = catalog::susy_like(300, 2);
        let (train, test) = data.split_at(250);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        let a = trainer.fit(&train, Some(&test)).unwrap();
        let b = trainer.fit(&train, Some(&test)).unwrap();
        assert_eq!(a.report.final_train_mse, b.report.final_train_mse);
        assert_eq!(a.model.weights().as_slice(), b.model.weights().as_slice());
    }

    #[test]
    fn divergence_backoff_recovers_from_bad_step_size() {
        let data = catalog::mnist_like(300, 13);
        let (train, _) = data.split_at(300);
        let config = TrainConfig {
            epochs: 20,
            // Deliberately unstable: far beyond the analytic step size.
            step_size: Some(1e5),
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, None).unwrap();
        assert!(out.report.eta_backoffs > 0, "safeguard should have fired");
        assert!(
            out.report.final_train_mse.is_finite(),
            "training must recover, not blow up"
        );
        let first = out.report.epochs.first().unwrap().train_mse;
        let last = out.report.final_train_mse;
        assert!(
            last < first,
            "mse should improve after backoff: {first} -> {last}"
        );
    }

    #[test]
    fn regression_fits_smooth_function() {
        use ep2_data::regression::{self, RegressionSpec};
        let ds = regression::generate(&RegressionSpec {
            noise: 0.02,
            ..RegressionSpec::quick("smooth", 500, 12, 21)
        });
        let (train, test) = ds.split_at(400);
        // Bandwidth/epochs tuned for the vendored deterministic RNG's data
        // draw (σ = 3 reaches R² ≈ 0.91 on this seed; narrower bandwidths
        // underfit the 12-dim latent manifold at n = 400).
        let config = TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 3.0,
            epochs: 30,
            subsample_size: Some(200),
            early_stopping: None,
            ..TrainConfig::default()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit_regression(&train, Some(&test)).unwrap();
        // Validation metric is MSE here; check R² on test directly.
        let pred = out
            .model
            .predict_with(&test.features, &PredictOptions::default());
        let r2 = regression::r2(&pred, &test.targets);
        assert!(r2 > 0.9, "R² = {r2}");
        // Val metric (mse) was tracked.
        assert!(out.report.final_val_error.unwrap() < 0.1);
    }

    #[test]
    fn regression_early_stopping_on_val_mse() {
        use ep2_data::regression::{self, RegressionSpec};
        let ds = regression::generate(&RegressionSpec::quick("s", 300, 10, 23));
        let (train, test) = ds.split_at(240);
        let config = TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 2.0,
            epochs: 60,
            subsample_size: Some(120),
            early_stopping: Some(EarlyStopping {
                patience: 2,
                min_delta: 0.0,
            }),
            ..TrainConfig::default()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit_regression(&train, Some(&test)).unwrap();
        assert!(out.report.epochs.len() < 60, "early stopping should fire");
    }

    #[test]
    fn target_val_error_stops_training() {
        let data = catalog::mnist_like(400, 15);
        let (train, test) = data.split_at(320);
        let config = TrainConfig {
            epochs: 50,
            early_stopping: None,
            // The MNIST clone reaches ≤ 10% test error quickly.
            target_val_error: Some(0.10),
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, Some(&test)).unwrap();
        assert!(out.report.final_val_error.unwrap() <= 0.10);
        assert!(out.report.epochs.len() < 50);
        assert_eq!(out.report.stop_reason, StopReason::TargetReached);
    }

    #[test]
    fn rejects_empty_training_set() {
        let data = catalog::mnist_like(10, 1);
        let (_, empty) = data.split_at(10);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        assert!(trainer.fit(&empty, None).is_err());
    }

    #[test]
    fn batch_override_exceeding_in_core_degrades_to_streamed() {
        let data = catalog::mnist_like(200, 1);
        let (train, _) = data.split_at(200);
        // Step 1 would size m to fit; an explicit full-batch override blows
        // the in-core ledger instead. Sized so the dataset residency fits
        // Step 1's f64 accounting ((d+l+1)·n·2 ≈ 318k slots) but the
        // full-batch override ((d+l+200)·n·2 ≈ 398k) does not — the
        // graceful-degradation loop must re-plan it as streamed (the
        // streamed static set l·n + d·m ≈ 318k still fits) rather than
        // abort the run.
        let tiny = ResourceSpec::new("tiny-mem", 1e12, 350_000.0, 1e12, 0.0);
        let config = TrainConfig {
            batch_size: Some(200),
            epochs: 1,
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, tiny);
        let out = trainer
            .fit(&train, None)
            .expect("degrades instead of aborting");
        assert_eq!(out.report.residency, ResidencyMode::Streamed);
        assert!(
            out.report
                .degradations
                .iter()
                .any(|d| d.contains("re-planned to streamed")),
            "degradation log missing the re-plan: {:?}",
            out.report.degradations
        );
        assert_eq!(out.report.params.m, 200, "override still honored");
    }

    #[test]
    fn impossible_budget_is_still_rejected() {
        let data = catalog::mnist_like(200, 1);
        let (train, _) = data.split_at(200);
        // Below even the streamed static set (l·n + d·m ≈ 318k f64 slots at
        // the full-batch override) there is no degradation path left: the
        // run must fail with a DeviceMemory error naming both dead ends.
        let hopeless = ResourceSpec::new("hopeless-mem", 1e12, 300_000.0, 1e12, 0.0);
        let config = TrainConfig {
            batch_size: Some(200),
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, hopeless);
        match trainer.fit(&train, None) {
            Err(CoreError::DeviceMemory { .. }) => {}
            other => panic!("expected DeviceMemory error, got {other:?}"),
        }
    }

    #[test]
    fn f32_fits_in_core_where_f64_degrades_to_streamed() {
        // A device sized so the f32 residency fits but the f64 residency
        // (2x the slots) does not: the precision knob keeps the problem
        // in-core — Step 1's m^max_G doubling in action — while the f64
        // run survives only by degrading to the streamed residency.
        let data = catalog::susy_like(200, 1);
        let (train, _) = data.split_at(200);
        // Residency = (d + l + m) · n slots · slot_factor with d=18, l=2.
        // Pick S_G between the f32 and f64 requirements for m = 64.
        let m = 64;
        let f32_slots = ((18 + 2 + m) * 200) as f64;
        let spec = ResourceSpec::new("half-card", 1e12, f32_slots * 1.5, 1e12, 0.0);
        let config = |precision| TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 4.0,
            epochs: 1,
            subsample_size: Some(80),
            batch_size: Some(m),
            early_stopping: None,
            precision,
            ..TrainConfig::default()
        };
        let f64_run = EigenPro2::new(config(Precision::F64), spec.clone())
            .fit(&train, None)
            .expect("f64 degrades to streamed instead of aborting");
        assert_eq!(f64_run.report.residency, ResidencyMode::Streamed);
        assert!(
            f64_run
                .report
                .degradations
                .iter()
                .any(|d| d.contains("re-planned to streamed")),
            "degradation log missing the re-plan: {:?}",
            f64_run.report.degradations
        );
        let f32_run = EigenPro2::new(config(Precision::F32), spec)
            .fit(&train, None)
            .expect("f32 residency fits in-core");
        assert_eq!(f32_run.report.residency, ResidencyMode::InCore);
        assert!(f32_run.report.degradations.is_empty());
    }

    #[test]
    fn auto_streams_when_dataset_exceeds_device_memory() {
        // (d + l + 1)·n·2 = 21·400·2 = 16.8k slots ≫ S_G = 4k: the in-core
        // plan has no solution, so the trainer must pick Streamed on its
        // own and still train end to end within the ledger.
        let data = catalog::susy_like(400, 3);
        let (train, _) = data.split_at(400);
        let spec = ResourceSpec::new("starved", 2e8, 4_000.0, 1e12, 0.0);
        let config = TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 4.0,
            epochs: 2,
            subsample_size: Some(60),
            early_stopping: None,
            ..TrainConfig::default()
        };
        let out = EigenPro2::new(config, spec.clone())
            .fit(&train, None)
            .unwrap();
        assert_eq!(out.report.residency, ResidencyMode::Streamed);
        assert!(
            out.report.peak_slots <= out.report.budget_slots,
            "peak {} > S_G {}",
            out.report.peak_slots,
            out.report.budget_slots
        );
        assert_eq!(out.report.budget_slots, spec.memory_floats);
        assert!(out.report.final_train_mse.is_finite());
        // The in-core memory batch is reported as the "does not fit" 0.
        assert_eq!(out.report.params.memory_batch, 0);
    }

    #[test]
    fn forced_streamed_matches_in_core_closely() {
        let data = catalog::mnist_like(300, 5);
        let (train, _) = data.split_at(300);
        let run = |residency, stream_tile| {
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: Some(32),
                residency,
                stream_tile,
                // Pin the PR 3 single-producer double-buffered pipeline:
                // the residency comparison below is a property of that
                // ring shape, and the auto-planned producer count (hence
                // ring depth) varies with the thread budget.
                stream_producers: Some(1),
                ..quick_config()
            };
            EigenPro2::new(cfg, ResourceSpec::scaled_virtual_gpu())
                .fit(&train, None)
                .unwrap()
        };
        let incore = run(None, None);
        // Tile width straddling nothing in particular — just ≪ n, so the
        // ring + batch-block residency stays below the in-core footprint.
        let streamed = run(Some(ResidencyMode::Streamed), Some(64));
        assert_eq!(incore.report.residency, ResidencyMode::InCore);
        assert_eq!(streamed.report.residency, ResidencyMode::Streamed);
        // Same analytic plan, same batch schedule; the only numeric
        // difference is the column order of the prediction accumulation.
        assert_eq!(incore.report.params.m, streamed.report.params.m);
        assert!(
            (incore.report.final_train_mse - streamed.report.final_train_mse).abs() < 1e-8,
            "in-core {} vs streamed {}",
            incore.report.final_train_mse,
            streamed.report.final_train_mse
        );
        // Streaming holds strictly less resident memory.
        assert!(streamed.report.peak_slots < incore.report.peak_slots);
    }

    #[test]
    fn forced_in_core_on_oversized_dataset_errors_cleanly() {
        let data = catalog::susy_like(400, 3);
        let (train, _) = data.split_at(400);
        let spec = ResourceSpec::new("starved", 2e8, 4_000.0, 1e12, 0.0);
        let config = TrainConfig {
            residency: Some(ResidencyMode::InCore),
            ..quick_config()
        };
        match EigenPro2::new(config, spec).fit(&train, None) {
            Err(CoreError::DeviceMemory { message }) => {
                assert!(message.contains("out-of-core"), "message: {message}");
            }
            other => panic!("expected DeviceMemory error, got {other:?}"),
        }
    }

    #[test]
    fn stream_tile_override_respected_and_checked() {
        let data = catalog::susy_like(300, 9);
        let (train, _) = data.split_at(300);
        let ok = TrainConfig {
            epochs: 1,
            residency: Some(ResidencyMode::Streamed),
            stream_tile: Some(50),
            ..quick_config()
        };
        let out = EigenPro2::new(ok, ResourceSpec::scaled_virtual_gpu())
            .fit(&train, None)
            .unwrap();
        assert_eq!(out.report.residency, ResidencyMode::Streamed);
        // A tile too wide for a tiny budget is rejected up front.
        let spec = ResourceSpec::new("starved", 2e8, 4_000.0, 1e12, 0.0);
        let bad = TrainConfig {
            residency: Some(ResidencyMode::Streamed),
            stream_tile: Some(300),
            ..quick_config()
        };
        match EigenPro2::new(bad, spec).fit(&train, None) {
            Err(CoreError::DeviceMemory { message }) => {
                assert!(message.contains("stream_tile"), "message: {message}");
            }
            other => panic!("expected DeviceMemory error, got {other:?}"),
        }
    }

    #[test]
    fn predict_labels_argmax() {
        let data = catalog::mnist_like(200, 11);
        let (train, _) = data.split_at(200);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, None).unwrap();
        let labels = predict_labels(&out.model, &train.features);
        assert_eq!(labels.len(), 200);
        let err = labels
            .iter()
            .zip(&train.labels)
            .filter(|(a, b)| a != b)
            .count() as f64
            / 200.0;
        assert!(err < 0.1, "train error {err}");
    }
}
