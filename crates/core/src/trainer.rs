//! The user-facing "worry-free" trainer: Steps 1–3 end to end, with early
//! stopping and dual (simulated-GPU + wall-clock) timing.

use std::sync::Arc;
use std::time::Instant;

use ep2_data::{metrics, Dataset};
use ep2_device::{DeviceMode, ResourceSpec, SimClock};
use ep2_kernels::KernelKind;
use ep2_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::autotune::{self, AutoParams};
use crate::iteration::EigenProIteration;
use crate::model::KernelModel;
use crate::CoreError;

/// Boxed validation-metric closure: maps a model to its validation score
/// (classification error or MSE, depending on the task).
type ValEval = Box<dyn Fn(&KernelModel) -> f64>;

/// Early-stopping policy (the interpolation framework's regulariser —
/// Yao–Rosasco–Caponnetto 2007, as adopted by the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopping {
    /// Stop after this many epochs without validation improvement.
    pub patience: usize,
    /// Minimum decrease in validation error that counts as improvement.
    pub min_delta: f64,
}

impl Default for EarlyStopping {
    fn default() -> Self {
        EarlyStopping {
            patience: 2,
            min_delta: 1e-4,
        }
    }
}

/// Training configuration. Only the kernel and its bandwidth are required
/// choices (the paper's selling point); everything else has analytic or
/// paper-rule defaults.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Kernel family.
    pub kernel: KernelKind,
    /// Kernel bandwidth σ.
    pub bandwidth: f64,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Fixed coordinate block size `s`; `None` = paper rule
    /// ([`autotune::default_subsample_size`]).
    pub subsample_size: Option<usize>,
    /// Spectral truncation `q`; `None` = Eq. (7) + Appendix-B adjustment.
    pub q: Option<usize>,
    /// Mini-batch size; `None` = `m^max_G` from Step 1.
    pub batch_size: Option<usize>,
    /// Step size; `None` = analytic `η`.
    pub step_size: Option<f64>,
    /// Early stopping on validation error; `None` disables it.
    pub early_stopping: Option<EarlyStopping>,
    /// Stop once training MSE falls below this value (the Figure-2
    /// convergence criterion); `None` disables it.
    pub target_train_mse: Option<f64>,
    /// Stop once validation classification error falls to this value or
    /// below (the Table-3 "match the SVM's accuracy" protocol); `None`
    /// disables it. Requires a validation set to have any effect.
    pub target_val_error: Option<f64>,
    /// Device-timing idealisation for the simulated clock.
    pub device_mode: DeviceMode,
    /// RNG seed (subsampling + batch shuffling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 5.0,
            epochs: 10,
            subsample_size: None,
            q: None,
            batch_size: None,
            step_size: None,
            early_stopping: Some(EarlyStopping::default()),
            target_train_mse: None,
            target_val_error: None,
            device_mode: DeviceMode::ActualGpu,
            seed: 0,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Training MSE at epoch end.
    pub train_mse: f64,
    /// Validation classification error at epoch end (when a validation set
    /// was supplied).
    pub val_error: Option<f64>,
    /// Simulated device seconds elapsed since training started.
    pub simulated_seconds: f64,
    /// Wall-clock seconds elapsed since training started.
    pub wall_seconds: f64,
}

/// Full training report.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// The analytically selected parameters (Table 4's columns).
    pub params: AutoParams,
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Final training MSE.
    pub final_train_mse: f64,
    /// Final validation classification error.
    pub final_val_error: Option<f64>,
    /// Total simulated device seconds.
    pub simulated_seconds: f64,
    /// Total wall-clock seconds.
    pub wall_seconds: f64,
    /// Total iterations executed.
    pub iterations: u64,
    /// Preconditioner overhead fraction (Table 1's measured counterpart).
    pub overhead_fraction: f64,
    /// Why training stopped.
    pub stop_reason: StopReason,
    /// Times the step size was halved by the divergence safeguard (0 when
    /// the analytic η was stable, the common case).
    pub eta_backoffs: u32,
}

/// Why the training loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All configured epochs ran.
    EpochsExhausted,
    /// Validation error stopped improving.
    EarlyStopped,
    /// The training-MSE target was reached.
    TargetReached,
}

/// Outcome of [`EigenPro2::fit`]: the trained model plus its report.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The trained kernel machine.
    pub model: KernelModel,
    /// Metrics, parameters and timings.
    pub report: TrainReport,
}

/// The EigenPro 2.0 trainer.
#[derive(Debug, Clone)]
pub struct EigenPro2 {
    config: TrainConfig,
    device: ResourceSpec,
}

impl EigenPro2 {
    /// Creates a trainer for the given configuration and device.
    pub fn new(config: TrainConfig, device: ResourceSpec) -> Self {
        EigenPro2 { config, device }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains on `train`, optionally tracking validation classification
    /// error on `val`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for inconsistent configurations or eigensolver
    /// failures.
    pub fn fit(&self, train: &Dataset, val: Option<&Dataset>) -> Result<TrainOutcome, CoreError> {
        let val_eval: Option<ValEval> = val.map(|v| {
            let features = v.features.clone();
            let labels = v.labels.clone();
            Box::new(move |model: &KernelModel| {
                let pred = model.predict(&features);
                metrics::classification_error(&pred, &labels)
            }) as ValEval
        });
        self.fit_impl(&train.features, &train.targets, val_eval)
    }

    /// Trains a regression model on continuous targets; the validation
    /// metric (driving early stopping and `target_val_error`) is the
    /// validation MSE.
    ///
    /// Kernel interpolation is loss-agnostic (Remark 2.1), so this is the
    /// same Algorithm-1 training loop as classification — only the
    /// validation metric differs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for inconsistent configurations or eigensolver
    /// failures.
    pub fn fit_regression(
        &self,
        train: &ep2_data::RegressionDataset,
        val: Option<&ep2_data::RegressionDataset>,
    ) -> Result<TrainOutcome, CoreError> {
        let val_eval: Option<ValEval> = val.map(|v| {
            let features = v.features.clone();
            let targets = v.targets.clone();
            Box::new(move |model: &KernelModel| {
                let pred = model.predict(&features);
                metrics::mse(&pred, &targets)
            }) as ValEval
        });
        self.fit_impl(&train.features, &train.targets, val_eval)
    }

    fn fit_impl(
        &self,
        features: &Matrix,
        targets: &Matrix,
        val_eval: Option<ValEval>,
    ) -> Result<TrainOutcome, CoreError> {
        let cfg = &self.config;
        if features.rows() == 0 {
            return Err(CoreError::InvalidConfig {
                message: "training set is empty".to_string(),
            });
        }
        if cfg.epochs == 0 {
            return Err(CoreError::InvalidConfig {
                message: "epochs must be positive".to_string(),
            });
        }
        let kernel: Arc<dyn ep2_kernels::Kernel> =
            cfg.kernel.with_bandwidth(cfg.bandwidth).into();

        // Steps 1–2 (+ Step-3 parameters).
        let n_outputs = targets.cols();
        let (params, precond) = autotune::plan(
            &kernel,
            features,
            n_outputs,
            &self.device,
            cfg.subsample_size,
            cfg.q,
            cfg.batch_size,
            cfg.seed,
        )?;
        let m = params.m;
        let eta = cfg.step_size.unwrap_or(params.eta);

        // Enforce the Step-1 memory accounting on the device ledger: the
        // resident features (d·n) + weights (l·n) + the mini-batch kernel
        // block (m·n) must fit within S_G.
        let n = features.rows();
        let ledger = ep2_device::MemoryLedger::new(self.device.memory_floats);
        let _residency = ledger
            .alloc(((features.cols() + n_outputs + m) * n) as f64)
            .map_err(|e| CoreError::DeviceMemory {
                message: e.to_string(),
            })?;
        let model = KernelModel::zeros(kernel, features.clone(), n_outputs);
        let mut iter = EigenProIteration::new(model, precond, eta);
        let mut clock = SimClock::new(self.device.clone(), cfg.device_mode);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x9E3779B9));
        let start = Instant::now();

        let mut epochs_out = Vec::with_capacity(cfg.epochs);
        let mut best_val = f64::INFINITY;
        let mut since_best = 0usize;
        let mut stop_reason = StopReason::EpochsExhausted;
        let mut indices: Vec<usize> = (0..n).collect();
        let mut prev_mse = f64::INFINITY;
        let mut eta_backoffs = 0_u32;

        'outer: for epoch in 1..=cfg.epochs {
            indices.shuffle(&mut rng);
            for chunk in indices.chunks(m) {
                let ops = iter.step(chunk, targets);
                clock.record_launch(ops);
            }
            let stats = epoch_stats(epoch, &iter, features, targets, val_eval.as_deref(), &clock, start);
            // Divergence safeguard: the analytic η relies on estimated
            // spectra; if the training MSE regresses, the estimate was on
            // the unstable side — halve the step and continue. At paper
            // scale (s = 1.2e4) this never fires; it protects small-s runs.
            // A catastrophic blow-up (MSE far beyond the one-hot target
            // scale) additionally restarts the weights from zero, since
            // exponentially overgrown weights cannot be contracted back
            // within any reasonable epoch budget.
            if stats.train_mse > prev_mse * 1.2 && eta_backoffs < 16 {
                iter.set_eta(iter.eta() * 0.5);
                eta_backoffs += 1;
                if !stats.train_mse.is_finite() || stats.train_mse > 100.0 {
                    iter.model_mut().weights_mut().as_mut_slice().fill(0.0);
                }
            }
            prev_mse = stats.train_mse.min(prev_mse);
            let reached_target = cfg
                .target_train_mse
                .map(|t| stats.train_mse <= t)
                .unwrap_or(false)
                || matches!(
                    (cfg.target_val_error, stats.val_error),
                    (Some(t), Some(ve)) if ve <= t
                );
            if let (Some(es), Some(ve)) = (cfg.early_stopping, stats.val_error) {
                if ve < best_val - es.min_delta {
                    best_val = ve;
                    since_best = 0;
                } else {
                    since_best += 1;
                }
                if since_best >= es.patience {
                    epochs_out.push(stats);
                    stop_reason = StopReason::EarlyStopped;
                    break 'outer;
                }
            }
            epochs_out.push(stats);
            if reached_target {
                stop_reason = StopReason::TargetReached;
                break 'outer;
            }
        }

        let last = *epochs_out.last().expect("at least one epoch ran");
        let report = TrainReport {
            params,
            final_train_mse: last.train_mse,
            final_val_error: last.val_error,
            simulated_seconds: clock.elapsed(),
            wall_seconds: start.elapsed().as_secs_f64(),
            iterations: iter.counter().iterations,
            overhead_fraction: iter.counter().overhead_fraction(),
            epochs: epochs_out,
            stop_reason,
            eta_backoffs,
        };
        Ok(TrainOutcome {
            model: iter.into_model(),
            report,
        })
    }

}

fn epoch_stats(
    epoch: usize,
    iter: &EigenProIteration,
    features: &Matrix,
    targets: &Matrix,
    val_eval: Option<&dyn Fn(&KernelModel) -> f64>,
    clock: &SimClock,
    start: Instant,
) -> EpochStats {
    let train_pred = iter.model().predict(features);
    let train_mse = metrics::mse(&train_pred, targets);
    let val_error = val_eval.map(|f| f(iter.model()));
    EpochStats {
        epoch,
        train_mse,
        val_error,
        simulated_seconds: clock.elapsed(),
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

/// Predicts class labels with a trained model (argmax over outputs).
///
/// # Panics
///
/// Panics if `x.cols()` differs from the model's feature dimension.
pub fn predict_labels(model: &KernelModel, x: &Matrix) -> Vec<usize> {
    let pred = model.predict(x);
    (0..pred.rows())
        .map(|i| ep2_linalg::ops::argmax(pred.row(i)).expect("non-empty row").0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_data::catalog;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 4.0,
            epochs: 5,
            subsample_size: Some(150),
            early_stopping: None,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn trains_mnist_like_to_low_error() {
        let data = catalog::mnist_like(500, 3);
        let (train, test) = data.split_at(400);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, Some(&test)).unwrap();
        let err = out.report.final_val_error.unwrap();
        assert!(err < 0.12, "test error {err}");
        // Train MSE decreases monotonically (allow tiny noise).
        let mses: Vec<f64> = out.report.epochs.iter().map(|e| e.train_mse).collect();
        assert!(mses.last().unwrap() < &mses[0]);
    }

    #[test]
    fn early_stopping_halts() {
        let data = catalog::mnist_like(400, 5);
        let (train, test) = data.split_at(300);
        let config = TrainConfig {
            epochs: 50,
            early_stopping: Some(EarlyStopping {
                patience: 1,
                min_delta: 0.0,
            }),
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, Some(&test)).unwrap();
        assert!(out.report.epochs.len() < 50);
        // Stop reason must be early stopping or the (unset) target.
        assert_eq!(out.report.stop_reason, StopReason::EarlyStopped);
    }

    #[test]
    fn target_mse_stops_training() {
        let data = catalog::mnist_like(300, 7);
        let (train, _) = data.split_at(300);
        let config = TrainConfig {
            epochs: 40,
            target_train_mse: Some(0.05),
            early_stopping: None,
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, None).unwrap();
        assert!(out.report.final_train_mse <= 0.05);
        if out.report.epochs.len() < 40 {
            assert_eq!(out.report.stop_reason, StopReason::TargetReached);
        }
    }

    #[test]
    fn overhead_is_small() {
        let data = catalog::mnist_like(600, 9);
        let (train, _) = data.split_at(600);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, None).unwrap();
        // Improved EigenPro: precond overhead ≪ SGD cost. At this scale
        // (s=150, n=600, d=784) it is well under 10%.
        assert!(
            out.report.overhead_fraction < 0.10,
            "overhead {}",
            out.report.overhead_fraction
        );
        assert!(out.report.simulated_seconds > 0.0);
        assert!(out.report.iterations > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = catalog::susy_like(300, 2);
        let (train, test) = data.split_at(250);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        let a = trainer.fit(&train, Some(&test)).unwrap();
        let b = trainer.fit(&train, Some(&test)).unwrap();
        assert_eq!(a.report.final_train_mse, b.report.final_train_mse);
        assert_eq!(
            a.model.weights().as_slice(),
            b.model.weights().as_slice()
        );
    }

    #[test]
    fn divergence_backoff_recovers_from_bad_step_size() {
        let data = catalog::mnist_like(300, 13);
        let (train, _) = data.split_at(300);
        let config = TrainConfig {
            epochs: 20,
            // Deliberately unstable: far beyond the analytic step size.
            step_size: Some(1e5),
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, None).unwrap();
        assert!(out.report.eta_backoffs > 0, "safeguard should have fired");
        assert!(
            out.report.final_train_mse.is_finite(),
            "training must recover, not blow up"
        );
        let first = out.report.epochs.first().unwrap().train_mse;
        let last = out.report.final_train_mse;
        assert!(last < first, "mse should improve after backoff: {first} -> {last}");
    }

    #[test]
    fn regression_fits_smooth_function() {
        use ep2_data::regression::{self, RegressionSpec};
        let ds = regression::generate(&RegressionSpec {
            noise: 0.02,
            ..RegressionSpec::quick("smooth", 500, 12, 21)
        });
        let (train, test) = ds.split_at(400);
        let config = TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 2.0,
            epochs: 15,
            subsample_size: Some(200),
            early_stopping: None,
            ..TrainConfig::default()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit_regression(&train, Some(&test)).unwrap();
        // Validation metric is MSE here; check R² on test directly.
        let pred = out.model.predict(&test.features);
        let r2 = regression::r2(&pred, &test.targets);
        assert!(r2 > 0.9, "R² = {r2}");
        // Val metric (mse) was tracked.
        assert!(out.report.final_val_error.unwrap() < 0.1);
    }

    #[test]
    fn regression_early_stopping_on_val_mse() {
        use ep2_data::regression::{self, RegressionSpec};
        let ds = regression::generate(&RegressionSpec::quick("s", 300, 10, 23));
        let (train, test) = ds.split_at(240);
        let config = TrainConfig {
            kernel: KernelKind::Gaussian,
            bandwidth: 2.0,
            epochs: 60,
            subsample_size: Some(120),
            early_stopping: Some(EarlyStopping {
                patience: 2,
                min_delta: 0.0,
            }),
            ..TrainConfig::default()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit_regression(&train, Some(&test)).unwrap();
        assert!(out.report.epochs.len() < 60, "early stopping should fire");
    }

    #[test]
    fn target_val_error_stops_training() {
        let data = catalog::mnist_like(400, 15);
        let (train, test) = data.split_at(320);
        let config = TrainConfig {
            epochs: 50,
            early_stopping: None,
            // The MNIST clone reaches ≤ 10% test error quickly.
            target_val_error: Some(0.10),
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, Some(&test)).unwrap();
        assert!(out.report.final_val_error.unwrap() <= 0.10);
        assert!(out.report.epochs.len() < 50);
        assert_eq!(out.report.stop_reason, StopReason::TargetReached);
    }

    #[test]
    fn rejects_empty_training_set() {
        let data = catalog::mnist_like(10, 1);
        let (_, empty) = data.split_at(10);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        assert!(trainer.fit(&empty, None).is_err());
    }

    #[test]
    fn rejects_batch_override_exceeding_device_memory() {
        let data = catalog::mnist_like(200, 1);
        let (train, _) = data.split_at(200);
        // Step 1 would size m to fit; an explicit full-batch override must
        // be caught by the memory ledger instead.
        let tiny = ResourceSpec::new("tiny-mem", 1e12, 170_000.0, 1e12, 0.0);
        let config = TrainConfig {
            batch_size: Some(200),
            ..quick_config()
        };
        let trainer = EigenPro2::new(config, tiny);
        match trainer.fit(&train, None) {
            Err(CoreError::DeviceMemory { .. }) => {}
            other => panic!("expected DeviceMemory error, got {other:?}"),
        }
    }

    #[test]
    fn predict_labels_argmax() {
        let data = catalog::mnist_like(200, 11);
        let (train, _) = data.split_at(200);
        let trainer = EigenPro2::new(quick_config(), ResourceSpec::scaled_virtual_gpu());
        let out = trainer.fit(&train, None).unwrap();
        let labels = predict_labels(&out.model, &train.features);
        assert_eq!(labels.len(), 200);
        let err = labels
            .iter()
            .zip(&train.labels)
            .filter(|(a, b)| a != b)
            .count() as f64
            / 200.0;
        assert!(err < 0.1, "train error {err}");
    }
}
