//! Data-parallel EigenPro 2.0 across a simulated device cluster — the
//! paper's Section-6 future-work direction, built on
//! [`ep2_device::ClusterSpec`].
//!
//! Decomposition: the `n` kernel centers are sharded evenly across `g`
//! devices. Each iteration,
//!
//! 1. the mini-batch features are broadcast (`m·d` slots),
//! 2. every device computes its *partial* predictions
//!    `f_partial = K[batch, shard] α[shard]` (`(n/g)·m·(d+l)` ops),
//! 3. the partials are ring-all-reduced (`m·l` slots) to form `f`,
//! 4. each device updates the batch coordinates it owns (no communication:
//!    a batch index lives on exactly one shard), and
//! 5. the device owning the Nyström block applies the preconditioner
//!    correction and broadcasts the `s·l` fixed-block delta.
//!
//! The arithmetic is *identical* to single-device EigenPro 2.0 (verified in
//! tests to fp-reordering tolerance), so all of the paper's analysis — and
//! the adaptive kernel construction, now targeting the aggregate capacity
//! `g·C_G` — carries over. What changes is the clock: compute shrinks by
//! `g`, communication grows with `g`, and the crossover defines the useful
//! cluster size.

use ep2_device::{ClusterSpec, DeviceMode};
use ep2_linalg::{blas, Matrix};

use crate::counter::FlopCounter;
use crate::model::KernelModel;
use crate::precond::Preconditioner;

/// One sharded training iteration driver.
///
/// Weights live in a single global matrix (the shards' weight slices are
/// disjoint row ranges), so convergence behaviour and final models are
/// directly comparable with [`crate::iteration::EigenProIteration`].
#[derive(Debug)]
pub struct DistributedEigenProIteration {
    model: KernelModel,
    precond: Option<Preconditioner>,
    cluster: ClusterSpec,
    mode: DeviceMode,
    eta: f64,
    shard_bounds: Vec<usize>,
    counter: FlopCounter,
    simulated_seconds: f64,
}

impl DistributedEigenProIteration {
    /// Creates the driver, sharding the model's centers evenly across the
    /// cluster's devices.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn new(
        model: KernelModel,
        precond: Option<Preconditioner>,
        cluster: ClusterSpec,
        mode: DeviceMode,
        eta: f64,
    ) -> Self {
        assert!(eta > 0.0 && eta.is_finite(), "step size must be positive");
        let n = model.n_centers();
        let g = cluster.n_devices;
        let per = n.div_ceil(g);
        let mut shard_bounds = Vec::with_capacity(g + 1);
        for i in 0..=g {
            shard_bounds.push((i * per).min(n));
        }
        DistributedEigenProIteration {
            model,
            precond,
            cluster,
            mode,
            eta,
            shard_bounds,
            counter: FlopCounter::new(),
            simulated_seconds: 0.0,
        }
    }

    /// The model being trained.
    pub fn model(&self) -> &KernelModel {
        &self.model
    }

    /// Consumes the driver, returning the trained model.
    pub fn into_model(self) -> KernelModel {
        self.model
    }

    /// Simulated cluster seconds accumulated so far.
    pub fn simulated_seconds(&self) -> f64 {
        self.simulated_seconds
    }

    /// Operation counter (per-device ops are `total / g` under even shards).
    pub fn counter(&self) -> &FlopCounter {
        &self.counter
    }

    /// Shard boundary indices (`g + 1` entries; shard `i` owns rows
    /// `bounds[i]..bounds[i+1]`).
    pub fn shard_bounds(&self) -> &[usize] {
        &self.shard_bounds
    }

    /// Executes one sharded Algorithm-1 iteration; returns the simulated
    /// cluster seconds this iteration took.
    ///
    /// # Panics
    ///
    /// Panics if any batch index is out of range or `y` has wrong shape.
    pub fn step(&mut self, batch_indices: &[usize], y: &Matrix) -> f64 {
        let n = self.model.n_centers();
        let d = self.model.dim();
        let l = self.model.n_outputs();
        assert_eq!(y.rows(), n, "targets must cover all centers");
        assert_eq!(y.cols(), l, "target width mismatch");
        let m = batch_indices.len();
        assert!(m > 0, "empty mini-batch");
        let g = self.cluster.n_devices;

        let batch_x = self.model.centers().select_rows(batch_indices);

        // Per-shard partial predictions, summed (the all-reduce).
        let mut f = Matrix::zeros(m, l);
        let mut shard_blocks: Vec<Matrix> = Vec::with_capacity(g);
        for s in 0..g {
            let (lo, hi) = (self.shard_bounds[s], self.shard_bounds[s + 1]);
            if lo == hi {
                shard_blocks.push(Matrix::zeros(m, 0));
                continue;
            }
            let shard_centers = self.model.centers().submatrix(lo, 0, hi - lo, d);
            let k_block = ep2_kernels::matrix::kernel_cross(
                self.model.kernel().as_ref(),
                &batch_x,
                &shard_centers,
            );
            let shard_weights = self.model.weights().submatrix(lo, 0, hi - lo, l);
            blas::gemm(1.0, &k_block, &shard_weights, 1.0, &mut f);
            shard_blocks.push(k_block);
        }

        // Residual and batch-coordinate updates (local to each shard).
        let mut resid = f;
        for (bi, &idx) in batch_indices.iter().enumerate() {
            for (c, v) in resid.row_mut(bi).iter_mut().enumerate() {
                *v -= y[(idx, c)];
            }
        }
        let scale = self.eta * 2.0 / m as f64;
        for (bi, &idx) in batch_indices.iter().enumerate() {
            let r = resid.row(bi).to_vec();
            let w_row = self.model.weights_mut().row_mut(idx);
            for (w, rv) in w_row.iter_mut().zip(r) {
                *w -= scale * rv;
            }
        }

        let sgd_ops = (n * m * (d + l)) as f64;
        let mut precond_ops = 0.0;
        let mut precond_comm = 0.0;
        if let Some(precond) = &self.precond {
            let s_len = precond.s();
            // Gather Φ columns from whichever shard owns each subsample
            // center.
            let mut phi = Matrix::zeros(m, s_len);
            for (j, &global) in precond.subsample_indices().iter().enumerate() {
                let shard = self
                    .shard_bounds
                    .partition_point(|&b| b <= global)
                    .saturating_sub(1);
                let local = global - self.shard_bounds[shard];
                let block = &shard_blocks[shard];
                for bi in 0..m {
                    phi[(bi, j)] = block[(bi, local)];
                }
            }
            let correction = precond.apply_correction(&phi, &resid);
            precond_ops = precond.correction_ops(m, l);
            precond_comm = (s_len * l) as f64;
            for (j, &idx) in precond.subsample_indices().iter().enumerate() {
                let c_row = correction.row(j);
                let w_row = self.model.weights_mut().row_mut(idx);
                for (w, &cv) in w_row.iter_mut().zip(c_row) {
                    *w += scale * cv;
                }
            }
        }

        self.counter.record(sgd_ops, precond_ops);

        // Cluster clock: compute on n/g-center shards + batch broadcast +
        // prediction all-reduce + fixed-block broadcast.
        let mut t = self.cluster.iteration_time(self.mode, n, m, d, l);
        if precond_ops > 0.0 {
            t += ep2_device::timing::iteration_time(&self.cluster.device, self.mode, precond_ops)
                + self.cluster.broadcast_time(precond_comm);
        }
        self.simulated_seconds += t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iteration::EigenProIteration;
    use ep2_kernels::{GaussianKernel, Kernel};
    use std::sync::Arc;

    fn toy(n: usize) -> (Matrix, Matrix, Arc<dyn Kernel>) {
        let mut state = 5_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x = Matrix::from_fn(n, 3, |i, _| 1.5 * ((i % 3) as f64) + 0.2 * next());
        let y = Matrix::from_fn(n, 2, |i, j| if i % 2 == j { 1.0 } else { 0.0 });
        (x, y, Arc::new(GaussianKernel::new(1.0)))
    }

    #[test]
    fn sharded_step_matches_single_device() {
        let (x, y, k) = toy(60);
        let p = Preconditioner::fit_damped(&k, &x, 30, 4, 0.95, 1).unwrap();
        let eta = 5.0;
        let batch: Vec<usize> = (0..20).map(|i| i * 3).collect();

        let mut single = EigenProIteration::new(
            KernelModel::zeros(k.clone(), x.clone(), 2),
            Some(p.clone()),
            eta,
        );
        single.step(&batch, &y);

        for g in [1usize, 2, 4, 7] {
            let cluster = ClusterSpec::titan_xp_bank(g);
            let mut dist = DistributedEigenProIteration::new(
                KernelModel::zeros(k.clone(), x.clone(), 2),
                Some(p.clone()),
                cluster,
                DeviceMode::ActualGpu,
                eta,
            );
            dist.step(&batch, &y);
            let a = single.model().weights().as_slice();
            let b = dist.model().weights().as_slice();
            let max_diff = a
                .iter()
                .zip(b)
                .map(|(u, v)| (u - v).abs())
                .fold(0.0_f64, f64::max);
            assert!(max_diff < 1e-10, "g = {g}: max weight diff {max_diff}");
        }
    }

    #[test]
    fn more_devices_faster_iterations_at_large_batch() {
        let (x, y, k) = toy(120);
        let batch: Vec<usize> = (0..120).collect();
        let time_for = |g: usize| {
            // Free, zero-latency link isolates the compute scaling (at toy
            // n the real link cost would dominate nanosecond compute).
            let cluster = ClusterSpec::new(ep2_device::ResourceSpec::titan_xp(), g, 1e30, 0.0);
            let mut it = DistributedEigenProIteration::new(
                KernelModel::zeros(k.clone(), x.clone(), 2),
                None,
                cluster,
                DeviceMode::Sequential, // expose raw compute scaling
                1.0,
            );
            it.step(&batch, &y)
        };
        let t1 = time_for(1);
        let t4 = time_for(4);
        assert!(t4 < t1, "t4 = {t4}, t1 = {t1}");
    }

    #[test]
    fn communication_charged_for_multi_device() {
        let (x, y, k) = toy(40);
        let batch: Vec<usize> = (0..40).collect();
        // Ideal-parallel mode: compute time is constant per launch, so the
        // difference between g = 1 and g = 2 is pure communication.
        let run = |g: usize| {
            let mut it = DistributedEigenProIteration::new(
                KernelModel::zeros(k.clone(), x.clone(), 2),
                None,
                ClusterSpec::titan_xp_bank(g),
                DeviceMode::IdealParallel,
                1.0,
            );
            it.step(&batch, &y)
        };
        assert!(run(2) > run(1));
    }

    #[test]
    fn shard_bounds_cover_all_centers() {
        let (x, _, k) = toy(53);
        let it = DistributedEigenProIteration::new(
            KernelModel::zeros(k, x, 2),
            None,
            ClusterSpec::titan_xp_bank(4),
            DeviceMode::ActualGpu,
            1.0,
        );
        let b = it.shard_bounds();
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 53);
        for w in b.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
