//! Critical batch sizes, Eq.-(7) selection of `q`, convergence rates and
//! optimal step sizes — the analytic core of "adaptivity to data and
//! computational resource".
//!
//! From Ma–Bassily–Belkin 2017 (Theorem 4), mini-batch SGD in the
//! interpolation regime with optimal constant step size contracts per
//! iteration by
//!
//! `g*(m) = 1 − m λ_n / (β + (m − 1) λ₁)`
//!
//! which improves nearly linearly in `m` until the *critical batch size*
//! `m*(k) = β(K) / λ₁(K)` and saturates after. EigenPro 2.0 replaces
//! `λ₁(K)` by `λ_{q+1}(K)` (the adaptive kernel's top eigenvalue), pushing
//! `m*` up to the hardware's `m^max_G`.

/// `m*(k) = β / λ₁` — the critical batch size of a kernel whose normalised
/// matrix has top eigenvalue `lambda1`.
///
/// # Panics
///
/// Panics if `lambda1 <= 0` or `beta <= 0`.
pub fn critical_batch(beta: f64, lambda1: f64) -> f64 {
    assert!(lambda1 > 0.0, "lambda1 must be positive");
    assert!(beta > 0.0, "beta must be positive");
    beta / lambda1
}

/// Eq. (7): the smallest spectral truncation `q` whose adaptive kernel
/// saturates the resource, `q = max { i : m*(k_{P_i}) ≤ m^max_G }`.
///
/// `spectrum` holds the subsample eigenvalues `σ_1 ≥ σ_2 ≥ …` of `K_s`;
/// with `λ_{i+1} ≈ σ_{i+1}/s` and `β ≈ 1`, `m*(k_{P_i}) = s / σ_{i+1}`.
/// Returns 0 when even the original kernel satisfies `m*(k) ≥ m^max_G` (no
/// preconditioning needed). The result is capped at `spectrum.len() − 2` so
/// a valid damping target `σ_{q+1}` always exists.
pub fn select_q(spectrum: &[f64], s: usize, m_max: usize) -> usize {
    assert!(s > 0, "s must be positive");
    if spectrum.len() < 2 {
        return 0;
    }
    let cap = spectrum.len() - 2;
    let mut q = 0usize;
    // σ_{i+1} in 1-based terms is the m*(k_{P_i}) denominator.
    for (i, &sigma_next) in spectrum.iter().enumerate().take(cap + 1) {
        if sigma_next <= 0.0 {
            break;
        }
        let m_star_i = s as f64 / sigma_next;
        if m_star_i <= m_max as f64 {
            q = i;
        } else {
            break;
        }
    }
    q
}

/// The Appendix-B "adjusted q" heuristic: in practice the paper chooses a
/// `q` *larger* than Eq. (7)'s ("increasing q appears to lead to faster
/// convergence"), based on the eigenvalue decay and the block size `s`.
///
/// This instantiation extends `q` to the last eigenvalue still above
/// `rel_floor · σ₁`, capped at `s / 8` (so the eigensystem remains
/// accurately estimable from `s` samples) and never below Eq. (7)'s `q`.
pub fn adjust_q(spectrum: &[f64], s: usize, q_eq7: usize, rel_floor: f64) -> usize {
    if spectrum.len() < 2 {
        return q_eq7;
    }
    let cap = (s / 8).min(spectrum.len() - 2).max(q_eq7);
    let floor = spectrum[0] * rel_floor;
    let mut q = q_eq7;
    for (i, &sigma) in spectrum.iter().enumerate().take(cap + 1) {
        if sigma >= floor && sigma > 0.0 {
            q = q.max(i);
        } else {
            break;
        }
    }
    q.min(cap)
}

/// Ma et al. 2017 optimal constant step size for batch size `m`:
/// `η*(m) = m / (β + (m − 1) λ₁)`.
///
/// With `m = m*(k_G)` this reduces to `≈ m / 2β`, matching the paper's
/// Table-4 values (e.g. MNIST: `m = 735`, `η = 379`).
///
/// # Panics
///
/// Panics if `m == 0`, `beta <= 0`, or `lambda1 <= 0`.
pub fn optimal_step_size(m: usize, beta: f64, lambda1: f64) -> f64 {
    assert!(m > 0, "m must be positive");
    assert!(
        beta > 0.0 && lambda1 > 0.0,
        "beta and lambda1 must be positive"
    );
    m as f64 / (beta + (m as f64 - 1.0) * lambda1)
}

/// Per-iteration contraction factor `g*(m) = 1 − m λ_n / (β + (m−1) λ₁)`
/// (squared-norm convergence bound, Theorem 4 of Ma et al. 2017).
///
/// # Panics
///
/// Panics if any argument is non-positive (except `m ≥ 1`).
pub fn convergence_rate(m: usize, beta: f64, lambda1: f64, lambda_n: f64) -> f64 {
    assert!(m > 0 && beta > 0.0 && lambda1 > 0.0 && lambda_n > 0.0);
    1.0 - (m as f64) * lambda_n / (beta + (m as f64 - 1.0) * lambda1)
}

/// Convergence *speedup per iteration* relative to `m = 1`:
/// `log g*(m) / log g*(1)` — the y-axis of the schematic Figure 1. Linear in
/// `m` until `m*`, flat after.
pub fn speedup_over_single(m: usize, beta: f64, lambda1: f64, lambda_n: f64) -> f64 {
    let g1 = convergence_rate(1, beta, lambda1, lambda_n);
    let gm = convergence_rate(m, beta, lambda1, lambda_n);
    gm.ln() / g1.ln()
}

/// Iterations needed to contract the squared error by `epsilon` under rate
/// `g`: `log ε / log g`.
///
/// # Panics
///
/// Panics if `epsilon` or `g` is outside `(0, 1)`.
pub fn iterations_to_accuracy(epsilon: f64, g: f64) -> f64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(g > 0.0 && g < 1.0, "rate must be in (0,1)");
    epsilon.ln() / g.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_batch_formula() {
        assert_eq!(critical_batch(1.0, 0.25), 4.0);
        assert_eq!(critical_batch(2.0, 0.5), 4.0);
    }

    #[test]
    fn select_q_monotone_in_m_max() {
        // Geometric spectrum σ_i = 2^{-i}, s = 64: m*(k_{P_i}) = 64·2^{i}...
        let spectrum: Vec<f64> = (0..20).map(|i| 2.0_f64.powi(-i)).collect();
        let q_small = select_q(&spectrum, 64, 128);
        let q_big = select_q(&spectrum, 64, 4096);
        assert!(q_big > q_small);
        // m*(k_{P_i}) = 64·2^i ≤ 128 → i ≤ 1.
        assert_eq!(q_small, 1);
        // 64·2^i ≤ 4096 → i ≤ 6.
        assert_eq!(q_big, 6);
    }

    #[test]
    fn select_q_zero_when_original_kernel_suffices() {
        // Flat spectrum: m*(k) = s/σ₁ already exceeds m_max.
        let spectrum = vec![0.5, 0.49, 0.48];
        assert_eq!(select_q(&spectrum, 10, 5), 0);
    }

    #[test]
    fn select_q_capped_by_spectrum_length() {
        let spectrum = vec![1.0, 0.5, 0.25];
        // Huge m_max: q must still leave a damping target.
        assert_eq!(select_q(&spectrum, 4, 1_000_000), 1);
    }

    #[test]
    fn adjust_q_extends_but_respects_cap() {
        let spectrum: Vec<f64> = (0..100).map(|i| 0.9_f64.powi(i)).collect();
        let q7 = 5;
        let adj = adjust_q(&spectrum, 400, q7, 1e-4);
        assert!(adj >= q7);
        assert!(adj <= 50); // s/8
    }

    #[test]
    fn adjust_q_never_below_eq7() {
        let spectrum = vec![1.0, 1e-9, 1e-10, 1e-11];
        assert_eq!(adjust_q(&spectrum, 80, 2, 1e-4), 2);
    }

    #[test]
    fn step_size_approaches_half_m_over_beta_at_mstar() {
        // At m = m* = β/λ₁: η = m/(β + (m−1)λ₁) ≈ m/(2β − λ₁).
        let beta = 1.0;
        let lambda1 = 1.0 / 735.0;
        let m = 735;
        let eta = optimal_step_size(m, beta, lambda1);
        assert!((eta - 735.0 / (2.0 - lambda1)).abs() < 1e-9);
        assert!((367.0..369.0).contains(&eta));
    }

    #[test]
    fn rate_improves_linearly_below_mstar_saturates_after() {
        let (beta, l1, ln) = (1.0, 0.25, 1e-4);
        let m_star = critical_batch(beta, l1) as usize; // 4
                                                        // Below m*: speedup grows with m and tracks the theory's
                                                        // m / (1 + (m−1)λ₁/β) "near-linear" curve.
        let mut prev = 0.0;
        for m in 1..=m_star {
            let s = speedup_over_single(m, beta, l1, ln);
            let theory = m as f64 / (1.0 + (m as f64 - 1.0) * l1 / beta);
            assert!(s > prev, "speedup not increasing at m = {m}");
            assert!((s - theory).abs() / theory < 0.05, "m = {m}, speedup = {s}");
            prev = s;
        }
        // Far above m*: speedup stays bounded near 1/λ₁ = m*.
        let s_big = speedup_over_single(100 * m_star, beta, l1, ln);
        assert!(s_big < 2.0 * m_star as f64, "saturated speedup {s_big}");
    }

    #[test]
    fn preconditioning_raises_saturation_point() {
        let (beta, ln) = (1.0, 1e-5);
        let l1_orig = 0.25; // m* = 4
        let l1_precond = 1e-3; // m* = 1000
        let m = 500;
        let s_orig = speedup_over_single(m, beta, l1_orig, ln);
        let s_precond = speedup_over_single(m, beta, l1_precond, ln);
        assert!(
            s_precond > 50.0 * s_orig,
            "precond {s_precond} vs orig {s_orig}"
        );
    }

    #[test]
    fn iterations_to_accuracy_decreases_with_better_rate() {
        let fast = iterations_to_accuracy(1e-4, 0.9);
        let slow = iterations_to_accuracy(1e-4, 0.999);
        assert!(fast < slow);
        assert!((iterations_to_accuracy(0.5, 0.5) - 1.0).abs() < 1e-12);
    }
}
