//! Minimal dependency-free argument parsing for the `ep2` binary.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options
/// (`--flag` with no value stores an empty string) and any bare
/// positional arguments (e.g. the path in `ep2 inspect model.ep2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Option map, keys without the leading `--`.
    pub options: BTreeMap<String, String>,
    /// Bare positional arguments after the subcommand, in order. Commands
    /// that take none reject strays at dispatch.
    pub positionals: Vec<String>,
}

/// Parses an argument vector (excluding the program name).
///
/// # Errors
///
/// Returns a human-readable message for malformed input (missing
/// subcommand, value-less option at end).
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut iter = args.iter().peekable();
    let command = iter
        .next()
        .ok_or_else(|| "missing subcommand (try `ep2 help`)".to_string())?
        .clone();
    if command.starts_with("--") {
        return Err(format!("expected a subcommand before {command}"));
    }
    let mut options = BTreeMap::new();
    let mut positionals = Vec::new();
    while let Some(arg) = iter.next() {
        let Some(key) = arg.strip_prefix("--") else {
            positionals.push(arg.clone());
            continue;
        };
        // `--key=value` or `--key value` or bare `--flag`.
        if let Some((k, v)) = key.split_once('=') {
            options.insert(k.to_string(), v.to_string());
        } else if iter
            .peek()
            .map(|next| !next.starts_with("--"))
            .unwrap_or(false)
        {
            options.insert(key.to_string(), iter.next().unwrap().clone());
        } else {
            options.insert(key.to_string(), String::new());
        }
    }
    Ok(Parsed {
        command,
        options,
        positionals,
    })
}

impl Parsed {
    /// Fetches an option parsed into `T`, or the default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Fetches an optional option parsed into `T`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value fails to parse.
    pub fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.options.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Whether a bare flag was supplied.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let p = parse(&v(&["train", "--dataset", "mnist-like", "--n", "2000"])).unwrap();
        assert_eq!(p.command, "train");
        assert_eq!(p.options["dataset"], "mnist-like");
        assert_eq!(p.get_or("n", 0usize).unwrap(), 2000);
    }

    #[test]
    fn parses_equals_form_and_flags() {
        let p = parse(&v(&["plan", "--sigma=5.5", "--verbose"])).unwrap();
        assert_eq!(p.get_or("sigma", 0.0).unwrap(), 5.5);
        assert!(p.flag("verbose"));
        assert!(!p.flag("quiet"));
    }

    #[test]
    fn rejects_missing_subcommand() {
        assert!(parse(&v(&[])).is_err());
        assert!(parse(&v(&["--oops"])).is_err());
    }

    #[test]
    fn rejects_bad_value() {
        let p = parse(&v(&["train", "--n", "abc"])).unwrap();
        assert!(p.get_or("n", 0usize).is_err());
    }

    #[test]
    fn get_opt_none_when_absent() {
        let p = parse(&v(&["plan"])).unwrap();
        assert_eq!(p.get_opt::<usize>("q").unwrap(), None);
    }

    #[test]
    fn collects_positionals_in_order() {
        let p = parse(&v(&["inspect", "model.ep2", "--n", "5", "other.ep2"])).unwrap();
        assert_eq!(p.positionals, vec!["model.ep2", "other.ep2"]);
        assert_eq!(p.options["n"], "5");
    }
}
