//! `ep2` — command-line interface to the EigenPro 2.0 reproduction.
//!
//! ```text
//! ep2 devices                               # list device presets
//! ep2 datasets                              # list dataset clones
//! ep2 plan  --dataset mnist-like --n 2000 --kernel gaussian --sigma 5
//! ep2 train --dataset mnist-like --n 2000 --kernel laplacian --sigma 10 --epochs 8
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
