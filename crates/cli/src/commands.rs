//! Subcommand implementations for the `ep2` binary.

use std::sync::Arc;

use ep2_core::autotune;
use ep2_core::trainer::{EarlyStopping, EigenPro2, TrainConfig};
use ep2_core::PredictOptions;
use ep2_data::{catalog, Dataset};
use ep2_device::{batch, DeviceMode, Precision, ResidencyMode, ResourceSpec};
use ep2_kernels::{Kernel, KernelKind};

use crate::args::Parsed;

/// Usage text.
pub const USAGE: &str = "\
usage: ep2 <command> [options]

commands:
  devices                         list device presets
  datasets                        list synthetic dataset clones
  plan     compute the analytic parameters (Table-4 row) for a dataset
  train    train EigenPro 2.0 and report per-epoch metrics
  eval     evaluate a saved model on a dataset split
  inspect  print the header, dims, checksum status, and embedded trainer
           state of an .ep2/.ep2m model or checkpoint file
  serve    load a model once and serve predictions over a stdin/stdout
           line protocol with micro-batching and admission control
  help     show this message

common options:
  --dataset <name>    mnist-like | cifar10-like | svhn-like | timit-like |
                      imagenet-like | susy-like           (default mnist-like)
  --n <int>           dataset size                        (default 2000)
  --kernel <name>     gaussian | laplacian | cauchy | matern32 | matern52 | rq
  --sigma <float>     kernel bandwidth                    (default 5)
  --device <name>     titan-xp | k40c | cpu | virtual     (default virtual)
  --sg <float>        override the device memory S_G (f32-reference slots);
                      shrinking it below the dataset residency is how to
                      exercise out-of-core streaming on a laptop
  --precision <name>  f32 | f64 | mixed | bf16            (default f64)
                      f32 runs the paper's single-precision GPU scenario
                      (doubles the memory-limited batch m^S_G); mixed keeps
                      eigensolves/step-size/error sums in f64 while the
                      kernel/GEMM hot loop runs in f32; bf16 stores kernel
                      blocks/tiles/weights in bfloat16 (half an f32 slot,
                      so m^S_G and the streamed n_tile double again) with
                      f32 register-tile compute and f64 planning
  --seed <int>        RNG seed                            (default 0)

plan/train options:
  --s <int>           Nystrom block size (default: paper rule)
  --q <int>           spectral truncation (default: Eq. 7 + adjustment)
  --batch <int>       mini-batch override (default: m^max_G)
  --out-of-core       force Streamed residency (kernel blocks produced as
                      bounded double-buffered tiles); without the flag the
                      trainer streams automatically when the in-core
                      residency (d + l + m)·n exceeds S_G
  --tile <int>        streamed tile width n_tile (default: widest that fits)
  --producers <int>   streamed tile-assembly producer tasks (default: the
                      cost-model partition of the EP2_THREADS budget between
                      assembly and the update GEMM; the EP2_STREAM_PRODUCERS
                      env var survives as a deprecated override)
  --epochs <int>      epoch cap for train            (default 10)
  --test-frac <f64>   held-out fraction for train    (default 0.2)
  --no-early-stop     disable validation early stopping
  --save <path>       write the trained model (EP2M binary format)

fault-tolerance options (train):
  --checkpoint-dir <dir>   write atomic checkpoints (ckpt-NNNNNN.ep2) with
                           the full trainer state after each healthy epoch
  --checkpoint-every <k>   checkpoint every k-th epoch       (default 1)
  --checkpoint-keep <k>    keep only the newest k checkpoints, pruning
                           older ones after each successful atomic write
                           (default: keep all)
  --resume                 continue from the latest valid checkpoint in
                           --checkpoint-dir; the resumed trajectory is
                           bit-for-bit identical to an uninterrupted run

eval options:
  --model <path>      trained model to load
  (plus the dataset options above for the evaluation split)

inspect:
  ep2 inspect <model.ep2>   (or --model <path>)

serve:
  ep2 serve <model.ep2>     (or --model <path>)
  --precision <name>        serve at this precision instead of the one the
                            model was trained under (bf16 halves the
                            resident slots the ledger charges)
  --batch-rows <int>        micro-batch row cap (default: derived from the
                            device capacity C_G and the memory plan)
  --window-us <int>         batching window in microseconds (default 2000)
  --latency-budget-us <int> admission latency budget; requests whose
                            estimated wait exceeds it get a `busy` reply
  --workers <int>           batch-executing workers (default 2)
  protocol, one request per line on stdin:
    predict <id> <v1,v2,...>  ->  ok <id> <y1,...>  |  busy <id> <wait> <budget>
    ping | stats | shutdown
";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands/options or
/// training failures.
pub fn run(parsed: &Parsed) -> Result<(), String> {
    // `inspect` and `serve` take the model path as a positional argument.
    if parsed.command != "inspect" && parsed.command != "serve" {
        if let Some(stray) = parsed.positionals.first() {
            return Err(format!("unexpected positional argument {stray}"));
        }
    }
    match parsed.command.as_str() {
        "help" | "-h" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        "devices" => devices(),
        "datasets" => datasets(),
        "plan" => plan(parsed),
        "train" => train(parsed),
        "eval" => eval_model(parsed),
        "inspect" => inspect_model(parsed),
        "serve" => serve_model(parsed),
        other => Err(format!("unknown command {other} (try `ep2 help`)")),
    }
}

fn devices() -> Result<(), String> {
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>10}",
        "name", "C_G", "S_G", "peak ops/s", "overhead"
    );
    for spec in [
        ResourceSpec::titan_xp(),
        ResourceSpec::tesla_k40c(),
        ResourceSpec::cpu_host(),
        ResourceSpec::scaled_virtual_gpu(),
    ] {
        println!(
            "{:<24} {:>12.2e} {:>12.2e} {:>12.2e} {:>9.1e}s",
            spec.name,
            spec.parallel_capacity,
            spec.memory_floats,
            spec.peak_flops,
            spec.launch_overhead
        );
    }
    Ok(())
}

fn datasets() -> Result<(), String> {
    println!("{:<16} {:>6} {:>8}  preprocessing", "name", "d", "classes");
    for (name, d, classes, prep) in [
        ("mnist-like", 784, 10, "min-max [0,1]"),
        ("cifar10-like", 1024, 10, "min-max [0,1]"),
        ("svhn-like", 1024, 10, "min-max [0,1]"),
        ("timit-like", 440, 144, "z-score"),
        ("imagenet-like", 500, 100, "z-score (PCA features)"),
        ("susy-like", 18, 2, "z-score"),
    ] {
        println!("{name:<16} {d:>6} {classes:>8}  {prep}");
    }
    Ok(())
}

fn load_dataset(parsed: &Parsed) -> Result<Dataset, String> {
    let name = parsed
        .options
        .get("dataset")
        .map(String::as_str)
        .unwrap_or("mnist-like");
    let n: usize = parsed.get_or("n", 2_000)?;
    let seed: u64 = parsed.get_or("seed", 0)?;
    if n == 0 {
        return Err("--n must be positive".to_string());
    }
    Ok(match name {
        "mnist-like" => catalog::mnist_like(n, seed),
        "cifar10-like" => catalog::cifar10_like(n, seed),
        "svhn-like" => catalog::svhn_like(n, seed),
        "timit-like" => catalog::timit_like(n, seed),
        "imagenet-like" => catalog::imagenet_features_like(n, 100, seed),
        "susy-like" => catalog::susy_like(n, seed),
        other => return Err(format!("unknown dataset {other} (see `ep2 datasets`)")),
    })
}

fn load_device(parsed: &Parsed) -> Result<ResourceSpec, String> {
    let mut spec = match parsed
        .options
        .get("device")
        .map(String::as_str)
        .unwrap_or("virtual")
    {
        "titan-xp" => ResourceSpec::titan_xp(),
        "k40c" => ResourceSpec::tesla_k40c(),
        "cpu" => ResourceSpec::cpu_host(),
        "virtual" => ResourceSpec::scaled_virtual_gpu(),
        other => return Err(format!("unknown device {other} (see `ep2 devices`)")),
    };
    if let Some(sg) = parsed.get_opt::<f64>("sg")? {
        if !(sg > 0.0 && sg.is_finite()) {
            return Err("--sg must be positive".to_string());
        }
        spec.memory_floats = sg;
        spec.name = format!("{} (S_G = {sg:.3e})", spec.name);
    }
    Ok(spec)
}

fn load_precision(parsed: &Parsed) -> Result<Precision, String> {
    match parsed.options.get("precision") {
        None => Ok(Precision::F64),
        Some(name) => name.parse(), // Precision's FromStr carries the message
    }
}

/// The `--producers` override (explicit config wins over the deprecated
/// `EP2_STREAM_PRODUCERS` env var, which the stream planner still honours
/// beneath it).
fn resolve_producers(parsed: &Parsed) -> Result<Option<usize>, String> {
    match parsed.get_opt::<usize>("producers")? {
        Some(0) => Err("--producers must be positive".to_string()),
        Some(p) => Ok(Some(p)),
        None => Ok(ep2_stream::producer_override()),
    }
}

fn load_kernel_kind(parsed: &Parsed) -> Result<KernelKind, String> {
    let name = parsed
        .options
        .get("kernel")
        .map(String::as_str)
        .unwrap_or("gaussian");
    KernelKind::parse(name).ok_or_else(|| format!("unknown kernel {name}"))
}

fn plan(parsed: &Parsed) -> Result<(), String> {
    let dataset = load_dataset(parsed)?;
    let device = load_device(parsed)?;
    let kind = load_kernel_kind(parsed)?;
    let sigma: f64 = parsed.get_or("sigma", 5.0)?;
    let seed: u64 = parsed.get_or("seed", 0)?;
    let precision = load_precision(parsed)?;
    let kernel: Arc<dyn Kernel> = kind.with_bandwidth(sigma).into();
    let (n, d, l) = (dataset.len(), dataset.dim(), dataset.n_classes);
    let streamed = parsed.flag("out-of-core") || !batch::fits_in_core(&device, n, d, l, precision);
    let producers_override = resolve_producers(parsed)?;
    let stream_plan = if streamed {
        // The same ring-sizing entry point the trainer uses
        // (`max_batch_streamed_planned`), so `plan` previews exactly the
        // tiling `train` executes.
        Some(
            batch::max_batch_streamed_planned(
                &device,
                n,
                d,
                l,
                precision,
                parsed.get_opt("batch")?,
                producers_override,
                ep2_runtime::current_threads(),
            )
            .map_err(|e| e.to_string())?,
        )
    } else {
        None
    };
    let (params, _) = match &stream_plan {
        Some(splan) => autotune::plan_streamed(
            &kernel,
            &dataset.features,
            l,
            &device,
            parsed.get_opt("s")?,
            parsed.get_opt("q")?,
            splan,
            producers_override,
            precision,
            seed,
        )
        .map_err(|e| e.to_string())?,
        None => autotune::plan(
            &kernel,
            &dataset.features,
            dataset.n_classes,
            &device,
            parsed.get_opt("s")?,
            parsed.get_opt("q")?,
            parsed.get_opt("batch")?,
            precision,
            seed,
        )
        .map_err(|e| e.to_string())?,
    };
    println!(
        "dataset: {} (n = {}, d = {}, l = {})",
        dataset.name,
        dataset.len(),
        dataset.dim(),
        dataset.n_classes
    );
    println!(
        "device:  {} | kernel: {kind} (sigma = {sigma}) | precision: {precision} ({:.3e} slots)",
        device.name,
        device.memory_slots(precision)
    );
    println!();
    match &stream_plan {
        Some(splan) => {
            println!(
                "Step 1   residency = {} | m^C_G = {}   m = {}   n_tile = {}   \
                 tiles in flight = {}",
                ResidencyMode::Streamed,
                params.capacity_batch,
                params.m,
                splan.n_tile,
                splan.tiles_in_flight
            );
            println!(
                "         peak residency {:.3e} of {:.3e} slots \
                 (ring + weights + staged batch blocks)",
                splan.resident_slots(precision),
                device.memory_floats
            );
            if let Some(tp) = &params.stream_threads {
                println!(
                    "         threads = {} ({} producer(s) x {} assembly + {} update)",
                    tp.total, tp.producers, tp.producer_threads, tp.update_threads
                );
            }
        }
        None => println!(
            "Step 1   m^C_G = {}   m^S_G = {}   m = {}   threads = {}",
            params.capacity_batch, params.memory_batch, params.m, params.threads
        ),
    }
    println!(
        "Step 2   q(Eq.7) = {}   adjusted q = {}   s = {}",
        params.q, params.adjusted_q, params.s
    );
    println!("Step 3   eta = {:.2}", params.eta);
    println!();
    println!(
        "m*(k)   = {:.2}   (beta = {:.3}, lambda1 = {:.5})",
        params.m_star, params.beta, params.lambda1
    );
    println!(
        "m*(k_G) = {:.0}   (beta_G = {:.3}, lambda1_G = {:.6})",
        params.m_star_g, params.beta_g, params.lambda1_g
    );
    println!(
        "predicted acceleration (Appendix C): {:.0}x",
        params.acceleration
    );
    Ok(())
}

fn eval_model(parsed: &Parsed) -> Result<(), String> {
    let path = parsed
        .options
        .get("model")
        .ok_or_else(|| "--model <path> is required".to_string())?;
    // `load_any` restores the model at its *trained* storage precision, so
    // evaluation reproduces the numbers the training run saw.
    let model = ep2_core::persist::load_any(path).map_err(|e| e.to_string())?;
    let dataset = load_dataset(parsed)?;
    if dataset.dim() != model.dim() {
        return Err(format!(
            "model expects d = {}, dataset has d = {}",
            model.dim(),
            dataset.dim()
        ));
    }
    let pred = model.predict_f64(&dataset.features, &PredictOptions::default());
    let err = ep2_data::metrics::classification_error(&pred, &dataset.labels);
    println!(
        "model: {} kernel, sigma = {}, {} centers, {} outputs, {} storage",
        model.kernel_name(),
        model.bandwidth(),
        model.n_centers(),
        model.n_outputs(),
        model.precision()
    );
    println!(
        "evaluated on {} ({} rows): error {:.2}%",
        dataset.name,
        dataset.len(),
        err * 100.0
    );
    Ok(())
}

fn serve_model(parsed: &Parsed) -> Result<(), String> {
    use ep2_core::persist::AnyModel;
    let path = parsed
        .positionals
        .first()
        .or_else(|| parsed.options.get("model"))
        .ok_or_else(|| "usage: ep2 serve <model.ep2>".to_string())?;
    if parsed.positionals.len() > 1 {
        return Err(format!(
            "unexpected positional argument {}",
            parsed.positionals[1]
        ));
    }
    let mut model = ep2_core::persist::load_any(path).map_err(|e| e.to_string())?;
    if let Some(name) = parsed.options.get("precision") {
        model = model.to_precision(name.parse()?);
    }
    let device = load_device(parsed)?;
    let config = ep2_serve::ServeConfig {
        batch_rows: parsed.get_opt("batch-rows")?,
        window_us: parsed.get_opt("window-us")?,
        latency_budget_us: parsed.get_opt("latency-budget-us")?,
        workers: parsed.get_opt("workers")?,
    };
    // One match, at the boundary: `load_any` erased the precision, the
    // engine is monomorphic below this point.
    match model {
        AnyModel::F32(m) => serve_typed(m, Precision::F32, &device, &config),
        AnyModel::F64(m) => serve_typed(m, Precision::F64, &device, &config),
        AnyModel::Bf16(m) => serve_typed(m, Precision::Bf16, &device, &config),
    }
}

fn serve_typed<S: ep2_linalg::Scalar>(
    model: ep2_core::KernelModel<S>,
    precision: Precision,
    device: &ResourceSpec,
    config: &ep2_serve::ServeConfig,
) -> Result<(), String> {
    let plan = ep2_serve::ServePlan::plan(
        model.n_centers(),
        model.dim(),
        model.n_outputs(),
        device,
        precision,
        config,
    );
    let ledger = ep2_device::MemoryLedger::new(device.memory_floats);
    let engine = ep2_serve::ServeEngine::new(std::sync::Arc::new(model), plan, &ledger)
        .map_err(|e| e.to_string())?;
    let plan = engine.plan();
    // The banner goes to stderr: stdout carries only protocol responses.
    eprintln!(
        "serving {} centers at {} on {} | batch <= {} rows, window {} us, \
         latency budget {} us, {} worker(s) x {} thread(s)",
        engine.model().n_centers(),
        precision,
        device.name,
        plan.batch_rows,
        plan.window_us,
        plan.latency_budget_us,
        plan.workers,
        plan.worker_threads,
    );
    eprintln!(
        "memory: {:.3e} resident + {:.3e}/worker of {:.3e} slots",
        plan.resident_slots,
        plan.per_worker_slots,
        ledger.budget()
    );
    let stdin = std::io::stdin().lock();
    // `Stdout` (unlocked) is Send; `serve_lines` serialises writes itself.
    let handled = ep2_serve::server::serve_lines(&engine, stdin, std::io::stdout())
        .map_err(|e| format!("serve I/O: {e}"))?;
    let st = engine.stats();
    eprintln!(
        "served {} request(s) in {} batch(es) ({} shed, {} recovered) over {} line(s); \
         p50 {} us, p99 {} us",
        st.served,
        st.batches,
        st.shed,
        st.recoveries,
        handled,
        st.percentile_us(50.0),
        st.percentile_us(99.0),
    );
    Ok(())
}

fn inspect_model(parsed: &Parsed) -> Result<(), String> {
    use ep2_core::persist::ChecksumStatus;
    let path = parsed
        .positionals
        .first()
        .or_else(|| parsed.options.get("model"))
        .ok_or_else(|| "usage: ep2 inspect <model.ep2>".to_string())?;
    if parsed.positionals.len() > 1 {
        return Err(format!(
            "unexpected positional argument {}",
            parsed.positionals[1]
        ));
    }
    let data = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let info = ep2_core::persist::inspect(&data).map_err(|e| e.to_string())?;
    println!("file:      {path} ({} bytes)", info.total_bytes);
    println!("format:    EP2M v{}", info.version);
    println!("kernel:    {} (sigma = {})", info.kernel, info.bandwidth);
    println!(
        "model:     {} centers x {} dims -> {} outputs",
        info.n, info.d, info.l
    );
    match info.checksum {
        ChecksumStatus::Valid => println!("checksum:  OK (crc32)"),
        ChecksumStatus::Absent => println!("checksum:  absent (v1 file, no integrity record)"),
        ChecksumStatus::Mismatch { stored, computed } => println!(
            "checksum:  MISMATCH (stored {stored:#010x}, computed {computed:#010x}) \
             -- file is corrupt or torn"
        ),
    }
    match &info.state {
        None => println!("state:     none (plain model file)"),
        Some(s) => {
            println!(
                "state:     trainer checkpoint at epoch {} ({} history entr{})",
                s.epochs_done,
                s.history.len(),
                if s.history.len() == 1 { "y" } else { "ies" }
            );
            println!(
                "           eta = {:.4} after {} backoff(s), {} rollback(s)",
                s.eta, s.eta_backoffs, s.rollbacks
            );
            println!(
                "           precision = {} | {} iterations | sim {:.1} ms",
                s.precision,
                s.iterations,
                s.simulated_seconds * 1e3
            );
            println!("           plan fingerprint {:#018x}", s.plan_fingerprint);
            if let Some(last) = s.history.last() {
                match last.val_error {
                    Some(ve) => println!(
                        "           last epoch: train mse {:.3e}, test error {:.2}%",
                        last.train_mse,
                        ve * 100.0
                    ),
                    None => println!("           last epoch: train mse {:.3e}", last.train_mse),
                }
            }
        }
    }
    if matches!(info.checksum, ChecksumStatus::Mismatch { .. }) {
        return Err("checksum mismatch: the file failed integrity verification".to_string());
    }
    // The same precision-erased loader `eval`, `serve`, and trainer resume
    // use: inspect reports what the file will actually load as.
    let any = ep2_core::persist::any_from_bytes(&data).map_err(|e| e.to_string())?;
    println!(
        "loads as:  {} storage ({} x {} centers, via load_any)",
        any.0.precision(),
        any.0.n_centers(),
        any.0.dim()
    );
    Ok(())
}

fn train(parsed: &Parsed) -> Result<(), String> {
    let dataset = load_dataset(parsed)?;
    let device = load_device(parsed)?;
    let kind = load_kernel_kind(parsed)?;
    let sigma: f64 = parsed.get_or("sigma", 5.0)?;
    let epochs: usize = parsed.get_or("epochs", 10)?;
    let test_frac: f64 = parsed.get_or("test-frac", 0.2)?;
    if !(0.0..1.0).contains(&test_frac) {
        return Err("--test-frac must be in [0, 1)".to_string());
    }
    let train_n = ((dataset.len() as f64) * (1.0 - test_frac)).round() as usize;
    let (train_set, test_set) = dataset.split_at(train_n.clamp(1, dataset.len()));
    let val = if test_set.is_empty() {
        None
    } else {
        Some(&test_set)
    };

    let config = TrainConfig {
        kernel: kind,
        bandwidth: sigma,
        epochs,
        subsample_size: parsed.get_opt("s")?,
        q: parsed.get_opt("q")?,
        batch_size: parsed.get_opt("batch")?,
        step_size: None,
        early_stopping: if parsed.flag("no-early-stop") {
            None
        } else {
            Some(EarlyStopping::default())
        },
        target_train_mse: None,
        target_val_error: None,
        device_mode: DeviceMode::ActualGpu,
        precision: load_precision(parsed)?,
        residency: if parsed.flag("out-of-core") {
            Some(ResidencyMode::Streamed)
        } else {
            None
        },
        stream_tile: parsed.get_opt("tile")?,
        stream_producers: resolve_producers(parsed)?,
        seed: parsed.get_or("seed", 0)?,
        checkpoint_dir: parsed
            .options
            .get("checkpoint-dir")
            .map(std::path::PathBuf::from),
        checkpoint_every: parsed.get_or("checkpoint-every", 1)?,
        resume: parsed.flag("resume"),
        checkpoint_keep: parsed.get_opt("checkpoint-keep")?,
    };
    if config.resume && config.checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".to_string());
    }
    let outcome = EigenPro2::new(config, device)
        .fit(&train_set, val)
        .map_err(|e| e.to_string())?;

    let p = &outcome.report.params;
    if let Some(epoch) = outcome.report.resumed_from_epoch {
        println!("resumed from checkpoint at epoch {epoch}");
    }
    println!(
        "{}: n = {} train / {} test | {kind} sigma = {sigma} | {} | {} | m = {}, q = {}, eta = {:.1}",
        train_set.name,
        train_set.len(),
        test_set.len(),
        outcome.report.precision,
        outcome.report.residency,
        p.m,
        p.adjusted_q,
        p.eta
    );
    match &p.stream_threads {
        Some(tp) => println!(
            "threads: {} ({} producer(s) x {} assembly + {} update)",
            tp.total, tp.producers, tp.producer_threads, tp.update_threads
        ),
        None => println!("threads: {}", p.threads),
    }
    for e in &outcome.report.epochs {
        match e.val_error {
            Some(ve) => println!(
                "epoch {:>3}  train mse {:.3e}  test error {:>6.2}%  (sim {:.1} ms)",
                e.epoch,
                e.train_mse,
                ve * 100.0,
                e.simulated_seconds * 1e3
            ),
            None => println!(
                "epoch {:>3}  train mse {:.3e}  (sim {:.1} ms)",
                e.epoch,
                e.train_mse,
                e.simulated_seconds * 1e3
            ),
        }
    }
    println!(
        "done: {:?} | {} iterations | sim {:.1} ms | wall {:.2} s | precond overhead {:.2}%",
        outcome.report.stop_reason,
        outcome.report.iterations,
        outcome.report.simulated_seconds * 1e3,
        outcome.report.wall_seconds,
        outcome.report.overhead_fraction * 100.0
    );
    println!(
        "memory: {} residency | peak {:.3e} of {:.3e} S_G slots",
        outcome.report.residency, outcome.report.peak_slots, outcome.report.budget_slots
    );
    if outcome.report.stream_recoveries > 0 {
        println!(
            "stream recoveries: {} producer death(s) absorbed by respawn",
            outcome.report.stream_recoveries
        );
    }
    for d in &outcome.report.degradations {
        println!("degradation: {d}");
    }
    if outcome.report.rollbacks > 0 {
        println!(
            "rollbacks: {} divergence rollback(s) to the last healthy weights",
            outcome.report.rollbacks
        );
    }
    if let Some(path) = parsed.options.get("save") {
        ep2_core::persist::save(&outcome.model, path).map_err(|e| e.to_string())?;
        println!("model saved to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    fn parsed(argv: &[&str]) -> Parsed {
        args::parse(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&parsed(&["frobnicate"])).is_err());
    }

    #[test]
    fn help_and_listings_succeed() {
        assert!(run(&parsed(&["help"])).is_ok());
        assert!(run(&parsed(&["devices"])).is_ok());
        assert!(run(&parsed(&["datasets"])).is_ok());
    }

    #[test]
    fn plan_small_dataset() {
        let p = parsed(&[
            "plan",
            "--dataset",
            "susy-like",
            "--n",
            "300",
            "--sigma",
            "4",
            "--s",
            "120",
        ]);
        assert!(run(&p).is_ok());
    }

    #[test]
    fn train_small_dataset() {
        let p = parsed(&[
            "train",
            "--dataset",
            "susy-like",
            "--n",
            "300",
            "--sigma",
            "4",
            "--s",
            "100",
            "--epochs",
            "2",
        ]);
        assert!(run(&p).is_ok());
    }

    #[test]
    fn rejects_unknown_dataset_kernel_device() {
        assert!(run(&parsed(&["plan", "--dataset", "nope", "--n", "100"])).is_err());
        assert!(run(&parsed(&["plan", "--kernel", "nope"])).is_err());
        assert!(run(&parsed(&["plan", "--device", "nope"])).is_err());
    }

    #[test]
    fn train_save_then_eval_round_trip() {
        let dir = std::env::temp_dir().join("ep2_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cli_model.ep2m");
        let path_s = path.to_string_lossy().to_string();
        let p = parsed(&[
            "train",
            "--dataset",
            "susy-like",
            "--n",
            "200",
            "--sigma",
            "4",
            "--s",
            "80",
            "--epochs",
            "1",
            "--save",
            &path_s,
        ]);
        assert!(run(&p).is_ok());
        let e = parsed(&[
            "eval",
            "--model",
            &path_s,
            "--dataset",
            "susy-like",
            "--n",
            "100",
        ]);
        assert!(run(&e).is_ok());
        // Dimension mismatch is caught.
        let bad = parsed(&[
            "eval",
            "--model",
            &path_s,
            "--dataset",
            "mnist-like",
            "--n",
            "50",
        ]);
        assert!(run(&bad).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eval_requires_model() {
        assert!(run(&parsed(&["eval"])).is_err());
    }

    #[test]
    fn train_with_each_precision_succeeds() {
        for precision in ["f32", "f64", "mixed", "bf16"] {
            let p = parsed(&[
                "train",
                "--dataset",
                "susy-like",
                "--n",
                "200",
                "--sigma",
                "4",
                "--s",
                "80",
                "--epochs",
                "1",
                "--precision",
                precision,
            ]);
            assert!(run(&p).is_ok(), "--precision {precision} failed");
        }
        // IEEE f16 is the ROADMAP follow-on, not yet a policy.
        let bad = parsed(&[
            "train",
            "--dataset",
            "susy-like",
            "--n",
            "100",
            "--precision",
            "f16",
        ]);
        assert!(run(&bad).is_err());
    }

    #[test]
    fn plan_accepts_precision() {
        let p = parsed(&[
            "plan",
            "--dataset",
            "susy-like",
            "--n",
            "300",
            "--sigma",
            "4",
            "--s",
            "120",
            "--precision",
            "f32",
        ]);
        assert!(run(&p).is_ok());
    }

    #[test]
    fn train_out_of_core_with_tiny_sg() {
        // S_G = 4000 slots ≪ the susy-like residency: only the streamed
        // path can train this, and the flag makes it explicit.
        let p = parsed(&[
            "train",
            "--dataset",
            "susy-like",
            "--n",
            "300",
            "--sigma",
            "4",
            "--s",
            "60",
            "--epochs",
            "1",
            "--sg",
            "4000",
            "--out-of-core",
            "--no-early-stop",
        ]);
        assert!(run(&p).is_ok());
        // Same dataset without the flag auto-streams too (residency is
        // chosen by the trainer when S_G is too small).
        let auto = parsed(&[
            "train",
            "--dataset",
            "susy-like",
            "--n",
            "300",
            "--sigma",
            "4",
            "--s",
            "60",
            "--epochs",
            "1",
            "--sg",
            "4000",
            "--no-early-stop",
        ]);
        assert!(run(&auto).is_ok());
    }

    #[test]
    fn plan_reports_streamed_tiling_when_over_budget() {
        let p = parsed(&[
            "plan",
            "--dataset",
            "susy-like",
            "--n",
            "300",
            "--sigma",
            "4",
            "--s",
            "60",
            "--sg",
            "4000",
        ]);
        assert!(run(&p).is_ok());
        // Forced streaming on a roomy device also plans.
        let f = parsed(&[
            "plan",
            "--dataset",
            "susy-like",
            "--n",
            "300",
            "--sigma",
            "4",
            "--s",
            "60",
            "--out-of-core",
        ]);
        assert!(run(&f).is_ok());
    }

    #[test]
    fn rejects_bad_sg() {
        assert!(run(&parsed(&[
            "plan",
            "--dataset",
            "susy-like",
            "--n",
            "100",
            "--sg",
            "-5"
        ]))
        .is_err());
    }

    #[test]
    fn stray_positional_rejected_outside_inspect() {
        assert!(run(&parsed(&["train", "stray"])).is_err());
        assert!(run(&parsed(&["plan", "stray"])).is_err());
    }

    #[test]
    fn inspect_requires_path_and_rejects_missing_file() {
        assert!(run(&parsed(&["inspect"])).is_err());
        assert!(run(&parsed(&["inspect", "/nonexistent/nope.ep2"])).is_err());
    }

    #[test]
    fn train_checkpoint_then_inspect_and_resume() {
        let dir = std::env::temp_dir().join("ep2_cli_ckpt_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_string_lossy().to_string();
        let base = [
            "train",
            "--dataset",
            "susy-like",
            "--n",
            "200",
            "--sigma",
            "4",
            "--s",
            "80",
            "--no-early-stop",
            "--checkpoint-dir",
            &dir_s,
        ];
        let mut two = base.to_vec();
        two.extend(["--epochs", "2"]);
        assert!(run(&parsed(&two)).is_ok());
        let ckpt = dir.join("ckpt-000002.ep2");
        assert!(ckpt.exists(), "checkpoint not written");
        let ckpt_s = ckpt.to_string_lossy().to_string();
        assert!(run(&parsed(&["inspect", &ckpt_s])).is_ok());
        let mut resumed = base.to_vec();
        resumed.extend(["--epochs", "4", "--resume"]);
        assert!(run(&parsed(&resumed)).is_ok());
        // --resume without a directory is rejected up front.
        assert!(run(&parsed(&[
            "train",
            "--dataset",
            "susy-like",
            "--n",
            "100",
            "--resume"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_test_frac() {
        assert!(run(&parsed(&[
            "train",
            "--dataset",
            "susy-like",
            "--n",
            "100",
            "--test-frac",
            "1.5"
        ]))
        .is_err());
    }
}
