//! The producer/consumer pipeline: tile assembly overlapped with the
//! training update through two bounded channels and a recycled buffer ring.
//!
//! The pipeline is **self-healing**: every producer runs under a supervisor
//! that catches its panics, repairs the pipeline's invariants (requeues the
//! claimed-but-undelivered tile, restores the ring's buffer count), and
//! respawns the producer with exponential backoff under a bounded retry
//! budget. A producer panic therefore costs one tile retry, not the epoch;
//! only when the budget is exhausted and every producer has exited does the
//! consumer surface an error — one that names which producers died, on
//! which tile seqs, and with what panic payloads.

use std::collections::BTreeMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::plan::BlockPlan;
use crate::ring::{TileGuard, TileRing};
use ep2_device::{MemoryError, MemoryLedger};
use ep2_kernels::{matrix as kmat, Kernel};
use ep2_linalg::{Matrix, Scalar};

/// Respawn budget per epoch: each producer may die and be revived this many
/// times before the epoch gives up. Bounded so a deterministic bug (which
/// would panic identically on every retry) terminates with an error instead
/// of looping forever.
const RESPAWN_FACTOR: usize = 3;

/// Locks a mutex, riding through poisoning: the pipeline's repair paths run
/// exactly when a producer has panicked, so a poisoned lock is expected
/// there, not fatal.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Record of one producer death observed (and repaired) by its supervisor.
#[derive(Debug, Clone)]
pub struct ProducerDeath {
    /// Index of the producer task (0-based).
    pub producer: usize,
    /// How many times this producer had already died this epoch (0 = first).
    pub incarnation: usize,
    /// The tile seq the producer had claimed but not delivered, if any
    /// (requeued for retry by the supervisor).
    pub seq: Option<usize>,
    /// The panic payload.
    pub message: String,
    /// Whether retry budget remained, so the supervisor revived the
    /// producer.
    pub respawned: bool,
}

impl std::fmt::Display for ProducerDeath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "producer {} died", self.producer)?;
        match self.seq {
            Some(seq) => write!(f, " at tile seq {seq}")?,
            None => write!(f, " between tiles")?,
        }
        write!(
            f,
            " (incarnation {}, {}): {}",
            self.incarnation,
            if self.respawned {
                "respawned"
            } else {
                "retry budget exhausted"
            },
            self.message
        )
    }
}

/// One assembled tile travelling producer → consumer.
struct Filled<S: Scalar> {
    seq: usize,
    col0: usize,
    block: Matrix<S>,
}

/// One tile-assembly work item.
#[derive(Clone, Copy)]
struct Task {
    batch: usize,
    col0: usize,
    col1: usize,
}

/// Per-epoch state shared between the producers, their supervisors, and the
/// consumer.
struct EpochShared<S: Scalar> {
    /// Next fresh tile seq to claim (may overrun `total`; overruns are
    /// harmless).
    next_task: AtomicUsize,
    /// Tile seqs reclaimed from dead producers, awaiting redistribution.
    retry: Mutex<Vec<usize>>,
    /// Tiles successfully handed to the consumer channel.
    done: AtomicUsize,
    /// Total tiles this epoch.
    total: usize,
    /// Producer revivals remaining this epoch.
    respawns_left: AtomicIsize,
    /// Every death the supervisors observed this epoch.
    deaths: Mutex<Vec<ProducerDeath>>,
    /// The shared end of the empty-buffer channel.
    empty_rx: Mutex<Receiver<Vec<S>>>,
}

/// The out-of-core streaming engine: assembles `m x n_tile` kernel-block
/// tiles on producer threads and hands them to a consumer in tile order,
/// with backpressure through a bounded ring of ledger-charged buffers.
///
/// The engine owns shared (immutable) handles to the kernel and the center
/// matrix, plus the per-run caches the producers reuse: the centers' squared
/// row norms (computed once) and the ring buffers (charged once). One engine
/// serves a whole training run; [`StreamEngine::run_epoch`] is called once
/// per epoch with that epoch's shuffled mini-batches.
pub struct StreamEngine<S: Scalar> {
    kernel: Arc<dyn Kernel<S>>,
    centers: Arc<Matrix<S>>,
    center_norms: Vec<S::Accum>,
    plan: BlockPlan,
    ring: TileRing<S>,
    producers: usize,
    /// Ledger charge for the extra per-producer staged batch blocks (each
    /// producer beyond the first keeps its own `m x d` feature cache);
    /// `None` with the default single producer.
    _staging: Option<ep2_device::memory::Allocation>,
    /// Producer panics survived (tile requeued, producer revived or its work
    /// redistributed) across this engine's epochs.
    recoveries: usize,
    /// Human-readable log of the deaths behind [`StreamEngine::recoveries`].
    fault_log: Vec<String>,
}

impl<S: Scalar> std::fmt::Debug for StreamEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamEngine")
            .field("plan", &self.plan)
            .field("producers", &self.producers)
            .finish_non_exhaustive()
    }
}

impl<S: Scalar> StreamEngine<S> {
    /// Builds the engine: caches the center row norms and charges the tile
    /// ring against `ledger`.
    ///
    /// # Errors
    ///
    /// Returns the ledger's [`MemoryError`] when the ring does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `centers` does not match the plan's `n x d` shape.
    pub fn new(
        kernel: Arc<dyn Kernel<S>>,
        centers: Arc<Matrix<S>>,
        plan: BlockPlan,
        ledger: &MemoryLedger,
    ) -> Result<Self, MemoryError> {
        assert_eq!(
            centers.shape(),
            (plan.n, plan.d),
            "centers must be the plan's n x d training matrix"
        );
        let ring = TileRing::new(&plan, ledger)?;
        // Producer count from the plan's thread partition (planned by the
        // overlap model, or pinned by config/CLI/deprecated env var — see
        // `BlockPlan::threads`). More producers than ring-slots-minus-one
        // can deadlock (the consumer may stash up to producers-1
        // out-of-order tiles while the in-order producer still needs a free
        // buffer), so clamp.
        let producers = plan.threads.producers.min(plan.tiles_in_flight - 1).max(1);
        // The budget formula reserves `(tiles_in_flight − 1)·d·m` staged
        // batch blocks — the liveness-bound worst case — but the trainer's
        // static guard holds only the first; every extra producer keeps its
        // own staged copy, so charge the surplus here too. The ledger's
        // peak must reflect true residency, not the single-producer
        // assumption.
        let staging =
            if producers > 1 {
                Some(ledger.alloc(
                    ((producers - 1) * plan.m * plan.d) as f64 * plan.precision.slot_factor(),
                )?)
            } else {
                None
            };
        let center_norms = kmat::row_sq_norms(&centers);
        Ok(StreamEngine {
            kernel,
            centers,
            center_norms,
            plan,
            ring,
            producers,
            _staging: staging,
            recoveries: 0,
            fault_log: Vec::new(),
        })
    }

    /// The tiling in effect.
    pub fn plan(&self) -> &BlockPlan {
        &self.plan
    }

    /// Producer threads in use.
    pub fn producers(&self) -> usize {
        self.producers
    }

    /// Producer panics this engine has survived across all epochs so far
    /// (each one cost a tile retry, not the epoch).
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// One entry per recovered producer death: who died, on which tile seq,
    /// with what panic payload.
    pub fn fault_log(&self) -> &[String] {
        &self.fault_log
    }

    /// Streams one epoch: for every mini-batch `b` (row indices into the
    /// centers), the producers assemble the batch's kernel-block tiles into
    /// ring buffers while `consume(b, tiles)` drains them **in column
    /// order** and applies the training update. Assembly of the next tile
    /// (and the next batch's tiles) overlaps the consumer's work; dropping
    /// each [`TileGuard`] recycles its buffer to the producers.
    ///
    /// A consumer that stops iterating early still returns its buffers (the
    /// stream drains itself on drop), so the engine is reusable afterwards.
    ///
    /// Producer panics do **not** end the epoch: each producer's supervisor
    /// requeues the lost tile, restores the ring, and revives the producer
    /// under a bounded retry budget (`RESPAWN_FACTOR` revivals per
    /// producer per epoch). Survived deaths are tallied in
    /// [`StreamEngine::recoveries`] and [`StreamEngine::fault_log`].
    ///
    /// # Panics
    ///
    /// Panics if a batch index is out of range, a consumer leaks a
    /// [`TileGuard`] past the end of the epoch, or every producer has died
    /// with the retry budget exhausted — the panic message then reports
    /// which producers died, on which tile seqs, and why.
    pub fn run_epoch<F>(&mut self, batches: &[&[usize]], mut consume: F)
    where
        F: FnMut(usize, &mut TileStream<'_, S>),
    {
        if batches.is_empty() {
            return;
        }
        let tiles_per_batch = self.plan.n_tiles();
        let tasks: Vec<Task> = batches
            .iter()
            .enumerate()
            .flat_map(|(bi, _)| {
                self.plan.tile_ranges().map(move |r| Task {
                    batch: bi,
                    col0: r.start,
                    col1: r.end,
                })
            })
            .collect();
        let capacity = self.ring.capacity();
        let (empty_tx, empty_rx) = sync_channel::<Vec<S>>(capacity);
        let (filled_tx, filled_rx) = sync_channel::<Filled<S>>(capacity);
        for buf in self.ring.take_buffers() {
            empty_tx.send(buf).expect("fresh channel accepts the ring");
        }
        // The `respawn_budget` failpoint overrides the revival budget so
        // chaos tests can exercise the budget-exhausted error path without
        // needing RESPAWN_FACTOR·producers distinct panics.
        let respawns = ep2_runtime::faults::payload("respawn_budget")
            .map_or((RESPAWN_FACTOR * self.producers) as isize, |v| v as isize);
        let shared = EpochShared {
            next_task: AtomicUsize::new(0),
            retry: Mutex::new(Vec::new()),
            done: AtomicUsize::new(0),
            total: tasks.len(),
            respawns_left: AtomicIsize::new(respawns),
            deaths: Mutex::new(Vec::new()),
            empty_rx: Mutex::new(empty_rx),
        };

        // Producers run as runtime stage tasks under the plan's per-producer
        // assembly budget; the consumer (this thread) runs under the update
        // budget. Both sides' inner GEMMs size themselves from those
        // handles, so the pipeline as a whole stays inside one core budget
        // instead of each layer threading independently.
        let thread_plan = self.plan.threads;
        ep2_runtime::scope(|scope| {
            for id in 0..self.producers {
                let filled_tx = filled_tx.clone();
                let empty_tx = empty_tx.clone();
                let shared = &shared;
                let tasks = &tasks;
                let engine = &*self;
                scope.spawn(thread_plan.producer_threads, move || {
                    engine.supervise(id, batches, tasks, shared, &empty_tx, &filled_tx);
                });
            }
            drop(filled_tx);

            ep2_runtime::with_budget(thread_plan.update_threads, || {
                let mut pending: BTreeMap<usize, Filled<S>> = BTreeMap::new();
                for bi in 0..batches.len() {
                    let mut stream = TileStream {
                        filled: &filled_rx,
                        pending: &mut pending,
                        recycle: &empty_tx,
                        deaths: &shared.deaths,
                        next_seq: bi * tiles_per_batch,
                        end_seq: (bi + 1) * tiles_per_batch,
                    };
                    consume(bi, &mut stream);
                    // `stream` drains on drop: unconsumed tiles recycle here.
                }
            });
        });

        // Producers have exited and every guard is dropped: the buffers are
        // all back in the empty channel. Reclaim them for the next epoch.
        drop(empty_tx);
        let buffers: Vec<Vec<S>> = lock(&shared.empty_rx).try_iter().collect();
        self.ring.restore(buffers);
        // The epoch completed, so every recorded death was survived: tally
        // it as a recovery.
        let deaths = shared
            .deaths
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        self.recoveries += deaths.len();
        self.fault_log
            .extend(deaths.iter().map(ProducerDeath::to_string));
    }

    /// Supervisor for one producer: runs the producer loop, catches its
    /// panics, repairs the pipeline (requeue the claimed tile, restore the
    /// ring's buffer count), and revives the producer with exponential
    /// backoff while the epoch's retry budget lasts. With the budget
    /// exhausted the supervisor exits; surviving producers pick up the
    /// requeued tile, and if none survive the consumer reports the deaths.
    fn supervise(
        &self,
        id: usize,
        batches: &[&[usize]],
        tasks: &[Task],
        shared: &EpochShared<S>,
        empty_tx: &SyncSender<Vec<S>>,
        filled_tx: &SyncSender<Filled<S>>,
    ) {
        let mut incarnation = 0usize;
        loop {
            // usize::MAX = no tile claimed; set after a claim, cleared once
            // the tile is delivered (or the buffer returned).
            let in_flight = AtomicUsize::new(usize::MAX);
            let holds_buffer = AtomicBool::new(false);
            let result = catch_unwind(AssertUnwindSafe(|| {
                self.produce(
                    batches,
                    tasks,
                    shared,
                    &in_flight,
                    &holds_buffer,
                    empty_tx,
                    filled_tx,
                )
            }));
            let Err(payload) = result else { return };
            // Repair order matters: requeue the lost tile *before* restoring
            // the ring count, so a peer woken by the replacement buffer
            // already sees the retry.
            let seq = match in_flight.load(Ordering::SeqCst) {
                usize::MAX => None,
                s => Some(s),
            };
            if let Some(seq) = seq {
                lock(&shared.retry).push(seq);
            }
            if holds_buffer.load(Ordering::SeqCst) {
                // The panicking producer dropped its ring buffer during
                // unwinding; hand in a fresh one so the ring stays whole
                // (the ledger charge lives in the ring, not the Vec, so
                // accounting is unchanged).
                let _ = empty_tx.send(Vec::new());
            }
            let respawned = shared.respawns_left.fetch_sub(1, Ordering::SeqCst) > 0;
            lock(&shared.deaths).push(ProducerDeath {
                producer: id,
                incarnation,
                seq,
                message: panic_message(payload.as_ref()),
                respawned,
            });
            if !respawned {
                return;
            }
            std::thread::sleep(Duration::from_millis(1 << incarnation.min(4)));
            incarnation += 1;
        }
    }

    /// Producer loop: acquire a free buffer, claim the next task in
    /// sequence order, assemble its tile, hand it to the consumer channel.
    ///
    /// The buffer is acquired **before** the task is claimed. This is the
    /// pipeline's liveness invariant: every claimed-but-undelivered task
    /// already owns a ring buffer, so the producer holding the smallest
    /// outstanding sequence number can always finish — no matter how far a
    /// faster producer races ahead. (Claim-then-acquire deadlocks: the fast
    /// producer can fill every buffer with future tiles the consumer must
    /// stash while the tile it actually needs has no buffer left to be
    /// assembled into.)
    #[allow(clippy::too_many_arguments)] // the supervisor's repair state, 1:1
    fn produce(
        &self,
        batches: &[&[usize]],
        tasks: &[Task],
        shared: &EpochShared<S>,
        in_flight: &AtomicUsize,
        holds_buffer: &AtomicBool,
        empty_tx: &SyncSender<Vec<S>>,
        filled_tx: &SyncSender<Filled<S>>,
    ) {
        let d = self.plan.d;
        // Batch features + their norms, cached across this batch's tiles.
        let mut cached: Option<(usize, Matrix<S>, Vec<S::Accum>)> = None;
        loop {
            // Blocking on an empty ring is the backpressure: assembly stalls
            // until the consumer recycles a buffer.
            let mut buf = {
                let rx = lock(&shared.empty_rx);
                rx.recv().expect("ring alive while the engine runs")
            };
            holds_buffer.store(true, Ordering::SeqCst);
            // Claim a tile: one requeued from a dead peer first, else the
            // next fresh seq. A producer with nothing to claim while tiles
            // are still undelivered does NOT exit — a peer may yet die and
            // requeue its tile — it parks briefly and re-checks, leaving
            // only once every tile has been handed to the consumer channel.
            let mut claimed = None;
            while claimed.is_none() {
                if let Some(seq) = lock(&shared.retry).pop() {
                    claimed = Some(seq);
                    break;
                }
                let seq = shared.next_task.fetch_add(1, Ordering::Relaxed);
                if seq < shared.total {
                    claimed = Some(seq);
                    break;
                }
                if shared.done.load(Ordering::SeqCst) >= shared.total {
                    break;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            let Some(seq) = claimed else {
                // Every tile delivered: hand the buffer back for the
                // epilogue drain and exit.
                holds_buffer.store(false, Ordering::SeqCst);
                let _ = empty_tx.send(buf);
                break;
            };
            in_flight.store(seq, Ordering::SeqCst);
            // `producer_panic@tile=seq` kills this producer exactly here —
            // after the claim, before assembly — the worst spot: the tile is
            // claimed, the buffer is held, and the consumer is waiting on
            // this very seq.
            if ep2_runtime::faults::fire_at("producer_panic", seq as u64) {
                panic!("injected fault: producer_panic at tile seq {seq}");
            }
            let task = &tasks[seq];
            let fresh = match &cached {
                Some((bi, _, _)) => *bi != task.batch,
                None => true,
            };
            if fresh {
                let batch_x = self.centers.select_rows(batches[task.batch]);
                let norms = kmat::row_sq_norms(&batch_x);
                cached = Some((task.batch, batch_x, norms));
            }
            let (_, batch_x, batch_norms) = cached.as_ref().expect("cached above");
            let (rows, cols) = (batch_x.rows(), task.col1 - task.col0);
            buf.resize(rows * cols, S::ZERO);
            let mut block = Matrix::from_vec(rows, cols, buf);
            // Stage the tile's center slice (the d·n_tile ledger charge the
            // ring slot carries) and assemble through the packed GEMM path,
            // reusing the cached norms on both sides. `kernel_cross_into`
            // applies the radial profile (and any bf16 narrowing) in the
            // GEMM epilogue, so producers fill each tile in one sweep —
            // no separate element pass over the block.
            let tile_centers = self.centers.submatrix(task.col0, 0, cols, d);
            kmat::kernel_cross_into(
                self.kernel.as_ref(),
                batch_x,
                &tile_centers,
                batch_norms,
                &self.center_norms[task.col0..task.col1],
                &mut block,
            );
            if let Err(err) = filled_tx.send(Filled {
                seq,
                col0: task.col0,
                block,
            }) {
                // Consumer hung up early; recover the buffer so the ring
                // stays whole, then stop.
                in_flight.store(usize::MAX, Ordering::SeqCst);
                holds_buffer.store(false, Ordering::SeqCst);
                let _ = empty_tx.send(err.0.block.into_vec());
                break;
            }
            // Delivered: ownership of the buffer moved to the consumer.
            holds_buffer.store(false, Ordering::SeqCst);
            in_flight.store(usize::MAX, Ordering::SeqCst);
            shared.done.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Iterator over one mini-batch's tiles, delivered strictly in column
/// order (out-of-order arrivals from parallel producers are reordered by
/// sequence number). Yields [`TileGuard`]s; dropping a guard — or the whole
/// stream — recycles buffers to the producers.
pub struct TileStream<'a, S: Scalar> {
    filled: &'a Receiver<Filled<S>>,
    pending: &'a mut BTreeMap<usize, Filled<S>>,
    recycle: &'a SyncSender<Vec<S>>,
    /// The epoch's death log, consulted to name the culprits when the
    /// producers are all gone with tiles still undelivered.
    deaths: &'a Mutex<Vec<ProducerDeath>>,
    next_seq: usize,
    end_seq: usize,
}

impl<S: Scalar> std::fmt::Debug for TileStream<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TileStream")
            .field("next_seq", &self.next_seq)
            .field("end_seq", &self.end_seq)
            .finish_non_exhaustive()
    }
}

impl<S: Scalar> Iterator for TileStream<'_, S> {
    type Item = TileGuard<S>;

    fn next(&mut self) -> Option<TileGuard<S>> {
        if self.next_seq >= self.end_seq {
            return None;
        }
        let want = self.next_seq;
        let filled = match self.pending.remove(&want) {
            Some(f) => f,
            None => loop {
                // A closed channel means every producer (and every
                // supervisor revival) has exited with this tile still
                // undelivered. Report *which* producers died, where, and
                // why — not just that one did.
                let f = match self.filled.recv() {
                    Ok(f) => f,
                    Err(_) => {
                        let deaths = lock(self.deaths);
                        let detail = if deaths.is_empty() {
                            "no producer deaths were recorded".to_string()
                        } else {
                            deaths
                                .iter()
                                .map(ProducerDeath::to_string)
                                .collect::<Vec<_>>()
                                .join("; ")
                        };
                        panic!(
                            "stream pipeline failed: all tile producers exited with tile \
                             seq {want} still undelivered — {detail}"
                        );
                    }
                };
                if f.seq == want {
                    break f;
                }
                self.pending.insert(f.seq, f);
            },
        };
        self.next_seq += 1;
        Some(TileGuard::new(
            filled.col0,
            filled.block,
            self.recycle.clone(),
        ))
    }
}

impl<S: Scalar> TileStream<'_, S> {
    /// Columns still to be delivered (for consumers that pre-size
    /// accumulators).
    pub fn remaining_tiles(&self) -> Range<usize> {
        self.next_seq..self.end_seq
    }
}

impl<S: Scalar> Drop for TileStream<'_, S> {
    fn drop(&mut self) {
        // Drain unconsumed tiles so their buffers recycle and the producers
        // (and the next batch's stream) never stall on a leaked slot. Unlike
        // `next`, never panic here (drop may run during unwinding): a dead
        // channel just ends the drain.
        let mut outstanding = self.end_seq.saturating_sub(self.next_seq);
        while outstanding > 0 {
            let in_window: Vec<usize> = self
                .pending
                .range(self.next_seq..self.end_seq)
                .map(|(&k, _)| k)
                .collect();
            for k in in_window {
                let f = self.pending.remove(&k).expect("key listed above");
                let _ = self.recycle.send(f.block.into_vec());
                outstanding -= 1;
            }
            if outstanding == 0 {
                break;
            }
            match self.filled.recv() {
                Ok(f) if f.seq < self.end_seq => {
                    let _ = self.recycle.send(f.block.into_vec());
                    outstanding -= 1;
                }
                // A later batch's tile: keep it for the next stream.
                Ok(f) => {
                    self.pending.insert(f.seq, f);
                }
                Err(_) => break,
            }
        }
        self.next_seq = self.end_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_device::Precision;
    use ep2_kernels::GaussianKernel;

    fn points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(n, d, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    /// Builds a 2-producer engine: the count is explicit plan
    /// configuration now (`BlockPlan::with_producers`), so no process-global
    /// env var — and no env mutex — is involved.
    fn two_producer_engine(
        n: usize,
        d: usize,
        n_tile: usize,
        m: usize,
    ) -> (StreamEngine<f64>, MemoryLedger) {
        engine_with(n, d, n_tile, m, Some(2))
    }

    fn engine(n: usize, d: usize, n_tile: usize, m: usize) -> (StreamEngine<f64>, MemoryLedger) {
        engine_with(n, d, n_tile, m, None)
    }

    fn engine_with(
        n: usize,
        d: usize,
        n_tile: usize,
        m: usize,
        producers: Option<usize>,
    ) -> (StreamEngine<f64>, MemoryLedger) {
        let mut plan = BlockPlan::new(n, d, 1, m, n_tile, 3, Precision::F64);
        if let Some(p) = producers {
            plan = plan.with_producers(p);
        }
        let ledger = MemoryLedger::new(plan.total_slots());
        let kernel: Arc<dyn Kernel> = Arc::new(GaussianKernel::new(1.5));
        let centers = Arc::new(points(n, d, 7));
        let engine = StreamEngine::new(kernel, centers, plan, &ledger).unwrap();
        (engine, ledger)
    }

    /// Streamed tiles, concatenated, must equal the one-shot kernel block.
    #[test]
    fn streamed_tiles_reassemble_the_kernel_block() {
        let (mut engine, ledger) = engine(157, 9, 24, 32);
        let kernel = GaussianKernel::new(1.5);
        let idx_a: Vec<usize> = (0..32).collect();
        let idx_b: Vec<usize> = (100..157).rev().collect(); // smaller, unsorted batch
        let batches: Vec<&[usize]> = vec![&idx_a, &idx_b];
        let mut got: Vec<Matrix> = vec![];
        engine.run_epoch(&batches, |bi, tiles| {
            let rows = batches[bi].len();
            let mut full = Matrix::zeros(rows, 157);
            for tile in tiles {
                let r = tile.col_range();
                assert_eq!(tile.block().rows(), rows);
                for i in 0..rows {
                    full.row_mut(i)[r.start..r.end].copy_from_slice(tile.block().row(i));
                }
            }
            got.push(full);
        });
        for (bi, batch) in batches.iter().enumerate() {
            let bx = engine.centers.select_rows(batch);
            let expect = kmat::kernel_cross(&kernel, &bx, &engine.centers);
            assert_eq!(got[bi].as_slice(), expect.as_slice(), "batch {bi}");
        }
        // Ring still charged (engine alive), and never over budget. The
        // engine also holds one surplus `m x d` staging charge per extra
        // producer (the planned count depends on the ambient thread
        // budget, so derive the expectation from it).
        assert!(ledger.peak_slots() <= ledger.budget());
        let staging = ((engine.producers() - 1) * engine.plan().m * engine.plan().d) as f64 * 2.0;
        assert_eq!(
            ledger.in_use(),
            3.0 * engine.plan().slots_per_tile() + staging
        );
    }

    /// The engine survives a consumer that abandons the stream mid-batch,
    /// and can run another epoch afterwards.
    #[test]
    fn early_consumer_exit_recycles_buffers() {
        let (mut engine, _ledger) = engine(200, 5, 32, 16);
        let idx: Vec<usize> = (0..16).collect();
        let batches: Vec<&[usize]> = vec![&idx, &idx, &idx];
        let mut first_cols = 0;
        engine.run_epoch(&batches, |bi, tiles| {
            if bi == 0 {
                // Take a single tile, drop the rest.
                first_cols = tiles.next().unwrap().block().cols();
            }
        });
        assert_eq!(first_cols, 32);
        // Second epoch still works (buffers all returned).
        let mut tiles_seen = 0;
        engine.run_epoch(&batches[..1], |_, tiles| {
            tiles_seen = tiles.by_ref().count();
        });
        assert_eq!(tiles_seen, 200usize.div_ceil(32));
    }

    /// Regression: with multiple producers and narrow tiles, a fast
    /// producer used to race ahead, claim future tasks, and fill every ring
    /// buffer with tiles the consumer could only stash — while the producer
    /// of the next-needed tile starved for a buffer (deadlock). Buffers are
    /// now acquired *before* tasks are claimed, so the smallest outstanding
    /// tile always owns the buffer it needs; this config (2 producers, 3
    /// buffers, 50 tiles per batch, repeated epochs) reproduced the hang
    /// within a few runs before the fix.
    #[test]
    fn multi_producer_stress_does_not_deadlock() {
        let (mut engine, _ledger) = two_producer_engine(400, 4, 8, 16);
        assert_eq!(engine.producers(), 2);
        let idx: Vec<usize> = (0..16).collect();
        let batches: Vec<&[usize]> = vec![&idx; 6];
        for _ in 0..5 {
            engine.run_epoch(&batches, |_, tiles| {
                assert_eq!(tiles.count(), 400usize.div_ceil(8));
            });
        }
    }

    /// Multiple producers deliver tiles in order through the reorder map.
    #[test]
    fn multi_producer_delivery_stays_ordered() {
        let (mut engine, _ledger) = two_producer_engine(300, 6, 16, 24);
        assert_eq!(engine.producers(), 2);
        let idx: Vec<usize> = (0..24).collect();
        let batches: Vec<&[usize]> = vec![&idx; 4];
        engine.run_epoch(&batches, |_, tiles| {
            let mut next_col = 0;
            for tile in tiles {
                assert_eq!(tile.col_range().start, next_col, "out-of-order tile");
                next_col = tile.col_range().end;
            }
            assert_eq!(next_col, 300);
        });
    }
}
