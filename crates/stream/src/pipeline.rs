//! The producer/consumer pipeline: tile assembly overlapped with the
//! training update through two bounded channels and a recycled buffer ring.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};

use crate::plan::BlockPlan;
use crate::ring::{TileGuard, TileRing};
use ep2_device::{MemoryError, MemoryLedger};
use ep2_kernels::{matrix as kmat, Kernel};
use ep2_linalg::{Matrix, Scalar};

/// One assembled tile travelling producer → consumer.
struct Filled<S: Scalar> {
    seq: usize,
    col0: usize,
    block: Matrix<S>,
}

/// One tile-assembly work item.
#[derive(Clone, Copy)]
struct Task {
    batch: usize,
    col0: usize,
    col1: usize,
}

/// The out-of-core streaming engine: assembles `m x n_tile` kernel-block
/// tiles on producer threads and hands them to a consumer in tile order,
/// with backpressure through a bounded ring of ledger-charged buffers.
///
/// The engine owns shared (immutable) handles to the kernel and the center
/// matrix, plus the per-run caches the producers reuse: the centers' squared
/// row norms (computed once) and the ring buffers (charged once). One engine
/// serves a whole training run; [`StreamEngine::run_epoch`] is called once
/// per epoch with that epoch's shuffled mini-batches.
pub struct StreamEngine<S: Scalar> {
    kernel: Arc<dyn Kernel<S>>,
    centers: Arc<Matrix<S>>,
    center_norms: Vec<S::Accum>,
    plan: BlockPlan,
    ring: TileRing<S>,
    producers: usize,
    /// Ledger charge for the extra per-producer staged batch blocks (each
    /// producer beyond the first keeps its own `m x d` feature cache);
    /// `None` with the default single producer.
    _staging: Option<ep2_device::memory::Allocation>,
}

impl<S: Scalar> std::fmt::Debug for StreamEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamEngine")
            .field("plan", &self.plan)
            .field("producers", &self.producers)
            .finish_non_exhaustive()
    }
}

impl<S: Scalar> StreamEngine<S> {
    /// Builds the engine: caches the center row norms and charges the tile
    /// ring against `ledger`.
    ///
    /// # Errors
    ///
    /// Returns the ledger's [`MemoryError`] when the ring does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `centers` does not match the plan's `n x d` shape.
    pub fn new(
        kernel: Arc<dyn Kernel<S>>,
        centers: Arc<Matrix<S>>,
        plan: BlockPlan,
        ledger: &MemoryLedger,
    ) -> Result<Self, MemoryError> {
        assert_eq!(
            centers.shape(),
            (plan.n, plan.d),
            "centers must be the plan's n x d training matrix"
        );
        let ring = TileRing::new(&plan, ledger)?;
        // Producer count from the plan's thread partition (planned by the
        // overlap model, or pinned by config/CLI/deprecated env var — see
        // `BlockPlan::threads`). More producers than ring-slots-minus-one
        // can deadlock (the consumer may stash up to producers-1
        // out-of-order tiles while the in-order producer still needs a free
        // buffer), so clamp.
        let producers = plan.threads.producers.min(plan.tiles_in_flight - 1).max(1);
        // The budget formula reserves `(tiles_in_flight − 1)·d·m` staged
        // batch blocks — the liveness-bound worst case — but the trainer's
        // static guard holds only the first; every extra producer keeps its
        // own staged copy, so charge the surplus here too. The ledger's
        // peak must reflect true residency, not the single-producer
        // assumption.
        let staging =
            if producers > 1 {
                Some(ledger.alloc(
                    ((producers - 1) * plan.m * plan.d) as f64 * plan.precision.slot_factor(),
                )?)
            } else {
                None
            };
        let center_norms = kmat::row_sq_norms(&centers);
        Ok(StreamEngine {
            kernel,
            centers,
            center_norms,
            plan,
            ring,
            producers,
            _staging: staging,
        })
    }

    /// The tiling in effect.
    pub fn plan(&self) -> &BlockPlan {
        &self.plan
    }

    /// Producer threads in use.
    pub fn producers(&self) -> usize {
        self.producers
    }

    /// Streams one epoch: for every mini-batch `b` (row indices into the
    /// centers), the producers assemble the batch's kernel-block tiles into
    /// ring buffers while `consume(b, tiles)` drains them **in column
    /// order** and applies the training update. Assembly of the next tile
    /// (and the next batch's tiles) overlaps the consumer's work; dropping
    /// each [`TileGuard`] recycles its buffer to the producers.
    ///
    /// A consumer that stops iterating early still returns its buffers (the
    /// stream drains itself on drop), so the engine is reusable afterwards.
    ///
    /// # Panics
    ///
    /// Panics if a batch index is out of range, a producer thread dies, or
    /// a consumer leaks a [`TileGuard`] past the end of the epoch.
    pub fn run_epoch<F>(&mut self, batches: &[&[usize]], mut consume: F)
    where
        F: FnMut(usize, &mut TileStream<'_, S>),
    {
        if batches.is_empty() {
            return;
        }
        let tiles_per_batch = self.plan.n_tiles();
        let tasks: Vec<Task> = batches
            .iter()
            .enumerate()
            .flat_map(|(bi, _)| {
                self.plan.tile_ranges().map(move |r| Task {
                    batch: bi,
                    col0: r.start,
                    col1: r.end,
                })
            })
            .collect();
        let capacity = self.ring.capacity();
        let (empty_tx, empty_rx) = sync_channel::<Vec<S>>(capacity);
        let (filled_tx, filled_rx) = sync_channel::<Filled<S>>(capacity);
        for buf in self.ring.take_buffers() {
            empty_tx.send(buf).expect("fresh channel accepts the ring");
        }
        let empty_rx = Mutex::new(empty_rx);
        let next_task = AtomicUsize::new(0);

        // Producers run as runtime stage tasks under the plan's per-producer
        // assembly budget; the consumer (this thread) runs under the update
        // budget. Both sides' inner GEMMs size themselves from those
        // handles, so the pipeline as a whole stays inside one core budget
        // instead of each layer threading independently.
        let thread_plan = self.plan.threads;
        ep2_runtime::scope(|scope| {
            for _ in 0..self.producers {
                let filled_tx = filled_tx.clone();
                let empty_tx = empty_tx.clone();
                let empty_rx = &empty_rx;
                let next_task = &next_task;
                let tasks = &tasks;
                let engine = &*self;
                scope.spawn(thread_plan.producer_threads, move || {
                    engine.produce(batches, tasks, next_task, empty_rx, &empty_tx, &filled_tx);
                });
            }
            drop(filled_tx);

            ep2_runtime::with_budget(thread_plan.update_threads, || {
                let mut pending: BTreeMap<usize, Filled<S>> = BTreeMap::new();
                for bi in 0..batches.len() {
                    let mut stream = TileStream {
                        filled: &filled_rx,
                        pending: &mut pending,
                        recycle: &empty_tx,
                        next_seq: bi * tiles_per_batch,
                        end_seq: (bi + 1) * tiles_per_batch,
                    };
                    consume(bi, &mut stream);
                    // `stream` drains on drop: unconsumed tiles recycle here.
                }
            });
        });

        // Producers have exited and every guard is dropped: the buffers are
        // all back in the empty channel. Reclaim them for the next epoch.
        drop(empty_tx);
        let buffers: Vec<Vec<S>> = empty_rx
            .into_inner()
            .expect("no panic held the receiver")
            .try_iter()
            .collect();
        self.ring.restore(buffers);
    }

    /// Producer loop: acquire a free buffer, claim the next task in
    /// sequence order, assemble its tile, hand it to the consumer channel.
    ///
    /// The buffer is acquired **before** the task is claimed. This is the
    /// pipeline's liveness invariant: every claimed-but-undelivered task
    /// already owns a ring buffer, so the producer holding the smallest
    /// outstanding sequence number can always finish — no matter how far a
    /// faster producer races ahead. (Claim-then-acquire deadlocks: the fast
    /// producer can fill every buffer with future tiles the consumer must
    /// stash while the tile it actually needs has no buffer left to be
    /// assembled into.)
    fn produce(
        &self,
        batches: &[&[usize]],
        tasks: &[Task],
        next_task: &AtomicUsize,
        empty_rx: &Mutex<Receiver<Vec<S>>>,
        empty_tx: &SyncSender<Vec<S>>,
        filled_tx: &SyncSender<Filled<S>>,
    ) {
        let d = self.plan.d;
        // Batch features + their norms, cached across this batch's tiles.
        let mut cached: Option<(usize, Matrix<S>, Vec<S::Accum>)> = None;
        loop {
            // Blocking on an empty ring is the backpressure: assembly stalls
            // until the consumer recycles a buffer.
            let mut buf = {
                let rx = empty_rx.lock().expect("empty-channel receiver");
                rx.recv().expect("ring alive while the engine runs")
            };
            let seq = next_task.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(seq) else {
                // No work left: hand the buffer back for the epilogue drain.
                let _ = empty_tx.send(buf);
                break;
            };
            let fresh = match &cached {
                Some((bi, _, _)) => *bi != task.batch,
                None => true,
            };
            if fresh {
                let batch_x = self.centers.select_rows(batches[task.batch]);
                let norms = kmat::row_sq_norms(&batch_x);
                cached = Some((task.batch, batch_x, norms));
            }
            let (_, batch_x, batch_norms) = cached.as_ref().expect("cached above");
            let (rows, cols) = (batch_x.rows(), task.col1 - task.col0);
            buf.resize(rows * cols, S::ZERO);
            let mut block = Matrix::from_vec(rows, cols, buf);
            // Stage the tile's center slice (the d·n_tile ledger charge the
            // ring slot carries) and assemble through the packed GEMM path,
            // reusing the cached norms on both sides. `kernel_cross_into`
            // applies the radial profile (and any bf16 narrowing) in the
            // GEMM epilogue, so producers fill each tile in one sweep —
            // no separate element pass over the block.
            let tile_centers = self.centers.submatrix(task.col0, 0, cols, d);
            kmat::kernel_cross_into(
                self.kernel.as_ref(),
                batch_x,
                &tile_centers,
                batch_norms,
                &self.center_norms[task.col0..task.col1],
                &mut block,
            );
            if let Err(err) = filled_tx.send(Filled {
                seq,
                col0: task.col0,
                block,
            }) {
                // Consumer hung up early; recover the buffer so the ring
                // stays whole, then stop.
                let _ = empty_tx.send(err.0.block.into_vec());
                break;
            }
        }
    }
}

/// Iterator over one mini-batch's tiles, delivered strictly in column
/// order (out-of-order arrivals from parallel producers are reordered by
/// sequence number). Yields [`TileGuard`]s; dropping a guard — or the whole
/// stream — recycles buffers to the producers.
pub struct TileStream<'a, S: Scalar> {
    filled: &'a Receiver<Filled<S>>,
    pending: &'a mut BTreeMap<usize, Filled<S>>,
    recycle: &'a SyncSender<Vec<S>>,
    next_seq: usize,
    end_seq: usize,
}

impl<S: Scalar> std::fmt::Debug for TileStream<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TileStream")
            .field("next_seq", &self.next_seq)
            .field("end_seq", &self.end_seq)
            .finish_non_exhaustive()
    }
}

impl<S: Scalar> Iterator for TileStream<'_, S> {
    type Item = TileGuard<S>;

    fn next(&mut self) -> Option<TileGuard<S>> {
        if self.next_seq >= self.end_seq {
            return None;
        }
        let want = self.next_seq;
        let filled = match self.pending.remove(&want) {
            Some(f) => f,
            None => loop {
                let f = self
                    .filled
                    .recv()
                    .expect("tile producer died before finishing the epoch");
                if f.seq == want {
                    break f;
                }
                self.pending.insert(f.seq, f);
            },
        };
        self.next_seq += 1;
        Some(TileGuard::new(
            filled.col0,
            filled.block,
            self.recycle.clone(),
        ))
    }
}

impl<S: Scalar> TileStream<'_, S> {
    /// Columns still to be delivered (for consumers that pre-size
    /// accumulators).
    pub fn remaining_tiles(&self) -> Range<usize> {
        self.next_seq..self.end_seq
    }
}

impl<S: Scalar> Drop for TileStream<'_, S> {
    fn drop(&mut self) {
        // Drain unconsumed tiles so their buffers recycle and the producers
        // (and the next batch's stream) never stall on a leaked slot. Unlike
        // `next`, never panic here (drop may run during unwinding): a dead
        // channel just ends the drain.
        let mut outstanding = self.end_seq.saturating_sub(self.next_seq);
        while outstanding > 0 {
            let in_window: Vec<usize> = self
                .pending
                .range(self.next_seq..self.end_seq)
                .map(|(&k, _)| k)
                .collect();
            for k in in_window {
                let f = self.pending.remove(&k).expect("key listed above");
                let _ = self.recycle.send(f.block.into_vec());
                outstanding -= 1;
            }
            if outstanding == 0 {
                break;
            }
            match self.filled.recv() {
                Ok(f) if f.seq < self.end_seq => {
                    let _ = self.recycle.send(f.block.into_vec());
                    outstanding -= 1;
                }
                // A later batch's tile: keep it for the next stream.
                Ok(f) => {
                    self.pending.insert(f.seq, f);
                }
                Err(_) => break,
            }
        }
        self.next_seq = self.end_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_device::Precision;
    use ep2_kernels::GaussianKernel;

    fn points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(n, d, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    /// Builds a 2-producer engine: the count is explicit plan
    /// configuration now (`BlockPlan::with_producers`), so no process-global
    /// env var — and no env mutex — is involved.
    fn two_producer_engine(
        n: usize,
        d: usize,
        n_tile: usize,
        m: usize,
    ) -> (StreamEngine<f64>, MemoryLedger) {
        engine_with(n, d, n_tile, m, Some(2))
    }

    fn engine(n: usize, d: usize, n_tile: usize, m: usize) -> (StreamEngine<f64>, MemoryLedger) {
        engine_with(n, d, n_tile, m, None)
    }

    fn engine_with(
        n: usize,
        d: usize,
        n_tile: usize,
        m: usize,
        producers: Option<usize>,
    ) -> (StreamEngine<f64>, MemoryLedger) {
        let mut plan = BlockPlan::new(n, d, 1, m, n_tile, 3, Precision::F64);
        if let Some(p) = producers {
            plan = plan.with_producers(p);
        }
        let ledger = MemoryLedger::new(plan.total_slots());
        let kernel: Arc<dyn Kernel> = Arc::new(GaussianKernel::new(1.5));
        let centers = Arc::new(points(n, d, 7));
        let engine = StreamEngine::new(kernel, centers, plan, &ledger).unwrap();
        (engine, ledger)
    }

    /// Streamed tiles, concatenated, must equal the one-shot kernel block.
    #[test]
    fn streamed_tiles_reassemble_the_kernel_block() {
        let (mut engine, ledger) = engine(157, 9, 24, 32);
        let kernel = GaussianKernel::new(1.5);
        let idx_a: Vec<usize> = (0..32).collect();
        let idx_b: Vec<usize> = (100..157).rev().collect(); // smaller, unsorted batch
        let batches: Vec<&[usize]> = vec![&idx_a, &idx_b];
        let mut got: Vec<Matrix> = vec![];
        engine.run_epoch(&batches, |bi, tiles| {
            let rows = batches[bi].len();
            let mut full = Matrix::zeros(rows, 157);
            for tile in tiles {
                let r = tile.col_range();
                assert_eq!(tile.block().rows(), rows);
                for i in 0..rows {
                    full.row_mut(i)[r.start..r.end].copy_from_slice(tile.block().row(i));
                }
            }
            got.push(full);
        });
        for (bi, batch) in batches.iter().enumerate() {
            let bx = engine.centers.select_rows(batch);
            let expect = kmat::kernel_cross(&kernel, &bx, &engine.centers);
            assert_eq!(got[bi].as_slice(), expect.as_slice(), "batch {bi}");
        }
        // Ring still charged (engine alive), and never over budget. The
        // engine also holds one surplus `m x d` staging charge per extra
        // producer (the planned count depends on the ambient thread
        // budget, so derive the expectation from it).
        assert!(ledger.peak_slots() <= ledger.budget());
        let staging = ((engine.producers() - 1) * engine.plan().m * engine.plan().d) as f64 * 2.0;
        assert_eq!(
            ledger.in_use(),
            3.0 * engine.plan().slots_per_tile() + staging
        );
    }

    /// The engine survives a consumer that abandons the stream mid-batch,
    /// and can run another epoch afterwards.
    #[test]
    fn early_consumer_exit_recycles_buffers() {
        let (mut engine, _ledger) = engine(200, 5, 32, 16);
        let idx: Vec<usize> = (0..16).collect();
        let batches: Vec<&[usize]> = vec![&idx, &idx, &idx];
        let mut first_cols = 0;
        engine.run_epoch(&batches, |bi, tiles| {
            if bi == 0 {
                // Take a single tile, drop the rest.
                first_cols = tiles.next().unwrap().block().cols();
            }
        });
        assert_eq!(first_cols, 32);
        // Second epoch still works (buffers all returned).
        let mut tiles_seen = 0;
        engine.run_epoch(&batches[..1], |_, tiles| {
            tiles_seen = tiles.by_ref().count();
        });
        assert_eq!(tiles_seen, 200usize.div_ceil(32));
    }

    /// Regression: with multiple producers and narrow tiles, a fast
    /// producer used to race ahead, claim future tasks, and fill every ring
    /// buffer with tiles the consumer could only stash — while the producer
    /// of the next-needed tile starved for a buffer (deadlock). Buffers are
    /// now acquired *before* tasks are claimed, so the smallest outstanding
    /// tile always owns the buffer it needs; this config (2 producers, 3
    /// buffers, 50 tiles per batch, repeated epochs) reproduced the hang
    /// within a few runs before the fix.
    #[test]
    fn multi_producer_stress_does_not_deadlock() {
        let (mut engine, _ledger) = two_producer_engine(400, 4, 8, 16);
        assert_eq!(engine.producers(), 2);
        let idx: Vec<usize> = (0..16).collect();
        let batches: Vec<&[usize]> = vec![&idx; 6];
        for _ in 0..5 {
            engine.run_epoch(&batches, |_, tiles| {
                assert_eq!(tiles.count(), 400usize.div_ceil(8));
            });
        }
    }

    /// Multiple producers deliver tiles in order through the reorder map.
    #[test]
    fn multi_producer_delivery_stays_ordered() {
        let (mut engine, _ledger) = two_producer_engine(300, 6, 16, 24);
        assert_eq!(engine.producers(), 2);
        let idx: Vec<usize> = (0..24).collect();
        let batches: Vec<&[usize]> = vec![&idx; 4];
        engine.run_epoch(&batches, |_, tiles| {
            let mut next_col = 0;
            for tile in tiles {
                assert_eq!(tile.col_range().start, next_col, "out-of-order tile");
                next_col = tile.col_range().end;
            }
            assert_eq!(next_col, 300);
        });
    }
}
