//! The tiling planner: how an `m x n` kernel block is cut into ring tiles.

use ep2_device::batch::{self, StreamedBatchPlan};
use ep2_device::cost::{self, StreamThreadPlan};
use ep2_device::Precision;
use std::ops::Range;

/// A validated out-of-core tiling of the `m x n` mini-batch kernel block.
///
/// Produced from the streamed Step-1 plan
/// ([`ep2_device::batch::max_batch_streamed`]); carries everything the ring
/// and pipeline need: problem shape, tile width, ring depth, and the
/// precision whose slot width the ledger charges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPlan {
    /// Training points `n` (kernel-block columns).
    pub n: usize,
    /// Feature dimension `d`.
    pub d: usize,
    /// Output dimension `l`.
    pub l: usize,
    /// Mini-batch size `m` (kernel-block rows; the last batch of an epoch
    /// may be smaller).
    pub m: usize,
    /// Columns per tile.
    pub n_tile: usize,
    /// Ring depth (tiles charged to the ledger at once).
    pub tiles_in_flight: usize,
    /// Precision whose slot factor the ledger charges.
    pub precision: Precision,
    /// How the pipeline splits the core budget: producer count plus the
    /// thread-budget handles for each producer's assembly GEMM and the
    /// consumer's update. Defaulted from the overlap model at construction
    /// (with the deprecated `EP2_STREAM_PRODUCERS` env override applied);
    /// the trainer replaces it with the full-shape partition from
    /// `autotune::plan_streamed` via [`BlockPlan::with_stream_threads`].
    pub threads: StreamThreadPlan,
}

impl BlockPlan {
    /// Builds the plan from a streamed Step-1 outcome.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate plan (`n`, `m` or `n_tile` zero, or fewer
    /// than two ring slots — streaming needs double buffering).
    pub fn from_streamed(
        n: usize,
        d: usize,
        l: usize,
        splan: &StreamedBatchPlan,
        precision: Precision,
    ) -> Self {
        let plan = BlockPlan {
            n,
            d,
            l,
            m: splan.m,
            n_tile: splan.n_tile,
            tiles_in_flight: splan.tiles_in_flight,
            precision,
            threads: default_threads(n, d, l, splan.m, splan.n_tile),
        };
        plan.validate();
        plan
    }

    /// Builds a plan directly from its fields (tests and benches).
    ///
    /// # Panics
    ///
    /// Same conditions as [`BlockPlan::from_streamed`].
    pub fn new(
        n: usize,
        d: usize,
        l: usize,
        m: usize,
        n_tile: usize,
        tiles_in_flight: usize,
        precision: Precision,
    ) -> Self {
        let plan = BlockPlan {
            n,
            d,
            l,
            m,
            n_tile: n_tile.min(n),
            tiles_in_flight,
            precision,
            threads: default_threads(n, d, l, m, n_tile.min(n)),
        };
        plan.validate();
        plan
    }

    /// Replaces the thread partition (the trainer installs the full-shape
    /// partition computed by `autotune::plan_streamed` here).
    pub fn with_stream_threads(mut self, threads: StreamThreadPlan) -> Self {
        self.threads = threads;
        self
    }

    /// Pins the producer count, keeping each producer's per-task budget.
    /// Test/bench convenience for exercising a specific pipeline width.
    pub fn with_producers(mut self, producers: usize) -> Self {
        self.threads.producers = producers.max(1);
        self
    }

    fn validate(&self) {
        assert!(self.n > 0, "empty training set");
        assert!(self.m > 0, "batch size must be positive");
        assert!(self.n_tile > 0, "tile width must be positive");
        assert!(
            self.tiles_in_flight >= 2,
            "streaming needs at least double buffering"
        );
    }

    /// Tiles per mini-batch kernel block.
    pub fn n_tiles(&self) -> usize {
        self.n.div_ceil(self.n_tile)
    }

    /// The column ranges of the tiles, in order.
    pub fn tile_ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.n_tiles()).map(move |t| {
            let j0 = t * self.n_tile;
            j0..(j0 + self.n_tile).min(self.n)
        })
    }

    /// Ledger slots one ring slot charges: the `m x n_tile` kernel panel
    /// plus the `d x n_tile` staged feature slice, at the precision's slot
    /// width.
    pub fn slots_per_tile(&self) -> f64 {
        ((self.m + self.d) * self.n_tile) as f64 * self.precision.slot_factor()
    }

    /// Ledger slots of the static streamed residency: weights `l·n` plus
    /// the mini-batch feature block `d·m`.
    pub fn static_slots(&self) -> f64 {
        ((self.l * self.n + self.d * self.m) as f64) * self.precision.slot_factor()
    }

    /// Total ledger slots a streamed epoch holds at peak (ring + static) —
    /// the left-hand side of the budget formula, in raw ledger slots.
    pub fn total_slots(&self) -> f64 {
        batch::streamed_slots(
            self.n,
            self.d,
            self.l,
            self.m,
            self.n_tile,
            self.tiles_in_flight,
        ) * self.precision.slot_factor()
    }
}

/// The construction-time thread partition: the overlap model over the
/// plan's shape (the setup terms are unknown here, so `s = q = 0`; the
/// trainer refines the partition via [`BlockPlan::with_stream_threads`])
/// under the runtime's current budget, with the deprecated
/// `EP2_STREAM_PRODUCERS` env var honoured as a producer override.
fn default_threads(n: usize, d: usize, l: usize, m: usize, n_tile: usize) -> StreamThreadPlan {
    let shape = cost::ProblemShape {
        n,
        m,
        d,
        l,
        s: 0,
        q: 0,
    };
    cost::partition_stream_threads(
        &shape,
        n_tile.max(1),
        ep2_runtime::current_threads(),
        crate::producer_override(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> BlockPlan {
        BlockPlan::new(1000, 20, 3, 64, 96, 2, Precision::F64)
    }

    #[test]
    fn tile_ranges_cover_all_columns_in_order() {
        let p = plan();
        let ranges: Vec<_> = p.tile_ranges().collect();
        assert_eq!(ranges.len(), p.n_tiles());
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, p.n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        // Edge tile is the remainder.
        assert_eq!(ranges.last().unwrap().len(), 1000 - 10 * 96);
    }

    #[test]
    fn slot_accounting_matches_device_formula() {
        let p = plan();
        assert_eq!(
            p.total_slots(),
            p.static_slots() + p.tiles_in_flight as f64 * p.slots_per_tile()
        );
        // f64 doubles every component.
        let p32 = BlockPlan::new(1000, 20, 3, 64, 96, 2, Precision::F32);
        assert_eq!(p.total_slots(), 2.0 * p32.total_slots());
    }

    #[test]
    #[should_panic(expected = "double buffering")]
    fn rejects_single_buffer() {
        BlockPlan::new(100, 5, 1, 8, 16, 1, Precision::F64);
    }
}
