//! The bounded ring of ledger-charged tile buffers, and the RAII guard the
//! consumer holds while it works on one tile.

use std::ops::Range;
use std::sync::mpsc::SyncSender;

use crate::plan::BlockPlan;
use ep2_device::memory::Allocation;
use ep2_device::{MemoryError, MemoryLedger};
use ep2_linalg::{Matrix, Scalar};

/// The fixed set of recycled tile buffers backing one [`crate::StreamEngine`]
/// (see [`crate::StreamEngine`]).
///
/// Each buffer is charged against the device ledger at construction —
/// [`BlockPlan::slots_per_tile`] slots, covering the `m x n_tile` kernel
/// panel and its `d x n_tile` staged feature slice — and stays charged for
/// the ring's lifetime, so the ledger's peak reflects the pipeline's true
/// residency. Buffers circulate: ring → producer (assembly) → consumer
/// ([`TileGuard`]) → ring.
#[derive(Debug)]
pub struct TileRing<S: Scalar> {
    buffers: Vec<Vec<S>>,
    _charges: Vec<Allocation>,
    capacity: usize,
}

impl<S: Scalar> TileRing<S> {
    /// Allocates and ledger-charges `plan.tiles_in_flight` tile buffers.
    ///
    /// # Errors
    ///
    /// Returns the ledger's [`MemoryError`] when the ring does not fit the
    /// remaining budget.
    pub fn new(plan: &BlockPlan, ledger: &MemoryLedger) -> Result<Self, MemoryError> {
        let mut buffers = Vec::with_capacity(plan.tiles_in_flight);
        let mut charges = Vec::with_capacity(plan.tiles_in_flight);
        for _ in 0..plan.tiles_in_flight {
            charges.push(ledger.alloc(plan.slots_per_tile())?);
            buffers.push(vec![S::ZERO; plan.m * plan.n_tile]);
        }
        Ok(TileRing {
            capacity: buffers.len(),
            buffers,
            _charges: charges,
        })
    }

    /// Number of ring slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Moves the buffers out for one epoch's circulation (they come back via
    /// [`TileRing::restore`]).
    pub(crate) fn take_buffers(&mut self) -> Vec<Vec<S>> {
        std::mem::take(&mut self.buffers)
    }

    /// Returns circulated buffers to the ring.
    ///
    /// # Panics
    ///
    /// Panics if a buffer went missing (a leaked [`TileGuard`]).
    pub(crate) fn restore(&mut self, buffers: Vec<Vec<S>>) {
        assert_eq!(
            buffers.len(),
            self.capacity,
            "tile buffer leaked out of the ring"
        );
        self.buffers = buffers;
    }
}

/// One assembled kernel-block tile, held by the consumer.
///
/// Dereferencing accessors expose the `m_b x tile_cols` kernel panel
/// (`m_b` = the current mini-batch's size) and the column range of the full
/// `m x n` block it covers. Dropping the guard recycles the underlying
/// buffer to the producers — the consumer applies backpressure simply by
/// holding guards.
#[derive(Debug)]
pub struct TileGuard<S: Scalar> {
    col0: usize,
    block: Option<Matrix<S>>,
    recycle: Option<SyncSender<Vec<S>>>,
}

impl<S: Scalar> TileGuard<S> {
    pub(crate) fn new(col0: usize, block: Matrix<S>, recycle: SyncSender<Vec<S>>) -> Self {
        TileGuard {
            col0,
            block: Some(block),
            recycle: Some(recycle),
        }
    }

    /// A guard with no ring behind it — the buffer is simply dropped on
    /// release. Lets consumers (and their tests) run against hand-built
    /// tiles without an engine.
    pub fn detached(col0: usize, block: Matrix<S>) -> Self {
        TileGuard {
            col0,
            block: Some(block),
            recycle: None,
        }
    }

    /// The kernel panel: `batch rows x tile columns`.
    pub fn block(&self) -> &Matrix<S> {
        self.block.as_ref().expect("tile present until drop")
    }

    /// Columns of the full `m x n` kernel block this tile covers.
    pub fn col_range(&self) -> Range<usize> {
        self.col0..self.col0 + self.block().cols()
    }
}

impl<S: Scalar> Drop for TileGuard<S> {
    fn drop(&mut self) {
        if let (Some(block), Some(recycle)) = (self.block.take(), self.recycle.take()) {
            // The engine may already have shut down (consumer dropped the
            // stream early); the buffer is then simply freed.
            let _ = recycle.send(block.into_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ep2_device::Precision;

    #[test]
    fn ring_charges_and_releases_ledger_slots() {
        let plan = BlockPlan::new(1000, 20, 3, 64, 96, 2, Precision::F64);
        let ledger = MemoryLedger::new(plan.total_slots() + 10.0);
        {
            let ring = TileRing::<f64>::new(&plan, &ledger).unwrap();
            assert_eq!(ring.capacity(), 2);
            assert_eq!(ledger.in_use(), 2.0 * plan.slots_per_tile());
        }
        assert_eq!(ledger.in_use(), 0.0);
        assert_eq!(ledger.peak_slots(), 2.0 * plan.slots_per_tile());
    }

    #[test]
    fn ring_rejected_when_over_budget() {
        let plan = BlockPlan::new(1000, 20, 3, 64, 96, 2, Precision::F64);
        let ledger = MemoryLedger::new(plan.slots_per_tile() * 1.5);
        let err = TileRing::<f64>::new(&plan, &ledger).unwrap_err();
        assert!(err.requested > err.available);
        // The partial charge was rolled back.
        assert_eq!(ledger.in_use(), 0.0);
    }

    #[test]
    fn guard_recycles_buffer_on_drop() {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let guard = TileGuard::new(5, Matrix::<f64>::zeros(2, 3), tx);
        assert_eq!(guard.col_range(), 5..8);
        assert_eq!(guard.block().shape(), (2, 3));
        drop(guard);
        assert_eq!(rx.recv().unwrap().len(), 6);
    }

    #[test]
    fn detached_guard_just_drops() {
        let guard = TileGuard::detached(0, Matrix::<f32>::zeros(4, 4));
        assert_eq!(guard.col_range(), 0..4);
        drop(guard);
    }
}
