//! # ep2-stream — out-of-core kernel-block streaming
//!
//! The paper's Step-1 memory bound `(d + l + m) · n ≤ S_G` caps the
//! training-set size at what fits the device. This crate removes that cap:
//! it streams the `m x n` mini-batch kernel block through a **bounded,
//! double-buffered producer/consumer pipeline** so datasets whose residency
//! exceeds `S_G` train at streaming — not thrashing — speed.
//!
//! The moving parts:
//!
//! - [`BlockPlan`] — partitions the `m x n` kernel block into `m x n_tile`
//!   tiles and sizes the ring so
//!   `tiles_in_flight · (m + d) · n_tile + l·n + (tiles_in_flight − 1)·d·m`
//!   fits `S_G` at the active precision (the `(m + d) · n_tile` per slot
//!   covers the kernel panel *and* its staged feature slice; the
//!   `(tiles_in_flight − 1)·d·m` term is one staged mini-batch feature
//!   block per possible producer — see
//!   `ep2_device::batch::streamed_slots`).
//! - [`TileRing`] — the fixed set of recycled tile buffers, each charged
//!   against the [`MemoryLedger`](ep2_device::MemoryLedger) for as long as
//!   the ring lives, so the `S_G` audit covers the pipeline.
//! - [`StreamEngine`] — producer threads assemble tiles via the blocked
//!   [`ep2_kernels::matrix::kernel_cross_into`] path (center row norms
//!   cached once per run, per-thread GEMM pack arenas reused) and push them
//!   through a bounded channel; the consumer drains [`TileGuard`]s in tile
//!   order and recycles each buffer on drop — backpressure is the empty
//!   channel running dry. Assembly of tile `t+1` overlaps compute on
//!   tile `t`.
//!
//! The consumer side (the preconditioned-SGD update) lives in `ep2-core`
//! (`EigenProIteration::step_streamed`), which depends on this crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pipeline;
mod plan;
mod ring;

pub use pipeline::{StreamEngine, TileStream};
pub use plan::BlockPlan;
pub use ring::{TileGuard, TileRing};

/// Deprecated `EP2_STREAM_PRODUCERS` override of the producer count.
///
/// The producer count is **planned**, not env-guessed: the overlap model
/// (`ep2_device::cost::partition_stream_threads`) splits the runtime's
/// thread budget between tile assembly and the update GEMM, and
/// `TrainConfig::stream_producers` / the `--producers` CLI flag pin it
/// explicitly. The env var is honoured only as a legacy override beneath
/// those (explicit config > env > planned) and will be removed.
pub fn producer_override() -> Option<usize> {
    let v = std::env::var("EP2_STREAM_PRODUCERS").ok()?;
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}
