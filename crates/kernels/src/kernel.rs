use std::fmt;

use ep2_linalg::vmath::{VMath, BLOCK};
use ep2_linalg::{ops, Scalar};

/// A radial positive-definite kernel `k(x, z) = g(‖x − z‖²)` with
/// `k(x, x) = 1`, generic over the evaluation precision `S`
/// (default `f64`, so `dyn Kernel` keeps its historical meaning).
///
/// The trait exposes the radial profile [`Kernel::of_sq_dist`] so kernel
/// matrices can be assembled from a squared-distance matrix computed with one
/// GEMM — the computation pattern whose cost the device simulator models.
/// Every concrete kernel in this crate implements `Kernel<S>` for all
/// scalar types, with the profile evaluated at [`Scalar::Compute`] width
/// (the packed GEMM's register precision: `Self` for the native floats,
/// f32 for bf16) and narrowed to `S` exactly once: the f32 instantiation
/// is the paper's GPU configuration, where assembly is memory-bound and
/// half-width elements roughly double throughput, and bf16 profiles avoid
/// paying a storage-rounding round-trip per arithmetic op.
pub trait Kernel<S: Scalar = f64>: Send + Sync + fmt::Debug {
    /// Evaluates the radial profile at squared distance `d2 ≥ 0`.
    fn of_sq_dist(&self, d2: S) -> S;

    /// Lane-batched radial profile: evaluates the profile over a
    /// contiguous run of squared distances already at [`Scalar::Compute`]
    /// width and clamped nonnegative, writing `out[j] = g(d2[j])` narrowed
    /// to storage — the assembly hot path, called once per row segment
    /// instead of once per entry.
    ///
    /// The contract mirrors [`Kernel::of_sq_dist`] bit for bit: for inputs
    /// that round-trip through storage unchanged — which is how the
    /// assembly paths produce them, as `S::from_accum(d2).compute()` —
    /// `out[j]` equals `of_sq_dist(S::from_compute(d2[j]))` exactly. The
    /// default is that per-entry loop; the built-in families override it
    /// with `ep2_linalg::vmath` lane-batched bodies and define
    /// `of_sq_dist` back in terms of the batched body on a 1-lane slice,
    /// so the scalar and batched profiles can never drift apart.
    ///
    /// # Panics
    ///
    /// Implementations may assume and debug-assert
    /// `d2.len() == out.len()`.
    fn profile_lanes(&self, d2: &[S::Compute], out: &mut [S]) {
        debug_assert_eq!(d2.len(), out.len());
        for (&v, o) in d2.iter().zip(out.iter_mut()) {
            *o = self.of_sq_dist(S::from_compute(v));
        }
    }

    /// Kernel name for reports ("gaussian", "laplacian", ...).
    fn name(&self) -> &str;

    /// Bandwidth parameter σ.
    fn bandwidth(&self) -> f64;

    /// Evaluates `k(x, z)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != z.len()`.
    fn eval(&self, x: &[S], z: &[S]) -> S {
        self.of_sq_dist(ops::sq_dist(x, z))
    }
}

/// Which kernel family to use — the choice the paper leaves to the user
/// ("little tuning beyond selecting the kernel and the kernel parameter").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Gaussian `exp(−‖x−z‖² / 2σ²)`.
    Gaussian,
    /// Laplacian `exp(−‖x−z‖ / σ)` — the paper's Section 5.5 recommends it.
    Laplacian,
    /// Cauchy `1 / (1 + ‖x−z‖²/σ²)`.
    Cauchy,
    /// Matérn-3/2 `(1 + √3 r/σ) exp(−√3 r/σ)` — between Laplacian and
    /// Gaussian smoothness.
    Matern32,
    /// Matérn-5/2 `(1 + √5 r/σ + 5r²/3σ²) exp(−√5 r/σ)`.
    Matern52,
    /// Rational quadratic `(1 + ‖x−z‖²/(2ασ²))^{−α}` with `α = 1` —
    /// a scale mixture of Gaussians with heavier tails.
    RationalQuadratic,
}

impl KernelKind {
    /// All kernel families (for grid sweeps).
    pub const ALL: [KernelKind; 6] = [
        KernelKind::Gaussian,
        KernelKind::Laplacian,
        KernelKind::Cauchy,
        KernelKind::Matern32,
        KernelKind::Matern52,
        KernelKind::RationalQuadratic,
    ];

    /// Constructs the kernel with bandwidth `sigma` (double-precision
    /// evaluation — the historical default).
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn with_bandwidth(self, sigma: f64) -> Box<dyn Kernel> {
        self.with_bandwidth_in::<f64>(sigma)
    }

    /// Constructs the kernel with bandwidth `sigma`, evaluated in the scalar
    /// precision `S` — the entry point the `Precision` training policy uses
    /// to run kernel assembly in f32.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn with_bandwidth_in<S: Scalar>(self, sigma: f64) -> Box<dyn Kernel<S>> {
        match self {
            KernelKind::Gaussian => Box::new(GaussianKernel::new(sigma)),
            KernelKind::Laplacian => Box::new(LaplacianKernel::new(sigma)),
            KernelKind::Cauchy => Box::new(CauchyKernel::new(sigma)),
            KernelKind::Matern32 => Box::new(Matern32Kernel::new(sigma)),
            KernelKind::Matern52 => Box::new(Matern52Kernel::new(sigma)),
            KernelKind::RationalQuadratic => Box::new(RationalQuadraticKernel::new(sigma)),
        }
    }

    /// Parses a kernel name as accepted by the CLI and harnesses
    /// (`"gaussian"`, `"laplacian"`, `"cauchy"`, `"matern32"`,
    /// `"matern52"`, `"rq"`); case-insensitive.
    pub fn parse(name: &str) -> Option<KernelKind> {
        match name.to_ascii_lowercase().as_str() {
            "gaussian" | "rbf" => Some(KernelKind::Gaussian),
            "laplacian" | "laplace" | "exponential" => Some(KernelKind::Laplacian),
            "cauchy" => Some(KernelKind::Cauchy),
            "matern32" | "matern-3/2" => Some(KernelKind::Matern32),
            "matern52" | "matern-5/2" => Some(KernelKind::Matern52),
            "rq" | "rational-quadratic" => Some(KernelKind::RationalQuadratic),
            _ => None,
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelKind::Gaussian => "Gaussian",
            KernelKind::Laplacian => "Laplacian",
            KernelKind::Cauchy => "Cauchy",
            KernelKind::Matern32 => "Matern-3/2",
            KernelKind::Matern52 => "Matern-5/2",
            KernelKind::RationalQuadratic => "RationalQuadratic",
        };
        f.write_str(s)
    }
}

macro_rules! radial_kernel {
    (@unit $x:expr) => {
        ()
    };
    // Each family supplies its σ-derived profile constants (computed once,
    // in f64, at construction — the hot loops never re-derive them) and a
    // lane-batched profile body. The body sees one `BLOCK`-bounded chunk
    // per iteration as `$d2` (compute-width squared distances, clamped
    // nonnegative) / `$out` (the storage destination), plus the bound
    // constants at compute width, `$cst` (the f64 → compute converter for
    // literals) and `$narrow` (the single compute → storage rounding).
    //
    // The profile is evaluated at `Scalar::Compute` width and narrowed to
    // storage exactly once at the end. For the native floats
    // `Compute = Self`, so this is the plain native evaluation, bit for
    // bit. For bf16 (`Compute = f32`) it is both faster and tighter than
    // storage-width arithmetic: evaluating in `Bf16` pays a
    // widen/op/round-to-nearest-even narrow round-trip *per operation* —
    // measured as the dominant share of the bf16 assembly gap vs f32
    // (`BENCH_gemm.json`, `assembly_fused` rows) — and each intermediate
    // narrowing adds a 2^-8 relative rounding the final result keeps. One
    // rounding at the end strictly refines both.
    ($(#[$doc:meta])* $name:ident, $label:literal,
     consts: |$sigma:ident| [$($cinit:expr),+ $(,)?],
     profile: |$d2:ident, $out:ident, $cst:ident, $narrow:ident, [$($c:ident),+]| $body:block) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name {
            sigma: f64,
            /// σ-derived profile constants, derived once at construction.
            consts: [f64; [$(radial_kernel!(@unit $cinit)),+].len()],
        }

        impl $name {
            /// Creates the kernel with bandwidth `sigma`.
            ///
            /// # Panics
            ///
            /// Panics if `sigma` is not positive and finite.
            pub fn new(sigma: f64) -> Self {
                assert!(
                    sigma > 0.0 && sigma.is_finite(),
                    concat!(stringify!($name), ": bandwidth must be positive")
                );
                let $sigma = sigma;
                $name {
                    sigma,
                    consts: [$($cinit),+],
                }
            }
        }

        impl<S: Scalar> Kernel<S> for $name {
            // The scalar profile is the batched body on a one-lane slice,
            // so `of_sq_dist` and `profile_lanes` agree bit for bit by
            // construction (including the `EP2_PRECISE_MATH` dispatch,
            // which both reach through `vmath`).
            #[inline]
            fn of_sq_dist(&self, d2: S) -> S {
                debug_assert!(
                    d2.to_f64() >= -1e-9,
                    "negative squared distance {}",
                    d2
                );
                let d2c = [d2.compute().max(<S::Compute as Scalar>::ZERO)];
                let mut out = [S::ZERO];
                Kernel::<S>::profile_lanes(self, &d2c, &mut out);
                out[0]
            }

            fn profile_lanes(&self, d2: &[S::Compute], out: &mut [S]) {
                debug_assert_eq!(d2.len(), out.len());
                let [$($c),+] = self.consts.map(<S::Compute as Scalar>::from_f64);
                #[allow(unused_variables)]
                let $cst = <S::Compute as Scalar>::from_f64;
                let $narrow = S::from_compute;
                for ($d2, $out) in d2.chunks(BLOCK).zip(out.chunks_mut(BLOCK)) {
                    $body
                }
            }

            fn name(&self) -> &str {
                $label
            }

            fn bandwidth(&self) -> f64 {
                self.sigma
            }
        }
    };
}

radial_kernel!(
    /// Gaussian (RBF) kernel `k(x, z) = exp(−‖x−z‖² / 2σ²)`.
    GaussianKernel,
    "gaussian",
    consts: |sigma| [-1.0 / (2.0 * sigma * sigma)],
    profile: |d2, out, cst, narrow, [neg_half_inv_s2]| {
        let mut t = [cst(0.0); BLOCK];
        let t = &mut t[..d2.len()];
        for (ti, &v) in t.iter_mut().zip(d2.iter()) {
            *ti = v * neg_half_inv_s2;
        }
        VMath::vexp(t);
        for (o, &e) in out.iter_mut().zip(t.iter()) {
            *o = narrow(e);
        }
    }
);

radial_kernel!(
    /// Laplacian (exponential) kernel `k(x, z) = exp(−‖x−z‖ / σ)`.
    ///
    /// Section 5.5 of the paper argues for this kernel: fewer training
    /// epochs, larger critical batch `m*`, and robustness to the bandwidth.
    LaplacianKernel,
    "laplacian",
    consts: |sigma| [-1.0 / sigma],
    profile: |d2, out, cst, narrow, [neg_inv_s]| {
        let mut t = [cst(0.0); BLOCK];
        let t = &mut t[..d2.len()];
        t.copy_from_slice(d2);
        VMath::vsqrt(t);
        for ti in t.iter_mut() {
            *ti *= neg_inv_s;
        }
        VMath::vexp(t);
        for (o, &e) in out.iter_mut().zip(t.iter()) {
            *o = narrow(e);
        }
    }
);

radial_kernel!(
    /// Cauchy kernel `k(x, z) = 1 / (1 + ‖x−z‖²/σ²)`.
    CauchyKernel,
    "cauchy",
    consts: |sigma| [1.0 / (sigma * sigma)],
    profile: |d2, out, cst, narrow, [inv_s2]| {
        let one = cst(1.0);
        for (o, &v) in out.iter_mut().zip(d2.iter()) {
            *o = narrow(one / (one + v * inv_s2));
        }
    }
);

radial_kernel!(
    /// Matérn-3/2 kernel `k(x, z) = (1 + √3 r/σ) exp(−√3 r/σ)` — once
    /// differentiable sample paths, between Laplacian and Gaussian.
    Matern32Kernel,
    "matern32",
    consts: |sigma| [3.0_f64.sqrt() / sigma],
    profile: |d2, out, cst, narrow, [sqrt3_inv_s]| {
        let mut t = [cst(0.0); BLOCK];
        let mut e = [cst(0.0); BLOCK];
        let (t, e) = (&mut t[..d2.len()], &mut e[..d2.len()]);
        t.copy_from_slice(d2);
        VMath::vsqrt(t);
        for (ti, ei) in t.iter_mut().zip(e.iter_mut()) {
            *ti *= sqrt3_inv_s;
            *ei = -*ti;
        }
        VMath::vexp(e);
        let one = cst(1.0);
        for (o, (&ti, &ei)) in out.iter_mut().zip(t.iter().zip(e.iter())) {
            *o = narrow((one + ti) * ei);
        }
    }
);

radial_kernel!(
    /// Matérn-5/2 kernel `k(x, z) = (1 + √5 r/σ + 5r²/3σ²) exp(−√5 r/σ)`.
    Matern52Kernel,
    "matern52",
    consts: |sigma| [5.0_f64.sqrt() / sigma, 5.0 / (3.0 * sigma * sigma)],
    profile: |d2, out, cst, narrow, [sqrt5_inv_s, five_thirds_inv_s2]| {
        let mut t = [cst(0.0); BLOCK];
        let mut e = [cst(0.0); BLOCK];
        let (t, e) = (&mut t[..d2.len()], &mut e[..d2.len()]);
        t.copy_from_slice(d2);
        VMath::vsqrt(t);
        for (ti, ei) in t.iter_mut().zip(e.iter_mut()) {
            *ti *= sqrt5_inv_s;
            *ei = -*ti;
        }
        VMath::vexp(e);
        let one = cst(1.0);
        for (o, ((&ti, &ei), &v)) in out
            .iter_mut()
            .zip(t.iter().zip(e.iter()).zip(d2.iter()))
        {
            *o = narrow((one + ti + five_thirds_inv_s2 * v) * ei);
        }
    }
);

radial_kernel!(
    /// Rational-quadratic kernel `k(x, z) = (1 + ‖x−z‖²/(2σ²))^{-1}`
    /// (the `α = 1` member of the RQ family — a Gaussian scale mixture).
    RationalQuadraticKernel,
    "rational-quadratic",
    consts: |sigma| [1.0 / (2.0 * sigma * sigma)],
    profile: |d2, out, cst, narrow, [half_inv_s2]| {
        let one = cst(1.0);
        for (o, &v) in out.iter_mut().zip(d2.iter()) {
            *o = narrow(one / (one + v * half_inv_s2));
        }
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_diagonal() {
        let x = [1.0, -2.0, 3.0];
        for kind in KernelKind::ALL {
            let k = kind.with_bandwidth(2.0);
            assert!((k.eval(&x, &x) - 1.0).abs() < 1e-15, "{}", k.name());
        }
    }

    #[test]
    fn all_kernels_monotone_and_bounded() {
        for kind in KernelKind::ALL {
            let k = kind.with_bandwidth(1.5);
            let mut prev = k.of_sq_dist(0.0);
            assert!((prev - 1.0).abs() < 1e-15);
            for i in 1..30 {
                let cur = k.of_sq_dist(i as f64 * 0.4);
                assert!(cur < prev, "{kind} not strictly decreasing");
                assert!(cur > 0.0, "{kind} must stay positive");
                prev = cur;
            }
        }
    }

    #[test]
    fn f32_profile_matches_f64_to_single_eps() {
        for kind in KernelKind::ALL {
            let k32 = kind.with_bandwidth_in::<f32>(1.7);
            let k64 = kind.with_bandwidth_in::<f64>(1.7);
            for i in 0..40 {
                let d2 = i as f64 * 0.3;
                let v32 = k32.of_sq_dist(d2 as f32) as f64;
                let v64 = k64.of_sq_dist(d2);
                assert!(
                    (v32 - v64).abs() < 1e-5,
                    "{kind} at d2 = {d2}: {v32} vs {v64}"
                );
            }
        }
    }

    #[test]
    fn matern_between_laplacian_and_gaussian() {
        // At moderate distance, Matérn-3/2 decays faster than Laplacian but
        // slower than Gaussian (for matched σ and r > σ).
        let (g, l, m) = (
            GaussianKernel::new(1.0),
            LaplacianKernel::new(1.0),
            Matern32Kernel::new(1.0),
        );
        let d2 = 9.0; // r = 3σ
        assert!(Kernel::<f64>::of_sq_dist(&g, d2) < Kernel::<f64>::of_sq_dist(&m, d2));
        assert!(Kernel::<f64>::of_sq_dist(&m, d2) < Kernel::<f64>::of_sq_dist(&l, d2));
    }

    #[test]
    fn parse_names() {
        assert_eq!(KernelKind::parse("RBF"), Some(KernelKind::Gaussian));
        assert_eq!(KernelKind::parse("laplace"), Some(KernelKind::Laplacian));
        assert_eq!(KernelKind::parse("matern52"), Some(KernelKind::Matern52));
        assert_eq!(KernelKind::parse("rq"), Some(KernelKind::RationalQuadratic));
        assert_eq!(KernelKind::parse("nope"), None);
    }

    #[test]
    fn matern52_known_limits() {
        let k = Matern52Kernel::new(2.0);
        // Smooth at zero; value drops below Matérn-3/2 beyond a few σ.
        let k32 = Matern32Kernel::new(2.0);
        assert!(Kernel::<f64>::of_sq_dist(&k, 100.0) < Kernel::<f64>::of_sq_dist(&k32, 100.0));
    }

    #[test]
    fn rq_heavier_tail_than_gaussian() {
        let rq = RationalQuadraticKernel::new(1.0);
        let g = GaussianKernel::new(1.0);
        assert!(Kernel::<f64>::of_sq_dist(&rq, 25.0) > Kernel::<f64>::of_sq_dist(&g, 25.0));
    }

    #[test]
    fn gaussian_known_value() {
        let k = GaussianKernel::new(1.0);
        // ‖x−z‖² = 2 → exp(−1).
        let v: f64 = k.eval(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((v - (-1.0_f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn laplacian_known_value() {
        let k = LaplacianKernel::new(2.0);
        // ‖x−z‖ = 3 → exp(−1.5).
        let v: f64 = k.eval(&[0.0], &[3.0]);
        assert!((v - (-1.5_f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn cauchy_known_value() {
        let k = CauchyKernel::new(1.0);
        let v: f64 = k.eval(&[0.0], &[1.0]);
        assert!((v - 0.5).abs() < 1e-15);
    }

    #[test]
    fn symmetry_and_bounds() {
        let x = [0.3, -1.2];
        let z = [2.0, 0.7];
        for kind in [
            KernelKind::Gaussian,
            KernelKind::Laplacian,
            KernelKind::Cauchy,
        ] {
            let k = kind.with_bandwidth(1.5);
            let a = k.eval(&x, &z);
            let b = k.eval(&z, &x);
            assert_eq!(a, b, "{kind} not symmetric");
            assert!(a > 0.0 && a <= 1.0, "{kind} out of (0,1]");
        }
    }

    #[test]
    fn monotone_decreasing_in_distance() {
        for kind in [
            KernelKind::Gaussian,
            KernelKind::Laplacian,
            KernelKind::Cauchy,
        ] {
            let k = kind.with_bandwidth(1.0);
            let mut prev = k.of_sq_dist(0.0);
            for i in 1..20 {
                let cur = k.of_sq_dist(i as f64 * 0.5);
                assert!(cur < prev, "{kind} not decreasing");
                prev = cur;
            }
        }
    }

    #[test]
    fn wider_bandwidth_is_flatter() {
        let narrow = GaussianKernel::new(1.0);
        let wide = GaussianKernel::new(10.0);
        assert!(Kernel::<f64>::of_sq_dist(&wide, 4.0) > Kernel::<f64>::of_sq_dist(&narrow, 4.0));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = GaussianKernel::new(0.0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(KernelKind::Laplacian.to_string(), "Laplacian");
    }
}
