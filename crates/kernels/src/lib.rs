//! # ep2-kernels — kernel functions and kernel-matrix assembly
//!
//! Kernel machines construct predictors `f(x) = Σ_i α_i k(x, x_i)`. This
//! crate supplies the positive-definite kernels the paper evaluates
//! (Gaussian, Laplacian, Cauchy — all *radial*, i.e. functions of
//! `‖x − z‖`), plus fast blocked assembly of kernel matrices:
//!
//! - [`Kernel`]: the radial-kernel trait (`k(x, z) = g(‖x − z‖²)`).
//! - [`GaussianKernel`], [`LaplacianKernel`], [`CauchyKernel`].
//! - [`matrix::kernel_matrix`] / [`matrix::kernel_cross`]: multi-threaded
//!   assembly via the `‖x‖² + ‖z‖² − 2 x·z` GEMM trick — the exact
//!   computation a GPU would run, so operation counts map 1:1 onto the
//!   device model's cost formulas.
//! - [`bandwidth::median_heuristic`]: the standard bandwidth initialiser
//!   used before cross-validating σ.
//!
//! All kernels here are normalised: `k(x, x) = 1`, hence `β(K) = 1`
//! (the paper's normalisation for shift-invariant kernels).
//!
//! # Example
//!
//! ```
//! use ep2_kernels::{GaussianKernel, Kernel};
//!
//! let k = GaussianKernel::new(5.0);
//! let x = [0.0_f64, 0.0];
//! assert!((k.eval(&x, &x) - 1.0_f64).abs() < 1e-15);
//!
//! // The same kernel object evaluates in f32 (the paper's GPU precision):
//! let x32 = [0.0_f32, 0.0];
//! assert_eq!(k.eval(&x32, &x32), 1.0_f32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bandwidth;
mod kernel;
pub mod matrix;

pub use kernel::{CauchyKernel, GaussianKernel, Kernel, KernelKind, LaplacianKernel};
