//! Bandwidth selection helpers.
//!
//! The paper selects σ by cross-validation on a small subsample (Appendix
//! B); the *median heuristic* is the standard starting point for that
//! search and what the harness uses to seed its σ grid.

use ep2_linalg::{ops, Matrix};

/// Median pairwise distance over (at most) the first `max_points` rows of
/// `x` — the classic bandwidth initialiser.
///
/// Returns 1.0 for degenerate inputs (fewer than two points or all points
/// identical) so downstream kernels stay constructible.
pub fn median_heuristic(x: &Matrix, max_points: usize) -> f64 {
    let n = x.rows().min(max_points.max(2));
    if n < 2 {
        return 1.0;
    }
    let mut dists = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            dists.push(ops::sq_dist(x.row(i), x.row(j)).sqrt());
        }
    }
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let med = dists[dists.len() / 2];
    if med > 0.0 {
        med
    } else {
        1.0
    }
}

/// A geometric grid of candidate bandwidths centred on `center` spanning
/// `[center / span, center * span]` with `steps` points — the σ grid the
/// Table-4 harness cross-validates over.
///
/// # Panics
///
/// Panics if `steps == 0`, `center <= 0` or `span < 1`.
pub fn bandwidth_grid(center: f64, span: f64, steps: usize) -> Vec<f64> {
    assert!(steps > 0, "steps must be positive");
    assert!(center > 0.0, "center must be positive");
    assert!(span >= 1.0, "span must be >= 1");
    if steps == 1 {
        return vec![center];
    }
    let lo = (center / span).ln();
    let hi = (center * span).ln();
    (0..steps)
        .map(|i| (lo + (hi - lo) * i as f64 / (steps - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_unit_square_corners() {
        // Distances among the 4 unit-square corners: {1,1,1,1,√2,√2};
        // sorted index 3 (len 6 / 2) is 1.0... values sorted:
        // [1,1,1,1,1.414,1.414] → element 3 = 1.0.
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        assert!((median_heuristic(&x, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_fall_back_to_one() {
        let single = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(median_heuristic(&single, 10), 1.0);
        let identical = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        assert_eq!(median_heuristic(&identical, 10), 1.0);
    }

    #[test]
    fn respects_max_points() {
        // Two far clusters; restricting to the first 2 points (same cluster)
        // gives a much smaller bandwidth than using all.
        let x = Matrix::from_rows(&[&[0.0], &[0.1], &[100.0], &[100.1]]);
        let small = median_heuristic(&x, 2);
        let full = median_heuristic(&x, 4);
        assert!(small < 1.0);
        assert!(full > 10.0);
    }

    #[test]
    fn grid_is_geometric_and_centred() {
        let g = bandwidth_grid(4.0, 4.0, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[2] - 4.0).abs() < 1e-12);
        assert!((g[4] - 16.0).abs() < 1e-12);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn grid_single_step() {
        assert_eq!(bandwidth_grid(3.0, 10.0, 1), vec![3.0]);
    }
}
