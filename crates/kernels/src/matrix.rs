//! Blocked, multi-threaded kernel-matrix assembly, generic over the element
//! precision [`Scalar`].
//!
//! For radial kernels the `n x m` cross matrix `K[i][j] = k(a_i, b_j)` is
//! assembled as `g(‖a_i‖² + ‖b_j‖² − 2 a_i·b_j)`: one GEMM with the
//! d²-reassembly and radial profile **fused into its write-back** as a
//! [`blas::gemm_nt_epilogue`] hook, so each output tile is touched exactly
//! once while it is cache-hot. This is exactly how GPU kernel methods
//! (including the reference EigenPro implementation) compute kernels, so
//! the operation count `(2d + c) · n · m` matches the device cost model.
//! Instantiated at `f32` this is the paper's actual GPU configuration. The
//! pre-fusion two-pass assembly (GEMM, then a separate element-wise pass
//! re-reading the whole output) is kept as [`kernel_cross_into_two_pass`],
//! the reference the parity suite pins the fused path against bit for bit
//! and the baseline `hot_paths` measures it against (`assembly_fused` rows
//! in `BENCH_gemm.json`). On the 1-core dev host the radial profile's
//! `exp` dominates assembly and the two paths run at parity — the fusion
//! win there is structural (one write-back sweep, and an epilogue seam
//! serve-path hooks can reuse); the measured bf16 assembly win rides the
//! profile's `Compute`-width evaluation (see [`crate::Kernel`]), which
//! measuring the fused path surfaced.

use crate::Kernel;
use ep2_linalg::gemm::Epilogue;
use ep2_linalg::{blas, ops, parallel, vmath, Matrix, Scalar};
use std::any::TypeId;

/// Assembles the cross kernel matrix `K[i][j] = k(a_i, b_j)` of shape
/// `(a.rows(), b.rows())`.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn kernel_cross<S: Scalar>(kernel: &dyn Kernel<S>, a: &Matrix<S>, b: &Matrix<S>) -> Matrix<S> {
    assert_eq!(a.cols(), b.cols(), "kernel_cross: feature dims differ");
    let a_sq = row_sq_norms(a);
    let b_sq = row_sq_norms(b);
    kernel_cross_with_norms(kernel, a, b, &a_sq, &b_sq)
}

/// Squared Euclidean norm of every row (the `‖x‖²` terms of the Gram
/// expansion), accumulated **and kept** in [`Scalar::Accum`] precision:
/// these are error-sensitive quantities (they meet a cancelling `−2 a·b`
/// in the expansion below), so under narrow storage — f32, and especially
/// bf16, whose ulp at a TIMIT-scale `‖x‖² ≈ 400` is ≈ 2 — they must not be
/// rounded back to `S` before the subtraction happens.
pub fn row_sq_norms<S: Scalar>(x: &Matrix<S>) -> Vec<S::Accum> {
    let mut out = Vec::new();
    row_sq_norms_into(x, &mut out);
    out
}

/// [`row_sq_norms`] into a caller-recycled buffer (cleared and refilled) —
/// the zero-allocation variant the serving hot path uses for its per-batch
/// norms. Produces exactly the same values as [`row_sq_norms`].
pub fn row_sq_norms_into<S: Scalar>(x: &Matrix<S>, out: &mut Vec<S::Accum>) {
    out.clear();
    out.extend((0..x.rows()).map(|i| ops::dot_wide(x.row(i), x.row(i))));
}

/// [`kernel_cross`] with the row norms precomputed — the symmetric
/// [`kernel_matrix`] path computes them once and passes them for both sides.
fn kernel_cross_with_norms<S: Scalar>(
    kernel: &dyn Kernel<S>,
    a: &Matrix<S>,
    b: &Matrix<S>,
    a_sq: &[S::Accum],
    b_sq: &[S::Accum],
) -> Matrix<S> {
    let (n, m) = (a.rows(), b.rows());
    let mut k = Matrix::zeros(n, m);
    if n == 0 || m == 0 {
        return k;
    }
    kernel_cross_into(kernel, a, b, a_sq, b_sq, &mut k);
    k
}

/// Tile-wise assembly entry point: computes `out[i][j] = k(a_i, b_j)` into
/// the preallocated `out`, with both sides' squared row norms supplied by
/// the caller.
///
/// This is the out-of-core streaming producer's hot path: the center-side
/// norms `b_sq` are computed once per training run and sliced per tile, and
/// `out` is a recycled ring buffer, so steady-state tile assembly allocates
/// nothing beyond the packed-GEMM arenas.
///
/// # Panics
///
/// Panics if the feature dimensions differ, `out` is not
/// `a.rows() x b.rows()`, or a norm slice is shorter than its side.
pub fn kernel_cross_into<S: Scalar>(
    kernel: &dyn Kernel<S>,
    a: &Matrix<S>,
    b: &Matrix<S>,
    a_sq: &[S::Accum],
    b_sq: &[S::Accum],
    out: &mut Matrix<S>,
) {
    let Some(epi) = assembly_preamble(kernel, a, b, a_sq, b_sq, out, false) else {
        return;
    };
    // -2 A B^T through the packed register-blocked engine (B^T is a stride
    // swap at packing time), with the d² reassembly and radial profile
    // fused into the C write-back: each tile is mapped while still cache-
    // hot instead of being stored, re-read and re-stored by a second pass.
    blas::gemm_nt_epilogue(S::from_f64(-2.0), a, b, S::ZERO, out, &epi);
}

/// The pre-fusion two-pass assembly, kept as the reference baseline: the
/// plain `gemm_nt` cross-term product followed by a separate element-wise
/// profile pass over `out`. Same contract as [`kernel_cross_into`]; the
/// `fused_parity` suite asserts the two produce **bit-for-bit identical**
/// output for every kernel family × precision × engine, and `hot_paths`
/// measures the fusion win against this path.
///
/// # Panics
///
/// Panics if the feature dimensions differ, `out` is not
/// `a.rows() x b.rows()`, or a norm slice is shorter than its side.
pub fn kernel_cross_into_two_pass<S: Scalar>(
    kernel: &dyn Kernel<S>,
    a: &Matrix<S>,
    b: &Matrix<S>,
    a_sq: &[S::Accum],
    b_sq: &[S::Accum],
    out: &mut Matrix<S>,
) {
    if assembly_preamble(kernel, a, b, a_sq, b_sq, out, false).is_none() {
        return;
    }
    let m = b.rows();
    // Pass 1 — the cross-term GEMM, dominant cost of assembly.
    blas::gemm_nt(S::from_f64(-2.0), a, b, S::ZERO, out);
    // Pass 2 — element-wise radial profile, parallel over row chunks. The
    // squared distance is reassembled at Accum width — the norms never
    // rounded to `S` — and narrows exactly once, going into the radial
    // profile; under bf16 storage each stored entry therefore carries a
    // handful of 2^-8 relative roundings (see README, "Precision"), not an
    // O(‖x‖²)-sized cancellation error. (The fused epilogue replicates
    // exactly this chain, reading the stored-rounded cross term.)
    let cols = m;
    parallel::for_each_chunk_mut(out.as_mut_slice(), cols.max(1) * 64, |off, chunk| {
        let mut d2 = [<S::Compute as Scalar>::ZERO; vmath::BLOCK];
        let mut pos = 0;
        while pos < chunk.len() {
            let (i, j) = ((off + pos) / cols, (off + pos) % cols);
            let len = (cols - j).min(chunk.len() - pos).min(vmath::BLOCK);
            let seg = &mut chunk[pos..pos + len];
            d2_lanes(a_sq[i], &b_sq[j..j + len], seg, &mut d2[..len]);
            kernel.profile_lanes(&d2[..len], seg);
            pos += len;
        }
    });
}

/// Reassembles squared distances for one row segment, lane-batched: widens
/// each stored cross term back to [`Scalar::Accum`], adds the row/column
/// norms, clamps at Accum width, and narrows through storage to
/// [`Scalar::Compute`] with a final nonnegativity clamp — per lane exactly
/// the scalar chain `of_sq_dist(S::from_accum(d2))` runs up to its profile
/// body, as one vectorizable loop shared by the fused epilogue and the
/// two-pass reference.
#[inline]
fn d2_lanes<S: Scalar>(a_sq_i: S::Accum, b_sq: &[S::Accum], stored: &[S], d2: &mut [S::Compute]) {
    for ((d, &bs), &v) in d2.iter_mut().zip(b_sq).zip(stored) {
        let wide = (a_sq_i + bs + v.accum()).max(S::Accum::ZERO);
        *d = S::from_accum(wide)
            .compute()
            .max(<S::Compute as Scalar>::ZERO);
    }
}

/// Shared shape checks of the assembly entry points; returns the fused
/// epilogue to run, or `None` when the output is empty and the caller is
/// done.
fn assembly_preamble<'k, S: Scalar>(
    kernel: &'k dyn Kernel<S>,
    a: &Matrix<S>,
    b: &Matrix<S>,
    a_sq: &'k [S::Accum],
    b_sq: &'k [S::Accum],
    out: &mut Matrix<S>,
    lower_only: bool,
) -> Option<ProfileEpilogue<'k, S>> {
    assert_eq!(a.cols(), b.cols(), "kernel_cross_into: feature dims differ");
    let (n, m) = (a.rows(), b.rows());
    assert_eq!(out.shape(), (n, m), "kernel_cross_into: bad output shape");
    assert!(a_sq.len() >= n && b_sq.len() >= m, "norm slice too short");
    if n == 0 || m == 0 {
        return None;
    }
    Some(ProfileEpilogue {
        kernel,
        a_sq,
        b_sq,
        lower_only,
    })
}

/// The fused assembly hook: maps one fully-accumulated `-2 a_i·b_j` cross
/// term to `k(a_i, b_j)` inside the GEMM write-back.
struct ProfileEpilogue<'k, S: Scalar> {
    kernel: &'k dyn Kernel<S>,
    a_sq: &'k [S::Accum],
    b_sq: &'k [S::Accum],
    /// When set, strictly-upper entries (`col > row`) short-circuit to zero
    /// and the symmetric [`kernel_matrix`] path mirrors the lower triangle
    /// instead — half the profile evaluations skipped.
    lower_only: bool,
}

impl<S: Scalar> Epilogue<S> for ProfileEpilogue<'_, S> {
    #[inline]
    fn apply(&self, row: usize, col: usize, acc: S::Compute) -> S {
        if self.lower_only && col > row {
            return S::ZERO;
        }
        // Round the cross term through storage first, exactly as the
        // two-pass reference stores it before re-reading (identity for the
        // native floats; the single bf16 narrowing, now in-register), then
        // reassemble d² at Accum width. This keeps the fused chain
        // bit-for-bit the reference chain — the win is the eliminated
        // memory round-trip, not dropped rounding steps.
        let stored = S::from_compute(acc);
        let d2 = (self.a_sq[row] + self.b_sq[col] + stored.accum()).max(S::Accum::ZERO);
        self.kernel.of_sq_dist(S::from_accum(d2))
    }

    // The batched write-back: same chain as `apply`, but staged — storage
    // rounding of the whole segment, then lane-batched d² reassembly, then
    // the kernel's lane-batched profile — so the transcendental tail runs
    // a vector register wide instead of one libm call per entry. Per lane
    // the arithmetic is identical to `apply`, which is what keeps the
    // fused and two-pass paths bit-for-bit equal however the engines
    // segment rows.
    fn apply_row(&self, row: usize, col0: usize, acc: &[S::Compute], out: &mut [S]) {
        debug_assert_eq!(acc.len(), out.len());
        // With `lower_only` set, entries past the diagonal zero out and
        // skip the profile entirely; only the prefix up to (and including)
        // the diagonal is live.
        let live = if self.lower_only {
            (row + 1).saturating_sub(col0).min(acc.len())
        } else {
            acc.len()
        };
        let a_sq_i = self.a_sq[row];
        let mut d2 = [<S::Compute as Scalar>::ZERO; vmath::BLOCK];
        let mut j = 0;
        while j < live {
            let len = (live - j).min(vmath::BLOCK);
            let seg = &mut out[j..j + len];
            for (o, &a) in seg.iter_mut().zip(&acc[j..j + len]) {
                *o = S::from_compute(a);
            }
            d2_lanes(
                a_sq_i,
                &self.b_sq[col0 + j..col0 + j + len],
                seg,
                &mut d2[..len],
            );
            self.kernel.profile_lanes(&d2[..len], seg);
            j += len;
        }
        for o in &mut out[live..] {
            *o = S::ZERO;
        }
    }
}

/// Whether `S` stores the packed-GEMM compute type exactly (`f32`/`f64`,
/// not `Bf16`) — the condition under which assembled cross matrices of a
/// point set against itself are **exactly** symmetric (entry `(i, j)` and
/// `(j, i)` accumulate the same products in the same `pc`-ascending order;
/// under bf16 storage the interior- vs. edge-tile write-back chains round
/// differently, so exact symmetry can break at tile boundaries).
fn storage_is_compute<S: Scalar>() -> bool {
    TypeId::of::<S>() == TypeId::of::<S::Compute>()
}

/// Assembles the symmetric kernel matrix `K[i][j] = k(x_i, x_j)`.
///
/// The result is exactly symmetric with a unit diagonal (enforced after the
/// floating-point assembly). The row norms are computed once and shared by
/// both sides of the Gram expansion.
///
/// For the native floats the fused epilogue only evaluates the radial
/// profile on the diagonal-and-lower triangle and the upper one is mirrored
/// — bitwise the same result, because the assembled cross matrix of `x`
/// against itself is exactly symmetric there (see `storage_is_compute`),
/// at half the profile cost (measured: 1.07–1.22x `kernel_matrix`
/// wall-clock at d = 256, n = 1000/4000 — the `kernel_matrix_lower` rows
/// in `BENCH_gemm.json`; the GEMM itself still computes both triangles, so
/// the saving is bounded by the profile share). Under bf16 storage exact
/// symmetry can break at tile boundaries, so that path keeps the full
/// assembly + symmetrize average, preserving its pre-fusion output bit for
/// bit.
pub fn kernel_matrix<S: Scalar>(kernel: &dyn Kernel<S>, x: &Matrix<S>) -> Matrix<S> {
    let x_sq = row_sq_norms(x);
    let n = x.rows();
    let mut k = Matrix::zeros(n, n);
    if n > 0 && storage_is_compute::<S>() {
        let epi = assembly_preamble(kernel, x, x, &x_sq, &x_sq, &mut k, true)
            .expect("n > 0 checked above");
        blas::gemm_nt_epilogue(S::from_f64(-2.0), x, x, S::ZERO, &mut k, &epi);
        k.mirror_lower();
    } else {
        kernel_cross_into(kernel, x, x, &x_sq, &x_sq, &mut k);
        k.symmetrize();
    }
    for i in 0..n {
        k[(i, i)] = kernel.of_sq_dist(S::ZERO);
    }
    k
}

/// Evaluates the kernel feature map `φ(z) = (k(c_1, z), …, k(c_s, z))` for
/// every row `z` of `points` against the rows of `centers`; returns an
/// `(points.rows(), centers.rows())` matrix.
///
/// This is Step 4 of Algorithm 1 in the paper.
///
/// # Panics
///
/// Panics if the feature dimensions differ.
pub fn feature_map<S: Scalar>(
    kernel: &dyn Kernel<S>,
    centers: &Matrix<S>,
    points: &Matrix<S>,
) -> Matrix<S> {
    kernel_cross(kernel, points, centers)
}

/// `β(K) = max_i k(x_i, x_i)` for a plain kernel — identically
/// `k(0) = 1` for the normalised radial kernels in this crate, but computed
/// from data for API symmetry with the preconditioned case.
pub fn beta<S: Scalar>(kernel: &dyn Kernel<S>, x: &Matrix<S>) -> S {
    (0..x.rows())
        .map(|i| kernel.eval(x.row(i), x.row(i)))
        .fold(S::ZERO, S::max)
}

/// Operation count of assembling an `n x m` kernel block over `d` features:
/// the paper counts `(d + l)·m·n` for a full SGD step; the kernel-assembly
/// share is `d·m·n` (one multiply-add per feature per entry).
pub fn assembly_ops(n: usize, m: usize, d: usize) -> f64 {
    n as f64 * m as f64 * d as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaussianKernel, LaplacianKernel};

    fn points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(n, d, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn matches_pairwise_eval() {
        let k = GaussianKernel::new(1.3);
        let x = points(23, 7, 5);
        let km = kernel_matrix(&k, &x);
        for i in 0..23 {
            for j in 0..23 {
                let direct = k.eval(x.row(i), x.row(j));
                assert!(
                    (km[(i, j)] - direct).abs() < 1e-12,
                    "mismatch at ({i},{j}): {} vs {direct}",
                    km[(i, j)]
                );
            }
        }
    }

    #[test]
    fn cross_matches_pairwise_eval() {
        let k = LaplacianKernel::new(2.0);
        let a = points(11, 5, 1);
        let b = points(17, 5, 2);
        let kc = kernel_cross(&k, &a, &b);
        assert_eq!(kc.shape(), (11, 17));
        for i in 0..11 {
            for j in 0..17 {
                let direct = k.eval(a.row(i), b.row(j));
                assert!((kc[(i, j)] - direct).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn f32_assembly_matches_f64_to_single_eps() {
        let k = GaussianKernel::new(1.5);
        let a = points(13, 6, 7);
        let b = points(9, 6, 8);
        let kc64 = kernel_cross(&k, &a, &b);
        let kc32 = kernel_cross::<f32>(&k, &a.cast(), &b.cast());
        for i in 0..13 {
            for j in 0..9 {
                // d ≈ 6-term f32 reductions through a Lipschitz profile:
                // agreement to ~1e-5 absolute (kernel values are in (0, 1]).
                assert!(
                    (kc32[(i, j)] as f64 - kc64[(i, j)]).abs() < 1e-5,
                    "({i},{j}): {} vs {}",
                    kc32[(i, j)],
                    kc64[(i, j)]
                );
            }
        }
    }

    #[test]
    fn tiled_assembly_matches_full_cross() {
        // Column tiles assembled into recycled buffers via
        // `kernel_cross_into` (the streaming producer's path) reproduce the
        // one-shot cross matrix exactly: same GEMM, same norms.
        let k = GaussianKernel::new(1.8);
        let a = points(9, 6, 21);
        let b = points(50, 6, 22);
        let full = kernel_cross(&k, &a, &b);
        let a_sq = row_sq_norms(&a);
        let b_sq = row_sq_norms(&b);
        for n_tile in [1usize, 7, 16, 17, 50, 64] {
            let mut j0 = 0;
            while j0 < b.rows() {
                let len = n_tile.min(b.rows() - j0);
                let b_tile = b.submatrix(j0, 0, len, b.cols());
                let mut out = Matrix::zeros(a.rows(), len);
                kernel_cross_into(&k, &a, &b_tile, &a_sq, &b_sq[j0..j0 + len], &mut out);
                for i in 0..a.rows() {
                    for j in 0..len {
                        assert_eq!(
                            out[(i, j)],
                            full[(i, j0 + j)],
                            "tile width {n_tile}, entry ({i},{})",
                            j0 + j
                        );
                    }
                }
                j0 += len;
            }
        }
    }

    #[test]
    fn symmetric_unit_diagonal() {
        let k = GaussianKernel::new(0.7);
        let x = points(31, 4, 9);
        let km = kernel_matrix(&k, &x);
        assert_eq!(km.asymmetry(), 0.0);
        for i in 0..31 {
            assert_eq!(km[(i, i)], 1.0);
        }
    }

    #[test]
    fn kernel_matrix_is_psd() {
        // All eigenvalues of a Gaussian kernel matrix are ≥ 0.
        let k = GaussianKernel::new(1.0);
        let x = points(20, 3, 11);
        let km = kernel_matrix(&k, &x);
        let dec = ep2_linalg::eigen::sym_eig(&km).unwrap();
        for &v in &dec.values {
            assert!(v > -1e-10, "negative eigenvalue {v}");
        }
    }

    #[test]
    fn beta_is_one_for_normalised_kernels() {
        let x = points(10, 3, 13);
        assert_eq!(beta(&GaussianKernel::new(2.0), &x), 1.0);
        assert_eq!(beta(&LaplacianKernel::new(2.0), &x), 1.0);
    }

    #[test]
    fn feature_map_shape() {
        let k = GaussianKernel::new(1.0);
        let centers = points(6, 4, 3);
        let batch = points(3, 4, 4);
        let phi = feature_map(&k, &centers, &batch);
        assert_eq!(phi.shape(), (3, 6));
        assert!((phi[(0, 0)] - k.eval(batch.row(0), centers.row(0))).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let k = GaussianKernel::new(1.0);
        let x: Matrix = Matrix::zeros(0, 5);
        let y = points(3, 5, 1);
        assert_eq!(kernel_cross(&k, &x, &y).shape(), (0, 3));
    }

    #[test]
    fn far_apart_points_near_zero() {
        let k = GaussianKernel::new(0.1);
        let a = Matrix::from_rows(&[&[0.0, 0.0]]);
        let b = Matrix::from_rows(&[&[100.0, 100.0]]);
        assert!(kernel_cross(&k, &a, &b)[(0, 0)] < 1e-300);
    }
}
