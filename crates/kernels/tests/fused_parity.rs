//! Fused-vs-two-pass assembly parity: the epilogue-fused
//! [`ep2_kernels::matrix::kernel_cross_into`] must reproduce the two-pass
//! reference ([`kernel_cross_into_two_pass`]) **bit for bit** — per kernel
//! family, per precision, per engine (small / per-thread packed /
//! cooperative shared-slab), on shapes straddling every microkernel and
//! cache-block boundary (MR/NR/MC/NC/KC).
//!
//! Scoped to one precision leg by `EP2_TEST_PRECISION` (unset = all), the
//! same hook the CI `precision-matrix` job drives for `tests/precision.rs`;
//! the `mixed` policy stores f32 at this layer, so it selects the f32 legs.
//! The shared-slab engine legs pin thread budgets 2 and 5 explicitly — a
//! worker count that divides the row blocks unevenly is exactly where a
//! mis-threaded epilogue would double-fire or skip entries.

use ep2_kernels::matrix::{
    kernel_cross_into, kernel_cross_into_two_pass, kernel_matrix, row_sq_norms,
};
use ep2_kernels::KernelKind;
use ep2_linalg::{Bf16, Matrix, Scalar};

/// Whether `EP2_TEST_PRECISION` (unset, or a comma-separated policy list)
/// selects this scalar's legs. `mixed` trains f32 storage, so it selects
/// the f32 assembly legs at this layer.
fn precision_selected(name: &str) -> bool {
    match std::env::var("EP2_TEST_PRECISION") {
        Ok(names) => names.split(',').any(|n| {
            let n = n.trim();
            n == name || (n == "mixed" && name == "f32")
        }),
        Err(_) => true,
    }
}

fn points<S: Scalar>(n: usize, d: usize, seed: u64) -> Matrix<S> {
    let mut state = seed | 1;
    Matrix::from_fn(n, d, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        S::from_f64(((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
    })
}

fn assert_bits_equal<S: Scalar>(fused: &Matrix<S>, reference: &Matrix<S>, ctx: &str) {
    assert_eq!(fused.shape(), reference.shape(), "{ctx}: shape");
    for i in 0..fused.rows() {
        for j in 0..fused.cols() {
            let (f, r) = (fused[(i, j)], reference[(i, j)]);
            assert_eq!(
                f.to_f64().to_bits(),
                r.to_f64().to_bits(),
                "{ctx}: entry ({i},{j}) fused {f} vs two-pass {r}"
            );
        }
    }
}

/// Asserts fused == two-pass on one `(n, m, d)` cross-assembly shape for
/// one kernel family.
fn check_cross<S: Scalar>(kind: KernelKind, n: usize, m: usize, d: usize) {
    let kernel = kind.with_bandwidth_in::<S>(1.7);
    let a = points::<S>(n, d, 0xA5A5 + n as u64);
    let b = points::<S>(m, d, 0x5A5A + m as u64);
    let a_sq = row_sq_norms(&a);
    let b_sq = row_sq_norms(&b);
    let mut fused = Matrix::zeros(n, m);
    let mut two_pass = Matrix::zeros(n, m);
    kernel_cross_into(kernel.as_ref(), &a, &b, &a_sq, &b_sq, &mut fused);
    kernel_cross_into_two_pass(kernel.as_ref(), &a, &b, &a_sq, &b_sq, &mut two_pass);
    let ctx = format!("{kind:?} {} {n}x{m} d={d}", S::NAME);
    assert_bits_equal(&fused, &two_pass, &ctx);
}

/// All six kernel families on shapes covering the small-product engine
/// (with MR/NR edge tiles) and the packed engine straddling MC and the
/// register tails; plus the deeper cache-block-crossing shapes (multi-slab
/// `d > KC`, `m > NC`) on two families to bound debug-build runtime — the
/// engine code is family-independent, only the profile differs.
fn parity_sweep<S: Scalar>() {
    for kind in KernelKind::ALL {
        // Small path: 7*40*17 ops < SMALL_PRODUCT, edge tiles on both axes.
        check_cross::<S>(kind, 7, 17, 40);
        // Packed per-thread path: 70*37*60 ops > SMALL_PRODUCT; rows
        // straddle MC = 48 and MR, cols straddle NR.
        check_cross::<S>(kind, 70, 60, 37);
    }
    for kind in [KernelKind::Gaussian, KernelKind::Laplacian] {
        // Multi-slab accumulation (d = 265 > KC = 256) with rows straddling
        // MC and cols straddling NC = 512: the final-pc-slab epilogue must
        // compose with accumulation *through* C on every boundary at once.
        check_cross::<S>(kind, 51, 517, 265);
        // Exact block multiples: interior tiles only.
        check_cross::<S>(kind, 48, 128, 256);
    }
}

#[test]
fn fused_matches_two_pass_f32() {
    if precision_selected("f32") {
        parity_sweep::<f32>();
    }
}

#[test]
fn fused_matches_two_pass_f64() {
    if precision_selected("f64") {
        parity_sweep::<f64>();
    }
}

#[test]
fn fused_matches_two_pass_bf16() {
    if precision_selected("bf16") {
        parity_sweep::<Bf16>();
    }
}

/// Shared-slab engine legs: the same multi-slab shape under explicit
/// thread budgets of 2 and 5 (uneven row-block division) routes
/// `gemm_packed` to the cooperative shared-slab engine.
fn shared_slab_leg<S: Scalar>(threads: usize) {
    ep2_runtime::with_budget(threads, || {
        for kind in [KernelKind::Gaussian, KernelKind::Cauchy] {
            check_cross::<S>(kind, 51, 517, 265);
            check_cross::<S>(kind, 70, 60, 37);
        }
    });
}

#[test]
fn fused_matches_two_pass_shared_slab_budget_2() {
    if precision_selected("f32") {
        shared_slab_leg::<f32>(2);
    }
    if precision_selected("f64") {
        shared_slab_leg::<f64>(2);
    }
    if precision_selected("bf16") {
        shared_slab_leg::<Bf16>(2);
    }
}

#[test]
fn fused_matches_two_pass_shared_slab_budget_5() {
    if precision_selected("f32") {
        shared_slab_leg::<f32>(5);
    }
    if precision_selected("f64") {
        shared_slab_leg::<f64>(5);
    }
    if precision_selected("bf16") {
        shared_slab_leg::<Bf16>(5);
    }
}

/// `kernel_matrix` (lower-triangle fused assembly + mirror for the native
/// floats; full fused assembly + symmetrize for bf16) must reproduce the
/// pre-fusion construction — two-pass cross assembly, symmetrize average,
/// unit diagonal — bit for bit.
fn kernel_matrix_parity<S: Scalar>() {
    for (kinds, n, d) in [
        (&KernelKind::ALL[..], 60usize, 37usize),
        // Multi-slab + MC/NR straddling, packed engine.
        (&KernelKind::ALL[..2], 130, 300),
    ] {
        for &kind in kinds {
            let kernel = kind.with_bandwidth_in::<S>(2.1);
            let x = points::<S>(n, d, 0xC0DE + n as u64);
            let fused = kernel_matrix(kernel.as_ref(), &x);
            let x_sq = row_sq_norms(&x);
            let mut reference = Matrix::zeros(n, n);
            kernel_cross_into_two_pass(kernel.as_ref(), &x, &x, &x_sq, &x_sq, &mut reference);
            reference.symmetrize();
            for i in 0..n {
                reference[(i, i)] = kernel.of_sq_dist(S::ZERO);
            }
            let ctx = format!("kernel_matrix {kind:?} {} n={n} d={d}", S::NAME);
            assert_bits_equal(&fused, &reference, &ctx);
        }
    }
}

#[test]
fn kernel_matrix_matches_two_pass_construction() {
    if precision_selected("f32") {
        kernel_matrix_parity::<f32>();
    }
    if precision_selected("f64") {
        kernel_matrix_parity::<f64>();
    }
    if precision_selected("bf16") {
        kernel_matrix_parity::<Bf16>();
    }
}

#[test]
fn kernel_matrix_shared_slab_matches_two_pass_construction() {
    ep2_runtime::with_budget(3, || {
        if precision_selected("f32") {
            kernel_matrix_parity::<f32>();
        }
        if precision_selected("bf16") {
            kernel_matrix_parity::<Bf16>();
        }
    });
}
