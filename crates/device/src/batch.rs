//! Step 1 of the main algorithm: batch sizes that saturate the resource.
//!
//! The paper defines, for training data with `n` points, `d` features and
//! `l` labels:
//!
//! - `m^C_G`: the batch fully utilising parallelism, `(d + l) · m^C_G · n ≈ C_G`;
//! - `m^S_G`: the batch hitting the memory ceiling, `(d + l + m^S_G) · n ≈ S_G`;
//! - `m^max_G = min(m^C_G, m^S_G)`.
//!
//! # Out-of-core (streamed) Step 1
//!
//! When even `m = 1` over-budgets — `(d + l + 1) · n > S_G`, i.e. the
//! features themselves do not fit — the in-core bound has no solution and
//! the paper's workflow rejects the problem. [`max_batch_streamed`] instead
//! plans a *streamed* residency ([`ResidencyMode::Streamed`]): only the
//! weights (`l·n`), the staged mini-batch feature blocks (`d·m` per
//! producer, bounded by `tiles_in_flight - 1`), and a bounded ring of
//! `tiles_in_flight` kernel-block tiles — each an `m x n_tile` kernel
//! panel plus its `d x n_tile` staged feature slice — are resident at once:
//!
//! ```text
//! tif · (m + d) · n_tile  +  l·n  +  (tif − 1)·d·m  ≤  S_G / slot_factor
//! ```
//!
//! `m` and `n_tile` are chosen jointly: start from the capacity batch and
//! halve `m` until a tile of useful width fits the ring budget.

use crate::{MemoryError, Precision, ResourceSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where the training set's kernel blocks live during training.
///
/// `InCore` is the paper's Step-1 residency: features, weights, and the
/// mini-batch kernel block all resident, `(d + l + m) · n ≤ S_G`.
/// `Streamed` is the out-of-core extension: kernel blocks are produced
/// tile-by-tile into a bounded ring and consumed by the training iteration,
/// so `n` beyond the ledger becomes trainable at streaming speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResidencyMode {
    /// Everything resident (the paper's Step-1 accounting).
    InCore,
    /// Kernel blocks streamed through a bounded double-buffered tile ring.
    Streamed,
}

impl fmt::Display for ResidencyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResidencyMode::InCore => "in-core",
            ResidencyMode::Streamed => "streamed",
        })
    }
}

/// The outcome of the Step-1 calculation, including both intermediate batch
/// sizes (exposed per C-INTERMEDIATE so harnesses can report them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPlan {
    /// `m^C_G`: batch saturating the parallel capacity.
    pub capacity_batch: usize,
    /// `m^S_G`: largest batch fitting in device memory (0 when even `m = 1`
    /// does not fit).
    pub memory_batch: usize,
    /// `m^max_G = min(m^C_G, m^S_G)`, clamped to `[1, n]`.
    pub batch: usize,
    /// `true` when the memory bound (not parallelism) is the binding
    /// constraint.
    pub memory_bound: bool,
}

/// `m^C_G` from `(d + l) · m · n ≈ C_G`, at least 1.
pub fn batch_for_capacity(spec: &ResourceSpec, n: usize, d: usize, l: usize) -> usize {
    let denom = ((d + l) as f64) * (n as f64);
    if denom <= 0.0 {
        return 1;
    }
    (spec.parallel_capacity / denom).floor().max(1.0) as usize
}

/// `m^S_G` from `(d + l + m) · n ≈ S_G`; returns 0 when the dataset itself
/// (features + weights) does not fit in device memory.
///
/// Uses the raw `memory_floats` slot count — i.e. the f32 reference
/// interpretation documented on [`ResourceSpec`]. Use
/// [`batch_for_memory_with`] to account for the training precision.
pub fn batch_for_memory(spec: &ResourceSpec, n: usize, d: usize, l: usize) -> usize {
    batch_for_memory_with(spec, n, d, l, Precision::F32)
}

/// [`batch_for_memory`] under an explicit precision policy: f64 elements
/// occupy two f32-reference slots, so `m^S_G` shrinks accordingly — and
/// dropping from f64 to f32 (or `Mixed`) doubles the memory-slot budget.
pub fn batch_for_memory_with(
    spec: &ResourceSpec,
    n: usize,
    d: usize,
    l: usize,
    precision: Precision,
) -> usize {
    if n == 0 {
        return 0;
    }
    let per_point = spec.memory_slots(precision) / (n as f64) - (d + l) as f64;
    if per_point < 1.0 {
        0
    } else {
        per_point.floor() as usize
    }
}

/// The full Step-1 plan: `m^max_G = min(m^C_G, m^S_G)` clamped to `[1, n]`,
/// at the f32 reference slot width (see [`batch_for_memory`]).
///
/// **Pre-flighting a trainer run?** `TrainConfig` defaults to
/// `Precision::F64`, whose elements cost *two* reference slots — use
/// [`max_batch_with`] with the same precision the trainer will run under,
/// or the trainer's memory ledger may reject a plan this function
/// approved.
///
/// # Panics
///
/// Panics if `n == 0` or `d + l == 0`, or if the problem cannot fit on the
/// device at all (`m^S_G == 0`) — a configuration the paper's workflow never
/// reaches because datasets are subsampled to fit.
pub fn max_batch(spec: &ResourceSpec, n: usize, d: usize, l: usize) -> BatchPlan {
    max_batch_with(spec, n, d, l, Precision::F32)
}

/// [`max_batch`] under an explicit precision policy. This is the Step-1
/// entry point the trainer uses: under `Precision::F32` (or `Mixed`) the
/// memory-limited batch `m^S_G` is what the paper's f32 GPU implementation
/// sees; under `Precision::F64` every resident element costs two reference
/// slots, so on a memory-bound device `m^max_G` roughly halves — switching
/// back to f32 doubles the computable batch for the same `ResourceSpec`.
///
/// # Panics
///
/// Same conditions as [`max_batch`].
pub fn max_batch_with(
    spec: &ResourceSpec,
    n: usize,
    d: usize,
    l: usize,
    precision: Precision,
) -> BatchPlan {
    assert!(n > 0, "max_batch: n must be positive");
    assert!(d + l > 0, "max_batch: d + l must be positive");
    let capacity_batch = batch_for_capacity(spec, n, d, l);
    let memory_batch = batch_for_memory_with(spec, n, d, l, precision);
    assert!(
        memory_batch > 0,
        "problem (n={n}, d={d}, l={l}, precision={precision}) does not fit in \
         device memory {:.3e}",
        spec.memory_slots(precision)
    );
    let batch = capacity_batch.min(memory_batch).clamp(1, n);
    BatchPlan {
        capacity_batch,
        memory_batch,
        batch,
        memory_bound: memory_batch < capacity_batch,
    }
}

/// Whether the in-core Step-1 bound has any solution: `m^S_G ≥ 1`, i.e.
/// features + weights + one kernel-block row fit the device. When this is
/// false, the only way to train is [`ResidencyMode::Streamed`].
pub fn fits_in_core(spec: &ResourceSpec, n: usize, d: usize, l: usize, p: Precision) -> bool {
    batch_for_memory_with(spec, n, d, l, p) >= 1
}

/// Narrowest kernel-block tile worth streaming: below this width the
/// per-tile fixed costs (feature-slice staging, channel hand-off, GEMM edge
/// panels) dominate the `m · n_tile · d` assembly work. Tiles are still
/// allowed to be narrower when the *dataset* is (`n_tile ≤ n` always), and
/// the joint `m`/`n_tile` shrink accepts any positive width once `m` has
/// bottomed out at 1.
pub const MIN_STREAM_TILE: usize = 64;

/// Default number of ring slots: double buffering (assembly of tile `t+1`
/// overlaps consumption of tile `t`).
pub const DEFAULT_TILES_IN_FLIGHT: usize = 2;

/// Elements resident during a streamed epoch (before the precision's
/// slot-factor): the tile ring (`tiles_in_flight` slots of an `m x n_tile`
/// kernel panel plus its `d x n_tile` staged feature slice), the weights
/// `l·n`, and up to `tiles_in_flight - 1` staged `d·m` mini-batch feature
/// blocks — one per producer, and the pipeline's liveness bound caps the
/// producer count at `tiles_in_flight - 1`, so this is the worst case the
/// engine can actually charge. At the default double-buffered ring this
/// reduces to the single batch block of the one-producer pipeline.
pub fn streamed_slots(
    n: usize,
    d: usize,
    l: usize,
    m: usize,
    n_tile: usize,
    tiles_in_flight: usize,
) -> f64 {
    let staging_blocks = tiles_in_flight.saturating_sub(1).max(1);
    (tiles_in_flight * (m + d) * n_tile) as f64 + (l * n) as f64 + (staging_blocks * d * m) as f64
}

/// The outcome of the streamed Step-1 calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamedBatchPlan {
    /// Mini-batch size `m` (capacity batch, possibly shrunk to fit the ring).
    pub m: usize,
    /// Kernel-block tile width (columns of the `m x n` block per tile).
    pub n_tile: usize,
    /// Ring slots charged against the ledger.
    pub tiles_in_flight: usize,
    /// `m^C_G` for reference (the unshrunk starting point).
    pub capacity_batch: usize,
    /// `true` when `m` had to shrink below `m^C_G` so a useful tile fits.
    pub memory_bound: bool,
    /// Peak elements resident under this plan (pre-slot-factor); multiply by
    /// the precision's slot factor for ledger slots.
    pub resident_elements: f64,
}

impl StreamedBatchPlan {
    /// Ledger slots this plan charges under `precision`.
    pub fn resident_slots(&self, precision: Precision) -> f64 {
        self.resident_elements * precision.slot_factor()
    }
}

/// Streamed Step 1: choose `m` and `n_tile` jointly so that
/// [`streamed_slots`] fits the device at `precision`.
///
/// Starts from `m = m^C_G` (or `m_override`, which is respected exactly)
/// and halves `m` until the leftover budget affords a tile of at least
/// [`MIN_STREAM_TILE`] columns (`m = 1` accepts any positive width). This is
/// the joint shrink: a smaller batch both narrows the ring slots (`m·n_tile`
/// each) and frees `d·m` batch-block slots, letting `n_tile` grow back.
///
/// # Errors
///
/// Returns [`MemoryError`] when no `(m, n_tile)` fits — the weights `l·n`
/// plus one minimal tile exceed the budget (streaming cannot shrink `l·n`).
///
/// # Panics
///
/// Panics if `n == 0`, `d + l == 0`, or `tiles_in_flight < 2`.
pub fn max_batch_streamed(
    spec: &ResourceSpec,
    n: usize,
    d: usize,
    l: usize,
    precision: Precision,
    tiles_in_flight: usize,
    m_override: Option<usize>,
) -> Result<StreamedBatchPlan, MemoryError> {
    assert!(n > 0, "max_batch_streamed: n must be positive");
    assert!(d + l > 0, "max_batch_streamed: d + l must be positive");
    assert!(
        tiles_in_flight >= 2,
        "streaming needs at least double buffering (tiles_in_flight >= 2)"
    );
    let budget = spec.memory_slots(precision);
    let capacity_batch = batch_for_capacity(spec, n, d, l);
    // Widest tile the leftover budget affords at batch size m (0 = none).
    // Reserves one staged `d·m` batch block per possible producer
    // (`tiles_in_flight - 1`, the liveness bound) — see `streamed_slots`.
    let staging_blocks = tiles_in_flight - 1;
    let tile_for = |m: usize| -> usize {
        let free = budget - ((l * n) as f64 + (staging_blocks * d * m) as f64);
        let per_col = (tiles_in_flight * (m + d)) as f64;
        if free < per_col {
            0
        } else {
            ((free / per_col).floor() as usize).min(n)
        }
    };
    let plan = |m: usize, n_tile: usize, memory_bound: bool| StreamedBatchPlan {
        m,
        n_tile,
        tiles_in_flight,
        capacity_batch,
        memory_bound,
        resident_elements: streamed_slots(n, d, l, m, n_tile, tiles_in_flight),
    };
    if let Some(m) = m_override {
        let m = m.clamp(1, n);
        let n_tile = tile_for(m);
        if n_tile == 0 {
            return Err(MemoryError::for_plan(
                streamed_slots(n, d, l, m, 1, tiles_in_flight) * precision.slot_factor(),
                spec.memory_floats,
            ));
        }
        return Ok(plan(m, n_tile, false));
    }
    let mut m = capacity_batch.clamp(1, n);
    let mut shrunk = false;
    loop {
        let n_tile = tile_for(m);
        if n_tile >= MIN_STREAM_TILE.min(n) || (m == 1 && n_tile >= 1) {
            return Ok(plan(m, n_tile, shrunk));
        }
        if m == 1 {
            return Err(MemoryError::for_plan(
                streamed_slots(n, d, l, 1, 1, tiles_in_flight) * precision.slot_factor(),
                spec.memory_floats,
            ));
        }
        m /= 2;
        shrunk = true;
    }
}

/// [`max_batch_streamed`] with the ring depth chosen to fit the pipeline's
/// *planned* producer count — the single entry point `ep2 plan` and the
/// trainer share, so both always agree on the tiling.
///
/// The circularity (ring depth shapes `n_tile`; `n_tile` shapes the
/// producer plan; producers bound the ring depth) resolves in at most two
/// deterministic rounds: plan at the default double-buffered ring first,
/// partition the thread budget over the resulting tile width
/// ([`crate::cost::partition_stream_threads`] with the setup terms zeroed
/// — `s`/`q` are not known until Step 2, so this slightly overweights the
/// assembly side; the trainer's final partition includes them), and
/// re-plan with a deeper ring only when the partition actually wants more
/// producers than the ring admits. Wide tiles therefore keep the PR 3
/// double-buffered ring on any core count; only genuinely multi-producer
/// pipelines pay for extra slots. An explicit `producers_override` (CLI
/// flag / config / deprecated env var) sizes the ring to `override + 1`
/// directly.
///
/// # Errors
///
/// Same conditions as [`max_batch_streamed`].
///
/// # Panics
///
/// Same conditions as [`max_batch_streamed`].
// Positional knobs mirror `max_batch_streamed` 1:1 plus the two planning
// inputs; every caller names them at the call site.
#[allow(clippy::too_many_arguments)]
pub fn max_batch_streamed_planned(
    spec: &ResourceSpec,
    n: usize,
    d: usize,
    l: usize,
    precision: Precision,
    m_override: Option<usize>,
    producers_override: Option<usize>,
    total_threads: usize,
) -> Result<StreamedBatchPlan, MemoryError> {
    if let Some(p) = producers_override {
        // Mirror `partition_stream_threads`' budget clamp (producers +
        // consumer ≤ total on a multi-thread budget) so the ring is sized
        // for the producer count that will actually run.
        let p = if total_threads > 1 {
            p.clamp(1, total_threads - 1)
        } else {
            p.max(1)
        };
        let tif = DEFAULT_TILES_IN_FLIGHT.max(p + 1);
        return max_batch_streamed(spec, n, d, l, precision, tif, m_override);
    }
    let splan = max_batch_streamed(
        spec,
        n,
        d,
        l,
        precision,
        DEFAULT_TILES_IN_FLIGHT,
        m_override,
    )?;
    let shape = crate::cost::ProblemShape {
        n,
        m: splan.m,
        d,
        l,
        s: 0,
        q: 0,
    };
    let planned =
        crate::cost::partition_stream_threads(&shape, splan.n_tile, total_threads, None).producers;
    if planned + 1 > splan.tiles_in_flight {
        return max_batch_streamed(spec, n, d, l, precision, planned + 1, m_override);
    }
    Ok(splan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_ring_depth_is_core_count_invariant_on_wide_tiles() {
        // Roomy budget → wide tiles → one planned producer at any thread
        // count: the ring must stay double-buffered regardless of cores
        // (plans — and hence m, eta, convergence — must not vary with the
        // machine the planner happens to run on).
        let spec = ResourceSpec::scaled_virtual_gpu();
        let mut plans = vec![];
        for total in [1usize, 4, 16] {
            let p = max_batch_streamed_planned(
                &spec,
                3_000,
                440,
                10,
                Precision::F64,
                None,
                None,
                total,
            )
            .unwrap();
            assert_eq!(p.tiles_in_flight, DEFAULT_TILES_IN_FLIGHT, "total={total}");
            plans.push((p.m, p.n_tile));
        }
        assert!(plans.windows(2).all(|w| w[0] == w[1]));
        // An explicit producer override sizes the ring to fit it directly.
        let p = max_batch_streamed_planned(&spec, 3_000, 440, 10, Precision::F64, None, Some(3), 4)
            .unwrap();
        assert_eq!(p.tiles_in_flight, 4);
    }

    #[test]
    fn titan_xp_mnist_scale_matches_table4() {
        // Table 4: MNIST n = 1e6, d = 784, l = 10 gives m = 735 on Titan Xp.
        let plan = max_batch(&ResourceSpec::titan_xp(), 1_000_000, 784, 10);
        assert!(
            (700..=770).contains(&plan.batch),
            "expected ~735, got {}",
            plan.batch
        );
        assert!(!plan.memory_bound, "MNIST at 1e6 is capacity-bound");
    }

    #[test]
    fn capacity_batch_shrinks_with_n() {
        let spec = ResourceSpec::titan_xp();
        let m_small = batch_for_capacity(&spec, 10_000, 784, 10);
        let m_big = batch_for_capacity(&spec, 1_000_000, 784, 10);
        assert!(m_small > m_big);
    }

    #[test]
    fn memory_batch_zero_when_dataset_too_big() {
        let spec = ResourceSpec::new("tiny", 1e9, 1e4, 1e9, 0.0);
        assert_eq!(batch_for_memory(&spec, 1_000, 500, 10), 0);
    }

    #[test]
    fn memory_bound_flag() {
        // Device with huge capacity but tiny memory: memory is binding.
        let spec = ResourceSpec::new("mem-starved", 1e15, 2e6, 1e12, 0.0);
        let plan = max_batch(&spec, 1_000, 100, 10);
        assert!(plan.memory_bound);
        assert_eq!(plan.batch, plan.memory_batch.min(1_000));
    }

    #[test]
    fn batch_clamped_to_n() {
        // Tiny problem on a big device: m^max can't exceed n.
        let plan = max_batch(&ResourceSpec::titan_xp(), 50, 10, 2);
        assert_eq!(plan.batch, 50);
    }

    #[test]
    fn batch_at_least_one() {
        // Enormous n forces m^C below 1; clamp to 1.
        let spec = ResourceSpec::new("small-cap", 1e6, 1e12, 1e9, 0.0);
        let plan = max_batch(&spec, 10_000_000, 784, 10);
        assert_eq!(plan.batch, 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn unfittable_problem_panics() {
        let spec = ResourceSpec::new("tiny", 1e9, 1e4, 1e9, 0.0);
        let _ = max_batch(&spec, 1_000, 500, 10);
    }

    #[test]
    fn f32_memory_batch_at_least_doubles_f64() {
        // Memory-bound device: m^S_G(f32) = S/n − (d+l) and
        // m^S_G(f64) = S/2n − (d+l), so the f32 batch is 2·m_f64 + (d+l) —
        // at least double, with the 2x ratio exact on the slot budget.
        let spec = ResourceSpec::new("mem-starved", 1e15, 2e6, 1e12, 0.0);
        let (n, d, l) = (1_000, 100, 10);
        let m32 = max_batch_with(&spec, n, d, l, Precision::F32);
        let m64 = max_batch_with(&spec, n, d, l, Precision::F64);
        assert!(m32.memory_bound && m64.memory_bound);
        assert_eq!(m32.memory_batch, 2 * m64.memory_batch + (d + l));
        assert!(m32.memory_batch >= 2 * m64.memory_batch);
        // Mixed plans memory like f32.
        let mixed = max_batch_with(&spec, n, d, l, Precision::Mixed);
        assert_eq!(mixed.memory_batch, m32.memory_batch);
    }

    #[test]
    fn streamed_plan_fits_where_in_core_cannot() {
        // Features alone over-budget: (d + l + 1)·n = 511·10_000 > 1e6.
        let spec = ResourceSpec::new("tiny-mem", 1e12, 1e6, 1e12, 0.0);
        let (n, d, l) = (10_000, 500, 10);
        assert!(!fits_in_core(&spec, n, d, l, Precision::F32));
        let plan = max_batch_streamed(&spec, n, d, l, Precision::F32, 2, None).unwrap();
        assert!(plan.n_tile >= MIN_STREAM_TILE);
        assert!(plan.m >= 1);
        assert!(plan.resident_slots(Precision::F32) <= spec.memory_floats);
        // The formula the plan reports is the formula we documented.
        assert_eq!(
            plan.resident_elements,
            streamed_slots(n, d, l, plan.m, plan.n_tile, 2)
        );
    }

    #[test]
    fn streamed_plan_shrinks_m_jointly_with_tile() {
        // Budget so tight that the capacity batch leaves no room for a
        // MIN_STREAM_TILE-wide ring: m must shrink below m^C_G.
        let (n, d, l) = (50_000, 200, 10);
        let spec = ResourceSpec::new("strangled", 1e12, 5.5e5, 1e12, 0.0);
        let cap = batch_for_capacity(&spec, n, d, l);
        let plan = max_batch_streamed(&spec, n, d, l, Precision::F32, 2, None).unwrap();
        assert!(plan.memory_bound, "m must have shrunk");
        assert!(plan.m < cap);
        assert!(plan.n_tile >= 1);
        assert!(plan.resident_slots(Precision::F32) <= spec.memory_floats);
    }

    #[test]
    fn streamed_plan_respects_precision_slot_width() {
        let spec = ResourceSpec::new("tiny-mem", 1e12, 1e6, 1e12, 0.0);
        let (n, d, l) = (10_000, 500, 10);
        let p32 = max_batch_streamed(&spec, n, d, l, Precision::F32, 2, None).unwrap();
        let p64 = max_batch_streamed(&spec, n, d, l, Precision::F64, 2, None).unwrap();
        // Half the element budget under f64 → strictly narrower tiles
        // (or a smaller batch).
        assert!(p64.n_tile < p32.n_tile || p64.m < p32.m);
        assert!(p64.resident_slots(Precision::F64) <= spec.memory_floats);
    }

    #[test]
    fn streamed_plan_rejects_unshrinkable_weights() {
        // l·n alone exceeds the budget: no streaming plan exists.
        let spec = ResourceSpec::new("hopeless", 1e12, 1e4, 1e12, 0.0);
        let err = max_batch_streamed(&spec, 10_000, 5, 10, Precision::F32, 2, None).unwrap_err();
        assert!(err.requested > err.budget);
        assert_eq!(err.peak, 0.0);
    }

    #[test]
    fn streamed_m_override_respected_or_rejected() {
        let spec = ResourceSpec::new("tiny-mem", 1e12, 1e6, 1e12, 0.0);
        let (n, d, l) = (10_000, 500, 10);
        let plan = max_batch_streamed(&spec, n, d, l, Precision::F32, 2, Some(32)).unwrap();
        assert_eq!(plan.m, 32);
        // An absurd override cannot be shrunk away — it must error.
        assert!(max_batch_streamed(&spec, n, d, l, Precision::F32, 2, Some(n)).is_err());
    }

    #[test]
    fn residency_mode_display() {
        assert_eq!(ResidencyMode::InCore.to_string(), "in-core");
        assert_eq!(ResidencyMode::Streamed.to_string(), "streamed");
    }

    #[test]
    fn titan_xp_mnist_is_memory_bound_only_under_f64() {
        // Table-4 MNIST scale (n = 1e6, d = 784, l = 10) on the Titan Xp:
        // in the paper's f32 the problem is capacity-bound (m ≈ 735), but
        // storing everything in f64 would cross the 12 GB line first — the
        // precision knob genuinely changes Step 1's binding constraint.
        let spec = ResourceSpec::titan_xp();
        let a = max_batch_with(&spec, 1_000_000, 784, 10, Precision::F32);
        let b = max_batch_with(&spec, 1_000_000, 784, 10, Precision::F64);
        assert!(!a.memory_bound, "f32 is capacity-bound at paper scale");
        assert!(b.memory_bound, "f64 crosses the memory line first");
        assert!(b.batch < a.batch);
    }
}
