//! Step 1 of the main algorithm: batch sizes that saturate the resource.
//!
//! The paper defines, for training data with `n` points, `d` features and
//! `l` labels:
//!
//! - `m^C_G`: the batch fully utilising parallelism, `(d + l) · m^C_G · n ≈ C_G`;
//! - `m^S_G`: the batch hitting the memory ceiling, `(d + l + m^S_G) · n ≈ S_G`;
//! - `m^max_G = min(m^C_G, m^S_G)`.

use crate::{Precision, ResourceSpec};
use serde::{Deserialize, Serialize};

/// The outcome of the Step-1 calculation, including both intermediate batch
/// sizes (exposed per C-INTERMEDIATE so harnesses can report them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPlan {
    /// `m^C_G`: batch saturating the parallel capacity.
    pub capacity_batch: usize,
    /// `m^S_G`: largest batch fitting in device memory (0 when even `m = 1`
    /// does not fit).
    pub memory_batch: usize,
    /// `m^max_G = min(m^C_G, m^S_G)`, clamped to `[1, n]`.
    pub batch: usize,
    /// `true` when the memory bound (not parallelism) is the binding
    /// constraint.
    pub memory_bound: bool,
}

/// `m^C_G` from `(d + l) · m · n ≈ C_G`, at least 1.
pub fn batch_for_capacity(spec: &ResourceSpec, n: usize, d: usize, l: usize) -> usize {
    let denom = ((d + l) as f64) * (n as f64);
    if denom <= 0.0 {
        return 1;
    }
    (spec.parallel_capacity / denom).floor().max(1.0) as usize
}

/// `m^S_G` from `(d + l + m) · n ≈ S_G`; returns 0 when the dataset itself
/// (features + weights) does not fit in device memory.
///
/// Uses the raw `memory_floats` slot count — i.e. the f32 reference
/// interpretation documented on [`ResourceSpec`]. Use
/// [`batch_for_memory_with`] to account for the training precision.
pub fn batch_for_memory(spec: &ResourceSpec, n: usize, d: usize, l: usize) -> usize {
    batch_for_memory_with(spec, n, d, l, Precision::F32)
}

/// [`batch_for_memory`] under an explicit precision policy: f64 elements
/// occupy two f32-reference slots, so `m^S_G` shrinks accordingly — and
/// dropping from f64 to f32 (or `Mixed`) doubles the memory-slot budget.
pub fn batch_for_memory_with(
    spec: &ResourceSpec,
    n: usize,
    d: usize,
    l: usize,
    precision: Precision,
) -> usize {
    if n == 0 {
        return 0;
    }
    let per_point = spec.memory_slots(precision) / (n as f64) - (d + l) as f64;
    if per_point < 1.0 {
        0
    } else {
        per_point.floor() as usize
    }
}

/// The full Step-1 plan: `m^max_G = min(m^C_G, m^S_G)` clamped to `[1, n]`,
/// at the f32 reference slot width (see [`batch_for_memory`]).
///
/// **Pre-flighting a trainer run?** `TrainConfig` defaults to
/// `Precision::F64`, whose elements cost *two* reference slots — use
/// [`max_batch_with`] with the same precision the trainer will run under,
/// or the trainer's memory ledger may reject a plan this function
/// approved.
///
/// # Panics
///
/// Panics if `n == 0` or `d + l == 0`, or if the problem cannot fit on the
/// device at all (`m^S_G == 0`) — a configuration the paper's workflow never
/// reaches because datasets are subsampled to fit.
pub fn max_batch(spec: &ResourceSpec, n: usize, d: usize, l: usize) -> BatchPlan {
    max_batch_with(spec, n, d, l, Precision::F32)
}

/// [`max_batch`] under an explicit precision policy. This is the Step-1
/// entry point the trainer uses: under `Precision::F32` (or `Mixed`) the
/// memory-limited batch `m^S_G` is what the paper's f32 GPU implementation
/// sees; under `Precision::F64` every resident element costs two reference
/// slots, so on a memory-bound device `m^max_G` roughly halves — switching
/// back to f32 doubles the computable batch for the same `ResourceSpec`.
///
/// # Panics
///
/// Same conditions as [`max_batch`].
pub fn max_batch_with(
    spec: &ResourceSpec,
    n: usize,
    d: usize,
    l: usize,
    precision: Precision,
) -> BatchPlan {
    assert!(n > 0, "max_batch: n must be positive");
    assert!(d + l > 0, "max_batch: d + l must be positive");
    let capacity_batch = batch_for_capacity(spec, n, d, l);
    let memory_batch = batch_for_memory_with(spec, n, d, l, precision);
    assert!(
        memory_batch > 0,
        "problem (n={n}, d={d}, l={l}, precision={precision}) does not fit in \
         device memory {:.3e}",
        spec.memory_slots(precision)
    );
    let batch = capacity_batch.min(memory_batch).clamp(1, n);
    BatchPlan {
        capacity_batch,
        memory_batch,
        batch,
        memory_bound: memory_batch < capacity_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_xp_mnist_scale_matches_table4() {
        // Table 4: MNIST n = 1e6, d = 784, l = 10 gives m = 735 on Titan Xp.
        let plan = max_batch(&ResourceSpec::titan_xp(), 1_000_000, 784, 10);
        assert!(
            (700..=770).contains(&plan.batch),
            "expected ~735, got {}",
            plan.batch
        );
        assert!(!plan.memory_bound, "MNIST at 1e6 is capacity-bound");
    }

    #[test]
    fn capacity_batch_shrinks_with_n() {
        let spec = ResourceSpec::titan_xp();
        let m_small = batch_for_capacity(&spec, 10_000, 784, 10);
        let m_big = batch_for_capacity(&spec, 1_000_000, 784, 10);
        assert!(m_small > m_big);
    }

    #[test]
    fn memory_batch_zero_when_dataset_too_big() {
        let spec = ResourceSpec::new("tiny", 1e9, 1e4, 1e9, 0.0);
        assert_eq!(batch_for_memory(&spec, 1_000, 500, 10), 0);
    }

    #[test]
    fn memory_bound_flag() {
        // Device with huge capacity but tiny memory: memory is binding.
        let spec = ResourceSpec::new("mem-starved", 1e15, 2e6, 1e12, 0.0);
        let plan = max_batch(&spec, 1_000, 100, 10);
        assert!(plan.memory_bound);
        assert_eq!(plan.batch, plan.memory_batch.min(1_000));
    }

    #[test]
    fn batch_clamped_to_n() {
        // Tiny problem on a big device: m^max can't exceed n.
        let plan = max_batch(&ResourceSpec::titan_xp(), 50, 10, 2);
        assert_eq!(plan.batch, 50);
    }

    #[test]
    fn batch_at_least_one() {
        // Enormous n forces m^C below 1; clamp to 1.
        let spec = ResourceSpec::new("small-cap", 1e6, 1e12, 1e9, 0.0);
        let plan = max_batch(&spec, 10_000_000, 784, 10);
        assert_eq!(plan.batch, 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn unfittable_problem_panics() {
        let spec = ResourceSpec::new("tiny", 1e9, 1e4, 1e9, 0.0);
        let _ = max_batch(&spec, 1_000, 500, 10);
    }

    #[test]
    fn f32_memory_batch_at_least_doubles_f64() {
        // Memory-bound device: m^S_G(f32) = S/n − (d+l) and
        // m^S_G(f64) = S/2n − (d+l), so the f32 batch is 2·m_f64 + (d+l) —
        // at least double, with the 2x ratio exact on the slot budget.
        let spec = ResourceSpec::new("mem-starved", 1e15, 2e6, 1e12, 0.0);
        let (n, d, l) = (1_000, 100, 10);
        let m32 = max_batch_with(&spec, n, d, l, Precision::F32);
        let m64 = max_batch_with(&spec, n, d, l, Precision::F64);
        assert!(m32.memory_bound && m64.memory_bound);
        assert_eq!(m32.memory_batch, 2 * m64.memory_batch + (d + l));
        assert!(m32.memory_batch >= 2 * m64.memory_batch);
        // Mixed plans memory like f32.
        let mixed = max_batch_with(&spec, n, d, l, Precision::Mixed);
        assert_eq!(mixed.memory_batch, m32.memory_batch);
    }

    #[test]
    fn titan_xp_mnist_is_memory_bound_only_under_f64() {
        // Table-4 MNIST scale (n = 1e6, d = 784, l = 10) on the Titan Xp:
        // in the paper's f32 the problem is capacity-bound (m ≈ 735), but
        // storing everything in f64 would cross the 12 GB line first — the
        // precision knob genuinely changes Step 1's binding constraint.
        let spec = ResourceSpec::titan_xp();
        let a = max_batch_with(&spec, 1_000_000, 784, 10, Precision::F32);
        let b = max_batch_with(&spec, 1_000_000, 784, 10, Precision::F64);
        assert!(!a.memory_bound, "f32 is capacity-bound at paper scale");
        assert!(b.memory_bound, "f64 crosses the memory line first");
        assert!(b.batch < a.batch);
    }
}
