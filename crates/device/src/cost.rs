//! Table-1 cost formulas: computation and memory per iteration.
//!
//! | Method | Computation | Memory |
//! |---|---|---|
//! | Improved EigenPro | `s·m·q + n·m·(d+l)` | `s·q + n·(m+d+l)` |
//! | Original EigenPro | `n·m·q + n·m·(d+l)` | `n·q + n·(m+d+l)` |
//! | SGD               | `n·m·(d+l)`         | `n·(m+d+l)` |
//!
//! The bolded (overhead) terms in the paper are the first summands; the
//! improved iteration's overhead depends on the fixed block size `s` instead
//! of the data size `n`, which is the whole point of Section 4.

use serde::{Deserialize, Serialize};

/// Problem-shape parameters entering the Table-1 formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemShape {
    /// Training set size `n`.
    pub n: usize,
    /// Mini-batch size `m`.
    pub m: usize,
    /// Feature dimension `d`.
    pub d: usize,
    /// Number of labels `l`.
    pub l: usize,
    /// Fixed coordinate block (Nyström subsample) size `s`.
    pub s: usize,
    /// EigenPro spectral truncation level `q`.
    pub q: usize,
}

/// Computation (operations) and memory (matrix-element slots) for one
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationCost {
    /// Operation count per iteration.
    pub compute_ops: f64,
    /// Resident memory in element slots.
    pub memory_slots: f64,
}

impl IterationCost {
    /// Overhead of `self` relative to `base`, as
    /// `(compute ratio - 1, memory ratio - 1)`.
    pub fn overhead_over(&self, base: &IterationCost) -> (f64, f64) {
        (
            self.compute_ops / base.compute_ops - 1.0,
            self.memory_slots / base.memory_slots - 1.0,
        )
    }
}

/// Cost of one standard SGD iteration (Table 1, row 3).
pub fn sgd(shape: &ProblemShape) -> IterationCost {
    let (n, m, d, l) = (
        shape.n as f64,
        shape.m as f64,
        shape.d as f64,
        shape.l as f64,
    );
    IterationCost {
        compute_ops: n * m * (d + l),
        memory_slots: n * (m + d + l),
    }
}

/// Cost of one improved (Nyström) EigenPro iteration (Table 1, row 1).
pub fn improved_eigenpro(shape: &ProblemShape) -> IterationCost {
    let base = sgd(shape);
    let (s, m, q) = (shape.s as f64, shape.m as f64, shape.q as f64);
    IterationCost {
        compute_ops: s * m * q + base.compute_ops,
        memory_slots: s * q + base.memory_slots,
    }
}

/// Cost of one original EigenPro iteration (Table 1, row 2): the
/// preconditioner lives on all `n` centers.
pub fn original_eigenpro(shape: &ProblemShape) -> IterationCost {
    let base = sgd(shape);
    let (n, m, q) = (shape.n as f64, shape.m as f64, shape.q as f64);
    IterationCost {
        compute_ops: n * m * q + base.compute_ops,
        memory_slots: n * q + base.memory_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's "realistic example": n = 1e6, s = 1e4, d and m ~ 1e3,
    /// q and l ~ 1e2 gives improved-EigenPro overhead below 1% in both
    /// computation and memory.
    #[test]
    fn realistic_example_under_one_percent() {
        let shape = ProblemShape {
            n: 1_000_000,
            m: 1_000,
            d: 1_000,
            l: 100,
            s: 10_000,
            q: 100,
        };
        let (comp, mem) = improved_eigenpro(&shape).overhead_over(&sgd(&shape));
        assert!(comp < 0.01, "compute overhead {comp}");
        assert!(mem < 0.01, "memory overhead {mem}");
    }

    #[test]
    fn original_overhead_scales_with_n() {
        let small = ProblemShape {
            n: 10_000,
            m: 100,
            d: 100,
            l: 10,
            s: 2_000,
            q: 50,
        };
        let big = ProblemShape {
            n: 1_000_000,
            ..small
        };
        // Original EigenPro's *memory* overhead ratio q/(m+d+l) is constant,
        // but its absolute overhead grows linearly with n while improved
        // EigenPro's absolute overhead stays fixed.
        let orig_small = original_eigenpro(&small);
        let orig_big = original_eigenpro(&big);
        let sgd_small = sgd(&small);
        let sgd_big = sgd(&big);
        let abs_small = orig_small.memory_slots - sgd_small.memory_slots;
        let abs_big = orig_big.memory_slots - sgd_big.memory_slots;
        assert!((abs_big / abs_small - 100.0).abs() < 1e-9);
        let imp_small = improved_eigenpro(&small).memory_slots - sgd_small.memory_slots;
        let imp_big = improved_eigenpro(&big).memory_slots - sgd_big.memory_slots;
        assert_eq!(imp_small, imp_big);
    }

    #[test]
    fn improved_cheaper_than_original_when_s_below_n() {
        let shape = ProblemShape {
            n: 100_000,
            m: 500,
            d: 400,
            l: 10,
            s: 5_000,
            q: 80,
        };
        let imp = improved_eigenpro(&shape);
        let orig = original_eigenpro(&shape);
        assert!(imp.compute_ops < orig.compute_ops);
        assert!(imp.memory_slots < orig.memory_slots);
    }

    #[test]
    fn sgd_formulas_exact() {
        let shape = ProblemShape {
            n: 10,
            m: 2,
            d: 3,
            l: 1,
            s: 5,
            q: 2,
        };
        let c = sgd(&shape);
        assert_eq!(c.compute_ops, 10.0 * 2.0 * 4.0);
        assert_eq!(c.memory_slots, 10.0 * (2.0 + 3.0 + 1.0));
    }
}
