//! Table-1 cost formulas: computation and memory per iteration.
//!
//! | Method | Computation | Memory |
//! |---|---|---|
//! | Improved EigenPro | `s·m·q + n·m·(d+l)` | `s·q + n·(m+d+l)` |
//! | Original EigenPro | `n·m·q + n·m·(d+l)` | `n·q + n·(m+d+l)` |
//! | SGD               | `n·m·(d+l)`         | `n·(m+d+l)` |
//!
//! The bolded (overhead) terms in the paper are the first summands; the
//! improved iteration's overhead depends on the fixed block size `s` instead
//! of the data size `n`, which is the whole point of Section 4.

use serde::{Deserialize, Serialize};

/// Problem-shape parameters entering the Table-1 formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemShape {
    /// Training set size `n`.
    pub n: usize,
    /// Mini-batch size `m`.
    pub m: usize,
    /// Feature dimension `d`.
    pub d: usize,
    /// Number of labels `l`.
    pub l: usize,
    /// Fixed coordinate block (Nyström subsample) size `s`.
    pub s: usize,
    /// EigenPro spectral truncation level `q`.
    pub q: usize,
}

/// Computation (operations) and memory (matrix-element slots) for one
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationCost {
    /// Operation count per iteration.
    pub compute_ops: f64,
    /// Resident memory in element slots.
    pub memory_slots: f64,
}

impl IterationCost {
    /// Overhead of `self` relative to `base`, as
    /// `(compute ratio - 1, memory ratio - 1)`.
    pub fn overhead_over(&self, base: &IterationCost) -> (f64, f64) {
        (
            self.compute_ops / base.compute_ops - 1.0,
            self.memory_slots / base.memory_slots - 1.0,
        )
    }
}

/// Cost of one standard SGD iteration (Table 1, row 3).
pub fn sgd(shape: &ProblemShape) -> IterationCost {
    let (n, m, d, l) = (
        shape.n as f64,
        shape.m as f64,
        shape.d as f64,
        shape.l as f64,
    );
    IterationCost {
        compute_ops: n * m * (d + l),
        memory_slots: n * (m + d + l),
    }
}

/// Cost of one improved (Nyström) EigenPro iteration (Table 1, row 1).
pub fn improved_eigenpro(shape: &ProblemShape) -> IterationCost {
    let base = sgd(shape);
    let (s, m, q) = (shape.s as f64, shape.m as f64, shape.q as f64);
    IterationCost {
        compute_ops: s * m * q + base.compute_ops,
        memory_slots: s * q + base.memory_slots,
    }
}

/// Cost of one original EigenPro iteration (Table 1, row 2): the
/// preconditioner lives on all `n` centers.
pub fn original_eigenpro(shape: &ProblemShape) -> IterationCost {
    let base = sgd(shape);
    let (n, m, q) = (shape.n as f64, shape.m as f64, shape.q as f64);
    IterationCost {
        compute_ops: n * m * q + base.compute_ops,
        memory_slots: n * q + base.memory_slots,
    }
}

/// Cost of one *streamed* (out-of-core) improved-EigenPro iteration: the
/// `m x n` kernel block is produced as `⌈n / n_tile⌉` tiles into a bounded
/// ring while the consumer applies the preconditioned update, so assembly
/// of tile `t+1` overlaps compute on tile `t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamedCost {
    /// Producer-side work: kernel-block assembly, `m·n·d` ops.
    pub assembly_ops: f64,
    /// Consumer-side work: prediction accumulate + weight update +
    /// preconditioner correction, `m·n·l + s·m·q` ops.
    pub update_ops: f64,
    /// Critical-path operations once the two sides overlap:
    /// `max(assembly, update)` plus the non-overlapped pipeline fill/drain
    /// of one tile from the cheaper side.
    pub exposed_ops: f64,
    /// Resident memory in element slots (`batch::streamed_slots`).
    pub memory_slots: f64,
}

impl StreamedCost {
    /// Overlap factor: serial (in-core single-stream) operations divided by
    /// the exposed critical path — the speedup pipelining buys over running
    /// assembly and update back to back. 1.0 = no overlap benefit (one side
    /// fully dominates and the fill cost eats the rest); the ceiling is 2.0
    /// (perfectly balanced producer and consumer).
    pub fn overlap_factor(&self) -> f64 {
        (self.assembly_ops + self.update_ops) / self.exposed_ops
    }
}

/// Streamed-iteration cost model for an `n_tile`-column tiling.
///
/// The producer's per-tile work is `m·n_tile·d`, the consumer's
/// `m·n_tile·l` (plus the once-per-iteration correction `s·m·q`, attributed
/// to the consumer). With double buffering the critical path is the slower
/// side end to end, plus one tile of the faster side exposed at the pipeline
/// boundary (fill/drain).
///
/// # Panics
///
/// Panics if `n_tile == 0`.
pub fn streamed_eigenpro(shape: &ProblemShape, n_tile: usize) -> StreamedCost {
    assert!(n_tile > 0, "n_tile must be positive");
    let (n, m, d, l) = (
        shape.n as f64,
        shape.m as f64,
        shape.d as f64,
        shape.l as f64,
    );
    let (s, q) = (shape.s as f64, shape.q as f64);
    let tiles = (shape.n.div_ceil(n_tile)) as f64;
    let assembly_ops = m * n * d;
    let update_ops = m * n * l + s * m * q;
    let fill = assembly_ops.min(update_ops) / tiles;
    StreamedCost {
        assembly_ops,
        update_ops,
        exposed_ops: assembly_ops.max(update_ops) + fill,
        memory_slots: crate::batch::streamed_slots(
            shape.n,
            shape.d,
            shape.l,
            shape.m,
            n_tile,
            crate::batch::DEFAULT_TILES_IN_FLIGHT,
        ),
    }
}

/// How the streamed pipeline splits one core budget between its two sides:
/// tile-assembly producers and the consumer's update GEMM. Produced by
/// [`partition_stream_threads`] from the overlap model above; threaded from
/// `autotune::plan_streamed` through `TrainConfig` down to the stream
/// engine, so every hot path is accountable to the same budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamThreadPlan {
    /// The whole budget (the runtime's resolved thread count).
    pub total: usize,
    /// Tile-assembly producer tasks.
    pub producers: usize,
    /// Thread-budget handle each producer runs its assembly GEMM under.
    pub producer_threads: usize,
    /// Thread-budget handle the consumer's update runs under.
    pub update_threads: usize,
}

impl StreamThreadPlan {
    /// The degenerate single-thread partition (everything budget 1; the
    /// pipeline still needs one producer task, minimally oversubscribing a
    /// one-core budget — streaming is inherently two-sided).
    pub fn serial() -> Self {
        StreamThreadPlan {
            total: 1,
            producers: 1,
            producer_threads: 1,
            update_threads: 1,
        }
    }

    /// Threads the assembly side holds in total.
    pub fn assembly_threads(&self) -> usize {
        self.producers * self.producer_threads
    }
}

/// Tile width at which one producer's internal GEMM threading stops scaling
/// (panels narrower than the packed engine's cache blocks leave workers
/// idle); below it the planner spreads the assembly budget over more
/// producers instead.
pub const REF_STREAM_TILE: usize = 256;

/// Partitions a `total`-thread budget between the streamed pipeline's
/// producers and its update side, proportionally to the overlap model's
/// `assembly_ops : update_ops` split for this shape and tiling.
///
/// `producers_override` (the `--producers` flag / deprecated
/// `EP2_STREAM_PRODUCERS` env var) pins the producer count, clamped to
/// `total - 1` so producers plus the consumer never exceed the budget (the
/// `total == 1` degenerate case keeps the override verbatim — a
/// single-thread budget cannot run a pipeline without oversubscribing, so
/// the count is the pipeline's shape there, not a thread claim); the
/// assembly budget is then divided among that many tasks. Without an
/// override, the producer count grows as tiles narrow below
/// [`REF_STREAM_TILE`] — wide tiles keep one producer whose GEMM threads
/// internally, narrow tiles spread across producers because intra-GEMM
/// scaling has nothing to chew on (the ROADMAP's "producer-count
/// autotuner").
///
/// # Panics
///
/// Panics if `n_tile == 0` (via [`streamed_eigenpro`]).
pub fn partition_stream_threads(
    shape: &ProblemShape,
    n_tile: usize,
    total: usize,
    producers_override: Option<usize>,
) -> StreamThreadPlan {
    let total = total.max(1);
    let cost = streamed_eigenpro(shape, n_tile);
    if total == 1 {
        return StreamThreadPlan {
            producers: producers_override.unwrap_or(1).max(1),
            ..StreamThreadPlan::serial()
        };
    }
    let both = (cost.assembly_ops + cost.update_ops).max(1.0);
    let share = cost.assembly_ops / both;
    let assembly = ((total as f64 * share).round() as usize).clamp(1, total - 1);
    let producers = producers_override
        .map(|p| p.clamp(1, total - 1))
        .unwrap_or_else(|| (assembly * REF_STREAM_TILE / n_tile.max(1)).clamp(1, assembly));
    let producer_threads = (assembly / producers).max(1);
    // Threads the producer split cannot use evenly go to the update side,
    // so the partition always accounts for the whole budget.
    let update_threads = total.saturating_sub(producers * producer_threads).max(1);
    StreamThreadPlan {
        total,
        producers,
        producer_threads,
        update_threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's "realistic example": n = 1e6, s = 1e4, d and m ~ 1e3,
    /// q and l ~ 1e2 gives improved-EigenPro overhead below 1% in both
    /// computation and memory.
    #[test]
    fn realistic_example_under_one_percent() {
        let shape = ProblemShape {
            n: 1_000_000,
            m: 1_000,
            d: 1_000,
            l: 100,
            s: 10_000,
            q: 100,
        };
        let (comp, mem) = improved_eigenpro(&shape).overhead_over(&sgd(&shape));
        assert!(comp < 0.01, "compute overhead {comp}");
        assert!(mem < 0.01, "memory overhead {mem}");
    }

    #[test]
    fn original_overhead_scales_with_n() {
        let small = ProblemShape {
            n: 10_000,
            m: 100,
            d: 100,
            l: 10,
            s: 2_000,
            q: 50,
        };
        let big = ProblemShape {
            n: 1_000_000,
            ..small
        };
        // Original EigenPro's *memory* overhead ratio q/(m+d+l) is constant,
        // but its absolute overhead grows linearly with n while improved
        // EigenPro's absolute overhead stays fixed.
        let orig_small = original_eigenpro(&small);
        let orig_big = original_eigenpro(&big);
        let sgd_small = sgd(&small);
        let sgd_big = sgd(&big);
        let abs_small = orig_small.memory_slots - sgd_small.memory_slots;
        let abs_big = orig_big.memory_slots - sgd_big.memory_slots;
        assert!((abs_big / abs_small - 100.0).abs() < 1e-9);
        let imp_small = improved_eigenpro(&small).memory_slots - sgd_small.memory_slots;
        let imp_big = improved_eigenpro(&big).memory_slots - sgd_big.memory_slots;
        assert_eq!(imp_small, imp_big);
    }

    #[test]
    fn improved_cheaper_than_original_when_s_below_n() {
        let shape = ProblemShape {
            n: 100_000,
            m: 500,
            d: 400,
            l: 10,
            s: 5_000,
            q: 80,
        };
        let imp = improved_eigenpro(&shape);
        let orig = original_eigenpro(&shape);
        assert!(imp.compute_ops < orig.compute_ops);
        assert!(imp.memory_slots < orig.memory_slots);
    }

    #[test]
    fn streamed_cost_overlap_bounds() {
        let shape = ProblemShape {
            n: 100_000,
            m: 500,
            d: 400,
            l: 10,
            s: 5_000,
            q: 80,
        };
        let c = streamed_eigenpro(&shape, 1024);
        // Exposed path is never shorter than the dominant side, never longer
        // than running both sides serially.
        assert!(c.exposed_ops >= c.assembly_ops.max(c.update_ops));
        assert!(c.exposed_ops <= c.assembly_ops + c.update_ops);
        let f = c.overlap_factor();
        assert!((1.0..=2.0).contains(&f), "overlap factor {f}");
        // d ≫ l here: assembly dominates, overlap hides almost all of the
        // (cheap) update, so the exposed path is close to assembly alone.
        assert!(c.exposed_ops < c.assembly_ops * 1.05);
        // Streamed residency is far below the in-core m·n kernel block.
        assert!(c.memory_slots < improved_eigenpro(&shape).memory_slots);
    }

    #[test]
    fn streamed_cost_balanced_sides_overlap_best() {
        // d == l: producer and consumer match, overlap factor → ~2.
        let shape = ProblemShape {
            n: 100_000,
            m: 256,
            d: 64,
            l: 64,
            s: 0,
            q: 0,
        };
        let c = streamed_eigenpro(&shape, 1000);
        assert!(c.overlap_factor() > 1.9, "factor {}", c.overlap_factor());
    }

    #[test]
    fn thread_partition_tracks_ops_ratio() {
        // d ≫ l: assembly dominates, so it gets most of the budget — but
        // the update side always keeps at least one thread.
        let heavy_assembly = ProblemShape {
            n: 100_000,
            m: 512,
            d: 512,
            l: 4,
            s: 2_000,
            q: 50,
        };
        let tp = partition_stream_threads(&heavy_assembly, 512, 8, None);
        assert_eq!(tp.total, 8);
        assert!(tp.assembly_threads() >= tp.update_threads);
        assert!(tp.update_threads >= 1);
        assert_eq!(tp.assembly_threads() + tp.update_threads, 8);
        // Balanced sides split roughly evenly.
        let balanced = ProblemShape {
            d: 64,
            l: 64,
            s: 0,
            q: 0,
            ..heavy_assembly
        };
        let tp = partition_stream_threads(&balanced, 512, 8, None);
        assert_eq!(tp.assembly_threads(), 4);
        assert_eq!(tp.update_threads, 4);
    }

    #[test]
    fn thread_partition_spreads_producers_on_narrow_tiles() {
        let shape = ProblemShape {
            n: 50_000,
            m: 256,
            d: 400,
            l: 10,
            s: 1_000,
            q: 40,
        };
        let wide = partition_stream_threads(&shape, 1024, 8, None);
        assert_eq!(wide.producers, 1, "wide tiles: one producer, threaded GEMM");
        assert!(wide.producer_threads > 1);
        let narrow = partition_stream_threads(&shape, 64, 8, None);
        assert!(
            narrow.producers > 1,
            "narrow tiles: spread across producers"
        );
    }

    #[test]
    fn thread_partition_honours_override_and_serial_budget() {
        let shape = ProblemShape {
            n: 10_000,
            m: 128,
            d: 100,
            l: 10,
            s: 500,
            q: 20,
        };
        let forced = partition_stream_threads(&shape, 256, 8, Some(3));
        assert_eq!(forced.producers, 3);
        assert!(forced.update_threads >= 1);
        // An override past the budget is clamped: producers + consumer
        // must never oversubscribe a multi-thread budget.
        let over = partition_stream_threads(&shape, 256, 4, Some(8));
        assert_eq!(over.producers, 3);
        assert!(over.assembly_threads() + over.update_threads <= 4);
        let serial = partition_stream_threads(&shape, 256, 1, None);
        assert_eq!(serial, StreamThreadPlan::serial());
        let serial_forced = partition_stream_threads(&shape, 256, 1, Some(2));
        assert_eq!(serial_forced.producers, 2);
        assert_eq!(serial_forced.producer_threads, 1);
    }

    #[test]
    fn sgd_formulas_exact() {
        let shape = ProblemShape {
            n: 10,
            m: 2,
            d: 3,
            l: 1,
            s: 5,
            q: 2,
        };
        let c = sgd(&shape);
        assert_eq!(c.compute_ops, 10.0 * 2.0 * 4.0);
        assert_eq!(c.memory_slots, 10.0 * (2.0 + 3.0 + 1.0));
    }
}
