//! Per-iteration wall-clock models and the simulated clock.
//!
//! Figure 3a of the paper contrasts three devices running one SGD iteration
//! of increasing batch size:
//!
//! - an **ideal parallel device**, which "requires the same amount of time to
//!   process any mini-batch";
//! - a **pure sequential machine**, whose time is linear in the operation
//!   count; and
//! - an **actual GPU**, which is flat like the ideal device for small
//!   batches and turns linear once its parallel capacity `C_G` is exhausted,
//!   plus a fixed per-launch overhead (Amdahl's law — the paper cites
//!   Rodgers 1985).
//!
//! [`iteration_time`] implements all three as functions of the operation
//! count, and [`SimClock`] accumulates them so trainers can report
//! "simulated GPU seconds" next to real CPU seconds.

use crate::ResourceSpec;
use serde::{Deserialize, Serialize};

/// Which idealisation of the device to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceMode {
    /// Constant time per launch regardless of batch size (no overhead).
    IdealParallel,
    /// Flat-then-linear with per-launch overhead: the realistic GPU model.
    ActualGpu,
    /// Time strictly proportional to the operation count.
    Sequential,
}

impl DeviceMode {
    /// All modes, in the order Figure 3a plots them.
    pub const ALL: [DeviceMode; 3] = [
        DeviceMode::IdealParallel,
        DeviceMode::ActualGpu,
        DeviceMode::Sequential,
    ];
}

impl std::fmt::Display for DeviceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceMode::IdealParallel => "ideal parallel",
            DeviceMode::ActualGpu => "actual GPU",
            DeviceMode::Sequential => "sequential",
        };
        f.write_str(s)
    }
}

/// Seconds to execute `ops` operations in one launch on `spec` under the
/// given device mode.
///
/// - `IdealParallel`: `t_sat = C_G / peak` for any `ops` (constant).
/// - `ActualGpu`: `overhead + max(t_sat, ops / peak)` — flat until the launch
///   saturates `C_G`, then linear.
/// - `Sequential`: `ops / peak` (one lane of the device).
pub fn iteration_time(spec: &ResourceSpec, mode: DeviceMode, ops: f64) -> f64 {
    let t_sat = spec.saturated_launch_time();
    match mode {
        DeviceMode::IdealParallel => t_sat,
        DeviceMode::ActualGpu => spec.launch_overhead + (ops / spec.peak_flops).max(t_sat),
        DeviceMode::Sequential => ops / spec.peak_flops,
    }
}

/// An accumulating simulated clock.
///
/// # Example
///
/// ```
/// use ep2_device::{DeviceMode, ResourceSpec, SimClock};
///
/// let gpu = ResourceSpec::titan_xp();
/// let mut clock = SimClock::new(gpu, DeviceMode::ActualGpu);
/// clock.record_launch(1e9);
/// clock.record_launch(1e9);
/// assert!(clock.elapsed() > 0.0);
/// assert_eq!(clock.launches(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SimClock {
    spec: ResourceSpec,
    mode: DeviceMode,
    elapsed: f64,
    launches: u64,
    total_ops: f64,
}

impl SimClock {
    /// Creates a clock at time zero for the given device and mode.
    pub fn new(spec: ResourceSpec, mode: DeviceMode) -> Self {
        SimClock {
            spec,
            mode,
            elapsed: 0.0,
            launches: 0,
            total_ops: 0.0,
        }
    }

    /// Records one kernel launch of `ops` operations and returns the
    /// simulated seconds it took.
    pub fn record_launch(&mut self, ops: f64) -> f64 {
        let t = iteration_time(&self.spec, self.mode, ops);
        self.elapsed += t;
        self.launches += 1;
        self.total_ops += ops;
        t
    }

    /// Simulated seconds elapsed so far.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Number of launches recorded.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Total operations recorded.
    pub fn total_ops(&self) -> f64 {
        self.total_ops
    }

    /// The device spec this clock simulates.
    pub fn spec(&self) -> &ResourceSpec {
        &self.spec
    }

    /// The device mode this clock simulates.
    pub fn mode(&self) -> DeviceMode {
        self.mode
    }

    /// Resets elapsed time and counters to zero.
    pub fn reset(&mut self) {
        self.elapsed = 0.0;
        self.launches = 0;
        self.total_ops = 0.0;
    }

    /// Restores the clock to a previously recorded state — used by
    /// checkpoint resume so `simulated_seconds` continues the interrupted
    /// trajectory instead of restarting at zero.
    pub fn restore(&mut self, elapsed: f64, launches: u64, total_ops: f64) {
        self.elapsed = elapsed;
        self.launches = launches;
        self.total_ops = total_ops;
    }
}

/// Measures the host CPU's sustained dense-compute throughput (ops/s) with a
/// short calibration loop, for [`ResourceSpec::calibrated_to_host`].
///
/// Runs an in-cache **register-tiled FMA kernel** — an 8x8 f64 accumulator
/// tile updated from two streamed panels, the same shape as `ep2-linalg`'s
/// blocked GEMM microkernel — so the measured rate matches what the actual
/// dense hot paths sustain. (The previous scalar `mul_add` sweep measured a
/// single dependency chain, several times below what the blocked GEMM
/// reaches, which made simulated-vs-wall-clock comparisons dishonest.)
///
/// `floats` sizes the streamed panels (`k = floats/16` tile updates per
/// pass, clamped to stay in L1); returns `2 * 64 * k * repeats / seconds`.
pub fn measure_host_flops(floats: usize, repeats: usize) -> f64 {
    const T: usize = 8;
    let k = (floats.max(1024) / (2 * T)).min(4096);
    let series = |seed: usize| move |i: usize| ((i * 31 + seed) % 97) as f64 * 1e-3 - 0.4;
    let a: Vec<f64> = (0..T * k).map(series(1)).collect();
    let b: Vec<f64> = (0..T * k).map(series(2)).collect();
    let mut acc = [[0.0_f64; T]; T];
    let start = std::time::Instant::now();
    for _ in 0..repeats.max(1) {
        for (ap, bp) in a.chunks_exact(T).zip(b.chunks_exact(T)) {
            let ap: &[f64; T] = ap.try_into().unwrap();
            let bp: &[f64; T] = bp.try_into().unwrap();
            for i in 0..T {
                let ai = ap[i];
                let row = &mut acc[i];
                for j in 0..T {
                    row[j] = ai.mul_add(bp[j], row[j]);
                }
            }
        }
        std::hint::black_box(&mut acc);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    2.0 * (T * T) as f64 * k as f64 * repeats.max(1) as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ResourceSpec {
        ResourceSpec::new("test", 1e6, 1e9, 1e9, 1e-4)
    }

    #[test]
    fn ideal_is_constant() {
        let s = spec();
        let t1 = iteration_time(&s, DeviceMode::IdealParallel, 10.0);
        let t2 = iteration_time(&s, DeviceMode::IdealParallel, 1e12);
        assert_eq!(t1, t2);
        assert_eq!(t1, 1e-3); // C_G / peak
    }

    #[test]
    fn sequential_is_linear() {
        let s = spec();
        let t1 = iteration_time(&s, DeviceMode::Sequential, 1e6);
        let t2 = iteration_time(&s, DeviceMode::Sequential, 2e6);
        assert!((t2 - 2.0 * t1).abs() < 1e-15);
    }

    #[test]
    fn actual_gpu_flat_then_linear() {
        let s = spec();
        // Below capacity: flat at overhead + t_sat.
        let small1 = iteration_time(&s, DeviceMode::ActualGpu, 1e3);
        let small2 = iteration_time(&s, DeviceMode::ActualGpu, 1e5);
        assert_eq!(small1, small2);
        assert!((small1 - (1e-4 + 1e-3)).abs() < 1e-12);
        // Above capacity: grows linearly.
        let big1 = iteration_time(&s, DeviceMode::ActualGpu, 1e7);
        let big2 = iteration_time(&s, DeviceMode::ActualGpu, 2e7);
        assert!(big2 > big1);
        assert!(((big2 - s.launch_overhead) / (big1 - s.launch_overhead) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn knee_is_at_parallel_capacity() {
        let s = spec();
        let at_knee = iteration_time(&s, DeviceMode::ActualGpu, s.parallel_capacity);
        let below = iteration_time(&s, DeviceMode::ActualGpu, s.parallel_capacity * 0.5);
        let above = iteration_time(&s, DeviceMode::ActualGpu, s.parallel_capacity * 2.0);
        assert_eq!(at_knee, below);
        assert!(above > at_knee);
    }

    #[test]
    fn clock_accumulates() {
        let mut c = SimClock::new(spec(), DeviceMode::Sequential);
        c.record_launch(1e6);
        c.record_launch(1e6);
        assert!((c.elapsed() - 2e-3).abs() < 1e-12);
        assert_eq!(c.launches(), 2);
        assert_eq!(c.total_ops(), 2e6);
        c.reset();
        assert_eq!(c.elapsed(), 0.0);
        assert_eq!(c.launches(), 0);
    }

    #[test]
    fn host_flops_measurement_positive() {
        let f = measure_host_flops(4096, 4);
        assert!(f > 1e6, "measured {f} ops/s — implausibly slow");
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceMode::ActualGpu.to_string(), "actual GPU");
        assert_eq!(DeviceMode::ALL.len(), 3);
    }
}
