use serde::{Deserialize, Serialize};

/// The paper's abstraction of a parallel computational resource `G`,
/// extended with the two timing constants the simulator needs.
///
/// | Field | Paper symbol | Meaning |
/// |---|---|---|
/// | `parallel_capacity` | `C_G` | operations per launch at full utilisation |
/// | `memory_floats` | `S_G` | device memory, counted in matrix elements |
/// | `peak_flops` | — | sustained op/s once saturated |
/// | `launch_overhead` | — | fixed seconds per kernel launch (Amdahl term) |
///
/// `memory_floats` counts *storage slots for matrix elements* rather than
/// bytes so that the Step-1 formula `(d + l + m) · n ≤ S_G` can be used
/// verbatim; the paper trains in f32, so a 12 GB card holds `3e9` slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Human-readable device name.
    pub name: String,
    /// `C_G`: operations one launch must execute to fully utilise `G`.
    pub parallel_capacity: f64,
    /// `S_G`: device memory in matrix-element slots.
    pub memory_floats: f64,
    /// Sustained throughput (operations per second) once saturated.
    pub peak_flops: f64,
    /// Fixed per-launch overhead in seconds.
    pub launch_overhead: f64,
}

impl ResourceSpec {
    /// Creates a spec from raw constants.
    ///
    /// # Panics
    ///
    /// Panics if any numeric field is non-positive (overhead may be zero).
    pub fn new(
        name: impl Into<String>,
        parallel_capacity: f64,
        memory_floats: f64,
        peak_flops: f64,
        launch_overhead: f64,
    ) -> Self {
        assert!(
            parallel_capacity > 0.0,
            "parallel_capacity must be positive"
        );
        assert!(memory_floats > 0.0, "memory_floats must be positive");
        assert!(peak_flops > 0.0, "peak_flops must be positive");
        assert!(
            launch_overhead >= 0.0,
            "launch_overhead must be non-negative"
        );
        ResourceSpec {
            name: name.into(),
            parallel_capacity,
            memory_floats,
            peak_flops,
            launch_overhead,
        }
    }

    /// Nvidia GTX Titan Xp (Pascal), the paper's primary device: 3840 CUDA
    /// cores, 12 GB.
    ///
    /// `C_G` is calibrated so that Step 1 reproduces the Table-4 batch sizes
    /// (MNIST at `n = 1e6`, `d = 784`, `l = 10` gives `m ≈ 735`):
    /// `C_G = (784 + 10) · 735 · 1e6 ≈ 5.8e11`. `S_G = 3e9` f32 slots (12 GB),
    /// sustained throughput ~10 Tops/s (f32 FMA counted as 2 ops),
    /// ~10 µs launch overhead.
    pub fn titan_xp() -> Self {
        ResourceSpec::new("GTX Titan Xp", 5.8e11, 3.0e9, 1.0e13, 1.0e-5)
    }

    /// Nvidia Tesla K40c (Kepler, used by the FALKON rows of Table 2):
    /// 2880 cores, 12 GB, roughly 40% of the Titan Xp's sustained throughput.
    pub fn tesla_k40c() -> Self {
        ResourceSpec::new("Tesla K40c", 2.3e11, 3.0e9, 4.0e12, 1.5e-5)
    }

    /// A generic multi-core CPU host model (the LibSVM rows of Table 3):
    /// low parallel capacity, main-memory sized, modest throughput,
    /// negligible launch overhead.
    ///
    /// The sustained rate (3.5e10 op/s) is *re-measured*, not guessed: it is
    /// the f64 rate the packed register-blocked GEMM actually holds on a
    /// single CI-class AVX-512 core (`BENCH_gemm.json`; the f32 kernel
    /// sustains ~2.3x that). The previous constant (5e10) predated the
    /// blocked engine and overstated what any dense loop here reached, which
    /// quietly skewed every simulated-vs-wall-clock comparison.
    pub fn cpu_host() -> Self {
        ResourceSpec::new("CPU host", 1.0e8, 1.6e10, 3.5e10, 1.0e-7)
    }

    /// A scaled-down virtual GPU for laptop-scale experiments: keeps the
    /// *ratios* of the Titan Xp (so curve shapes match Figure 3) while the
    /// saturating batch size lands in the hundreds for `n ~ 1e4` problems.
    ///
    /// `C_G = 4e9` means an `n = 1e4, d = 390, l = 10` TIMIT-like clone
    /// saturates at `m = C_G / ((d+l)·n) = 1000`.
    pub fn scaled_virtual_gpu() -> Self {
        ResourceSpec::new("virtual GPU (scaled)", 4.0e9, 4.0e8, 2.0e11, 1.0e-5)
    }

    /// Calibrates a spec against the host CPU by timing a small dense
    /// matrix-multiply workload, keeping the shape constants of `base`.
    ///
    /// The returned spec has `peak_flops` set to the measured sustained
    /// throughput, so simulated times are comparable with real wall-clock
    /// measurements taken on this machine.
    pub fn calibrated_to_host(base: &ResourceSpec, measured_flops: f64) -> Self {
        let mut spec = base.clone();
        spec.peak_flops = measured_flops.max(1.0);
        spec.name = format!("{} (host-calibrated)", base.name);
        spec
    }

    /// Time for one saturating launch: `C_G / peak_flops` seconds. This is
    /// the flat part of the Figure-3a curve.
    pub fn saturated_launch_time(&self) -> f64 {
        self.parallel_capacity / self.peak_flops
    }

    /// Memory capacity in *stored elements* under the given precision
    /// policy.
    ///
    /// `memory_floats` counts f32-sized reference slots (the paper trains in
    /// f32); storing f64 elements costs two slots each, so the same card
    /// holds half as many — and Step 1's memory-limited batch `m^S_G`
    /// shrinks accordingly. See [`crate::batch::max_batch_with`].
    pub fn memory_slots(&self, precision: crate::Precision) -> f64 {
        self.memory_floats / precision.slot_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for spec in [
            ResourceSpec::titan_xp(),
            ResourceSpec::tesla_k40c(),
            ResourceSpec::cpu_host(),
            ResourceSpec::scaled_virtual_gpu(),
        ] {
            assert!(spec.parallel_capacity > 0.0);
            assert!(spec.memory_floats > 0.0);
            assert!(spec.peak_flops > 0.0);
            assert!(spec.saturated_launch_time() > 0.0);
            assert!(!spec.name.is_empty());
        }
    }

    #[test]
    fn titan_xp_faster_than_k40c() {
        assert!(ResourceSpec::titan_xp().peak_flops > ResourceSpec::tesla_k40c().peak_flops);
    }

    #[test]
    fn calibration_overrides_throughput() {
        let c = ResourceSpec::calibrated_to_host(&ResourceSpec::titan_xp(), 3.2e9);
        assert_eq!(c.peak_flops, 3.2e9);
        assert!(c.name.contains("host-calibrated"));
        assert_eq!(
            c.parallel_capacity,
            ResourceSpec::titan_xp().parallel_capacity
        );
    }

    #[test]
    #[should_panic(expected = "peak_flops")]
    fn rejects_nonpositive_flops() {
        let _ = ResourceSpec::new("bad", 1.0, 1.0, 0.0, 0.0);
    }

    #[test]
    fn memory_slots_halve_under_f64() {
        let spec = ResourceSpec::titan_xp();
        assert_eq!(spec.memory_slots(crate::Precision::F32), spec.memory_floats);
        assert_eq!(
            spec.memory_slots(crate::Precision::Mixed),
            spec.memory_floats
        );
        assert_eq!(
            spec.memory_slots(crate::Precision::F64),
            spec.memory_floats / 2.0
        );
    }

    #[test]
    fn spec_is_serializable() {
        // Compile-time check that the serde derives exist (serde_json is not
        // a workspace dependency).
        fn assert_serialize<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serialize::<ResourceSpec>();
    }
}
