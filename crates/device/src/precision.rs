//! The numeric-precision policy, and its coupling to the resource model.
//!
//! The paper's resource abstraction measures device memory `S_G` in
//! *matrix-element slots* ("the paper trains in f32, so a 12 GB card holds
//! 3e9 slots"). The slot width is therefore part of the resource model:
//! training in f64 halves the number of slots the same card provides, which
//! halves the memory-limited batch `m^S_G` from Step 1 — and conversely,
//! switching the hot buffers to f32 doubles it. [`Precision`] names the
//! three supported operating points and carries the conversion factors the
//! batch planner ([`crate::batch::max_batch_with`]) and the memory ledger
//! use.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric precision policy for training.
///
/// | Variant | Hot buffers (features, kernel blocks, weights) | Register-tile compute | Eigensolves / step size / error accumulation |
/// |---|---|---|---|
/// | `F32` | f32 | f32 | f32-assembled spectra (eigensolver still iterates in f64) |
/// | `F64` | f64 | f64 | f64 |
/// | `Mixed` | f32 | f32 | f64 (planning runs at full precision, hot loop in f32) |
/// | `Bf16` | bf16 (2 bytes/element) | f32 (panels widened at pack time) | f64 (plans like `Mixed`) |
///
/// `F64` is the default (the library's historical behaviour); `F32` is the
/// paper-faithful GPU configuration; `Mixed` keeps the f32 hot-path speed
/// and memory while the quantities that set the analytic step size
/// `η = m/(β_G + (m−1)λ₁(K_G))` are produced at full precision. `Bf16`
/// halves storage again: kernel blocks, streamed tile rings and weights are
/// stored as bfloat16 (`slot_factor = 0.5`, so `m^S_G` and the streamed
/// `n_tile` double vs f32 at equal `S_G`) while every GEMM register tile
/// and error-sensitive reduction still computes in f32 and planning runs at
/// f64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Single precision end to end — the paper's GPU scenario.
    F32,
    /// Double precision end to end (default).
    #[default]
    F64,
    /// f32 kernel assembly + GEMM, f64 eigensolves/step-size/error sums.
    Mixed,
    /// bf16 kernel-block storage, f32 register-tile compute, f64 planning.
    Bf16,
}

impl Precision {
    /// All policies (for sweeps and CLI listings).
    pub const ALL: [Precision; 4] = [
        Precision::F32,
        Precision::F64,
        Precision::Mixed,
        Precision::Bf16,
    ];

    /// Bytes per stored matrix element in the *hot* buffers — what occupies
    /// device memory during training.
    pub fn bytes_per_element(self) -> usize {
        match self {
            Precision::Bf16 => 2,
            Precision::F32 | Precision::Mixed => 4,
            Precision::F64 => 8,
        }
    }

    /// Memory-slot cost of one stored element, relative to the f32
    /// reference slot `ResourceSpec::memory_floats` counts: 0.5 for `Bf16`,
    /// 1 for `F32`/`Mixed`, 2 for `F64`. Half-width slots are how the batch
    /// planner doubles `m^S_G`/`n_tile` under bf16 with no extra plumbing.
    pub fn slot_factor(self) -> f64 {
        self.bytes_per_element() as f64 / 4.0
    }

    /// Parses a CLI name (`"f32"`, `"f64"`, `"mixed"`, `"bf16"`);
    /// case-insensitive.
    pub fn parse(name: &str) -> Option<Precision> {
        match name.to_ascii_lowercase().as_str() {
            "f32" | "single" | "float" => Some(Precision::F32),
            "f64" | "double" => Some(Precision::F64),
            "mixed" | "amp" => Some(Precision::Mixed),
            "bf16" | "bfloat16" => Some(Precision::Bf16),
            _ => None,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Precision::F32 => "f32",
            Precision::F64 => "f64",
            Precision::Mixed => "mixed",
            Precision::Bf16 => "bf16",
        })
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Precision::parse(s)
            .ok_or_else(|| format!("unknown precision {s} (f32 | f64 | mixed | bf16)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_factors() {
        assert_eq!(Precision::F32.slot_factor(), 1.0);
        assert_eq!(Precision::Mixed.slot_factor(), 1.0);
        assert_eq!(Precision::F64.slot_factor(), 2.0);
        assert_eq!(Precision::Bf16.slot_factor(), 0.5);
        assert_eq!(Precision::F32.bytes_per_element(), 4);
        assert_eq!(Precision::F64.bytes_per_element(), 8);
        assert_eq!(Precision::Bf16.bytes_per_element(), 2);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for p in Precision::ALL {
            assert_eq!(Precision::parse(&p.to_string()), Some(p));
            assert_eq!(p.to_string().parse::<Precision>().unwrap(), p);
        }
        assert_eq!(Precision::parse("SINGLE"), Some(Precision::F32));
        assert_eq!(Precision::parse("amp"), Some(Precision::Mixed));
        assert_eq!(Precision::parse("BFloat16"), Some(Precision::Bf16));
        assert_eq!(
            Precision::parse("f16"),
            None,
            "IEEE half is a ROADMAP follow-on"
        );
    }

    #[test]
    fn default_is_f64() {
        assert_eq!(Precision::default(), Precision::F64);
    }
}
