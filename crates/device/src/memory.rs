//! Device-memory ledger enforcing `S_G`.
//!
//! The Step-1 memory bound `(d + l + m) · n ≤ S_G` comes from three resident
//! arrays: the training features (`d·n`), the model weights (`l·n`), and the
//! mini-batch kernel block (`m·n`). The ledger lets trainers *prove* they
//! respect the budget: every allocation is charged and the peak is recorded,
//! so Figure 3b's "batches that fit into GPU memory" constraint is enforced
//! rather than assumed.

use parking_lot::Mutex;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error returned when an allocation would exceed the device budget.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryError {
    /// Slots requested by the failed allocation.
    pub requested: f64,
    /// Slots available at the time of the request.
    pub available: f64,
    /// Total budget `S_G`.
    pub budget: f64,
    /// High-water mark of charged slots at the time of the request — lets
    /// the message distinguish "this run was always close to the line" from
    /// "one oversized allocation" at a glance.
    pub peak: f64,
}

impl MemoryError {
    /// Builds an error for a *planning* failure (no ledger involved yet):
    /// `requested` slots against a fresh budget, peak 0.
    pub fn for_plan(requested: f64, budget: f64) -> Self {
        MemoryError {
            requested,
            available: budget,
            budget,
            peak: 0.0,
        }
    }
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device memory exhausted: requested {:.3e} slots, {:.3e} available of {:.3e} \
             (peak so far {:.3e})",
            self.requested, self.available, self.budget, self.peak
        )
    }
}

impl Error for MemoryError {}

#[derive(Debug)]
struct LedgerState {
    budget: f64,
    in_use: f64,
    peak: f64,
    /// Lifetime allocation count (1-based), consulted by the `alloc_fail`
    /// failpoint so chaos tests can kill a *specific* allocation
    /// deterministically.
    allocs: u64,
}

/// A shared, thread-safe allocation ledger for one simulated device.
///
/// Allocations return an RAII [`Allocation`] guard that releases its slots
/// on drop, so accounting cannot leak on early returns.
///
/// # Example
///
/// ```
/// use ep2_device::MemoryLedger;
///
/// let ledger = MemoryLedger::new(1000.0);
/// let a = ledger.alloc(600.0).unwrap();
/// assert!(ledger.alloc(600.0).is_err()); // over budget
/// drop(a);
/// assert!(ledger.alloc(600.0).is_ok()); // freed
/// ```
#[derive(Debug, Clone)]
pub struct MemoryLedger {
    state: Arc<Mutex<LedgerState>>,
}

impl MemoryLedger {
    /// Creates a ledger with `budget` slots (`S_G`).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not positive and finite.
    pub fn new(budget: f64) -> Self {
        assert!(
            budget > 0.0 && budget.is_finite(),
            "budget must be positive"
        );
        MemoryLedger {
            state: Arc::new(Mutex::new(LedgerState {
                budget,
                in_use: 0.0,
                peak: 0.0,
                allocs: 0,
            })),
        }
    }

    /// Charges `slots` against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] if the allocation would exceed the budget.
    pub fn alloc(&self, slots: f64) -> Result<Allocation, MemoryError> {
        assert!(
            slots >= 0.0 && slots.is_finite(),
            "slots must be non-negative"
        );
        let mut st = self.state.lock();
        st.allocs += 1;
        // `alloc_fail@step=k` fails this ledger's k-th allocation as if the
        // budget were exhausted — the graceful-degradation paths (re-plan to
        // streamed residency, narrow the tile) are tested through the same
        // error they handle in production.
        let injected = ep2_runtime::faults::fire_at("alloc_fail", st.allocs);
        if injected || st.in_use + slots > st.budget {
            return Err(MemoryError {
                requested: slots,
                available: if injected { 0.0 } else { st.budget - st.in_use },
                budget: st.budget,
                peak: st.peak,
            });
        }
        st.in_use += slots;
        st.peak = st.peak.max(st.in_use);
        Ok(Allocation {
            ledger: self.clone(),
            slots,
        })
    }

    /// Slots currently charged.
    pub fn in_use(&self) -> f64 {
        self.state.lock().in_use
    }

    /// High-water mark of charged slots.
    pub fn peak(&self) -> f64 {
        self.state.lock().peak
    }

    /// High-water mark of charged slots — the same quantity as
    /// [`MemoryLedger::peak`], named for the `S_G` audit that out-of-core
    /// (streamed) runs perform: after training, `peak_slots() <= budget()`
    /// proves the run never exceeded the device memory it claimed to fit.
    pub fn peak_slots(&self) -> f64 {
        self.peak()
    }

    /// Total budget `S_G`.
    pub fn budget(&self) -> f64 {
        self.state.lock().budget
    }

    /// Remaining free slots.
    pub fn available(&self) -> f64 {
        let st = self.state.lock();
        st.budget - st.in_use
    }

    fn release(&self, slots: f64) {
        let mut st = self.state.lock();
        st.in_use = (st.in_use - slots).max(0.0);
    }
}

/// RAII guard for a charged allocation; releases its slots on drop.
#[derive(Debug)]
pub struct Allocation {
    ledger: MemoryLedger,
    slots: f64,
}

impl Allocation {
    /// Slots held by this allocation.
    pub fn slots(&self) -> f64 {
        self.slots
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        self.ledger.release(self.slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let ledger = MemoryLedger::new(100.0);
        {
            let _a = ledger.alloc(40.0).unwrap();
            let _b = ledger.alloc(60.0).unwrap();
            assert_eq!(ledger.in_use(), 100.0);
            assert_eq!(ledger.available(), 0.0);
        }
        assert_eq!(ledger.in_use(), 0.0);
        assert_eq!(ledger.peak(), 100.0);
    }

    #[test]
    fn over_budget_rejected_with_details() {
        let ledger = MemoryLedger::new(50.0);
        let _a = ledger.alloc(30.0).unwrap();
        let err = ledger.alloc(30.0).unwrap_err();
        assert_eq!(err.requested, 30.0);
        assert_eq!(err.available, 20.0);
        assert_eq!(err.budget, 50.0);
        assert_eq!(err.peak, 30.0);
        assert!(err.to_string().contains("exhausted"));
        assert!(err.to_string().contains("peak"));
    }

    #[test]
    fn peak_slots_tracks_high_water_mark() {
        let ledger = MemoryLedger::new(100.0);
        {
            let _a = ledger.alloc(70.0).unwrap();
        }
        let _b = ledger.alloc(10.0).unwrap();
        assert_eq!(ledger.peak_slots(), 70.0);
        assert_eq!(ledger.peak_slots(), ledger.peak());
        assert!(ledger.peak_slots() <= ledger.budget());
    }

    #[test]
    fn zero_allocation_allowed() {
        let ledger = MemoryLedger::new(1.0);
        let a = ledger.alloc(0.0).unwrap();
        assert_eq!(a.slots(), 0.0);
    }

    #[test]
    fn concurrent_allocations_balance() {
        let ledger = MemoryLedger::new(1e6);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = ledger.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let a = l.alloc(10.0).unwrap();
                        drop(a);
                    }
                });
            }
        });
        assert_eq!(ledger.in_use(), 0.0);
        assert!(ledger.peak() <= 8.0 * 10.0 + 1e-9);
    }
}
