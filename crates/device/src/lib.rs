//! # ep2-device — the parallel-computational-resource abstraction `G`
//!
//! Section 2 of the paper abstracts a computational resource `G` (a GPU) by
//! two numbers:
//!
//! - `C_G` — *parallel capacity*: the number of operations one launch must
//!   execute to fully utilise the device, and
//! - `S_G` — *internal resource memory*.
//!
//! EigenPro 2.0 consumes the hardware **only** through this abstraction
//! (Step 1 computes the saturating batch size `m^max_G` from it), so a
//! faithful simulator of the abstraction exercises all of the paper's
//! adaptation logic. This crate provides:
//!
//! - [`ResourceSpec`]: the `(C_G, S_G)` pair plus throughput and launch
//!   overhead, with presets for the paper's hardware ([`ResourceSpec::titan_xp`],
//!   [`ResourceSpec::tesla_k40c`]) and a host-calibrated CPU model.
//! - [`timing`]: per-iteration wall-clock models for the three device
//!   idealisations of Figure 3a (*ideal parallel*, *actual GPU*,
//!   *sequential*), and [`timing::SimClock`] to accumulate simulated time.
//! - [`memory`]: an allocation ledger enforcing `S_G`.
//! - [`batch`]: the Step-1 calculators `m^C_G`, `m^S_G`,
//!   `m^max_G = min(m^C_G, m^S_G)`.
//! - [`cost`]: the Table-1 computation/memory cost formulas for SGD,
//!   original EigenPro, and improved EigenPro iterations.
//!
//! # Example: Step 1 of the main algorithm
//!
//! ```
//! use ep2_device::{batch, ResourceSpec};
//!
//! let gpu = ResourceSpec::titan_xp();
//! // MNIST-like problem: n = 1e6 points, d = 784 features, l = 10 labels.
//! let m_max = batch::max_batch(&gpu, 1_000_000, 784, 10);
//! assert!(m_max.batch > 100, "a modern GPU saturates only at large batches");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod cluster;
pub mod cost;
pub mod memory;
mod precision;
mod spec;
pub mod timing;

pub use batch::{ResidencyMode, StreamedBatchPlan};
pub use cluster::ClusterSpec;
pub use memory::{MemoryError, MemoryLedger};
pub use precision::Precision;
pub use spec::ResourceSpec;
pub use timing::{DeviceMode, SimClock};
