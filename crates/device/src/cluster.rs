//! Multi-device clusters — the paper's Section-6 "next natural step".
//!
//! Section 2 notes that for computational resources like clusters "we need
//! to take into account additional factors such as network bandwidth". This
//! module extends the `(C_G, S_G)` abstraction to `g` identical devices
//! joined by a link, with ring-all-reduce communication costs, so the
//! adaptive-kernel machinery can target the *aggregate* resource:
//!
//! - aggregate parallel capacity `C_total = g · C_G` → the saturating batch
//!   `m^max` grows `g`-fold, and
//! - EigenPro 2.0 raises `m*(k_G)` to match, extending linear scaling
//!   across devices exactly as it does across one device's cores.

use serde::{Deserialize, Serialize};

use crate::{batch, timing, DeviceMode, Precision, ResourceSpec};

/// A cluster of `g` identical devices with a communication link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// The per-device spec.
    pub device: ResourceSpec,
    /// Number of devices `g`.
    pub n_devices: usize,
    /// Link bandwidth in matrix-element slots per second (e.g. NVLink-class
    /// ≈ 6e9 f32 slots/s, PCIe-class ≈ 3e9).
    pub link_bandwidth: f64,
    /// Per-message link latency in seconds.
    pub link_latency: f64,
}

impl ClusterSpec {
    /// Creates a cluster spec.
    ///
    /// # Panics
    ///
    /// Panics if `n_devices == 0` or the link parameters are not positive /
    /// non-negative respectively.
    pub fn new(
        device: ResourceSpec,
        n_devices: usize,
        link_bandwidth: f64,
        link_latency: f64,
    ) -> Self {
        assert!(n_devices > 0, "cluster needs at least one device");
        assert!(link_bandwidth > 0.0, "link bandwidth must be positive");
        assert!(link_latency >= 0.0, "link latency must be non-negative");
        ClusterSpec {
            device,
            n_devices,
            link_bandwidth,
            link_latency,
        }
    }

    /// A bank of Titan Xp GPUs on an NVLink-class interconnect.
    pub fn titan_xp_bank(n_devices: usize) -> Self {
        ClusterSpec::new(ResourceSpec::titan_xp(), n_devices, 6.0e9, 5.0e-6)
    }

    /// Ring all-reduce time for a tensor of `slots` elements across the
    /// cluster: `2 (g−1)/g · slots / bandwidth + 2 (g−1) · latency`.
    /// Zero for a single device.
    pub fn allreduce_time(&self, slots: f64) -> f64 {
        let g = self.n_devices as f64;
        if self.n_devices <= 1 {
            return 0.0;
        }
        2.0 * (g - 1.0) / g * slots / self.link_bandwidth + 2.0 * (g - 1.0) * self.link_latency
    }

    /// Broadcast time for `slots` elements from one device to all others
    /// (tree broadcast): `slots/bandwidth · log2(g) + latency · log2(g)`.
    pub fn broadcast_time(&self, slots: f64) -> f64 {
        if self.n_devices <= 1 {
            return 0.0;
        }
        let hops = (self.n_devices as f64).log2().ceil().max(1.0);
        hops * (slots / self.link_bandwidth + self.link_latency)
    }

    /// Time for one data-parallel training iteration at global batch `m`
    /// over `n` centers sharded evenly: per-device compute on `n/g` centers
    /// plus the all-reduce of the `m x l` partial predictions and the
    /// broadcast of the `m x d` batch features.
    pub fn iteration_time(&self, mode: DeviceMode, n: usize, m: usize, d: usize, l: usize) -> f64 {
        let g = self.n_devices;
        let n_local = n.div_ceil(g);
        let compute_ops = (n_local * m * (d + l)) as f64;
        let t_compute = timing::iteration_time(&self.device, mode, compute_ops);
        let t_comm = self.allreduce_time((m * l) as f64) + self.broadcast_time((m * d) as f64);
        t_compute + t_comm
    }

    /// Step-1 batch plan against the *aggregate* resource: capacity scales
    /// with `g` (each device works on its `n/g`-center shard), memory holds
    /// the shard plus the batch block.
    ///
    /// Uses the f32 reference slot width (like [`batch::max_batch`]); use
    /// [`ClusterSpec::max_batch_with`] to plan under the precision the
    /// training run will actually execute at.
    pub fn max_batch(&self, n: usize, d: usize, l: usize) -> batch::BatchPlan {
        self.max_batch_with(n, d, l, Precision::F32)
    }

    /// [`ClusterSpec::max_batch`] under an explicit [`Precision`] policy:
    /// each device's memory-limited batch `m^S_G` is computed at the true
    /// slot width (f64 elements cost two f32-reference slots per shard
    /// element), exactly like the single-device
    /// [`batch::max_batch_with`] the trainer plans with.
    ///
    /// # Panics
    ///
    /// Same conditions as [`batch::max_batch`] (per-device shard must fit).
    pub fn max_batch_with(
        &self,
        n: usize,
        d: usize,
        l: usize,
        precision: Precision,
    ) -> batch::BatchPlan {
        let g = self.n_devices;
        let n_local = n.div_ceil(g).max(1);
        // Per-device: (d + l) · m · n_local ≈ C_G  and  (d + l + m) · n_local ≤ S_G.
        batch::max_batch_with(&self.device, n_local, d, l, precision)
    }

    /// Parallel-scaling efficiency at batch `m`: single-device iteration
    /// time divided by (`g` × cluster iteration time). 1.0 = perfect linear
    /// scaling; communication and the per-launch floor erode it.
    pub fn scaling_efficiency(&self, n: usize, m: usize, d: usize, l: usize) -> f64 {
        let single = ClusterSpec {
            n_devices: 1,
            ..self.clone()
        };
        let t1 = single.iteration_time(DeviceMode::ActualGpu, n, m, d, l);
        let tg = self.iteration_time(DeviceMode::ActualGpu, n, m, d, l);
        t1 / (self.n_devices as f64 * tg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(g: usize) -> ClusterSpec {
        ClusterSpec::titan_xp_bank(g)
    }

    #[test]
    fn single_device_has_no_comm() {
        let c = cluster(1);
        assert_eq!(c.allreduce_time(1e6), 0.0);
        assert_eq!(c.broadcast_time(1e6), 0.0);
        let t1 = c.iteration_time(DeviceMode::ActualGpu, 100_000, 256, 400, 10);
        let t_direct =
            timing::iteration_time(&c.device, DeviceMode::ActualGpu, 100_000.0 * 256.0 * 410.0);
        assert!((t1 - t_direct).abs() < 1e-12);
    }

    #[test]
    fn allreduce_grows_with_size_and_devices() {
        let c4 = cluster(4);
        let c8 = cluster(8);
        assert!(c4.allreduce_time(2e6) > c4.allreduce_time(1e6));
        assert!(c8.allreduce_time(1e6) > c4.allreduce_time(1e6));
    }

    #[test]
    fn sharding_raises_saturating_batch() {
        let n = 1_000_000;
        let (d, l) = (784, 10);
        let m1 = cluster(1).max_batch(n, d, l).batch;
        let m4 = cluster(4).max_batch(n, d, l).batch;
        // Each device sees n/4 centers → the capacity batch grows ~4x.
        assert!(m4 > 3 * m1, "m4 = {m4}, m1 = {m1}");
    }

    #[test]
    fn cluster_precision_scales_memory_batch() {
        // Memory-starved per-device spec: the f32 plan's memory batch obeys
        // the same 2x-slot relation as the single-device planner, per shard.
        let device = ResourceSpec::new("mem-starved", 1e15, 2e6, 1e12, 0.0);
        let c = ClusterSpec::new(device, 4, 1e9, 1e-6);
        let (n, d, l) = (4_000, 100, 10);
        let p32 = c.max_batch_with(n, d, l, Precision::F32);
        let p64 = c.max_batch_with(n, d, l, Precision::F64);
        assert_eq!(p32.memory_batch, 2 * p64.memory_batch + (d + l));
        // Mixed plans memory like f32, and the default stays f32-reference.
        let mixed = c.max_batch_with(n, d, l, Precision::Mixed);
        assert_eq!(mixed.memory_batch, p32.memory_batch);
        assert_eq!(c.max_batch(n, d, l), p32);
    }

    #[test]
    fn iteration_time_drops_with_devices_at_large_batch() {
        let (n, m, d, l) = (1_000_000, 4_096, 784, 10);
        let t1 = cluster(1).iteration_time(DeviceMode::ActualGpu, n, m, d, l);
        let t4 = cluster(4).iteration_time(DeviceMode::ActualGpu, n, m, d, l);
        assert!(t4 < t1, "t4 = {t4}, t1 = {t1}");
        // But not perfectly 4x: communication + the launch floor.
        assert!(t4 > t1 / 4.0);
    }

    #[test]
    fn efficiency_declines_with_device_count_at_fixed_batch() {
        let (n, m, d, l) = (1_000_000, 735, 784, 10);
        let e2 = cluster(2).scaling_efficiency(n, m, d, l);
        let e16 = cluster(16).scaling_efficiency(n, m, d, l);
        assert!(e2 <= 1.0 + 1e-9);
        assert!(e16 < e2, "e16 = {e16}, e2 = {e2}");
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = ClusterSpec::new(ResourceSpec::titan_xp(), 0, 1e9, 1e-6);
    }
}
