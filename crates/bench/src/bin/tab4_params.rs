//! Table 4: the automatically calculated optimisation parameters —
//! `q` (and adjusted `q`), `m = m_G`, `η` — for each dataset's selected
//! kernel and bandwidth, plus the Appendix-C acceleration prediction.
//!
//! Two sections:
//! 1. **Paper scale, analytic Step 1**: the batch-size calculation at the
//!    paper's `n` on the Titan Xp spec (this is pure `(C_G, S_G)`
//!    arithmetic and reproduces the paper's `m` column directly);
//! 2. **Reproduction scale, full pipeline**: Steps 1–2 run end to end on
//!    the dataset clones with the scaled virtual GPU, reporting every
//!    derived quantity.

use std::sync::Arc;

use ep2_bench::print_table;
use ep2_core::autotune;
use ep2_data::catalog;
use ep2_device::{batch, ResourceSpec};
use ep2_kernels::{Kernel, KernelKind};

fn paper_scale_section() {
    let titan = ResourceSpec::titan_xp();
    // (dataset, n, d, l, paper-reported m).
    let rows_spec: Vec<(&str, usize, usize, usize, usize)> = vec![
        ("MNIST", 1_000_000, 784, 10, 735),
        ("TIMIT", 1_100_000, 440, 144, 682),
        ("ImageNet", 1_300_000, 500, 1_000, 294),
        ("SUSY", 600_000, 18, 2, 1_687),
    ];
    let mut rows = Vec::new();
    for (name, n, d, l, paper_m) in rows_spec {
        let plan = batch::max_batch(&titan, n, d, l);
        rows.push(vec![
            name.to_string(),
            format!("{n:.1e}"),
            format!("{d}"),
            format!("{l}"),
            plan.capacity_batch.to_string(),
            plan.memory_batch.to_string(),
            plan.batch.to_string(),
            paper_m.to_string(),
        ]);
    }
    print_table(
        "Table 4, Step-1 column at paper scale (Titan Xp model)",
        &[
            "dataset",
            "n",
            "d",
            "l",
            "m^C_G",
            "m^S_G",
            "m (ours)",
            "m (paper)",
        ],
        &rows,
    );
    println!(
        "note: C_G is calibrated on MNIST (DESIGN.md); the remaining datasets test \
         the (d + l)·m·n scaling of Step 1. SUSY is small enough that the paper \
         directly specified a large q (their footnote 6).\n"
    );
}

fn reproduction_scale_section() {
    let device = ResourceSpec::scaled_virtual_gpu();
    struct Row {
        name: &'static str,
        kernel: KernelKind,
        bandwidth: f64,
        data: ep2_data::Dataset,
    }
    let specs = vec![
        Row {
            name: "MNIST",
            kernel: KernelKind::Gaussian,
            bandwidth: 5.0,
            data: catalog::mnist_like(1_500, 41),
        },
        Row {
            name: "TIMIT",
            kernel: KernelKind::Laplacian,
            bandwidth: 15.0,
            data: catalog::timit_like_small_labels(1_500, 36, 42),
        },
        Row {
            name: "ImageNet",
            kernel: KernelKind::Gaussian,
            bandwidth: 16.0,
            data: catalog::imagenet_features_like(1_200, 40, 43),
        },
        Row {
            name: "SUSY",
            kernel: KernelKind::Gaussian,
            bandwidth: 4.0,
            data: catalog::susy_like(1_500, 44),
        },
    ];
    let mut rows = Vec::new();
    for spec in &specs {
        let kernel: Arc<dyn Kernel> = spec.kernel.with_bandwidth(spec.bandwidth).into();
        let (params, _) = autotune::plan(
            &kernel,
            &spec.data.features,
            spec.data.n_classes,
            &device,
            Some(400),
            None,
            None,
            ep2_device::Precision::F64,
            17,
        )
        .expect("plan");
        rows.push(vec![
            spec.name.to_string(),
            format!("{} ({})", spec.kernel, spec.bandwidth),
            params.q.to_string(),
            params.adjusted_q.to_string(),
            params.m.to_string(),
            format!("{:.1}", params.eta),
            format!("{:.2}", params.m_star),
            format!("{:.0}", params.m_star_g),
            format!("{:.3}", params.beta_g),
            format!("{:.0}x", params.acceleration),
        ]);
    }
    print_table(
        "Table 4 at reproduction scale (clones, scaled virtual GPU, s = 400)",
        &[
            "dataset",
            "kernel (σ)",
            "q (Eq.7)",
            "adj. q",
            "m = m_G",
            "η",
            "m*(k)",
            "m*(k_G)",
            "β(K_G)",
            "accel (App. C)",
        ],
        &rows,
    );
    println!(
        "\nShape checks vs the paper: m*(k) is small (single digits); the adjusted q \
         exceeds Eq. (7)'s; η ≈ m/2β (Table-4 pattern); acceleration lands in the \
         paper's 50-500x band when m^max_G/m*(k) does."
    );
}

fn main() {
    paper_scale_section();
    reproduction_scale_section();
}
