//! Figure 3b: GPU time per training epoch vs batch size, for several model
//! (training-set) sizes `n`, up to the largest batch that fits in GPU
//! memory — and, since the out-of-core engine, *past* it: batches whose
//! kernel block no longer fits `S_G` switch to `streamed` pricing (the
//! double-buffered tile pipeline's exposed critical path) instead of
//! truncating the curve.
//!
//! An epoch is `n/m` iterations; per-launch overhead amortises with larger
//! `m` (Amdahl's law) and execution time per iteration is flat until the
//! capacity knee — so epoch time falls with `m` until saturation, then
//! levels out, consistently across `n`. The memory ledger enforces the
//! `m ≤ m^S_G` cap that bounds the *in-core* rows; the streamed rows carry
//! the assembly/update overlap factor of `ep2_device::cost::streamed_eigenpro`.

use ep2_bench::{fmt_secs, pow2_sweep, precision_from_args, print_table};
use ep2_device::cost::{self, ProblemShape};
use ep2_device::{batch, memory::MemoryLedger, timing, DeviceMode, ResourceSpec};

fn main() {
    let precision = precision_from_args();
    let titan = ResourceSpec::titan_xp();
    let d = 440; // TIMIT-like features
    let l = 144;

    println!("Figure 3b: simulated GPU time per epoch vs batch size, across model sizes n");
    println!(
        "device: {} (S_G = {:.1e} slots at {precision}; in-core rows stop at the \
         precision's m^S_G, streamed rows continue past it)\n",
        titan.name,
        titan.memory_slots(precision)
    );

    for &n in &[100_000usize, 400_000, 1_000_000, 2_000_000, 4_000_000] {
        let in_core = batch::fits_in_core(&titan, n, d, l, precision);
        let ledger = MemoryLedger::new(titan.memory_slots(precision));
        // Resident: features + weights (per Step-1 accounting).
        let resident = if in_core {
            Some(
                ledger
                    .alloc(((d + l) * n) as f64)
                    .expect("fits_in_core checked the dataset residency"),
            )
        } else {
            None
        };

        let (cap_label, mem_label) = if in_core {
            let plan = batch::max_batch_with(&titan, n, d, l, precision);
            (plan.capacity_batch, plan.memory_batch.to_string())
        } else {
            (
                batch::batch_for_capacity(&titan, n, d, l),
                "0 (out-of-core)".to_string(),
            )
        };

        let mut rows = Vec::new();
        for m in pow2_sweep(16, cap_label.max(16)) {
            let iterations = n.div_ceil(m);
            // In-core pricing while the mini-batch kernel block m·n fits;
            // streamed pricing (overlapped tile pipeline) beyond.
            let block = if in_core {
                ledger.alloc((m * n) as f64).ok()
            } else {
                None
            };
            let (mode, ops_per_iter, note) = match &block {
                Some(_) => (
                    "in-core".to_string(),
                    (n * m * (d + l)) as f64,
                    String::new(),
                ),
                None => {
                    let Ok(splan) = batch::max_batch_streamed(
                        &titan,
                        n,
                        d,
                        l,
                        precision,
                        batch::DEFAULT_TILES_IN_FLIGHT,
                        Some(m),
                    ) else {
                        break; // not even a streamed tile fits this m
                    };
                    let shape = ProblemShape {
                        n,
                        m,
                        d,
                        l,
                        s: 0,
                        q: 0,
                    };
                    let sc = cost::streamed_eigenpro(&shape, splan.n_tile);
                    (
                        "streamed".to_string(),
                        sc.exposed_ops,
                        format!("n_tile {} ov {:.2}x", splan.n_tile, sc.overlap_factor()),
                    )
                }
            };
            let t_iter = timing::iteration_time(&titan, DeviceMode::ActualGpu, ops_per_iter);
            let epoch_time = t_iter * iterations as f64;
            rows.push(vec![
                m.to_string(),
                mode,
                iterations.to_string(),
                fmt_secs(t_iter),
                fmt_secs(epoch_time),
                note,
            ]);
            drop(block);
        }
        print_table(
            &format!("n = {n} (m^C_G = {cap_label}, m^S_G = {mem_label})"),
            &[
                "batch m",
                "residency",
                "iters/epoch",
                "time/iter",
                "time/epoch",
                "streaming",
            ],
            &rows,
        );
        drop(resident);
        println!();
    }
    println!(
        "Shape check: for every n, epoch time drops as m grows (linear scaling) and \
         flattens once the capacity knee m^C_G is passed. Where curves used to \
         truncate at the memory batch m^S_G they now continue in streamed mode; \
         the streamed rows run within a few percent of the in-core trend because \
         tile assembly (the m·n·d term) overlaps the update — the overlap factor \
         column quantifies the hidden work."
    );
}
