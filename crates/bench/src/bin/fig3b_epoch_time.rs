//! Figure 3b: GPU time per training epoch vs batch size, for several model
//! (training-set) sizes `n`, up to the largest batch that fits in GPU
//! memory.
//!
//! An epoch is `n/m` iterations; per-launch overhead amortises with larger
//! `m` (Amdahl's law) and execution time per iteration is flat until the
//! capacity knee — so epoch time falls with `m` until saturation, then
//! levels out, consistently across `n`. The memory ledger enforces the
//! `m ≤ m^S_G` cap that truncates each curve.

use ep2_bench::{fmt_secs, pow2_sweep, precision_from_args, print_table};
use ep2_device::{batch, memory::MemoryLedger, timing, DeviceMode, ResourceSpec};

fn main() {
    let precision = precision_from_args();
    let titan = ResourceSpec::titan_xp();
    let d = 440; // TIMIT-like features
    let l = 144;

    println!("Figure 3b: simulated GPU time per epoch vs batch size, across model sizes n");
    println!(
        "device: {} (S_G = {:.1e} slots at {precision}; curves truncate at the \
         precision's m^S_G)\n",
        titan.name,
        titan.memory_slots(precision)
    );

    for &n in &[100_000usize, 400_000, 1_000_000, 2_000_000] {
        let plan = batch::max_batch_with(&titan, n, d, l, precision);
        let ledger = MemoryLedger::new(titan.memory_slots(precision));
        // Resident: features + weights (per Step-1 accounting).
        let resident = ledger
            .alloc(((d + l) * n) as f64)
            .expect("dataset fits on device");

        let mut rows = Vec::new();
        for m in pow2_sweep(16, plan.memory_batch.max(16)) {
            // The mini-batch kernel block m·n must also fit.
            let block = match ledger.alloc((m * n) as f64) {
                Ok(a) => a,
                Err(_) => break, // memory cap reached — curve truncates here
            };
            let iterations = n.div_ceil(m);
            let ops_per_iter = (n * m * (d + l)) as f64;
            let t_iter = timing::iteration_time(&titan, DeviceMode::ActualGpu, ops_per_iter);
            let epoch_time = t_iter * iterations as f64;
            rows.push(vec![
                m.to_string(),
                iterations.to_string(),
                fmt_secs(t_iter),
                fmt_secs(epoch_time),
            ]);
            drop(block);
        }
        print_table(
            &format!(
                "n = {n} (m^C_G = {}, m^S_G = {}, m^max_G = {})",
                plan.capacity_batch, plan.memory_batch, plan.batch
            ),
            &["batch m", "iters/epoch", "time/iter", "time/epoch"],
            &rows,
        );
        drop(resident);
        println!();
    }
    println!(
        "Shape check: for every n, epoch time drops as m grows (linear scaling) and \
         flattens once the capacity knee m^C_G is passed; curves truncate at the \
         memory batch m^S_G — matching Figure 3b."
    );
}
