//! Figure 3a: time per training iteration vs batch size on an actual GPU,
//! an ideal parallel device, and a pure sequential machine
//! (paper: TIMIT, n = 1e5, d = 440).
//!
//! The knee of the "actual GPU" curve sits at `m = C_G / (n (d + l))`, so
//! at reduced `n` we use the proportionally scaled virtual-GPU spec to keep
//! the crossover inside the plotted range (see DESIGN.md). A *measured*
//! host-CPU column is printed alongside: a CPU's parallel capacity is tiny
//! (~1e6 ops), so its curve is already in the linear regime at `m = 1` —
//! i.e. the CPU plays the paper's "sequential machine" role, while the
//! simulated device reproduces the GPU curve.
//!
//! `--precision f32|f64|mixed|bf16` selects the numeric precision of the
//! measured column (simulated curves are precision-independent operation
//! counts; `mixed` executes the hot loop in f32 like the trainer does).

use std::sync::Arc;
use std::time::Instant;

use ep2_bench::{fmt_secs, pow2_sweep, precision_from_args, print_table};
use ep2_core::iteration::EigenProIteration;
use ep2_core::KernelModel;
use ep2_data::catalog;
use ep2_device::{timing, DeviceMode, Precision, ResourceSpec};
use ep2_kernels::{Kernel, KernelKind};
use ep2_linalg::Scalar;

fn run<S: Scalar>(precision: Precision) {
    let n = 8_000; // paper: 1e5; reduced scale, same d
    let data = catalog::timit_like_small_labels(n, 24, 3);
    let d = data.dim();
    let l = data.n_classes;
    let device = ResourceSpec::scaled_virtual_gpu();
    let knee = (device.parallel_capacity / ((d + l) as f64 * n as f64)).floor();

    println!(
        "Figure 3a: time per iteration vs batch size (TIMIT-like, n = {n}, d = {d}, l = {l}, \
         precision = {precision})"
    );
    println!(
        "simulated device: {} (C_G = {:.1e}, capacity knee at m = {knee})\n",
        device.name, device.parallel_capacity,
    );

    let kernel: Arc<dyn Kernel<S>> = KernelKind::Laplacian.with_bandwidth_in::<S>(12.0).into();
    let features = data.features.cast::<S>();
    let targets = data.targets.cast::<S>();
    let model = KernelModel::zeros(kernel, features, l);
    let mut iter = EigenProIteration::new(model, None, 1.0);

    let mut rows = Vec::new();
    for m in pow2_sweep(1, 4096) {
        let ops = (n * m * (d + l)) as f64;
        let t_ideal = timing::iteration_time(&device, DeviceMode::IdealParallel, ops);
        let t_actual = timing::iteration_time(&device, DeviceMode::ActualGpu, ops);
        let t_seq = timing::iteration_time(&device, DeviceMode::Sequential, ops);

        // Measured: one real iteration on this host, in the chosen precision.
        let batch: Vec<usize> = (0..m.min(n)).collect();
        let start = Instant::now();
        iter.step(&batch, &targets);
        let measured = start.elapsed().as_secs_f64();

        rows.push(vec![
            m.to_string(),
            fmt_secs(t_actual),
            fmt_secs(t_ideal),
            fmt_secs(t_seq),
            fmt_secs(measured),
        ]);
    }
    print_table(
        "per-iteration time",
        &[
            "batch m",
            "actual GPU (sim)",
            "ideal parallel (sim)",
            "sequential (sim)",
            &format!("measured CPU ({})", S::NAME),
        ],
        &rows,
    );
    println!(
        "\nShape check: 'actual GPU' is flat (= ideal parallel) for m below the \
         capacity knee ({knee}) and turns linear (sequential slope) past it — the \
         Figure-3a crossover. The measured CPU column is linear from m = 1 because a \
         CPU saturates at ~1e6-op launches; it is this machine's 'sequential device'."
    );
}

fn main() {
    let precision = precision_from_args();
    match precision {
        Precision::F64 => run::<f64>(precision),
        Precision::F32 | Precision::Mixed => run::<f32>(precision),
        Precision::Bf16 => run::<ep2_linalg::Bf16>(precision),
    }
}
