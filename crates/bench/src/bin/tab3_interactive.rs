//! Table 3: "interactive" training — EigenPro 2.0 vs ThunderSVM (GPU) vs
//! LibSVM (CPU) on TIMIT / SVHN / MNIST / CIFAR-10 subsets.
//!
//! Paper protocol: train the SVM to convergence, then stop EigenPro 2.0 at
//! the first epoch where its test accuracy reaches the SVM's. Each method
//! runs on its own device model, as in the paper's hardware assignment:
//!
//! - LibSVM: one CPU thread (sequential device, ~4 Gop/s);
//! - ThunderSVM: a parallel device at ~8x the serial throughput (the
//!   measured class of ThunderSVM's advantage over LibSVM);
//! - EigenPro 2.0: the scaled virtual GPU (big-batch GEMM utilisation).
//!
//! Simulated seconds are the primary column (the paper's comparison is
//! GPU-vs-CPU wall time, which a CPU-only reproduction cannot measure
//! directly); host wall time is shown for reference.

use ep2_baselines::svm;
use ep2_bench::{fmt_pct, fmt_secs, print_table, virtual_gpu_saturating_at};
use ep2_core::trainer::{EigenPro2, TrainConfig};
use ep2_core::PredictOptions;
use ep2_data::{catalog, metrics, Dataset};
use ep2_device::{DeviceMode, ResourceSpec};
use ep2_kernels::KernelKind;

struct Spec {
    name: &'static str,
    data: Dataset,
    train_n: usize,
    bandwidth: f64,
    svm_c: f64,
}

fn main() {
    let cpu_one_thread = ResourceSpec::new("CPU, 1 thread", 1.0e6, 1.6e10, 4.0e9, 1.0e-7);
    let parallel_device = ResourceSpec::new("parallel device (8x)", 8.0e6, 1.6e10, 3.2e10, 1.0e-7);

    let specs = vec![
        Spec {
            name: "TIMIT",
            data: catalog::timit_like_small_labels(1_500, 24, 31),
            train_n: 1_200,
            bandwidth: 12.0,
            svm_c: 10.0,
        },
        Spec {
            name: "SVHN",
            data: catalog::svhn_like(1_500, 32),
            train_n: 1_200,
            bandwidth: 6.0,
            svm_c: 10.0,
        },
        Spec {
            name: "MNIST",
            data: catalog::mnist_like(1_500, 33),
            train_n: 1_200,
            bandwidth: 5.0,
            svm_c: 10.0,
        },
        Spec {
            name: "CIFAR-10",
            data: catalog::cifar10_like(1_500, 34),
            train_n: 1_200,
            bandwidth: 8.0,
            svm_c: 10.0,
        },
    ];

    let mut sim_rows = Vec::new();
    let mut wall_rows = Vec::new();
    for spec in &specs {
        let (train, test) = spec.data.split_at(spec.train_n);
        let d_plus_l = train.dim() + train.n_classes;
        let gpu = virtual_gpu_saturating_at(train.len() / 4, train.len(), d_plus_l);

        // LibSVM stand-in (serial SMO on one CPU thread).
        let (_, libsvm) = svm::train(
            &svm::SvmConfig {
                kernel: KernelKind::Gaussian,
                bandwidth: spec.bandwidth,
                c: spec.svm_c,
                parallel_kernel: false,
                device_mode: DeviceMode::Sequential,
                ..svm::SvmConfig::default()
            },
            &cpu_one_thread,
            &train,
            Some(&test),
        )
        .expect("libsvm");

        // ThunderSVM stand-in (parallel kernel rows, parallel device).
        let (_, thunder) = svm::train(
            &svm::SvmConfig {
                kernel: KernelKind::Gaussian,
                bandwidth: spec.bandwidth,
                c: spec.svm_c,
                parallel_kernel: true,
                device_mode: DeviceMode::Sequential,
                ..svm::SvmConfig::default()
            },
            &parallel_device,
            &train,
            Some(&test),
        )
        .expect("thundersvm");

        let svm_error = libsvm.test_error.unwrap();

        // EigenPro 2.0: stop at the first epoch whose test accuracy reaches
        // the SVM's (the paper's protocol).
        let out = EigenPro2::new(
            TrainConfig {
                kernel: KernelKind::Gaussian,
                bandwidth: spec.bandwidth,
                epochs: 15,
                subsample_size: Some(300),
                early_stopping: None,
                target_val_error: Some(svm_error),
                device_mode: DeviceMode::ActualGpu,
                seed: 13,
                ..TrainConfig::default()
            },
            gpu,
        )
        .fit(&train, Some(&test))
        .expect("eigenpro2");
        let pred = out
            .model
            .predict_with(&test.features, &PredictOptions::default());
        let ep2_error = metrics::classification_error(&pred, &test.labels);

        sim_rows.push(vec![
            spec.name.to_string(),
            format!("{} / {}", train.len(), train.dim()),
            format!(
                "{} ({})",
                fmt_secs(out.report.simulated_seconds),
                fmt_pct(ep2_error)
            ),
            format!(
                "{} ({})",
                fmt_secs(thunder.simulated_seconds),
                fmt_pct(thunder.test_error.unwrap())
            ),
            format!(
                "{} ({})",
                fmt_secs(libsvm.simulated_seconds),
                fmt_pct(svm_error)
            ),
        ]);
        wall_rows.push(vec![
            spec.name.to_string(),
            fmt_secs(out.report.wall_seconds),
            fmt_secs(thunder.wall_seconds),
            fmt_secs(libsvm.wall_seconds),
        ]);
    }
    print_table(
        "Table 3 (reproduction scale): simulated device time to SVM-level accuracy (test error)",
        &[
            "dataset",
            "n / d",
            "EigenPro 2.0 (GPU)",
            "ThunderSVM (parallel)",
            "LibSVM (1 CPU thread)",
        ],
        &sim_rows,
    );
    print_table(
        "host wall-clock for reference (all methods actually ran on this CPU)",
        &[
            "dataset",
            "EigenPro 2.0",
            "ThunderSVM stand-in",
            "LibSVM stand-in",
        ],
        &wall_rows,
    );
    println!(
        "\nShape check (paper's Table 3): EigenPro < ThunderSVM < LibSVM, with EigenPro \
         1-2 orders of magnitude below LibSVM. The gap widens with n: SMO's pair \
         updates scale superlinearly while EigenPro's epochs stay O(n²·(d+l)) with \
         full device utilisation."
    );
}
