//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Spectral truncation `q`** (Remark 3.1): any `p > q` gives the same
//!    acceleration if `m` and `η` are chosen accordingly — larger `q` only
//!    costs preconditioner setup/overhead.
//! 2. **Damping exponent `α`**: `α = 1` is Algorithm 1 verbatim;
//!    `α = 0.95` (reference implementation) absorbs Nyström estimation
//!    error. We measure time-to-target across `α`.
//! 3. **Fixed block size `s`**: the paper's rule is `s = 2e3` for
//!    `n ≤ 1e5`; we sweep `s` and report convergence + overhead.
//!
//! ```text
//! cargo run -p ep2-bench --release --bin ablation
//! ```

use ep2_bench::{fmt_pct, fmt_secs, print_table, virtual_gpu_saturating_at};
use ep2_core::trainer::{EigenPro2, TrainConfig};
use ep2_core::PredictOptions;
use ep2_data::catalog;
use ep2_device::DeviceMode;
use ep2_kernels::KernelKind;

fn main() {
    let data = catalog::mnist_like(1_200, 19);
    let (train, _) = data.split_at(1_200);
    let device = virtual_gpu_saturating_at(300, train.len(), train.dim() + train.n_classes);
    let target = 1e-2;
    let base = TrainConfig {
        kernel: KernelKind::Gaussian,
        bandwidth: 5.0,
        epochs: 40,
        subsample_size: Some(400),
        target_train_mse: Some(target),
        early_stopping: None,
        device_mode: DeviceMode::ActualGpu,
        seed: 3,
        ..TrainConfig::default()
    };

    // --- Ablation 1: q (Remark 3.1). ---
    let mut rows = Vec::new();
    for q in [5usize, 15, 30, 60, 100] {
        let config = TrainConfig {
            q: Some(q),
            ..base.clone()
        };
        let out = EigenPro2::new(config, device.clone())
            .fit(&train, None)
            .expect("train");
        rows.push(vec![
            q.to_string(),
            out.report.epochs.len().to_string(),
            fmt_secs(out.report.simulated_seconds),
            format!("{:.2e}", out.report.final_train_mse),
            fmt_pct(out.report.overhead_fraction),
        ]);
    }
    print_table(
        &format!("ablation: truncation q (target train MSE {target})"),
        &["q", "epochs", "sim time", "final mse", "precond overhead"],
        &rows,
    );
    println!(
        "Remark 3.1 check: beyond the Eq.-(7) level, increasing q keeps improving \
         or holds convergence while only the (tiny) overhead grows.\n"
    );

    // --- Ablation 2: damping α (library-level comparison). ---
    // The trainer always uses the reference α = 0.95; compare raw
    // preconditioners at several α on the same problem.
    use ep2_core::iteration::EigenProIteration;
    use ep2_core::{critical, KernelModel, Preconditioner};
    use std::sync::Arc;
    let kernel: Arc<dyn ep2_kernels::Kernel> = KernelKind::Gaussian.with_bandwidth(5.0).into();
    let m = 300;
    let mut rows = Vec::new();
    for alpha in [1.0, 0.95, 0.9, 0.8, 0.5] {
        let p = Preconditioner::fit_damped(&kernel, &train.features, 400, 30, alpha, 3).unwrap();
        let beta_g = p.beta_estimate(&kernel, &train.features, 1_000, 3);
        let lambda = p.lambda1_preconditioned().max(p.probe_lambda_max(
            &kernel,
            &train.features,
            800,
            12,
            3,
        ));
        let eta = critical::optimal_step_size(m, beta_g, lambda);
        let model = KernelModel::zeros(kernel.clone(), train.features.clone(), train.n_classes);
        let mut it = EigenProIteration::new(model, Some(p), eta);
        let idx: Vec<usize> = (0..train.len()).collect();
        let mut epochs_needed = None;
        for epoch in 1..=40 {
            for chunk in idx.chunks(m) {
                it.step(chunk, &train.targets);
            }
            let pred = it
                .model()
                .predict_with(&train.features, &PredictOptions::default());
            let mse = ep2_data::metrics::mse(&pred, &train.targets);
            if mse <= target {
                epochs_needed = Some((epoch, mse));
                break;
            }
        }
        let (ep, mse) = epochs_needed.unwrap_or((40, f64::NAN));
        rows.push(vec![
            format!("{alpha}"),
            format!("{eta:.1}"),
            ep.to_string(),
            format!("{mse:.2e}"),
        ]);
    }
    print_table(
        "ablation: damping exponent α (with the λ₁ leakage probe active)",
        &["α", "η", "epochs to target", "mse at stop"],
        &rows,
    );
    println!(
        "α < 1 damps less aggressively (larger λ₁(K_G) → smaller η) but stays \
         stable even without the probe; α = 1 relies on the probe entirely.\n"
    );

    // --- Ablation 3: block size s. ---
    let mut rows = Vec::new();
    for s in [100usize, 200, 400, 800] {
        let config = TrainConfig {
            subsample_size: Some(s),
            ..base.clone()
        };
        let out = EigenPro2::new(config, device.clone())
            .fit(&train, None)
            .expect("train");
        rows.push(vec![
            s.to_string(),
            out.report.params.adjusted_q.to_string(),
            out.report.epochs.len().to_string(),
            fmt_secs(out.report.simulated_seconds),
            fmt_pct(out.report.overhead_fraction),
        ]);
    }
    print_table(
        "ablation: fixed coordinate block size s",
        &["s", "adj. q", "epochs", "sim time", "precond overhead"],
        &rows,
    );
    println!(
        "Larger s sharpens the Nyström eigensystem (higher usable q, fewer epochs) \
         at linearly growing — but still small — per-iteration overhead; the paper's \
         s = 2e3 rule sits on this plateau."
    );
}
