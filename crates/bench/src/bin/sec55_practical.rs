//! Section 5.5: "Practical Techniques for Accelerating Inference".
//!
//! Two claims, both regenerated here:
//!
//! 1. **Choice of kernel.** The Laplacian kernel (1) needs fewer epochs
//!    than the Gaussian for the same quality, (2) has a larger critical
//!    batch `m*` (more effective parallelisation), and (3) is more robust
//!    to the bandwidth σ.
//! 2. **PCA dimensionality reduction.** Cutting the feature dimension
//!    (ImageNet: 1536 → 500 in the paper, < 0.2% accuracy cost) reduces
//!    per-iteration cost `n·m·d` nearly proportionally.

use std::sync::Arc;

use ep2_bench::{fmt_pct, fmt_secs, print_table, virtual_gpu_saturating_at};
use ep2_core::precond::SubsampleEigens;
use ep2_core::trainer::{EigenPro2, TrainConfig};
use ep2_data::{catalog, preprocess, Dataset};
use ep2_device::DeviceMode;
use ep2_kernels::{Kernel, KernelKind};
use ep2_linalg::Matrix;

fn kernel_choice_section() {
    let data = catalog::svhn_like(1_200, 51);
    let (train, test) = data.split_at(960);
    let device = virtual_gpu_saturating_at(240, train.len(), train.dim() + train.n_classes);

    // (2) m*(k) per kernel at a common bandwidth.
    let m_star = |kind: KernelKind, sigma: f64| {
        let k: Arc<dyn Kernel> = kind.with_bandwidth(sigma).into();
        let eig = SubsampleEigens::compute(&k, &train.features, 300, 1, 7).unwrap();
        300.0 / eig.values[0]
    };

    // (1) and (3): test error after a fixed 2-epoch budget across a wide
    // (16x) bandwidth range — robustness shows as a small spread.
    let sigmas = [2.0, 8.0, 32.0];
    let mut rows = Vec::new();
    for kind in [KernelKind::Gaussian, KernelKind::Laplacian] {
        let mut errs = Vec::new();
        for &sigma in &sigmas {
            let out = EigenPro2::new(
                TrainConfig {
                    kernel: kind,
                    bandwidth: sigma,
                    epochs: 2,
                    subsample_size: Some(300),
                    early_stopping: None,
                    device_mode: DeviceMode::ActualGpu,
                    seed: 5,
                    ..TrainConfig::default()
                },
                device.clone(),
            )
            .fit(&train, Some(&test))
            .expect("train");
            errs.push(out.report.final_val_error.unwrap());
        }
        let spread = errs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - errs.iter().cloned().fold(f64::INFINITY, f64::min);
        rows.push(vec![
            kind.to_string(),
            format!("{:.1}", m_star(kind, 8.0)),
            errs.iter()
                .map(|e| fmt_pct(*e))
                .collect::<Vec<_>>()
                .join(" / "),
            fmt_pct(spread),
        ]);
    }
    print_table(
        "kernel choice (SVHN-like; fixed 2-epoch budget; σ ∈ {2, 8, 32})",
        &[
            "kernel",
            "m*(k) @ σ=8",
            "test error per σ",
            "error spread over σ",
        ],
        &rows,
    );
    println!(
        "Claims: Laplacian m* larger (more effective parallelisation), and its error \
         varies less across a 16x bandwidth range (robustness to σ).\n"
    );
}

fn pca_section() {
    // ImageNet-features-like: train at full d = 500 and at PCA-128.
    let data = catalog::imagenet_features_like(1_200, 30, 52);
    let (train, test) = data.split_at(960);

    let run = |train: &Dataset, test: &Dataset, label: &str| -> Vec<String> {
        let device = virtual_gpu_saturating_at(240, train.len(), train.dim() + train.n_classes);
        let out = EigenPro2::new(
            TrainConfig {
                kernel: KernelKind::Gaussian,
                bandwidth: 16.0,
                epochs: 8,
                subsample_size: Some(300),
                early_stopping: None,
                device_mode: DeviceMode::ActualGpu,
                seed: 6,
                ..TrainConfig::default()
            },
            device,
        )
        .fit(train, Some(test))
        .expect("train");
        vec![
            label.to_string(),
            train.dim().to_string(),
            fmt_pct(out.report.final_val_error.unwrap()),
            fmt_secs(out.report.simulated_seconds),
            fmt_secs(out.report.wall_seconds),
        ]
    };

    let full_row = run(&train, &test, "full features");

    // Fit PCA on train, transform both.
    let (train_reduced, pca) = preprocess::pca_reduce(&train.features, 128).expect("pca");
    let test_reduced: Matrix = pca.transform(&test.features);
    let train_r = Dataset::from_labels(
        train.name.clone(),
        train_reduced,
        train.labels.clone(),
        train.n_classes,
    );
    let test_r = Dataset::from_labels(
        test.name.clone(),
        test_reduced,
        test.labels.clone(),
        test.n_classes,
    );
    let reduced_row = run(&train_r, &test_r, "PCA-128");

    print_table(
        "PCA dimensionality reduction (ImageNet-features-like, 500 → 128)",
        &["features", "d", "test error", "sim time", "wall time"],
        &[full_row, reduced_row],
    );
    println!(
        "Claim: the error cost of PCA reduction is small (paper: < 0.2% for \
         1536 → 500) while per-iteration cost n·m·(d+l) shrinks with d."
    );
}

fn main() {
    kernel_choice_section();
    pca_section();
}
