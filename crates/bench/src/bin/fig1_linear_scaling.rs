//! Figure 1: convergence speedup per iteration vs mini-batch size for the
//! original kernel `k` and the adaptive kernel `k_G`.
//!
//! The paper's schematic shows both kernels scaling linearly for small `m`,
//! with `k` saturating at its tiny critical batch `m*(k)` while `k_G` keeps
//! scaling to `m^max_G`. We regenerate it from the *theory* (Ma et al. 2017
//! rates with measured spectra) and verify the two saturation points.

use std::sync::Arc;

use ep2_bench::{fmt_pct, pow2_sweep, print_table};
use ep2_core::{autotune, critical};
use ep2_data::catalog;
use ep2_device::ResourceSpec;
use ep2_kernels::{Kernel, KernelKind};

fn main() {
    let n = 800;
    let data = catalog::mnist_like(n, 42);
    let kernel: Arc<dyn Kernel> = KernelKind::Gaussian.with_bandwidth(5.0).into();
    let device = ResourceSpec::scaled_virtual_gpu();

    let (params, _precond) = autotune::plan(
        &kernel,
        &data.features,
        data.n_classes,
        &device,
        Some(400),
        None,
        None,
        ep2_device::Precision::F64,
        7,
    )
    .expect("plan");

    // λ_n is tiny; its exact value only scales the speedup axis. Use the
    // smallest Nyström eigenvalue above numerical noise as a stand-in.
    let lambda_n = (params.lambda1 * 1e-5).max(1e-12);

    println!("Figure 1: linear scaling of k vs adaptive k_G (MNIST-like, n = {n})");
    println!(
        "m*(k) = {:.1}   m*(k_G) = {:.1}   m^max_G = {}\n",
        params.m_star, params.m_star_g, params.m
    );

    let sweep = pow2_sweep(1, (params.m * 4).max(64));
    let mut rows = Vec::new();
    for m in sweep {
        let s_orig = critical::speedup_over_single(m, params.beta, params.lambda1, lambda_n);
        let s_adapt = critical::speedup_over_single(m, params.beta_g, params.lambda1_g, lambda_n);
        let util = fmt_pct((m as f64 / params.m as f64).min(1.0));
        rows.push(vec![
            m.to_string(),
            format!("{s_orig:.2}"),
            format!("{s_adapt:.2}"),
            util,
        ]);
    }
    print_table(
        "per-iteration convergence speedup over m = 1",
        &["batch m", "original k", "adaptive k_G", "GPU utilisation"],
        &rows,
    );

    // The figure's two claims, checked numerically.
    let sat_orig = critical::speedup_over_single(
        (params.m_star as usize).max(1) * 8,
        params.beta,
        params.lambda1,
        lambda_n,
    );
    let lin_orig = critical::speedup_over_single(
        (params.m_star as usize).max(1),
        params.beta,
        params.lambda1,
        lambda_n,
    );
    println!(
        "\ncheck: original kernel saturates past m*(k): speedup(8·m*) / speedup(m*) = {:.2} (≈ 1)",
        sat_orig / lin_orig
    );
    let gain = critical::speedup_over_single(params.m, params.beta_g, params.lambda1_g, lambda_n)
        / critical::speedup_over_single(params.m, params.beta, params.lambda1, lambda_n);
    println!("check: at m = m^max_G the adaptive kernel converges {gain:.0}x faster per iteration");
    println!(
        "check: predicted acceleration (Appendix C) = {:.0}x",
        params.acceleration
    );
}
